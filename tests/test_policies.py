"""Unit tests for the policy layer (registry + attach behaviour)."""

import pytest

from repro.config import default_config
from repro.dram.schedulers import (CpuPriorityScheduler, DynPrioScheduler,
                                   FrFcfsScheduler, SmsScheduler)
from repro.mixes import MIXES_M, Mix
from repro.policies import POLICY_NAMES, make_policy
from repro.policies.cmbal import CmBalGate
from repro.sim.system import HeterogeneousSystem


def test_registry_names():
    for name in POLICY_NAMES:
        assert make_policy(name) is not None
    with pytest.raises(KeyError):
        make_policy("magic")


def test_scheduler_factories():
    assert isinstance(make_policy("baseline").scheduler_factory()(0),
                      FrFcfsScheduler)
    assert isinstance(make_policy("sms-0.9").scheduler_factory()(0),
                      SmsScheduler)
    assert isinstance(make_policy("dynprio").scheduler_factory()(0),
                      DynPrioScheduler)
    assert isinstance(make_policy("throtcpuprio").scheduler_factory()(0),
                      CpuPriorityScheduler)


def test_sms_variants_probabilities():
    assert make_policy("sms-0.9").p_sjf == 0.9
    assert make_policy("sms-0").p_sjf == 0.0


def test_bypass_all_attaches_llc_hook():
    cfg = default_config(scale="smoke", n_cpus=0)
    pol = make_policy("bypass-all")
    s = HeterogeneousSystem(cfg, Mix("g", "NFS", ()), pol)
    assert s.llc.bypass_fn is not None
    from repro.mem.request import MemRequest
    assert s.llc.bypass_fn(MemRequest(0, False, "gpu", "texture"))


def test_helm_bypasses_shader_kinds_when_tolerant():
    from repro.mem.request import MemRequest
    pol = make_policy("helm")
    pol.tolerant = True
    assert pol._bypass(MemRequest(0, False, "gpu", "texture"))
    assert pol._bypass(MemRequest(0, False, "gpu", "vertex"))
    assert pol._bypass(MemRequest(0, False, "gpu", "color"))  # aggressive
    pol.tolerant = False
    assert not pol._bypass(MemRequest(0, False, "gpu", "texture"))


def test_helm_non_aggressive_spares_rop():
    from repro.mem.request import MemRequest
    pol = make_policy("helm", aggressive=False)
    pol.tolerant = True
    assert pol._bypass(MemRequest(0, False, "gpu", "texture"))
    assert not pol._bypass(MemRequest(0, False, "gpu", "color"))


def test_cmbal_gate_only_delays_texture():
    gate = CmBalGate(base_gap=2, max_level=8)
    gate.level = 2                     # heavily throttled-down
    assert gate.next_issue_time(100, "color") == 100
    assert gate.next_issue_time(100, "depth") == 100
    delays = [gate.next_issue_time(100, "texture") - 100
              for _ in range(100)]
    assert any(d > 0 for d in delays)
    assert any(d == 0 for d in delays)   # only a fraction covered
    frac = sum(1 for d in delays if d > 0) / len(delays)
    assert 0.4 < frac < 0.8


def test_cmbal_gate_transparent_at_full_concurrency():
    gate = CmBalGate(base_gap=2)
    assert gate.next_issue_time(50, "texture") == 50


def test_throttle_policy_names():
    assert make_policy("throttle").name == "throttle"
    assert make_policy("throtcpuprio").name == "throtcpuprio"
    assert make_policy("proposal").name == "throtcpuprio"


def test_policies_attach_cleanly_without_gpu():
    """Policies must tolerate CPU-only systems (standalone runs)."""
    cfg = default_config(scale="smoke", n_cpus=1)
    for name in ("dynprio", "helm", "cm-bal", "throtcpuprio"):
        pol = make_policy(name)
        s = HeterogeneousSystem(cfg, Mix("c", None, (403,)), pol)
        assert s.gpu is None
