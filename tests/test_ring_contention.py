"""Tests for the contention ring model and the DASH policy extension."""

import pytest
from dataclasses import replace

from repro.config import RingConfig, default_config
from repro.interconnect.ring import RingInterconnect
from repro.mixes import MIXES_M, MIXES_W
from repro.policies import make_policy
from repro.policies.dash import DashPolicy
from repro.sim.system import HeterogeneousSystem


# -- ring ---------------------------------------------------------------


def test_latency_model_ignores_bursts():
    r = RingInterconnect(RingConfig(), n_cpus=2)
    d = [r.delay("cpu0", "llc") for _ in range(10)]
    assert len(set(d)) == 1


def test_contention_model_queues_bursts():
    r = RingInterconnect(RingConfig(), n_cpus=2, model="contention",
                         slot_ticks=4)
    now = [100]
    r.wire_clock(lambda: now[0])
    first = r.delay("cpu0", "llc")
    second = r.delay("cpu1", "llc")       # same direction, same instant
    assert second > first - 2             # queued behind the first
    assert r.stats.get("queued_ticks") > 0
    # once time passes, the slot frees
    now[0] = 1000
    assert r.delay("cpu0", "llc") == r.hops("cpu0", "llc")


def test_contention_directions_independent():
    r = RingInterconnect(RingConfig(), n_cpus=4, model="contention",
                         slot_ticks=8)
    r.wire_clock(lambda: 0)
    d_cw = r.direction("cpu0", "cpu1")
    d_ccw = r.direction("cpu1", "cpu0")
    assert d_cw != d_ccw
    a = r.delay("cpu0", "cpu1")
    b = r.delay("cpu1", "cpu0")           # opposite direction: no queue
    assert b == r.hops("cpu1", "cpu0")


def test_unknown_ring_model_rejected():
    with pytest.raises(ValueError):
        RingInterconnect(RingConfig(), 1, model="mesh")


def test_system_runs_with_contention_ring():
    cfg = default_config("smoke", n_cpus=1)
    cfg = replace(cfg, ring=replace(cfg.ring, model="contention"))
    s = HeterogeneousSystem(cfg, MIXES_W["W8"]).run()
    assert s.gpu_fps() > 0
    assert s.ring.stats.get("queued_ticks") >= 0


# -- DASH ------------------------------------------------------------------


def test_dash_registry():
    assert isinstance(make_policy("dash"), DashPolicy)


def test_dash_tracks_urgency_and_completes():
    pol = DashPolicy()
    cfg = default_config("smoke", n_cpus=4)
    s = HeterogeneousSystem(cfg, MIXES_M["M7"], pol).run()
    assert pol.urgency_log
    assert all(u > 0 for u in pol.urgency_log)
    assert s.gpu_fps() > 0
    assert all(c.done for c in s.cores)


def test_dash_protects_slow_gpu():
    """A below-target GPU is permanently urgent: DASH must not slow it
    below a fair-share baseline."""
    base = HeterogeneousSystem(default_config("smoke", n_cpus=4),
                               MIXES_M["M6"]).run()
    pol = DashPolicy()
    dash = HeterogeneousSystem(default_config("smoke", n_cpus=4),
                               MIXES_M["M6"], pol).run()
    assert dash.gpu_fps() > 0.8 * base.gpu_fps()
    assert pol.urgent                     # Crysis never catches up


def test_dash_deprioritises_fast_gpu():
    """An above-target GPU spends most ticks non-urgent (CPU first)."""
    pol = DashPolicy()
    HeterogeneousSystem(default_config("smoke", n_cpus=4),
                        MIXES_M["M13"], pol).run()
    below = sum(1 for u in pol.urgency_log if u < 1.0)
    assert below > len(pol.urgency_log) * 0.4
