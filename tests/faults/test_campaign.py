"""The fault campaign: every scenario classified, none silent.

The full test-scale campaign runs in CI (``python -m repro faults``);
here a representative subset runs at smoke scale to keep the suite fast
while still covering every classification path (detected via invariant,
via cache integrity, via the executor, and tolerated-with-degradation).
"""

import multiprocessing as mp

import pytest

from repro.faults import run_campaign, scenario_names
from repro.faults.campaign import DETECTED, SILENT, TOLERATED

HAVE_FORK = "fork" in mp.get_all_start_methods()


def test_scenario_registry():
    names = scenario_names()
    assert len(names) >= 8
    with pytest.raises(KeyError):
        run_campaign(only=["no-such-scenario"])


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_subset_campaign_no_silent_faults():
    report = run_campaign(
        scale="smoke", seed=1,
        only=["duplicate-read", "delay-cpu-read", "cache-corrupt",
              "worker-crash", "worker-flaky"])
    assert report.ok
    by_name = {o.name: o for o in report.outcomes}
    assert by_name["duplicate-read"].classification == DETECTED
    assert by_name["cache-corrupt"].classification == DETECTED
    assert by_name["worker-crash"].classification == DETECTED
    assert by_name["delay-cpu-read"].classification == TOLERATED
    assert "degradation recorded" in by_name["delay-cpu-read"].detail
    assert by_name["worker-flaky"].classification == TOLERATED
    assert report.counts()[SILENT] == 0
    assert "OK" in report.format()
