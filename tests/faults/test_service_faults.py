"""The service chaos campaign: cheap scenarios at smoke scale.

The full campaign (including the real-subprocess ``daemon-sigkill``
tentpole) runs in CI's ``chaos-smoke`` job via
``python -m repro faults --service``; here the in-process scenarios —
journal recovery, protocol abuse, stalled clients — run at smoke scale
so every classification path stays covered by the plain suite.
"""

import multiprocessing as mp

import pytest

from repro.faults import run_service_campaign, service_scenario_names
from repro.faults.campaign import DETECTED, SILENT, TOLERATED

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")


def test_scenario_registry():
    names = service_scenario_names()
    assert "daemon-sigkill" in names
    assert "journal-torn-tail" in names
    assert len(names) == 8
    with pytest.raises(KeyError, match="no-such"):
        run_service_campaign(only=["no-such-scenario"])


@needs_fork
def test_journal_scenarios_detected():
    report = run_service_campaign(
        scale="smoke", seed=1,
        only=["journal-torn-tail", "journal-corrupt-record"])
    assert report.ok, report.format()
    by_name = {o.name: o for o in report.outcomes}
    assert by_name["journal-torn-tail"].classification == DETECTED
    assert by_name["journal-corrupt-record"].classification == DETECTED
    assert report.counts()[SILENT] == 0


@needs_fork
def test_protocol_abuse_scenarios():
    report = run_service_campaign(
        scale="smoke", seed=1,
        only=["malformed-frame", "oversized-frame",
              "conn-reset-mid-frame"])
    assert report.ok, report.format()
    by_name = {o.name: o for o in report.outcomes}
    assert by_name["malformed-frame"].classification == DETECTED
    assert by_name["oversized-frame"].classification == DETECTED
    assert by_name["conn-reset-mid-frame"].classification == TOLERATED
    assert "(service)" in report.format()
