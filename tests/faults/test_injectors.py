"""Unit tests for the fault injectors (no simulations)."""

import pytest

from repro.faults import FaultPlan, FrpuPerturbation, RequestFault, corrupt_file


class FakeReq:
    def __init__(self, kind="load", is_write=False, on_done=lambda r: None):
        self.kind = kind
        self.is_write = is_write
        self.on_done = on_done


class FakeSim:
    def __init__(self):
        self.now = 0
        self.deferred = []

    def after_call(self, delay, fn, *args):
        self.deferred.append((delay, fn, args))


def test_request_fault_validates_arguments():
    with pytest.raises(ValueError):
        RequestFault("explode")
    with pytest.raises(ValueError):
        RequestFault("drop", side="tpu")
    with pytest.raises(ValueError):
        RequestFault("drop", nth=0)


def test_seed_offsets_firing_point_deterministically():
    assert RequestFault("drop", nth=10, seed=5).nth == \
        RequestFault("drop", nth=10, seed=5).nth
    assert RequestFault("drop", nth=10, seed=5).nth != \
        RequestFault("drop", nth=10, seed=6).nth


def test_drop_swallows_exactly_the_nth_read():
    sent = []
    fault = RequestFault("drop", nth=3)       # seed 0: fires on #3
    wrapped = fault.wrap(sent.append, FakeSim(), "cpu", log := [])
    reqs = [FakeReq() for _ in range(5)]
    for r in reqs:
        wrapped(r)
    assert len(sent) == 4 and reqs[2] not in sent
    assert len(log) == 1 and log[0]["action"] == "drop"


def test_writes_and_fire_and_forget_do_not_count():
    sent = []
    fault = RequestFault("drop", nth=1)
    wrapped = fault.wrap(sent.append, FakeSim(), "cpu", [])
    wb = FakeReq(is_write=True)
    silent = FakeReq(on_done=None)
    read = FakeReq()
    for r in (wb, silent, read):
        wrapped(r)
    assert sent == [wb, silent]               # the read was the 1st match


def test_delay_defers_through_the_simulator():
    sent, sim = [], FakeSim()
    fault = RequestFault("delay", nth=1, delay_ticks=123)
    wrapped = fault.wrap(sent.append, sim, "gpu", [])
    req = FakeReq()
    wrapped(req)
    assert not sent
    delay, fn, args = sim.deferred[0]
    assert delay == 123
    fn(*args)
    assert sent == [req]


def test_duplicate_sends_twice():
    sent = []
    wrapped = RequestFault("duplicate", nth=1).wrap(
        sent.append, FakeSim(), "cpu", [])
    req = FakeReq()
    wrapped(req)
    assert sent == [req, req]


def test_plan_filters_by_side():
    plan = FaultPlan(RequestFault("drop", side="gpu", nth=1))
    sent = []
    send = sent.append
    assert plan.wrap_send(send, FakeSim(), "cpu") is send  # wrong side
    assert plan.wrap_send(send, FakeSim(), "gpu") is not send


def test_frpu_perturbation_validates_and_describes():
    with pytest.raises(ValueError):
        FrpuPerturbation(factor=0.0)
    assert "FRPU" in FrpuPerturbation(0.5).describe()
    assert "drop" in FaultPlan(RequestFault("drop")).describe()


def test_corrupt_file_is_deterministic(tmp_path):
    a, b = tmp_path / "a.bin", tmp_path / "b.bin"
    a.write_bytes(bytes(range(256)))
    b.write_bytes(bytes(range(256)))
    assert corrupt_file(str(a), seed=3) == corrupt_file(str(b), seed=3)
    assert a.read_bytes() == b.read_bytes()
    assert a.read_bytes() != bytes(range(256))
