"""Unit tests for the bidirectional ring interconnect."""

from hypothesis import given, strategies as st

from repro.config import RingConfig
from repro.interconnect.ring import RingInterconnect


def test_stop_layout():
    r = RingInterconnect(RingConfig(), n_cpus=4)
    assert r.stops == ["cpu0", "cpu1", "cpu2", "cpu3", "gpu", "llc",
                       "mc0", "mc1"]


def test_shorter_direction_chosen():
    r = RingInterconnect(RingConfig(), n_cpus=4)
    # cpu0 -> mc1: clockwise 7 hops, counter-clockwise 1
    assert r.hops("cpu0", "mc1") == 1
    assert r.hops("cpu0", "llc") == 3
    assert r.hops("gpu", "llc") == 1
    assert r.hops("llc", "llc") == 0


def test_delay_is_hops_times_hop_ticks():
    r = RingInterconnect(RingConfig(hop_ticks=2), n_cpus=2)
    assert r.delay("cpu0", "llc") == 2 * r.hops("cpu0", "llc")


def test_traffic_stats():
    r = RingInterconnect(RingConfig(), n_cpus=2)
    r.delay("cpu0", "llc")
    r.delay("gpu", "llc")
    assert r.stats.get("messages") == 2
    assert r.mean_hops() > 0


@given(st.integers(1, 8))
def test_property_symmetric_distances(n_cpus):
    r = RingInterconnect(RingConfig(), n_cpus=n_cpus)
    for a in r.stops:
        for b in r.stops:
            assert r.hops(a, b) == r.hops(b, a)
            assert 0 <= r.hops(a, b) <= r.n // 2
