"""Unit tests for run specifications and their cache keys."""

from dataclasses import replace

from repro.config import default_config
from repro.exec import (RunSpec, mix_spec, standalone_cpu_spec,
                        standalone_gpu_spec)


def test_key_is_stable_and_discriminating():
    a = mix_spec("M7", "baseline", "smoke", 1)
    b = mix_spec("M7", "baseline", "smoke", 1)
    assert a.key("s") == b.key("s")
    assert a.key("s") != a.key("other-salt")
    assert a.key("s") != mix_spec("M7", "throttle", "smoke", 1).key("s")
    assert a.key("s") != mix_spec("M7", "baseline", "smoke", 2).key("s")
    assert a.key("s") != mix_spec("M7", "baseline", "test", 1).key("s")
    assert a.key("s") != mix_spec("M8", "baseline", "smoke", 1).key("s")


def test_explicit_cfg_changes_key():
    base = mix_spec("M7", "baseline", "smoke", 1)
    cfg = default_config("smoke", n_cpus=4)
    tweaked = RunSpec(mix="M7", policy="baseline", scale="smoke", seed=1,
                      cfg=replace(cfg, qos=replace(cfg.qos,
                                                   target_fps=55.0)))
    assert base.key("s") != tweaked.key("s")
    # an explicit cfg identical to the derived default keys identically
    same = RunSpec(mix="M7", policy="baseline", scale="smoke", seed=1,
                   cfg=cfg)
    assert base.key("s") == same.key("s")


def test_standalone_specs_resolve_shapes():
    c = standalone_cpu_spec(403, "smoke", 1)
    assert c.resolved_mix().cpu_apps == (403,)
    assert c.resolved_mix().gpu_app is None
    assert c.resolved_cfg().n_cpus == 1
    g = standalone_gpu_spec("NFS", "smoke", 1)
    assert g.resolved_mix().gpu_app == "NFS"
    assert g.resolved_cfg().n_cpus == 0
    assert c.key("s") != g.key("s")


def test_label_is_human_readable():
    assert mix_spec("M7", "throttle", "smoke", 3).label == \
        "M7/throttle@smoke#3"
