"""Failure-path tests for the hardened executor: crashed and hung
workers become reported outcomes, flaky workers are retried with
backoff, and an interrupt salvages completed results through the cache.
"""

import multiprocessing as mp
import signal

import pytest

from repro.exec import (BatchInterrupted, ResultCache, counters,
                        reset_counters, run_many)
from repro.exec.executor import _sigterm_to_interrupt
from repro.faults import CrashSpec, FailSpec, FlakySpec, HangSpec, SleepSpec

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=str(tmp_path), salt="hardening")


def test_parameter_validation(cache):
    with pytest.raises(ValueError):
        run_many([SleepSpec()], cache=cache, timeout=0)
    with pytest.raises(ValueError):
        run_many([SleepSpec()], cache=cache, retries=-1)
    with pytest.raises(ValueError):
        run_many([SleepSpec()], cache=cache, backoff=-0.1)


@needs_fork
def test_worker_killed_mid_run_is_reported_not_fatal(cache):
    outs = run_many([CrashSpec(), SleepSpec()], jobs=2, cache=cache,
                    timeout=60.0)
    crash, sleep = outs
    assert not crash.ok and "worker died" in crash.error
    assert crash.result is None and crash.source == "error"
    assert sleep.ok and sleep.result["token"] == 0


@needs_fork
def test_hung_worker_is_killed_at_the_timeout(cache):
    outs = run_many([HangSpec(seconds=300.0), SleepSpec()], jobs=2,
                    cache=cache, timeout=1.0)
    hang, sleep = outs
    assert not hang.ok and "timed out after 1s" in hang.error
    assert sleep.ok


@needs_fork
def test_flaky_worker_recovers_via_retry_with_backoff(tmp_path, cache):
    spec = FlakySpec(marker_dir=str(tmp_path), fail_times=1)
    out = run_many([spec], cache=cache, timeout=60.0, retries=2,
                   backoff=0.05)[0]
    assert out.ok and out.attempts == 2
    assert out.result["attempts"] == 2


@needs_fork
def test_retries_exhausted_reports_attempt_count(tmp_path, cache):
    spec = FlakySpec(marker_dir=str(tmp_path), fail_times=5)
    out = run_many([spec], cache=cache, timeout=60.0, retries=1,
                   backoff=0.05)[0]
    assert not out.ok
    assert "worker died (after 2 attempt(s))" in out.error


@needs_fork
def test_ordinary_exception_is_not_retried(cache):
    out = run_many([FailSpec()], cache=cache, timeout=60.0, retries=3)[0]
    assert not out.ok and out.attempts == 1
    assert "injected failure" in out.error


def test_interrupt_salvages_completed_results(cache):
    """A KeyboardInterrupt mid-batch raises BatchInterrupted with the
    finished slots intact; re-running re-executes only the remainder."""
    specs = [SleepSpec(seconds=0.0, token=t) for t in range(3)]

    def sabotage(out, i, total):
        raise KeyboardInterrupt

    with pytest.raises(BatchInterrupted) as exc:
        run_many(specs, jobs=1, cache=cache, progress=sabotage)
    outs = exc.value.outcomes
    assert len(outs) == 3 and exc.value.completed == 1
    assert outs[0].ok
    assert [o.error for o in outs[1:]] == ["interrupted", "interrupted"]
    # the salvaged result is already persisted: only 2 runs remain
    reset_counters()
    again = run_many(specs, jobs=1,
                     cache=ResultCache(root=cache.root, salt=cache.salt))
    assert all(o.ok for o in again)
    assert counters["executed"] == 2
    # and a third pass re-executes nothing at all
    reset_counters()
    final = run_many(specs, jobs=1,
                     cache=ResultCache(root=cache.root, salt=cache.salt))
    assert counters["executed"] == 0
    assert [o.source for o in final] == ["disk"] * 3


def test_sigterm_handler_restored_after_interrupt(cache):
    """The SIGTERM handler installed for the batch must be restored even
    when the batch exits via BatchInterrupted — a second batch in the
    same process then behaves identically to the first."""
    before = signal.getsignal(signal.SIGTERM)

    def sabotage(out, i, total):
        raise KeyboardInterrupt

    for attempt in range(2):               # second batch == first batch
        specs = [SleepSpec(seconds=0.0, token=10 * attempt + t)
                 for t in range(3)]
        with pytest.raises(BatchInterrupted) as exc:
            run_many(specs, jobs=1, cache=cache, progress=sabotage)
        assert exc.value.completed == 1, f"batch {attempt}"
        assert signal.getsignal(signal.SIGTERM) is before, \
            f"handler leaked after batch {attempt}"
    # and a clean (non-interrupted) batch also restores it
    run_many([SleepSpec(seconds=0.0, token=99)], jobs=1, cache=cache)
    assert signal.getsignal(signal.SIGTERM) is before


def test_foreign_sigterm_handler_is_left_alone(monkeypatch):
    """getsignal() returns None when a non-Python handler is installed;
    restoring None would raise TypeError from run_many's finally block.
    The installer must then leave the handler untouched."""
    before = signal.getsignal(signal.SIGTERM)
    monkeypatch.setattr(signal, "getsignal", lambda sig: None)
    restore = _sigterm_to_interrupt()
    monkeypatch.undo()
    # nothing was installed...
    assert signal.getsignal(signal.SIGTERM) is before
    # ...and the restore callable is a harmless no-op
    assert restore() is None
    assert signal.getsignal(signal.SIGTERM) is before
