"""Cache maintenance: LRU-by-atime pruning and persisted counters."""

import json
import os

import pytest

from repro.__main__ import main
from repro.exec import ResultCache
from repro.exec.cache import STATS_FILE
from repro.exec.specs import standalone_cpu_spec

SPEC = standalone_cpu_spec(403, "smoke")


@pytest.fixture
def store(tmp_path):
    cache = ResultCache(root=str(tmp_path), salt="ops")
    result = SPEC.run()
    return cache, result


def _fill(cache, result, n):
    """Persist n distinct entries; returns their paths oldest-atime
    first (entry i is the least recently used)."""
    paths = []
    for seed in range(1, n + 1):
        spec = standalone_cpu_spec(403, "smoke", seed)
        cache.put(spec, result)
        path = cache.path_for(cache.key_for(spec))
        os.utime(path, (1_000_000_000 + seed, 1_000_000_000 + seed))
        paths.append(path)
    return paths


def test_entries_reports_size_and_atime(store):
    cache, result = store
    paths = _fill(cache, result, 3)
    entries = cache.entries()
    assert sorted(p for p, _, _ in entries) == sorted(paths)
    assert all(size > 0 for _, size, _ in entries)
    by_path = {p: at for p, _, at in entries}
    assert by_path[paths[0]] < by_path[paths[1]] < by_path[paths[2]]


def test_prune_evicts_least_recently_used_first(store):
    cache, result = store
    paths = _fill(cache, result, 4)
    per_entry = cache.entries()[0][1]
    # cap leaves room for roughly two entries
    removed, freed = cache.prune(max_bytes=2 * per_entry + 1)
    assert removed == 2
    assert freed >= 2 * per_entry
    assert not os.path.exists(paths[0])        # oldest atime: evicted
    assert not os.path.exists(paths[1])
    assert os.path.exists(paths[2])            # recently used: survive
    assert os.path.exists(paths[3])
    assert cache.stats.pruned == 2


def test_prune_noop_when_under_cap(store):
    cache, result = store
    paths = _fill(cache, result, 2)
    assert cache.prune(max_bytes=10**9) == (0, 0)
    assert all(os.path.exists(p) for p in paths)


def test_prune_removes_debris_first(store, tmp_path):
    cache, result = store
    _fill(cache, result, 1)
    (tmp_path / "half-write.tmp").write_bytes(b"x" * 64)
    (tmp_path / "bad-entry.pkl.corrupt").write_bytes(b"y" * 64)
    removed, _ = cache.prune(max_bytes=10**9)
    assert removed == 2                        # debris, not results
    assert not (tmp_path / "half-write.tmp").exists()
    assert not (tmp_path / "bad-entry.pkl.corrupt").exists()
    assert cache.entries()                     # the real entry survived


def test_persist_stats_accumulates_across_processes(store, tmp_path):
    cache, result = store
    cache.put(SPEC, result)
    cache.get(SPEC)                            # memory hit
    totals = cache.persist_stats()
    assert totals["stores"] == 1
    assert totals["memory_hits"] == 1

    # a second "process" (fresh object, same store) folds its deltas in
    other = ResultCache(root=str(tmp_path), salt="ops")
    other.get(SPEC)                            # disk hit
    other.get(standalone_cpu_spec(429, "smoke"))   # miss
    totals = other.persist_stats()
    assert totals["disk_hits"] == 1
    assert totals["misses"] == 1
    assert totals["stores"] == 1               # first process's, kept

    # persisting twice must not double-count the same deltas
    assert other.persist_stats()["disk_hits"] == 1
    assert cache.persisted_stats() == totals


def test_persisted_stats_tolerates_missing_or_corrupt_file(store,
                                                           tmp_path):
    cache, _ = store
    assert cache.persisted_stats()["stores"] == 0
    (tmp_path / STATS_FILE).write_text("{not json")
    assert cache.persisted_stats()["stores"] == 0


def test_cli_cache_stats_and_prune(store, tmp_path, capsys):
    from repro.exec import set_shared_cache

    cache, result = store
    prev = set_shared_cache(cache)      # the CLI's process-wide cache
    try:
        _fill(cache, result, 3)
        cache.get(SPEC)
        cache.persist_stats()

        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "stores:" in out and "hit rate" in out

        per_entry = cache.entries()[0][1]
        cap_mb = (2 * per_entry + 1) / 1e6
        assert main(["cache", "prune", "--max-size", str(cap_mb)]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 file(s)" in out
        assert len(ResultCache(root=str(tmp_path),
                               salt="ops").entries()) == 2
    finally:
        set_shared_cache(prev)


def test_cli_cache_prune_requires_max_size(store, capsys):
    from repro.exec import set_shared_cache

    cache, _ = store
    prev = set_shared_cache(cache)
    try:
        assert main(["cache", "prune"]) == 2
    finally:
        set_shared_cache(prev)
