"""Unit tests for the persistent result cache (no simulations)."""

import os
import pickle

import pytest

from repro.exec import CacheIntegrityWarning, ResultCache, mix_spec
from repro.faults.injectors import corrupt_file
from repro.sim.metrics import RunResult


def fake_result(fps=50.0) -> RunResult:
    return RunResult(
        mix_name="M7", policy_name="baseline", scale_name="smoke",
        ticks=1000, cpu_apps=(410,), cpu_ipcs={0: 1.0}, gpu_app="DOOM3",
        fps=fps, frames_rendered=3, frame_cycles=[100, 100, 100],
        llc={"cpu_misses": 5}, dram={}, dram_gpu_read_bytes=0,
        dram_gpu_write_bytes=0, dram_cpu_read_bytes=0,
        dram_cpu_write_bytes=0, dram_row_hit_rate=0.5)


SPEC = mix_spec("M7", "baseline", "smoke", 1)


def test_roundtrip_and_sources(tmp_path):
    c = ResultCache(root=str(tmp_path), salt="s")
    assert c.get(SPEC) == (None, "miss")
    c.put(SPEC, fake_result())
    got, source = c.get(SPEC)
    assert source == "memory"
    assert got == fake_result()
    # a fresh cache over the same directory reads the disk layer
    c2 = ResultCache(root=str(tmp_path), salt="s")
    got2, source2 = c2.get(SPEC)
    assert source2 == "disk"
    assert got2 == fake_result()
    assert c.stats.misses == 1 and c.stats.memory_hits == 1
    assert c2.stats.disk_hits == 1


def test_returns_defensive_copies(tmp_path):
    c = ResultCache(root=str(tmp_path), salt="s")
    c.put(SPEC, fake_result())
    a, _ = c.get(SPEC)
    a.cpu_ipcs[0] = -99.0
    a.frame_cycles.append(1)
    b, _ = c.get(SPEC)
    assert b == fake_result()       # mutation did not reach the cache
    # the stored object is also insulated from the caller's original
    original = fake_result()
    c.put(mix_spec("M8", "baseline", "smoke", 1), original)
    original.llc["cpu_misses"] = 0
    got, _ = c.get(mix_spec("M8", "baseline", "smoke", 1))
    assert got.llc["cpu_misses"] == 5


def test_salt_invalidates(tmp_path):
    ResultCache(root=str(tmp_path), salt="a").put(SPEC, fake_result())
    stale = ResultCache(root=str(tmp_path), salt="b")
    assert stale.get(SPEC) == (None, "miss")


def test_corrupt_file_warns_quarantines_and_misses(tmp_path):
    c = ResultCache(root=str(tmp_path), salt="s")
    c.put(SPEC, fake_result())
    path = c.path_for(c.key_for(SPEC))
    with open(path, "wb") as fh:
        fh.write(b"not a pickle")
    fresh = ResultCache(root=str(tmp_path), salt="s")
    with pytest.warns(CacheIntegrityWarning, match="bad header"):
        assert fresh.get(SPEC) == (None, "miss")
    assert fresh.stats.corrupt == 1
    assert os.path.exists(path + ".corrupt")   # quarantined, not deleted
    assert not os.path.exists(path)
    # truncated files are quarantined misses too
    c.put(SPEC, fake_result())
    with open(path, "r+b") as fh:
        fh.truncate(10)
    fresh2 = ResultCache(root=str(tmp_path), salt="s")
    with pytest.warns(CacheIntegrityWarning):
        assert fresh2.get(SPEC) == (None, "miss")


def test_bitflip_fails_checksum_then_recomputes(tmp_path):
    """A bit-rotted payload trips the content checksum — it is never
    half-loaded — and a subsequent put()/get() cycle recovers."""
    c = ResultCache(root=str(tmp_path), salt="s")
    c.put(SPEC, fake_result())
    path = c.path_for(c.key_for(SPEC))
    offsets = corrupt_file(path, seed=7)
    assert offsets
    fresh = ResultCache(root=str(tmp_path), salt="s")
    # depending on where the flips land this reads as a mangled header
    # or a checksum mismatch — both must warn and quarantine
    with pytest.warns(CacheIntegrityWarning):
        assert fresh.get(SPEC) == (None, "miss")
    assert fresh.stats.corrupt == 1
    # recompute-and-store makes the entry readable again
    fresh.put(SPEC, fake_result())
    again = ResultCache(root=str(tmp_path), salt="s")
    got, source = again.get(SPEC)
    assert source == "disk" and got == fake_result()
    assert again.stats.corrupt == 0


def test_stale_pickle_with_valid_checksum_is_plain_miss(tmp_path):
    """Checksum-valid but unpicklable content (schema drift under a
    pinned salt) is a quiet miss, not corruption."""
    c = ResultCache(root=str(tmp_path), salt="s")
    c.put(SPEC, fake_result())
    path = c.path_for(c.key_for(SPEC))
    import hashlib
    from repro.exec.cache import _MAGIC
    payload = pickle.dumps(fake_result())[:10]   # truncated pickle...
    with open(path, "wb") as fh:                 # ...with a good digest
        fh.write(_MAGIC + hashlib.sha256(payload).digest() + payload)
    fresh = ResultCache(root=str(tmp_path), salt="s")
    assert fresh.get(SPEC) == (None, "miss")
    assert fresh.stats.corrupt == 0              # no quarantine, no warning


def test_clear_disk_and_usage(tmp_path):
    c = ResultCache(root=str(tmp_path), salt="s")
    c.put(SPEC, fake_result())
    c.put(mix_spec("M8", "baseline", "smoke", 1), fake_result())
    files, size = c.disk_usage()
    assert files == 2 and size > 0
    assert c.clear_disk() == 2
    assert c.disk_usage() == (0, 0)
    c.clear_memory()
    assert c.get(SPEC) == (None, "miss")


def test_disk_layer_can_be_disabled(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "0")
    c = ResultCache(root=str(tmp_path), salt="s")
    c.put(SPEC, fake_result())
    assert not os.listdir(tmp_path)          # nothing persisted
    got, source = c.get(SPEC)                # memory layer still works
    assert source == "memory" and got == fake_result()
