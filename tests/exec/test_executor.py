"""Integration tests for the batch executor: parallel-vs-serial
equivalence, persistent caching, failure surfacing."""

import multiprocessing as mp

import pytest

from repro.exec import (BatchError, ResultCache, RunSpec, counters,
                        mix_spec, reset_counters, run_cached, run_many,
                        standalone_cpu_spec)
from repro.exec import executor as executor_mod

SPECS = [mix_spec("W8", "baseline", "smoke", 1),
         standalone_cpu_spec(403, "smoke", 1)]

HAVE_FORK = "fork" in mp.get_all_start_methods()


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=str(tmp_path), salt="test-salt")


def test_serial_results_in_input_order(cache):
    outcomes = run_many(SPECS, jobs=1, cache=cache)
    assert [o.spec for o in outcomes] == SPECS
    assert all(o.ok and o.source == "run" for o in outcomes)
    assert outcomes[0].result.mix_name == "W8"
    assert outcomes[1].result.cpu_apps == (403,)
    assert all(o.elapsed > 0 for o in outcomes)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_parallel_matches_serial_bit_for_bit(tmp_path):
    serial = run_many(SPECS, jobs=1,
                      cache=ResultCache(root=str(tmp_path / "a"),
                                        salt="s"))
    par = run_many(SPECS, jobs=2,
                   cache=ResultCache(root=str(tmp_path / "b"), salt="s"))
    for s, p in zip(serial, par):
        assert p.ok, p.error
        assert s.result == p.result


def test_duplicate_specs_run_once(cache):
    reset_counters()
    outcomes = run_many([SPECS[0], SPECS[0]], jobs=1, cache=cache)
    assert counters["executed"] == 1
    assert outcomes[0].result == outcomes[1].result
    assert outcomes[0].result is not outcomes[1].result


def test_second_pass_served_from_disk_with_zero_executions(tmp_path):
    """Acceptance: a repeated batch re-executes nothing — every result
    comes back from the persistent layer, numerically identical."""
    first = run_many(SPECS, jobs=1,
                     cache=ResultCache(root=str(tmp_path), salt="s"))
    reset_counters()
    # a fresh cache object over the same directory: memory layer empty
    again = run_many(SPECS, jobs=1,
                     cache=ResultCache(root=str(tmp_path), salt="s"))
    assert counters["executed"] == 0
    assert [o.source for o in again] == ["disk", "disk"]
    for a, b in zip(first, again):
        assert a.result == b.result


def test_salt_change_invalidates_disk(tmp_path):
    run_many(SPECS[:1], jobs=1,
             cache=ResultCache(root=str(tmp_path), salt="s"))
    reset_counters()
    run_many(SPECS[:1], jobs=1,
             cache=ResultCache(root=str(tmp_path), salt="s2"))
    assert counters["executed"] == 1     # stale entry not served


def test_failure_is_surfaced_not_poisoning(cache):
    bad = RunSpec(mix="W8", policy="no-such-policy", scale="smoke")
    outcomes = run_many([SPECS[0], bad], jobs=1, cache=cache)
    assert outcomes[0].ok
    assert not outcomes[1].ok
    assert outcomes[1].result is None
    assert "no-such-policy" in outcomes[1].error
    with pytest.raises(BatchError) as exc:
        run_many([bad], jobs=1, cache=cache, strict=True)
    assert "no-such-policy" in str(exc.value)


def _suicidal_worker(conn, spec):    # module-level so it pickles
    import os
    os._exit(17)                     # simulates a segfaulting worker


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_worker_crash_falls_back_to_in_process_retry(cache, monkeypatch):
    """A worker process dying outright must not sink the batch."""
    monkeypatch.setattr(executor_mod, "_task_worker", _suicidal_worker)
    outcomes = run_many(SPECS, jobs=2, cache=cache)
    assert all(o.ok for o in outcomes), \
        [o.error for o in outcomes if not o.ok]


def test_run_cached_copies_and_counts(cache):
    reset_counters()
    a = run_cached(SPECS[0], cache=cache)
    assert counters["executed"] == 1
    b = run_cached(SPECS[0], cache=cache)
    assert counters["executed"] == 1     # served from cache
    assert a == b and a is not b
    a.cpu_ipcs[0] = -1.0                 # corrupting a copy is harmless
    assert run_cached(SPECS[0], cache=cache).cpu_ipcs[0] != -1.0


def test_progress_callback_sees_every_slot(cache):
    seen = []
    run_many(SPECS, jobs=1, cache=cache,
             progress=lambda out, i, total: seen.append((i, total,
                                                         out.source)))
    assert sorted(i for i, _t, _s in seen) == [0, 1]
    assert all(t == 2 for _i, t, _s in seen)
    seen2 = []
    run_many(SPECS, jobs=1, cache=cache,
             progress=lambda out, i, total: seen2.append(out.source))
    assert seen2 == ["memory", "memory"]
