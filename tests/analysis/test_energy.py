"""Tests for the event-energy model."""

import pytest

from repro.analysis.energy import EnergyParams, price_run
from repro.sim.metrics import RunResult


def result(**kw):
    base = dict(
        mix_name="t", policy_name="baseline", scale_name="smoke",
        ticks=1_000_000, cpu_apps=(403, 401), cpu_ipcs={0: 1.0, 1: 0.5},
        gpu_app="DOOM3", fps=50.0, frames_rendered=4,
        frame_cycles=[10_000] * 4,
        llc={"cpu_accesses": 10_000, "gpu_accesses": 30_000},
        dram={"cpu_reads": 5_000, "cpu_writes": 1_000,
              "gpu_reads": 12_000, "gpu_writes": 3_000},
        dram_gpu_read_bytes=0, dram_gpu_write_bytes=0,
        dram_cpu_read_bytes=0, dram_cpu_write_bytes=0,
        dram_row_hit_rate=0.5,
        gpu_stats={"internal_accesses": 100_000})
    base.update(kw)
    return RunResult(**base)


def test_total_is_sum_of_components():
    rep = price_run(result())
    parts = (rep.cpu_dynamic + rep.cpu_static + rep.gpu_dynamic +
             rep.gpu_static + rep.llc + rep.dram_dynamic +
             rep.dram_static)
    assert rep.total == pytest.approx(parts)
    assert rep.total > 0
    assert rep.run_seconds == pytest.approx(1_000_000 * 0.25e-9)


def test_activates_follow_row_hit_rate():
    open_rows = price_run(result(dram_row_hit_rate=1.0))
    closed = price_run(result(dram_row_hit_rate=0.0))
    assert closed.dram_dynamic > open_rows.dram_dynamic
    assert open_rows.breakdown["dram_activates"] == 0


def test_cpu_only_run_has_no_gpu_energy():
    rep = price_run(result(gpu_app=None, frame_cycles=[],
                           gpu_stats={}))
    assert rep.gpu_static == 0.0
    assert rep.gpu_dynamic == 0.0


def test_energy_per_frame():
    rep = price_run(result())
    assert rep.energy_per_frame(4) == pytest.approx(rep.total / 4)
    assert rep.energy_per_frame(0) == 0.0


def test_custom_params_scale_components():
    cheap = price_run(result(), params=EnergyParams(dram_rw_pj=0.0,
                                                    dram_activate_pj=0.0))
    full = price_run(result())
    assert cheap.dram_dynamic == 0.0
    assert full.dram_dynamic > 0


def test_memory_system_aggregate():
    rep = price_run(result())
    assert rep.memory_system == pytest.approx(
        rep.llc + rep.dram_dynamic + rep.dram_static)
