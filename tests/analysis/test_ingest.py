"""Hardened JSONL/CSV ingestion: torn tails are skipped and counted,
never fatal and never silent."""

import json
import warnings

import pytest

from repro.analysis.ingest import MalformedLineWarning, read_jsonl
from repro.analysis.latency import SpanReport, load_rows
from repro.analysis.timeline import Timeline


GOOD = [{"type": "run_meta", "mix": "M7"},
        {"type": "frame", "index": 0, "cycles": 100}]


def _write_with_torn_tail(path):
    with open(path, "w", encoding="utf-8") as fh:
        for rec in GOOD:
            fh.write(json.dumps(rec) + "\n")
        fh.write('{"type": "frame", "index": 1, "cyc')   # truncated write


def test_read_jsonl_skips_and_warns(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_with_torn_tail(path)
    with pytest.warns(MalformedLineWarning, match="skipped 1"):
        rows, skipped = read_jsonl(str(path))
    assert rows == GOOD and skipped == 1


def test_read_jsonl_skips_non_dict_lines(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text('{"a": 1}\n42\n"str"\n\n{"b": 2}\n', encoding="utf-8")
    with pytest.warns(MalformedLineWarning, match="skipped 2"):
        rows, skipped = read_jsonl(str(path))
    assert rows == [{"a": 1}, {"b": 2}] and skipped == 2


def test_clean_file_does_not_warn(tmp_path):
    path = tmp_path / "t.jsonl"
    path.write_text("\n".join(json.dumps(r) for r in GOOD) + "\n",
                    encoding="utf-8")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        rows, skipped = read_jsonl(str(path))
    assert rows == GOOD and skipped == 0


def test_timeline_load_survives_torn_tail(tmp_path):
    path = tmp_path / "t.jsonl"
    _write_with_torn_tail(path)
    with pytest.warns(MalformedLineWarning):
        tl = Timeline.load(str(path))
    assert tl.skipped_lines == 1
    assert tl.meta["mix"] == "M7"
    assert len(tl.by_type["frame"]) == 1


def test_timeline_csv_skips_uncastable_rows(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text("type,frame,cycles\nframe,0,100\nframe,1,oops\n",
                    encoding="utf-8")
    with pytest.warns(MalformedLineWarning, match="line 3"):
        tl = Timeline.load(str(path))
    assert tl.skipped_lines == 1
    assert tl.by_type["frame"] == [{"type": "frame", "frame": 0,
                                    "cycles": 100}]


def test_span_report_load_survives_torn_tail(tmp_path):
    path = tmp_path / "s.jsonl"
    rows = [{"t": "meta", "mix": "M7"},
            {"t": "span", "src": "cpu0",
             "stages": [["total", 10], ["dram_service", 4]]}]
    with open(path, "w", encoding="utf-8") as fh:
        for r in rows:
            fh.write(json.dumps(r) + "\n")
        fh.write('{"t": "span", "src": "cpu0", "stages": [["tot')
    with pytest.warns(MalformedLineWarning):
        rep = SpanReport.load(str(path))
    assert rep.skipped_lines == 1
    assert len(rep.spans) == 1 and rep.meta["mix"] == "M7"
    with pytest.warns(MalformedLineWarning):
        assert len(load_rows(str(path))) == 2
