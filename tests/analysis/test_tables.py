"""Unit tests for Tables I-III regeneration."""

from repro.analysis import tables
from repro.gpu.workloads import GAME_ORDER


def test_table1_structure():
    cfg = tables.table1("smoke")
    assert cfg["cpu"]["cores"] == 4
    assert cfg["cpu"]["clock_ghz"] == 4.0
    assert cfg["gpu"]["clock_ghz"] == 1.0
    assert cfg["llc"]["paper_bytes"] == 16 * 1024 * 1024
    assert cfg["llc"]["inclusive_for"] == "cpu"
    assert cfg["dram"]["channels"] == 2
    assert "tex_l2" in cfg["gpu"]["caches"]


def test_table2_rows(monkeypatch):
    # avoid 14 live runs in a unit test: stub the standalone runner
    from repro.sim import runner

    class R:
        fps = 33.3
    monkeypatch.setattr(runner, "standalone_gpu", lambda *a, **k: R())
    rows = tables.table2("smoke")
    assert [r["application"] for r in rows] == GAME_ORDER
    assert rows[0]["frames"] == "670-671"
    assert rows[6]["fps_paper"] == 81.0
    assert all(r["fps_measured"] == 33.3 for r in rows)


def test_table3_rows():
    rows = tables.table3()
    assert len(rows) == 14
    assert rows[0]["m_mix"].startswith("M1: 403,450,481,482")
    assert rows[0]["w_mix"].startswith("W1: 481")


def test_spec_profile_table():
    rows = tables.spec_profile_table()
    assert len(rows) == 13
    assert {r["id"] for r in rows} >= {401, 429, 462, 470}
    for r in rows:
        assert "hot" in r["streams"]
