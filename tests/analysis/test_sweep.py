"""Tests for the parameter-sweep utility (stubbed runner — no sims)."""

import pytest

from repro.analysis.sweep import (sweep, vary_dram, vary_frontend,
                                  vary_llc_policy, vary_qos)


def capture_runner(store):
    def run(cfg, mix, policy):
        store.append((cfg, mix, policy))
        return f"result-{len(store)}"
    return run


def test_vary_qos_builds_transforms():
    vs = vary_qos(target_fps=[30.0, 50.0], wg_step=[4])
    assert [label for label, _ in vs] == \
        ["target_fps=30.0", "target_fps=50.0", "wg_step=4"]
    from repro.config import default_config
    cfg = vs[0][1](default_config("smoke"))
    assert cfg.qos.target_fps == 30.0
    cfg2 = vs[2][1](default_config("smoke"))
    assert cfg2.qos.wg_step == 4


def test_vary_dram_and_llc_and_frontend():
    from repro.config import default_config
    base = default_config("smoke")
    (label, t), = vary_dram(mapping=["row"])
    assert t(base).dram.mapping == "row"
    (label, t), = vary_llc_policy(["lru"])
    assert t(base).llc.policy == "lru"
    labels = [l for l, _ in vary_frontend()]
    assert labels == ["gpu_frontend=procedural", "gpu_frontend=geometry"]


def test_sweep_runs_each_variation():
    calls = []
    rows = sweep("M7", policy="baseline", scale="smoke",
                 variations=vary_qos(target_fps=[30.0, 40.0]),
                 runner=capture_runner(calls))
    assert [r.label for r in rows] == ["target_fps=30.0",
                                       "target_fps=40.0"]
    assert len(calls) == 2
    assert calls[0][0].qos.target_fps == 30.0
    assert calls[1][0].qos.target_fps == 40.0
    assert calls[0][1].name == "M7"


def test_sweep_without_variations_runs_base_once():
    calls = []
    rows = sweep("W3", runner=capture_runner(calls))
    assert len(rows) == 1
    assert rows[0].label == "base"
    assert calls[0][0].n_cpus == 1


def test_variation_cache_keys_are_distinct():
    """Sweeps share one seed across every generated RunSpec; the specs
    must still hash to distinct ResultCache keys whenever the transform
    actually changes the config (only the cfg repr distinguishes them —
    mix/policy/scale/seed are identical)."""
    from repro.config import default_config
    from repro.exec import RunSpec
    from repro.mixes import mix as mix_by_name

    m = mix_by_name("M7")
    base = default_config(scale="smoke", n_cpus=m.n_cpus, seed=3)
    variations = (vary_qos(target_fps=[25.0, 35.0], wg_step=[4])
                  + vary_dram(mapping=["row", "bank-xor"])
                  + vary_llc_policy(["lru"])
                  + vary_frontend(["geometry"]))
    keys = {}
    for label, transform in variations:
        cfg = transform(base)
        spec = RunSpec(mix=m, policy="baseline", scale="smoke", seed=3,
                       cfg=cfg)
        keys[spec.key("salt")] = label
        # the single sweep seed reaches the transformed config intact
        assert cfg.seed == 3, label
    assert len(keys) == len(variations), "cache-key collision"
    # a transform that happens to produce the base config is the one
    # legitimate collision: identical cfg => identical result
    (_, ident), = vary_frontend(["procedural"])    # the default frontend
    assert RunSpec(mix=m, policy="baseline", scale="smoke", seed=3,
                   cfg=ident(base)).key("salt") == \
        RunSpec(mix=m, policy="baseline", scale="smoke", seed=3,
                cfg=base).key("salt")


def test_seed_is_honored_per_spec():
    """Same variation, different sweep seed: the seed lands both in the
    spec and in the generated config, and the cache keys differ."""
    from repro.config import default_config
    from repro.exec import RunSpec
    from repro.mixes import mix as mix_by_name

    m = mix_by_name("M7")
    (_, t), = vary_llc_policy(["lru"])
    keys = set()
    for seed in (1, 2):
        base = default_config(scale="smoke", n_cpus=m.n_cpus, seed=seed)
        cfg = t(base)
        assert cfg.seed == seed
        keys.add(RunSpec(mix=m, policy="baseline", scale="smoke",
                         seed=seed, cfg=cfg).key("salt"))
    assert len(keys) == 2


def test_sweep_live_smoke():
    """One tiny real variation run end to end."""
    rows = sweep("W8", policy="baseline", scale="smoke",
                 variations=vary_llc_policy(["lru"]))
    assert rows[0].result.fps > 0
