"""Tests for the ASCII report renderer."""

import pytest

from repro.analysis import report


def test_render_table1_contains_sections():
    out = report.render_table1("smoke")
    assert "Table I" in out
    assert "[llc]" in out
    assert "[dram]" in out


def test_render_table3():
    out = report.render_table3()
    assert "M1: 403,450,481,482" in out
    assert "UT3" in out


def test_render_fig_smoke(monkeypatch):
    # stub the experiment to keep this a unit test
    from repro.analysis import experiments

    def fake_fig1(scale="test", seed=1):
        return {"cpu": {"W1": 0.8}, "gpu": {"W1": 0.9},
                "gmean_cpu": 0.8, "gmean_gpu": 0.9}
    monkeypatch.setattr(experiments, "fig1", fake_fig1)
    out = report.render_fig("fig1", "smoke")
    assert "fig1 @ scale=smoke" in out
    assert "W1" in out
    assert "0.800" in out


def test_main_rejects_unknown_experiment(capsys):
    rc = report.main(["--experiment", "fig99", "--scale", "smoke"])
    assert rc == 2


def test_main_runs_table3(capsys):
    rc = report.main(["--experiment", "table3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table III" in out


def test_bar_rendering():
    assert report._bar(0.0) == ""
    assert len(report._bar(2.0, unit=1.0, width=10)) == 10
