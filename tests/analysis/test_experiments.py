"""Integration tests for the figure-regeneration entry points.

These run tiny subsets at smoke scale — the full series are exercised
by ``pytest benchmarks/``; here we verify the data plumbing, caching,
and metric wiring.
"""

import pytest

from repro.analysis import experiments
from repro.mixes import HIGH_FPS_MIXES, LOW_FPS_MIXES


@pytest.fixture(autouse=True, scope="module")
def _fresh_caches():
    experiments.clear_caches()
    yield
    experiments.clear_caches()


def test_hetero_is_memoised():
    from repro.exec import counters
    a = experiments.hetero("W8", "baseline", "smoke")
    n = counters["executed"]
    b = experiments.hetero("W8", "baseline", "smoke")
    assert counters["executed"] == n      # second call served from cache
    assert a == b
    assert a is not b                     # callers get private copies


def test_fig1_structure():
    d = experiments.fig1("smoke", mixes=["W8"])
    assert set(d["cpu"]) == {"W8"}
    assert 0 < d["cpu"]["W8"] < 1.6
    assert 0 < d["gpu"]["W8"] < 1.6
    assert d["gmean_cpu"] == d["cpu"]["W8"]


def test_fig2_structure():
    d = experiments.fig2("smoke", mixes=["W8"])
    assert d["games"]["W8"] == "HL2"
    assert d["reference_fps"] == 30.0
    assert d["standalone"]["W8"] > 0


def test_fig3_structure():
    d = experiments.fig3("smoke", mixes=["W8"])
    assert 0.3 < d["speedup"]["W8"] < 2.0


def test_fig8_structure():
    d = experiments.fig8("smoke", mixes=["M7"])
    assert "DOOM3" in d["mean_abs_error_pct"]
    assert d["average_abs_error_pct"] >= 0


def test_fig9_structure():
    name = HIGH_FPS_MIXES[0]
    d = experiments.fig9("smoke", mixes=[name])
    game = list(d["fps"]["baseline"])[0]
    assert d["fps"]["baseline"][game] > 0
    assert set(d["ws_norm"]) == {"throttle", "throtcpuprio"}
    assert d["target_fps"] == 40.0


def test_fig10_11_share_runs_with_fig9():
    from repro.exec import counters
    name = HIGH_FPS_MIXES[0]
    before = counters["executed"]
    experiments.fig10("smoke", mixes=[name])
    experiments.fig11("smoke", mixes=[name])
    assert counters["executed"] == before  # everything came from the cache


def test_fig13_14_low_fps_mixes():
    name = LOW_FPS_MIXES[0]
    d13 = experiments.fig13("smoke", mixes=[name],
                            policies=["baseline", "throtcpuprio"])
    game = list(d13["fps_norm"]["baseline"])[0]
    assert d13["fps_norm"]["baseline"][game] == pytest.approx(1.0)
    d14 = experiments.fig14("smoke", mixes=[name],
                            policies=["baseline", "throtcpuprio"])
    assert d14["gmean"]["baseline"] == pytest.approx(1.0)
    # proposal stays disabled below target: near-baseline combined perf
    assert abs(d14["gmean"]["throtcpuprio"] - 1.0) < 0.25
