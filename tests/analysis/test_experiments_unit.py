"""Pure-unit tests of the experiment metric plumbing (stubbed runners —
no simulation), complementing the integration tests."""

import pytest

from repro.analysis import experiments
from repro.sim.metrics import RunResult


def fake_result(mix="M7", policy="baseline", ipcs=None, fps=50.0,
                apps=(410, 433), frames=5, gpu_misses=1000,
                cpu_misses=2000, ticks=100_000):
    return RunResult(
        mix_name=mix, policy_name=policy, scale_name="smoke",
        ticks=ticks, cpu_apps=tuple(apps),
        cpu_ipcs=ipcs or {i: 1.0 for i in range(len(apps))},
        gpu_app="DOOM3", fps=fps, frames_rendered=frames,
        frame_cycles=[10_000] * frames,
        llc={"gpu_misses": gpu_misses, "cpu_misses": cpu_misses},
        dram={}, dram_gpu_read_bytes=64_000, dram_gpu_write_bytes=16_000,
        dram_cpu_read_bytes=0, dram_cpu_write_bytes=0,
        dram_row_hit_rate=0.5)


@pytest.fixture
def stubbed(monkeypatch):
    """Route experiments.hetero and the standalone runners to stubs."""
    runs = {}

    def hetero(mix, policy, scale="test", seed=1):
        return runs[(mix, policy)]
    monkeypatch.setattr(experiments, "hetero", hetero)
    from repro.sim import runner
    monkeypatch.setattr(runner, "alone_ipcs",
                        lambda apps, scale, seed=1: {a: 2.0 for a in apps})
    return runs


def test_ws_norm_math(stubbed):
    stubbed[("M7", "baseline")] = fake_result(
        ipcs={0: 1.0, 1: 1.0})                 # WS = 1.0
    stubbed[("M7", "x")] = fake_result(
        policy="x", ipcs={0: 1.2, 1: 1.2})     # WS = 1.2
    assert experiments._ws_norm("M7", "x", "test", 1) == \
        pytest.approx(1.2)


def test_fig10_normalises_gpu_misses_per_frame(stubbed):
    stubbed[("M7", "baseline")] = fake_result(frames=5, gpu_misses=1000)
    stubbed[("M7", "throttle")] = fake_result(
        policy="throttle", frames=4, gpu_misses=1120)
    stubbed[("M7", "throtcpuprio")] = fake_result(
        policy="throtcpuprio", frames=4, gpu_misses=1120)
    d = experiments.fig10("test", mixes=["M7"])
    # 1120/4 vs 1000/5 = 280/200 = 1.4
    assert d["gpu_miss_norm"]["throttle"]["DOOM3"] == pytest.approx(1.4)


def test_fig11_uses_gpu_active_time(stubbed):
    base = fake_result(frames=5, ticks=1)
    thr = fake_result(policy="throttle", frames=5, ticks=1)
    # same bytes; throttled frames twice as long -> half the bandwidth
    thr.frame_cycles = [20_000] * 5
    stubbed[("M7", "baseline")] = base
    stubbed[("M7", "throttle")] = thr
    stubbed[("M7", "throtcpuprio")] = thr
    d = experiments.fig11("test", mixes=["M7"])
    assert d["bandwidth"]["throttle"]["DOOM3"]["total"] == \
        pytest.approx(0.5)


def test_fig14_combines_fig13_axes(stubbed):
    base = fake_result(fps=10.0, ipcs={0: 1.0, 1: 1.0})
    half_fps = fake_result(policy="sms-0.9", fps=5.0,
                           ipcs={0: 1.0, 1: 1.0})
    stubbed[("M6", "baseline")] = base
    stubbed[("M6", "sms-0.9")] = half_fps
    d = experiments.fig14("test", mixes=["M6"],
                          policies=["baseline", "sms-0.9"])
    # CPU unchanged, GPU halved -> combined sqrt(1.0 * 0.5)
    assert d["combined"]["sms-0.9"]["M6"] == pytest.approx(0.5 ** 0.5)
    assert d["combined"]["baseline"]["M6"] == pytest.approx(1.0)
