"""Tests for multi-seed replication statistics."""

import pytest

from repro.analysis.stats import Replicated, replicate, summarize


def test_summarize_basic():
    r = summarize([1.0, 2.0, 3.0])
    assert r.mean == pytest.approx(2.0)
    assert r.std == pytest.approx(1.0)
    assert r.n == 3
    assert r.ci_low < 2.0 < r.ci_high
    # 95% CI with n=3: t=4.303, half = 4.303/sqrt(3)
    assert r.ci_halfwidth() == pytest.approx(4.303 / 3 ** 0.5, rel=0.01)


def test_single_value_degenerate():
    r = summarize([5.0])
    assert r.mean == 5.0
    assert r.ci_low == r.ci_high == 5.0


def test_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_replicate_calls_per_seed():
    seen = []

    def metric(seed):
        seen.append(seed)
        return float(seed * 2)
    r = replicate(metric, seeds=(1, 2, 3, 4))
    assert seen == [1, 2, 3, 4]
    assert r.mean == pytest.approx(5.0)


def test_str_rendering():
    s = str(summarize([1.0, 1.1, 0.9]))
    assert "95% CI" in s and "n=3" in s


def test_replicated_on_real_runs():
    """Three seeds of the same tiny run: CI brackets each value's
    neighbourhood and all values are positive."""
    from repro.sim import runner

    def metric(seed):
        runner.clear_caches()
        return runner.standalone_gpu("UT2004", "smoke", seed).fps
    r = replicate(metric, seeds=(1, 2))
    assert r.mean > 0
    assert r.ci_low <= r.mean <= r.ci_high
