"""Tests for the diagnostics probe."""

from repro.analysis.diagnostics import Probe
from repro.config import default_config
from repro.mixes import MIXES_W
from repro.policies import make_policy
from repro.sim.system import HeterogeneousSystem


def test_probe_samples_all_series():
    cfg = default_config(scale="smoke", n_cpus=1)
    s = HeterogeneousSystem(cfg, MIXES_W["W8"], make_policy("throttle"))
    probe = Probe(s, interval_ticks=2000)
    s.run()
    n = len(probe.series["ticks"])
    assert n > 3
    for k in Probe.SERIES:
        assert len(probe.series[k]) == n, k
    # occupancies are line counts within capacity
    cap = cfg.scale.llc_bytes // 64
    assert all(0 <= v <= cap for v in probe.series["gpu_occupancy"])
    # ticks strictly increasing
    t = probe.series["ticks"]
    assert all(a < b for a, b in zip(t, t[1:]))


def test_ascii_timeline_renders():
    cfg = default_config(scale="smoke", n_cpus=1)
    s = HeterogeneousSystem(cfg, MIXES_W["W8"])
    probe = Probe(s, interval_ticks=4000)
    s.run()
    art = probe.ascii_timeline("dram_queue", width=30, height=4)
    lines = art.splitlines()
    assert lines[0].startswith("dram_queue")
    assert len(lines) == 5
    assert all(len(l) <= 30 for l in lines[1:])


def test_summary_stats():
    cfg = default_config(scale="smoke", n_cpus=1)
    s = HeterogeneousSystem(cfg, MIXES_W["W8"])
    probe = Probe(s, interval_ticks=4000)
    s.run()
    summ = probe.summary()
    assert summ["gpu_frames_max"] >= 1
    assert summ["cpu_instructions_max"] > 0


def test_empty_series_renders_gracefully():
    cfg = default_config(scale="smoke", n_cpus=1)
    s = HeterogeneousSystem(cfg, MIXES_W["W8"])
    probe = Probe(s, interval_ticks=10**9)   # never samples
    s.run()
    assert "(no samples)" in probe.ascii_timeline("dram_queue")
