"""End-to-end daemon tests over a real Unix socket.

The acceptance properties from the serving contract:

* daemon-routed outcomes are bit-identical to direct ``run_many``;
* two clients submitting overlapping spec sets trigger exactly one
  execution per distinct RunSpec (cross-client coalescing);
* repeat submissions execute nothing — served from the shared store;
* drain refuses new work, releases waiters, and shuts down cleanly.

Everything runs the daemon on a background thread
(:func:`start_daemon_thread`) against smoke-scale specs.
"""

import dataclasses
import multiprocessing as mp
import threading

import pytest

from repro.exec import ResultCache, run_many, standalone_cpu_spec
from repro.exec.specs import mix_spec
from repro.service import (ServiceClient, ServiceError,
                           service_available, start_daemon_thread)

HAVE_FORK = "fork" in mp.get_all_start_methods()
pytestmark = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")

SPECS = [standalone_cpu_spec(403, "smoke"),
         standalone_cpu_spec(429, "smoke")]


@pytest.fixture
def daemon(tmp_path):
    sock = str(tmp_path / "svc.sock")
    cache = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    with start_daemon_thread(socket_path=sock, workers=2,
                             cache=cache) as handle:
        yield sock, handle


def test_ping_status_and_availability(daemon, tmp_path):
    sock, handle = daemon
    client = ServiceClient(sock)
    pong = client.ping()
    assert pong["ok"] and pong["version"] == 2
    assert service_available(sock)
    assert not service_available(str(tmp_path / "nothing.sock"))
    status = client.status()
    assert status["jobs"]["submitted"] == 0
    assert status["workers"] == 2
    # the fault-tolerance surface is reported
    assert {"shed", "expired", "recovered"} <= set(status["jobs"])
    assert status["max_queue"] == 256
    assert status["journal"]["enabled"]
    assert status["journal"]["sync"] == "batch"


def test_submit_is_bit_identical_to_run_many(daemon, tmp_path):
    sock, _ = daemon
    direct = run_many(SPECS, cache=ResultCache(
        root=str(tmp_path / "direct"), salt="svc-test"))
    served = ServiceClient(sock).submit(SPECS)
    assert [o.spec for o in served] == SPECS
    for d, s in zip(direct, served):
        assert s.ok, s.error
        assert s.source == "run"
        assert dataclasses.asdict(d.result) == \
            dataclasses.asdict(s.result)


def test_repeat_submission_executes_nothing(daemon):
    sock, handle = daemon
    client = ServiceClient(sock)
    first = client.submit(SPECS)
    executed = handle.daemon.jobs_executed
    assert executed == len(SPECS)
    again = client.submit(SPECS)
    assert handle.daemon.jobs_executed == executed
    assert all(o.source == "memory" for o in again)
    for a, b in zip(first, again):
        assert dataclasses.asdict(a.result) == \
            dataclasses.asdict(b.result)


def test_duplicate_specs_in_one_batch_coalesce(daemon):
    sock, handle = daemon
    outs = ServiceClient(sock).submit([SPECS[0], SPECS[0], SPECS[0]])
    assert handle.daemon.jobs_executed == 1
    assert len(outs) == 3
    base = dataclasses.asdict(outs[0].result)
    assert all(dataclasses.asdict(o.result) == base for o in outs)


def test_concurrent_clients_one_execution_per_distinct_spec(daemon):
    """Two clients, overlapping spec sets, submitted concurrently:
    exactly one execution per distinct spec, bit-identical results on
    both sides."""
    sock, handle = daemon
    shared = SPECS
    batch_a = shared + [mix_spec("W8", "baseline", "smoke")]
    batch_b = shared + [standalone_cpu_spec(470, "smoke")]
    results = {}

    def submit(name, specs):
        results[name] = ServiceClient(sock, client_id=name).submit(specs)

    threads = [threading.Thread(target=submit, args=("a", batch_a)),
               threading.Thread(target=submit, args=("b", batch_b))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    distinct = {s.key("svc-test") for s in batch_a + batch_b}
    assert handle.daemon.jobs_executed == len(distinct)
    assert all(o.ok for o in results["a"] + results["b"])
    for i in range(len(shared)):
        assert dataclasses.asdict(results["a"][i].result) == \
            dataclasses.asdict(results["b"][i].result)
    jobs = handle.daemon.status()["jobs"]
    assert jobs["coalesced"] + jobs["cache_hits"] >= len(shared)


def test_streaming_delivers_job_lifecycle(daemon):
    sock, _ = daemon
    events = []
    outs = ServiceClient(sock).submit([SPECS[0]],
                                      on_event=events.append)
    assert outs[0].ok
    kinds = [e["event"] for e in events]
    assert kinds == ["queued", "started", "done"]
    assert all(e["label"] == SPECS[0].label for e in events)


def test_wait_for_never_creates_work(daemon):
    sock, handle = daemon
    client = ServiceClient(sock)
    unknown = client.wait_for([SPECS[0]])
    assert handle.daemon.jobs_executed == 0       # no work created
    assert not unknown[0].ok
    assert "not cached" in unknown[0].error
    client.submit([SPECS[0]])
    hit = client.wait_for([SPECS[0]])
    assert hit[0].ok and hit[0].source in ("memory", "disk")


def test_failed_spec_is_isolated_not_poisoning(daemon):
    sock, _ = daemon
    from repro.exec import RunSpec
    bad = RunSpec(mix="W8", policy="no-such-policy", scale="smoke")
    outs = ServiceClient(sock).submit([SPECS[0], bad])
    assert outs[0].ok
    assert not outs[1].ok
    assert "no-such-policy" in outs[1].error


def test_malformed_request_gets_error_response(daemon):
    import socket as socketlib

    sock, _ = daemon
    s = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    s.connect(sock)
    try:
        s.sendall(b"this is not json\n")
        reply = s.makefile("rb").readline()
    finally:
        s.close()
    assert b'"ok":false' in reply.replace(b" ", b"")


def test_unknown_mix_refused_at_the_boundary(daemon):
    sock, handle = daemon
    import socket as socketlib

    from repro.service import protocol
    s = socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM)
    s.connect(sock)
    try:
        s.sendall(protocol.dump_line(
            {"op": "submit", "client": "x", "wait": True,
             "specs": [{"mix": "no-such-mix"}]}))
        reply = protocol.load_line(s.makefile("rb").readline())
    finally:
        s.close()
    assert not reply["ok"]
    assert "unknown mix" in reply["error"]
    assert handle.daemon.jobs_executed == 0


def test_drain_refuses_new_work_and_stops_cleanly(tmp_path):
    sock = str(tmp_path / "svc.sock")
    cache = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    handle = start_daemon_thread(socket_path=sock, workers=1,
                                 cache=cache)
    client = ServiceClient(sock)
    client.submit([SPECS[0]])
    handle.daemon._loop.call_soon_threadsafe(handle.daemon.begin_drain)
    # the daemon refuses new submissions while draining, then exits;
    # either answer (refusal or connection gone) is a correct refusal
    with pytest.raises(ServiceError):
        for _ in range(50):
            client.submit([SPECS[1]])
    handle.stop()
    assert not handle.thread.is_alive()
    # completed work was persisted to the shared store before exit
    fresh = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    result, source = fresh.get(SPECS[0])
    assert result is not None and source == "disk"


def test_drain_is_idempotent_one_summary_one_salvage(tmp_path):
    """Regression: repeated drain triggers (SIGTERM mashed, drain op +
    signal) must not double-emit ``drain_summary`` or re-salvage the
    queue."""
    import json

    from repro.metrics.oplog import configure as oplog_configure
    from repro.metrics.oplog import disable as oplog_disable

    log = tmp_path / "ops.jsonl"
    oplog_configure(path=str(log))
    try:
        sock = str(tmp_path / "svc.sock")
        cache = ResultCache(root=str(tmp_path / "store"),
                            salt="svc-test")
        handle = start_daemon_thread(socket_path=sock, workers=1,
                                     cache=cache)
        client = ServiceClient(sock)
        client.submit([SPECS[0]], wait=False)   # running or queued
        client.submit([SPECS[1]], wait=False)   # queued behind it
        loop = handle.daemon._loop
        for _ in range(3):
            loop.call_soon_threadsafe(handle.daemon.begin_drain)
        handle.stop()
        handle.stop()                           # stop is idempotent too
    finally:
        oplog_disable()
    events = [json.loads(ln)["event"]
              for ln in log.read_text().splitlines()]
    assert events.count("drain_summary") == 1
    # each salvaged job was interrupted exactly once
    assert events.count("interrupted") == \
        handle.daemon.jobs_interrupted <= 2


def test_stop_is_idempotent_and_socket_removed(tmp_path):
    import os

    sock = str(tmp_path / "svc.sock")
    handle = start_daemon_thread(
        socket_path=sock, workers=1,
        cache=ResultCache(root=str(tmp_path / "store"), salt="s"))
    assert os.path.exists(sock)
    handle.stop()
    handle.stop()
    assert not os.path.exists(sock)
    assert not service_available(sock)
