"""Wire-protocol round-trips: specs, outcomes, framing."""

import dataclasses

import pytest

from repro.config import default_config
from repro.exec.executor import RunOutcome
from repro.exec.specs import RunSpec, mix_spec, standalone_cpu_spec
from repro.mixes import Mix
from repro.service import protocol


def test_dump_load_line_roundtrip():
    obj = {"op": "submit", "specs": [], "n": 3}
    line = protocol.dump_line(obj)
    assert line.endswith(b"\n")
    assert protocol.load_line(line) == obj


def test_load_line_rejects_garbage():
    with pytest.raises(protocol.ProtocolError):
        protocol.load_line(b"not json\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.load_line(b"[1, 2]\n")    # must be an object
    with pytest.raises(protocol.ProtocolError):
        protocol.load_line(b"x" * (protocol.MAX_LINE_BYTES + 1))


def test_spec_roundtrip_named_mix():
    spec = mix_spec("M7", "throtcpuprio", "smoke", seed=3)
    back = protocol.spec_from_wire(protocol.spec_to_wire(spec))
    assert back == spec
    assert back.key("s") == spec.key("s")


def test_spec_roundtrip_custom_mix_and_cfg():
    mix = Mix("X2", "DOOM3", (403, 429))
    cfg = default_config(scale="smoke", n_cpus=2, seed=9)
    spec = RunSpec(mix=mix, policy="baseline", scale="smoke", seed=9,
                   cfg=cfg)
    wire = protocol.spec_to_wire(spec)
    back = protocol.spec_from_wire(wire)
    assert back.mix == mix
    assert back.cfg == cfg
    assert back.key("s") == spec.key("s")


def test_spec_from_wire_rejects_malformed():
    for bad in ({}, {"mix": 7}, {"mix": {"gpu_app": "DOOM3"}},
                {"mix": "no-such-mix"}, "not a dict"):
        with pytest.raises(protocol.ProtocolError):
            protocol.spec_from_wire(bad)


def test_outcome_roundtrip_is_bit_identical():
    spec = standalone_cpu_spec(403, "smoke")
    result = spec.run()
    out = RunOutcome(spec=spec, result=result, elapsed=0.25,
                     source="run", attempts=2)
    wire = protocol.outcome_to_wire(0, out)
    back = protocol.outcome_from_wire(wire, spec)
    assert dataclasses.asdict(back.result) == dataclasses.asdict(result)
    assert (back.ok, back.source, back.attempts) == (True, "run", 2)


def test_outcome_error_roundtrip():
    spec = mix_spec("W8", "baseline", "smoke")
    out = RunOutcome(spec=spec, result=None, error="worker died",
                     attempts=3)
    back = protocol.outcome_from_wire(protocol.outcome_to_wire(1, out),
                                      spec)
    assert not back.ok
    assert back.error == "worker died"
    assert back.result is None


def test_json_encoding_is_lossy_but_transportable():
    import json

    spec = standalone_cpu_spec(403, "smoke")
    wire = protocol.outcome_to_wire(0, RunOutcome(spec, spec.run()),
                                    encoding="json")
    json.dumps(wire)                       # fully JSON-serialisable
    decoded = protocol.decode_result(wire["result"])
    assert isinstance(decoded, dict)       # plain dict, not RunResult


def test_unknown_encoding_refused():
    with pytest.raises(protocol.ProtocolError):
        protocol.encode_result(object(), encoding="msgpack")
