"""Admission control: the ATU token idiom at the service level.

Pure arithmetic on injected clocks — these mirror the style of the
core ATU tests (burst allowance, gate wait, recompute quantisation).
"""

import pytest

from repro.service import AdmissionController, ClientGate


def test_no_throttle_admits_at_now():
    g = ClientGate(n_g=2)
    for now in (0.0, 1.5, 1.5, 9.0):
        assert g.next_admit_time(now, w_g=0.0) == now
    assert g.admitted == 4
    assert g.deferred == 0


def test_burst_then_gate():
    g = ClientGate(n_g=3)
    w = 0.5
    # first burst of n_g admits back-to-back at now
    assert [g.next_admit_time(0.0, w) for _ in range(3)] == [0.0] * 3
    # the burst is spent: the lane is closed for w_g seconds
    assert g.next_admit_time(0.0, w) == 0.5
    assert g.next_admit_time(0.0, w) == 0.5
    assert g.deferred == 2


def test_admit_times_monotonic_per_client():
    g = ClientGate(n_g=1)
    times = [g.next_admit_time(0.0, 0.25) for _ in range(6)]
    assert times == sorted(times)
    # n_g=1: every submission spends the burst -> strict w_g spacing
    assert times == [0.0, 0.25, 0.5, 0.75, 1.0, 1.25]


def test_gate_reopens_when_client_backs_off():
    g = ClientGate(n_g=1)
    g.next_admit_time(0.0, 1.0)
    # the client comes back after the lane reopened: no residual debt
    assert g.next_admit_time(5.0, 1.0) == 5.0


def test_recompute_tracks_backlog():
    adm = AdmissionController(w_g_step=0.1, w_g_max=0.4, target_depth=2)
    assert adm.observe(0) == 0.0
    assert adm.observe(2) == 0.0          # at target: keeping up
    assert adm.observe(3) == pytest.approx(0.1)
    assert adm.observe(7) == pytest.approx(0.4)   # capped at w_g_max
    assert adm.observe(1) == 0.0          # caught up: collapses to zero
    assert adm.recomputes == 5
    assert adm.throttled_recomputes == 2


def test_per_client_fairness():
    """A hammering client accumulates wait in its own lane; a fresh
    client's first n_g submissions admit immediately."""
    adm = AdmissionController(n_g=2, w_g_step=0.05, target_depth=0)
    adm.observe(depth=4)                  # overloaded: w_g = 0.2
    hammer = [adm.admit("hammer", now=0.0) for _ in range(6)]
    assert hammer[0] == 0.0 and hammer[-1] > 0.0
    assert adm.admit("fresh", now=0.0) == 0.0
    snap = adm.snapshot()
    assert snap["active"]
    assert snap["clients"]["hammer"]["deferred"] > 0
    assert snap["clients"]["fresh"]["deferred"] == 0


def test_validation():
    with pytest.raises(ValueError):
        ClientGate(n_g=0)
    with pytest.raises(ValueError):
        AdmissionController(w_g_step=0.0)
    with pytest.raises(ValueError):
        AdmissionController(target_depth=-1)
