"""The warm worker pool: reuse, fault recovery, run_many integration.

Pool mechanics are exercised with tiny picklable stand-in specs (the
pool is intentionally dumb — it runs anything with a ``run()``);
integration tests use real smoke-scale simulations.
"""

import dataclasses
import multiprocessing as mp
import os
import time

import pytest

from repro.exec import (ResultCache, WorkerPool, counters,
                        reset_counters, run_many, standalone_cpu_spec)

HAVE_FORK = "fork" in mp.get_all_start_methods()
pytestmark = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")


class Echo:
    """Instant job: returns its payload (and the worker's pid)."""

    def __init__(self, value):
        self.value = value

    def run(self):
        return (self.value, os.getpid())


class Boom:
    def run(self):
        raise ValueError("boom")


class Suicide:
    """Simulates a hard worker crash (OOM kill, segfault)."""

    def run(self):
        os._exit(13)


class Sleep:
    def __init__(self, seconds):
        self.seconds = seconds

    def run(self):
        time.sleep(self.seconds)
        return "woke"


def drain(pool, n, timeout=30.0):
    """Collect n events from the pool (order-independent)."""
    events, deadline = [], time.monotonic() + timeout
    while len(events) < n:
        assert time.monotonic() < deadline, "pool.wait starved"
        events.extend(pool.wait(timeout=1.0))
    return events


def test_jobs_complete_and_workers_persist():
    with WorkerPool(size=2) as pool:
        first_pids = set(pool.pids())
        assert len(first_pids) == 2
        for i in range(4):
            while pool.idle_count() == 0:
                drain(pool, 1)
            pool.submit(i, Echo(i))
        while pool.completed < 4:
            drain(pool, 1)
        assert set(pool.pids()) == first_pids   # no respawns
    assert pool.completed == 4
    assert pool.recycled == 0


def test_results_route_by_tag():
    with WorkerPool(size=2) as pool:
        pool.submit("a", Echo("A"))
        pool.submit("b", Echo("B"))
        events = drain(pool, 2)
        by_tag = {e.tag: e for e in events}
        assert by_tag["a"].ok and by_tag["a"].payload[0] == "A"
        assert by_tag["b"].ok and by_tag["b"].payload[0] == "B"
        # two different workers ran them
        assert by_tag["a"].payload[1] != by_tag["b"].payload[1]


def test_exception_travels_as_data():
    with WorkerPool(size=1) as pool:
        pool.submit("x", Boom())
        ev, = drain(pool, 1)
        assert ev.ok is False and not ev.died
        assert "ValueError: boom" in ev.payload
        # the worker survived the exception
        pool.submit("y", Echo(1))
        assert drain(pool, 1)[0].ok


def test_worker_death_is_reported_and_slot_respawned():
    with WorkerPool(size=2) as pool:
        victim_pids = set(pool.pids())
        pool.submit("dead", Suicide())
        pool.submit("ok", Echo(7))
        events = drain(pool, 2)
        by_tag = {e.tag: e for e in events}
        assert by_tag["dead"].died
        assert by_tag["ok"].ok
        assert pool.recycled == 1
        # capacity restored: both slots usable again
        assert len(pool.pids()) == 2
        assert set(pool.pids()) != victim_pids
        pool.submit("after", Echo(8))
        assert drain(pool, 1)[0].ok


def test_recycle_kills_only_the_wedged_worker():
    with WorkerPool(size=2) as pool:
        pool.submit("stuck", Sleep(60))
        pool.submit("fine", Echo(1))
        ev, = drain(pool, 1)
        assert ev.tag == "fine" and ev.ok
        pool.recycle("stuck")              # deadline enforcement
        assert pool.recycled == 1
        assert pool.idle_count() == 2      # slot back, no event fired
        pool.submit("again", Echo(2))
        assert drain(pool, 1)[0].ok


def test_abandon_busy_clears_everything():
    with WorkerPool(size=2) as pool:
        pool.submit("s1", Sleep(60))
        pool.submit("s2", Sleep(60))
        assert sorted(pool.abandon_busy()) == ["s1", "s2"]
        assert pool.idle_count() == 2
        # stale replies can never surface for the next batch
        pool.submit("clean", Echo(3))
        ev, = drain(pool, 1)
        assert ev.tag == "clean" and ev.ok


def test_submit_requires_idle_worker():
    with WorkerPool(size=1) as pool:
        pool.submit("a", Sleep(60))
        with pytest.raises(RuntimeError):
            pool.submit("b", Echo(1))
        pool.abandon_busy()


def test_closed_pool_refuses_work():
    pool = WorkerPool(size=1).start()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.submit("x", Echo(1))
    pool.close()                           # idempotent


def test_recycle_under_load_keeps_pool_size_constant():
    """Workers massacred while a queue of jobs flows through: every
    death is detected, every slot respawned, and the pool ends at its
    configured size with all survivors idle."""
    with WorkerPool(size=2) as pool:
        outcomes = {"died": 0, "ok": 0}
        submitted = 0
        jobs = [Suicide(), Echo(1), Suicide(), Echo(2), Echo(3),
                Suicide(), Echo(4)]
        while outcomes["died"] + outcomes["ok"] < len(jobs):
            while submitted < len(jobs) and pool.idle_count() > 0:
                pool.submit(submitted, jobs[submitted])
                submitted += 1
            for ev in drain(pool, 1):
                outcomes["died" if ev.died else "ok"] += 1
        assert outcomes == {"died": 3, "ok": 4}
        assert pool.recycled == 3
        assert len(pool.pids()) == 2       # capacity never shrank
        assert pool.idle_count() == 2
        pool.submit("after", Echo(9))      # and it still works
        assert drain(pool, 1)[0].ok


def test_run_many_with_pool_is_bit_identical(tmp_path):
    """The acceptance property: pooled execution returns the same
    RunResult dicts as the historical per-process path, and a repeat
    batch on a warm pool executes nothing."""
    specs = [standalone_cpu_spec(403, "smoke"),
             standalone_cpu_spec(429, "smoke")]
    serial = run_many(specs, cache=ResultCache(root=str(tmp_path / "a"),
                                               salt="s"))
    with WorkerPool(size=2) as pool:
        cache = ResultCache(root=str(tmp_path / "b"), salt="s")
        pooled = run_many(specs, pool=pool, cache=cache)
        for s, p in zip(serial, pooled):
            assert p.ok, p.error
            assert dataclasses.asdict(s.result) == \
                dataclasses.asdict(p.result)
        pids_before = set(pool.pids())
        reset_counters()
        again = run_many(specs, pool=pool, cache=cache)
        assert counters["executed"] == 0
        assert [o.source for o in again] == ["memory", "memory"]
        assert set(pool.pids()) == pids_before   # still warm, no churn


def test_run_many_pool_timeout_recycles_not_breaks(tmp_path):
    """A per-job deadline on the pooled path kills one worker, retries,
    and the batch still completes."""
    specs = [standalone_cpu_spec(403, "smoke")]
    with WorkerPool(size=1) as pool:
        outs = run_many(specs, pool=pool, timeout=120.0, retries=1,
                        cache=ResultCache(root=str(tmp_path), salt="s"))
        assert outs[0].ok
