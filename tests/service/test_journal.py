"""The crash-safe job journal: framing, replay, and daemon recovery.

Unit level: append/replay roundtrips, torn-tail truncation, checksum
quarantine, the sync-policy contract.  Integration level: a daemon
started over a journal left behind by an "unclean death" re-enqueues
orphans, serves already-completed keys from the store without
re-executing, and reports what it recovered in ``status()``.
"""

import dataclasses
import multiprocessing as mp
import os
import time

import pytest

from repro.exec import ResultCache, run_many, standalone_cpu_spec
from repro.service import (JobJournal, JournalIntegrityWarning,
                           start_daemon_thread)
from repro.service.journal import _MAGIC, SYNC_POLICIES
from repro.service import protocol

HAVE_FORK = "fork" in mp.get_all_start_methods()

SPEC = standalone_cpu_spec(403, "smoke")
OTHER = standalone_cpu_spec(429, "smoke")


def _journal(tmp_path, sync="always"):
    return JobJournal(str(tmp_path / "j.journal"), sync=sync)


# -- unit: append / replay ---------------------------------------------------

def test_append_replay_roundtrip(tmp_path):
    j = _journal(tmp_path)
    j.append("submitted", "k1", spec={"mix": "W8"}, client="c")
    j.append("started", "k1")
    j.append("done", "k1", ok=True)
    j.append("submitted", "k2", spec={"mix": "W9"})
    j.close()
    replay = j.replay()
    assert replay.records == 4
    assert replay.corrupt == 0 and not replay.torn
    assert replay.completed == 1
    assert replay.recovered == 1
    [orphan] = replay.orphans
    assert orphan["key"] == "k2" and orphan["spec"] == {"mix": "W9"}


def test_interrupted_is_terminal(tmp_path):
    j = _journal(tmp_path)
    j.append("submitted", "k", spec={})
    j.append("interrupted", "k")
    j.close()
    replay = j.replay()
    assert replay.interrupted == 1
    assert replay.recovered == 0


def test_missing_and_empty_journals_replay_clean(tmp_path):
    j = _journal(tmp_path)
    replay = j.replay()               # file never created
    assert replay.records == 0 and not replay.torn
    j.append("submitted", "k", spec={})
    j.reset()                         # truncated to empty
    replay = j.replay()
    assert replay.records == 0 and replay.recovered == 0


def test_torn_tail_truncated_and_appendable(tmp_path):
    j = _journal(tmp_path)
    j.append("submitted", "k1", spec={"mix": "W8"})
    j.close()
    good = os.path.getsize(j.path)
    with open(j.path, "ab") as fh:    # crash mid-append: partial frame
        fh.write(_MAGIC + (64).to_bytes(4, "big") + b"\x00" * 10)
    replay = j.replay()
    assert replay.torn
    assert replay.records == 1 and replay.recovered == 1
    assert os.path.getsize(j.path) == good == replay.valid_bytes
    # the next append lands on a clean frame boundary
    j.append("done", "k1", ok=True)
    j.close()
    again = j.replay()
    assert not again.torn and again.completed == 1


def test_checksum_corrupt_record_quarantined_with_warning(tmp_path):
    j = _journal(tmp_path)
    j.append("submitted", "k1", spec={"mix": "W8"})
    j.append("submitted", "k2", spec={"mix": "W9"})
    j.close()
    with open(j.path, "rb") as fh:
        blob = fh.read()
    flip = blob.index(b"W8")          # payload byte: digest now wrong
    with open(j.path, "wb") as fh:
        fh.write(blob[:flip] + b"XX" + blob[flip + 2:])
    with pytest.warns(JournalIntegrityWarning, match="checksum"):
        replay = j.replay()
    # one record lost, the next one survives intact
    assert replay.corrupt == 1 and replay.records == 1
    assert [o["key"] for o in replay.orphans] == ["k2"]


def test_started_without_submitted_is_unrecoverable(tmp_path):
    j = _journal(tmp_path)
    j.append("started", "kx")
    j.close()
    with pytest.warns(JournalIntegrityWarning, match="cannot recover"):
        replay = j.replay()
    assert replay.corrupt == 1 and replay.recovered == 0


def test_sync_policy_contract(tmp_path):
    with pytest.raises(ValueError, match="journal sync"):
        JobJournal(str(tmp_path / "x"), sync="sometimes")
    j = _journal(tmp_path, sync="always")
    j.append("submitted", "k", spec={})
    assert j.fsyncs == 1              # fsync per record
    j.close()
    batched = JobJournal(str(tmp_path / "b"), sync="batch",
                         batch_every=3)
    for _ in range(2):
        batched.append("started", "k")
    assert batched.fsyncs == 0
    batched.append("started", "k")
    assert batched.fsyncs == 1        # every Nth append
    batched.close()
    assert SYNC_POLICIES == ("always", "batch", "off")


def test_unknown_event_refused(tmp_path):
    with pytest.raises(ValueError, match="unknown journal event"):
        _journal(tmp_path).append("exploded", "k")


def test_close_is_idempotent(tmp_path):
    j = _journal(tmp_path)
    j.append("submitted", "k", spec={})
    j.close()
    j.close()


# -- integration: daemon startup replay --------------------------------------

pytestmark_daemon = pytest.mark.skipif(not HAVE_FORK,
                                       reason="needs fork start method")


def _seed_store(tmp_path):
    """A store dir + its journal path, as a dead daemon left them."""
    store = str(tmp_path / "store")
    cache = ResultCache(root=store, salt="svc-test")
    return store, cache, os.path.join(store, "service.journal")


def _settle(daemon, cond, timeout=120.0):
    """Poll until ``cond(daemon)`` holds and the backlog is empty."""
    deadline = time.time() + timeout
    while time.time() < deadline:
        if cond(daemon) and daemon.queue_depth() == 0:
            return
        time.sleep(0.05)
    raise TimeoutError("daemon did not settle")


@pytestmark_daemon
def test_daemon_replays_orphans_and_executes_them(tmp_path):
    store, cache, jpath = _seed_store(tmp_path)
    j = JobJournal(jpath, sync="always")
    key = cache.key_for(SPEC)
    j.append("submitted", key, spec=protocol.spec_to_wire(SPEC),
             client="ghost")
    j.append("started", key)          # died mid-run: still an orphan
    j.close()
    with start_daemon_thread(socket_path=str(tmp_path / "s.sock"),
                             workers=1, cache=cache,
                             journal_sync="always") as handle:
        _settle(handle.daemon, lambda d: d.jobs_executed >= 1)
        status = handle.daemon.status()
        assert status["jobs"]["recovered"] == 1
        assert status["journal"]["recovered"] == 1
        assert handle.daemon.jobs_executed == 1
    # the recovered result is bit-identical to a direct run
    direct = run_many([SPEC], cache=ResultCache(
        root=str(tmp_path / "direct"), salt="svc-test"))[0]
    result, source = ResultCache(root=store, salt="svc-test").get(SPEC)
    assert source == "disk"
    assert dataclasses.asdict(result) == dataclasses.asdict(direct.result)


@pytestmark_daemon
def test_daemon_serves_completed_orphans_from_store(tmp_path):
    """A key whose result already made it to the store is recovered
    without re-execution — the cache check fields it."""
    store, cache, jpath = _seed_store(tmp_path)
    run_many([SPEC], cache=cache)     # result persisted before "death"
    j = JobJournal(jpath, sync="always")
    key = cache.key_for(SPEC)
    j.append("submitted", key, spec=protocol.spec_to_wire(SPEC))
    j.close()
    with start_daemon_thread(socket_path=str(tmp_path / "s.sock"),
                             workers=1, cache=cache,
                             journal_sync="always") as handle:
        _settle(handle.daemon, lambda d: d.cache_hits >= 1,
                timeout=60)
        assert handle.daemon.jobs_recovered == 1
        assert handle.daemon.jobs_executed == 0      # no re-run
        assert handle.daemon.cache_hits == 1


@pytestmark_daemon
def test_daemon_quarantines_corrupt_journal_without_dying(tmp_path):
    store, cache, jpath = _seed_store(tmp_path)
    j = JobJournal(jpath, sync="always")
    j.append("submitted", cache.key_for(SPEC),
             spec=protocol.spec_to_wire(SPEC))
    j.append("submitted", cache.key_for(OTHER),
             spec=protocol.spec_to_wire(OTHER))
    j.close()
    with open(jpath, "rb") as fh:
        blob = fh.read()
    with open(jpath, "wb") as fh:
        fh.write(blob[:-4] + b"\x00\x00\x00\x00")
    with start_daemon_thread(socket_path=str(tmp_path / "s.sock"),
                             workers=1, cache=cache,
                             journal_sync="always") as handle:
        _settle(handle.daemon, lambda d: d.jobs_executed >= 1)
        status = handle.daemon.status()["journal"]
        assert status["corrupt"] == 1        # tail record quarantined
        assert status["recovered"] == 1      # intact orphan still runs
        assert handle.daemon.jobs_executed == 1


@pytestmark_daemon
def test_journal_disabled_runs_without_a_file(tmp_path):
    store, cache, jpath = _seed_store(tmp_path)
    with start_daemon_thread(socket_path=str(tmp_path / "s.sock"),
                             workers=1, cache=cache,
                             journal_sync="disabled") as handle:
        assert handle.daemon.journal is None
        assert handle.daemon.status()["journal"]["sync"] == "disabled"
    assert not os.path.exists(jpath)
