"""Client-side resilience: retry, failover, shed handling, fallback.

The fast tests fake the transport (``_request_once``) so retry and
failover logic is exercised without sockets or sleeps; the daemon
tests run a real daemon and prove the end-to-end contracts —
structured ``overloaded`` refusals under a bounded queue, per-request
deadlines, and ``remote_run_many``'s local fallback.
"""

import dataclasses
import multiprocessing as mp
import time

import pytest

from repro.exec import ResultCache, run_many, standalone_cpu_spec
from repro.service import (ServiceClient, ServiceError, parse_addresses,
                           remote_run_many, start_daemon_thread)
from repro.service.client import FALLBACK_ENV, SOCKET_ENV

HAVE_FORK = "fork" in mp.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")

SPEC = standalone_cpu_spec(403, "smoke")


# -- address parsing ---------------------------------------------------------

def test_parse_addresses_forms(monkeypatch):
    monkeypatch.delenv(SOCKET_ENV, raising=False)
    assert parse_addresses("a.sock") == ["a.sock"]
    assert parse_addresses("a.sock, b:9000 ,c.sock") == \
        ["a.sock", "b:9000", "c.sock"]
    assert parse_addresses(["x", "y"]) == ["x", "y"]
    assert parse_addresses(None) == [".repro_service.sock"]
    monkeypatch.setenv(SOCKET_ENV, "one.sock,two.sock")
    assert parse_addresses(None) == ["one.sock", "two.sock"]
    with pytest.raises(ValueError, match="no service address"):
        parse_addresses(" , ")


def test_client_validates_knobs():
    with pytest.raises(ValueError):
        ServiceClient("a.sock", retries=-1)
    with pytest.raises(ValueError):
        ServiceClient("a.sock", backoff=0)


# -- retry / failover over a faked transport ---------------------------------

def test_retries_transient_connection_failures(monkeypatch):
    client = ServiceClient("a.sock", retries=2, backoff=0.001)
    calls = []

    def fake(addr, req, on_line):
        calls.append(addr)
        if len(calls) < 3:
            raise ServiceError("connection refused")
        return {"ok": True}

    monkeypatch.setattr(client, "_request_once", fake)
    assert client.ping()["ok"]
    assert len(calls) == 3


def test_retries_exhausted_raises_last_error(monkeypatch):
    client = ServiceClient("a.sock", retries=1, backoff=0.001)

    def fake(addr, req, on_line):
        raise ServiceError("still dead")

    monkeypatch.setattr(client, "_request_once", fake)
    with pytest.raises(ServiceError, match="still dead"):
        client.ping()


def test_failover_walks_the_list_in_order(monkeypatch):
    client = ServiceClient("a.sock,b.sock,c.sock", retries=0)
    calls = []

    def fake(addr, req, on_line):
        calls.append(addr)
        if addr != "c.sock":
            raise ServiceError(f"no daemon at {addr}")
        return {"ok": True}

    monkeypatch.setattr(client, "_request_once", fake)
    assert client.ping()["ok"]
    assert calls == ["a.sock", "b.sock", "c.sock"]
    # sticky: the next request starts at the address that answered
    calls.clear()
    assert client.address == "c.sock"
    client.ping()
    assert calls == ["c.sock"]


def test_draining_daemon_is_skipped_for_the_next_address(monkeypatch):
    client = ServiceClient("a.sock,b.sock", retries=0)

    def fake(addr, req, on_line):
        if addr == "a.sock":
            return {"ok": False, "code": "draining",
                    "error": "draining: no new work"}
        return {"ok": True, "served_by": addr}

    monkeypatch.setattr(client, "_request_once", fake)
    assert client.ping()["served_by"] == "b.sock"
    assert client.address == "b.sock"


def test_overloaded_retry_honours_the_daemons_hint(monkeypatch):
    # jittered backoff would be >= 2.5s here; the daemon's 0.01s hint
    # must win, proving retry-after is honoured
    client = ServiceClient("a.sock", retries=1, backoff=5.0,
                           backoff_max=10.0)
    replies = [{"ok": False, "code": "overloaded", "retry_after": 0.01,
                "error": "queue full"},
               {"ok": True}]
    sleeps = []
    monkeypatch.setattr(client, "_request_once",
                        lambda *a: replies.pop(0))
    monkeypatch.setattr("repro.service.client.time.sleep",
                        sleeps.append)
    assert client.ping()["ok"]
    assert sleeps == [0.01]


def test_overloaded_without_retries_is_an_error(monkeypatch):
    client = ServiceClient("a.sock", retries=0)
    monkeypatch.setattr(
        client, "_request_once",
        lambda *a: {"ok": False, "code": "overloaded",
                    "error": "queue full", "retry_after": 0.01})
    with pytest.raises(ServiceError, match="queue full"):
        client.ping()


def test_shutdown_never_retries_or_fails_over(monkeypatch):
    client = ServiceClient("a.sock,b.sock", retries=3, backoff=0.001)
    calls = []

    def fake(addr, req, on_line):
        calls.append(addr)
        raise ServiceError("gone")

    monkeypatch.setattr(client, "_request_once", fake)
    with pytest.raises(ServiceError):
        client.shutdown()
    assert calls == ["a.sock"]        # exactly one attempt, one address


# -- remote_run_many fallback ------------------------------------------------

def test_remote_falls_back_to_local_by_default(tmp_path, monkeypatch,
                                               capsys):
    monkeypatch.delenv(FALLBACK_ENV, raising=False)
    dead = str(tmp_path / "nothing.sock")
    outs = remote_run_many([SPEC], address=dead)
    assert outs[0].ok and outs[0].result is not None
    assert "falling back to local execution" in capsys.readouterr().err
    direct = run_many([SPEC])[0]
    assert dataclasses.asdict(outs[0].result) == \
        dataclasses.asdict(direct.result)


def test_remote_fallback_error_refuses(tmp_path, monkeypatch):
    dead = str(tmp_path / "nothing.sock")
    with pytest.raises(ServiceError):
        remote_run_many([SPEC], address=dead, fallback="error")
    monkeypatch.setenv(FALLBACK_ENV, "error")
    with pytest.raises(ServiceError):
        remote_run_many([SPEC], address=dead)
    with pytest.raises(ValueError, match="fallback"):
        remote_run_many([SPEC], address=dead, fallback="maybe")


# -- real-daemon contracts: shed, deadline, failover -------------------------

@needs_fork
def test_failover_to_a_live_daemon(tmp_path):
    sock = str(tmp_path / "svc.sock")
    cache = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    with start_daemon_thread(socket_path=sock, workers=1, cache=cache):
        dead = str(tmp_path / "dead.sock")
        client = ServiceClient(f"{dead},{sock}", retries=0)
        assert client.ping()["ok"]
        assert client.address == sock


@needs_fork
def test_bounded_queue_sheds_with_retry_after(tmp_path):
    sock = str(tmp_path / "svc.sock")
    cache = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    with start_daemon_thread(socket_path=sock, workers=1, cache=cache,
                             max_queue=1) as handle:
        filler = standalone_cpu_spec(429, "smoke", seed=7)
        ServiceClient(sock).submit([filler], wait=False)
        refused = standalone_cpu_spec(433, "smoke", seed=7)
        with pytest.raises(ServiceError, match="overloaded"):
            ServiceClient(sock, retries=0).submit([refused])
        status = handle.daemon.status()
        assert status["jobs"]["shed"] >= 1
        assert status["max_queue"] == 1
        # the shed was a refusal, not a loss: resubmitting later works
        deadline = time.time() + 120
        while handle.daemon.queue_depth() and time.time() < deadline:
            time.sleep(0.05)
        outs = ServiceClient(sock).submit([refused])
        assert outs[0].ok


@needs_fork
def test_deadline_expires_queued_jobs_unstarted(tmp_path):
    sock = str(tmp_path / "svc.sock")
    cache = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    with start_daemon_thread(socket_path=sock, workers=1,
                             cache=cache) as handle:
        filler = standalone_cpu_spec(429, "smoke", seed=9)
        ServiceClient(sock).submit([filler], wait=False)
        doomed = standalone_cpu_spec(433, "smoke", seed=9)
        outs = ServiceClient(sock).submit([doomed], deadline=0.05)
        assert not outs[0].ok
        assert "deadline" in outs[0].error
        assert handle.daemon.status()["jobs"]["expired"] == 1
        # the filler was never affected
        got = ServiceClient(sock).wait_for([filler])
        assert got[0].ok
