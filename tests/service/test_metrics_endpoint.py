"""The daemon's observability surface, end to end over a real socket:
``GET /metrics`` (Prometheus text), ``GET /healthz`` (JSON), coalescing
accounting, and trace-ID correlation through the oplog."""

import dataclasses
import io
import json
import multiprocessing as mp
import threading

import pytest

from repro.exec import ResultCache, standalone_cpu_spec
from repro.metrics import MetricsRegistry, set_registry
from repro.metrics.oplog import configure as configure_oplog
from repro.metrics.oplog import disable as disable_oplog
from repro.metrics.top import (fetch, hist_quantile, parse_prometheus,
                               render_frame, sample_value)
from repro.service import ServiceClient, start_daemon_thread

HAVE_FORK = "fork" in mp.get_all_start_methods()
pytestmark = pytest.mark.skipif(not HAVE_FORK,
                                reason="needs fork start method")

SPEC = standalone_cpu_spec(403, "smoke")


@pytest.fixture
def fresh_metrics(tmp_path):
    """Per-test global registry and a file-backed oplog.

    The daemon records into the process-wide registry; isolating it per
    test keeps counter arithmetic exact."""
    reg = MetricsRegistry()
    old = set_registry(reg)
    oplog_path = str(tmp_path / "ops.jsonl")
    configure_oplog(path=oplog_path, level="debug")
    yield reg, oplog_path
    disable_oplog()
    set_registry(old)


@pytest.fixture
def daemon(tmp_path, fresh_metrics):
    sock = str(tmp_path / "svc.sock")
    cache = ResultCache(root=str(tmp_path / "store"), salt="svc-test")
    with start_daemon_thread(socket_path=sock, workers=2,
                             cache=cache) as handle:
        yield sock, handle


def _scrape(sock):
    status, body = fetch(sock, "/metrics")
    assert status == 200
    return parse_prometheus(body.decode("utf-8"))


def test_healthz_fields(daemon):
    sock, _ = daemon
    status, body = fetch(sock, "/healthz")
    assert status == 200
    health = json.loads(body.decode("utf-8"))
    assert health["ok"] is True
    assert health["draining"] is False
    assert health["pool"]["size"] == 2
    assert health["pool"]["alive"] == 2
    assert health["queue_depth"] == 0
    assert health["uptime"] >= 0
    assert isinstance(health["pid"], int)


def test_metrics_counter_arithmetic(daemon, fresh_metrics):
    sock, _ = daemon
    client = ServiceClient(sock, client_id="arith")
    out = client.submit([SPEC])
    assert out[0].ok

    fam = _scrape(sock)
    assert sample_value(fam, "repro_submissions_total") == 1
    assert sample_value(fam, "repro_jobs_queued_total") == 1
    assert sample_value(fam, "repro_jobs_started_total") == 1
    assert sample_value(fam, "repro_jobs_done_total", ok="true") == 1
    # worker-side instruments arrive via pipe-shipped deltas
    assert sample_value(fam, "repro_worker_jobs_total") == 1
    assert hist_quantile(fam, "repro_worker_run_ns", 0.5) is not None
    # re-submission: served from the shared store, never re-executed
    client.submit([SPEC])
    fam = _scrape(sock)
    started = sample_value(fam, "repro_jobs_started_total")
    served = sample_value(fam, "repro_jobs_cache_served_total")
    done = sample_value(fam, "repro_jobs_done_total")
    assert started == 1
    assert started + served == done
    # both protocol submits passed through the dispatch counter, and
    # the daemon's request-latency histogram saw the socket traffic
    assert sample_value(fam, "repro_requests_total", op="submit") == 2
    assert hist_quantile(fam, "repro_request_ns", 0.5,
                         transport="socket") is not None
    # and a frame renders from the live daemon's own data
    _, health_body = fetch(sock, "/healthz")
    frame = render_frame(fam, json.loads(health_body.decode("utf-8")))
    assert "repro service" in frame and "[ok]" in frame


def test_concurrent_identical_submissions_coalesce(daemon,
                                                   fresh_metrics):
    """N clients racing the same spec: one execution, N-1 coalesce
    hits in /metrics, and every waiter's trace ID resolves to the
    winning execution in the oplog."""
    sock, handle = daemon
    _, oplog_path = fresh_metrics
    n = 4
    outs, traces, errors = {}, {}, []
    barrier = threading.Barrier(n)

    def submit(i):
        client = ServiceClient(sock, client_id=f"racer-{i}")
        try:
            barrier.wait(timeout=30)
            outs[i] = client.submit([SPEC])
            traces[i] = client.last_traces[0]
        except Exception as exc:       # pragma: no cover - diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=submit, args=(i,))
               for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    assert handle.daemon.jobs_executed == 1
    results = [dataclasses.asdict(outs[i][0].result) for i in range(n)]
    assert all(r == results[0] for r in results)

    fam = _scrape(sock)
    assert sample_value(fam, "repro_jobs_started_total") == 1
    assert sample_value(fam, "repro_jobs_coalesced_total") == n - 1

    # trace correlation: every waiter's coalesced record names the
    # winner, and the winner's trace runs submit -> ... -> done
    disable_oplog()                    # flush + close the sink
    with open(oplog_path, encoding="utf-8") as fh:
        records = [json.loads(line) for line in fh]
    coalesced = [r for r in records if r["event"] == "coalesced"]
    assert len(coalesced) == n - 1
    winners = {r["exec_trace_id"] for r in coalesced}
    assert len(winners) == 1
    winner = winners.pop()
    assert winner in traces.values()
    assert {r["trace_id"] for r in coalesced} == \
        set(traces.values()) - {winner}
    winner_events = [r["event"] for r in records
                     if r.get("trace_id") == winner]
    for ev in ("submit", "queued", "started", "run_start", "run_done",
               "done"):
        assert ev in winner_events, (ev, winner_events)


def test_top_once_against_live_daemon(daemon, capsys):
    sock, _ = daemon
    from repro.metrics.top import run_top
    out = io.StringIO()
    assert run_top(address=sock, once=True, out=out) == 0
    text = out.getvalue()
    assert "repro service" in text
    assert "pool   2/2 alive" in text
