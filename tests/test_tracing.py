"""Tests for LLC-trace capture and replay."""

import numpy as np
import pytest

from repro.config import LlcConfig, default_config
from repro.mem.llc import SharedLLC
from repro.mixes import MIXES_W
from repro.sim.engine import Simulator
from repro.sim.system import HeterogeneousSystem
from repro.tracing import (LlcTrace, TraceRecorder, TraceReplayer,
                           KIND_CODES, SOURCE_CODES)


@pytest.fixture(scope="module")
def recorded():
    cfg = default_config(scale="smoke", n_cpus=1)
    system = HeterogeneousSystem(cfg, MIXES_W["W8"])
    rec = TraceRecorder.attach(system)
    system.run()
    return rec.trace(), system


def test_recording_captures_both_sides(recorded):
    trace, system = recorded
    assert len(trace) > 100
    s = trace.summary()
    assert s["from_gpu"] > 0
    assert s["from_cpu0"] > 0
    assert 0.0 < s["write_frac"] < 1.0
    assert s["span_ticks"] > 0


def test_times_monotonic_and_addrs_aligned(recorded):
    trace, _ = recorded
    assert np.all(np.diff(trace.times) >= 0)
    assert np.all(trace.addrs % 64 == 0)


def test_filter_source(recorded):
    trace, _ = recorded
    gpu = trace.filter_source("gpu")
    assert len(gpu) == trace.summary()["from_gpu"]
    assert np.all(gpu.sources == SOURCE_CODES["gpu"])


def test_save_load_roundtrip(tmp_path, recorded):
    trace, _ = recorded
    p = tmp_path / "t.npz"
    trace.save(str(p))
    back = LlcTrace.load(str(p))
    assert len(back) == len(trace)
    assert np.array_equal(back.addrs, trace.addrs)
    assert np.array_equal(back.kinds, trace.kinds)


def test_replay_reissues_all_requests(recorded):
    trace, _ = recorded
    gpu = trace.filter_source("gpu")
    sim = Simulator()
    served = []

    class Dram:
        def send(self, req):
            served.append(req.addr)
            if req.on_done:
                sim.after(30, req.complete)
    llc = SharedLLC(sim, LlcConfig(size_bytes=512 * 1024),
                    dram_send=Dram().send)
    rep = TraceReplayer(sim, gpu, llc.access, time_scale=0.5)
    rep.start()
    sim.run()
    assert rep.issued == len(gpu)
    reads = int((~gpu.writes).sum())
    assert rep.completed == reads
    assert llc.stats.get("gpu_accesses") == len(gpu)


def test_codes_derive_from_request_constants():
    """The on-disk codecs track the request-layer namespaces.

    Adding a source or kind to repro.mem.request must automatically
    give it a stable code — stale literal tables were a silent
    mis-decode bug.
    """
    from repro.mem.request import (CPU_KINDS, CPU_SOURCES, GPU_KINDS,
                                   GPU_SOURCE)
    assert set(SOURCE_CODES) == set(CPU_SOURCES) | {GPU_SOURCE}
    assert set(KIND_CODES) == set(CPU_KINDS) | set(GPU_KINDS)
    # codes are dense, unique, and fit the uint8 arrays
    for table in (SOURCE_CODES, KIND_CODES):
        codes = sorted(table.values())
        assert codes == list(range(len(table)))
        assert codes[-1] < 255          # 255 is the unknown sentinel
    # declaration order is the code order (stable across releases as
    # long as new entries append)
    assert [SOURCE_CODES[s] for s in CPU_SOURCES] == list(range(16))
    assert SOURCE_CODES[GPU_SOURCE] == 16
    assert [KIND_CODES[k] for k in CPU_KINDS + GPU_KINDS] == \
        list(range(len(CPU_KINDS) + len(GPU_KINDS)))


def test_every_issued_kind_has_a_code(recorded):
    trace, _ = recorded
    assert not np.any(trace.sources == 255)
    assert not np.any(trace.kinds == 255)


def test_replay_time_scale_compresses():
    sim = Simulator()
    t = LlcTrace(np.array([0, 1000], dtype=np.int64),
                 np.array([0, 64], dtype=np.int64),
                 np.array([True, True]),
                 np.array([16, 16], dtype=np.uint8),
                 np.array([KIND_CODES["color"]] * 2, dtype=np.uint8))
    seen = []
    rep = TraceReplayer(sim, t, lambda r: seen.append(sim.now),
                        time_scale=0.25)
    rep.start()
    sim.run()
    assert seen == [0, 250]
