"""Unit tests for the MemRequest transaction type."""

from repro.mem.request import CPU_SOURCES, GPU_KINDS, GPU_SOURCE, \
    MemRequest


def test_source_classification():
    assert MemRequest(0, False, "gpu").is_gpu
    assert not MemRequest(0, False, "cpu3").is_gpu
    assert GPU_SOURCE == "gpu"
    assert "cpu0" in CPU_SOURCES


def test_complete_invokes_callback_once_per_call():
    hits = []
    r = MemRequest(0x40, False, "cpu0", on_done=lambda q: hits.append(q))
    r.complete()
    assert hits == [r]


def test_complete_without_callback_is_noop():
    MemRequest(0, True, "gpu", "color").complete()   # must not raise


def test_repr_readable():
    r = MemRequest(0x1000, True, "gpu", "depth")
    assert "W" in repr(r) and "gpu" in repr(r) and "depth" in repr(r)


def test_gpu_kinds_enumeration():
    assert {"texture", "depth", "color", "vertex"} <= set(GPU_KINDS)


def test_bypass_flag_default_false():
    assert not MemRequest(0, False, "gpu").bypass
