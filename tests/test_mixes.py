"""Unit tests for the Table III workload mixes."""

import pytest

from repro.gpu.workloads import HIGH_FPS_GAMES
from repro.mixes import (HIGH_FPS_MIXES, LOW_FPS_MIXES, MIXES_M, MIXES_W,
                         Mix, mix)


def test_fourteen_of_each():
    assert len(MIXES_M) == 14
    assert len(MIXES_W) == 14


def test_m_mixes_have_four_cpu_apps_and_one_gpu_app():
    for m in MIXES_M.values():
        assert m.n_cpus == 4
        assert m.gpu_app is not None
        assert len(set(m.cpu_apps)) == 4    # distinct apps per mix


def test_w_mixes_have_one_cpu_app():
    for m in MIXES_W.values():
        assert m.n_cpus == 1


def test_table3_spot_checks():
    assert MIXES_M["M1"].gpu_app == "3DMark06GT1"
    assert MIXES_M["M1"].cpu_apps == (403, 450, 481, 482)
    assert MIXES_M["M7"].gpu_app == "DOOM3"
    assert MIXES_M["M7"].cpu_apps == (410, 433, 462, 471)
    assert MIXES_W["W8"].cpu_apps == (403,)
    assert MIXES_M["M14"].cpu_apps == (403, 437, 450, 481)


def test_high_low_split():
    assert len(HIGH_FPS_MIXES) == 6
    assert len(LOW_FPS_MIXES) == 8
    for name in HIGH_FPS_MIXES:
        assert MIXES_M[name].gpu_app in HIGH_FPS_GAMES


def test_mix_lookup():
    assert mix("M3") is MIXES_M["M3"]
    assert mix("W3") is MIXES_W["W3"]
    with pytest.raises(KeyError):
        mix("M15")


def test_mix_validation():
    with pytest.raises(KeyError):
        Mix("bad", "NoSuchGame", (403,))
    with pytest.raises(KeyError):
        Mix("bad", None, (999,))


def test_cpu_label():
    assert MIXES_M["M1"].cpu_label() == "403,450,481,482"
