"""Cross-module property tests: system-level invariants under random
(but tiny) workload configurations."""

from hypothesis import given, settings, strategies as st

from repro.config import default_config
from repro.cpu.spec import SPEC_PROFILES
from repro.gpu.workloads import GAME_ORDER
from repro.mixes import Mix
from repro.sim.metrics import collect
from repro.sim.system import HeterogeneousSystem


@settings(max_examples=3, deadline=None)
@given(st.sampled_from(GAME_ORDER),
       st.sampled_from(sorted(SPEC_PROFILES)),
       st.integers(1, 50))
def test_property_any_w_style_mix_completes_consistently(game, spec_id,
                                                         seed):
    cfg = default_config(scale="smoke", n_cpus=1, seed=seed)
    s = HeterogeneousSystem(cfg, Mix("p", game, (spec_id,))).run()
    r = collect(s)
    # conservation: LLC accesses >= LLC misses, DRAM reads <= misses
    assert r.llc["cpu_accesses"] >= r.llc["cpu_misses"]
    assert r.llc["gpu_accesses"] >= r.llc["gpu_misses"]
    # every DRAM read serves an LLC fill (bypass included) or prefetch
    assert r.dram["cpu_reads"] + r.dram["gpu_reads"] > 0
    # frames rendered within the preset's bounds
    assert cfg.scale.min_frames <= r.frames_rendered <= \
        cfg.scale.max_frames
    # IPC is physical
    assert 0 < r.cpu_ipcs[0] <= cfg.cpu.issue_width


@settings(max_examples=3, deadline=None)
@given(st.sampled_from(["baseline", "throtcpuprio", "dynprio", "helm"]),
       st.integers(1, 20))
def test_property_policies_preserve_invariants(policy, seed):
    from repro.policies import make_policy
    cfg = default_config(scale="smoke", n_cpus=2, seed=seed)
    mix = Mix("p", "Quake4", (403, 462))
    s = HeterogeneousSystem(cfg, mix, make_policy(policy)).run()
    r = collect(s)
    assert all(c.done for c in s.cores)
    assert r.fps > 0
    # LLC occupancy never exceeds capacity
    assert s.llc.cache.occupancy() <= \
        cfg.scale.llc_bytes // cfg.llc.line_bytes
    # MSHRs drained at completion
    assert len(s.llc.mshr) == 0 or s.sim.pending() > 0


def test_gpu_occupancy_split_accounts_all_lines():
    cfg = default_config(scale="smoke", n_cpus=1, seed=3)
    s = HeterogeneousSystem(cfg, Mix("p", "HL2", (437,))).run()
    total = s.llc.cache.occupancy()
    assert s.llc.gpu_occupancy() + s.llc.cpu_occupancy() == total
