"""Unit tests for the configuration layer (Table I + scaling)."""

import pytest

from repro.config import (CacheConfig, SCALES, default_config)


def test_table1_headline_values():
    cfg = default_config()
    assert cfg.n_cpus == 4
    assert cfg.cpu.l1d.size_bytes == 32 * 1024
    assert cfg.cpu.l1d.ways == 8
    assert cfg.cpu.l2.size_bytes == 256 * 1024
    assert cfg.llc.size_bytes == 16 * 1024 * 1024   # paper value
    assert cfg.llc.ways == 16
    assert cfg.llc.policy == "srrip"
    assert cfg.dram.channels == 2
    assert cfg.dram.timing.t_cas == 14
    assert cfg.gpu.shader_cores == 64
    assert cfg.gpu.rops == 16
    assert cfg.qos.target_fps == 40.0
    assert cfg.qos.rtp_table_entries == 64


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 7)


def test_scale_presets_are_ordered():
    assert SCALES["smoke"].gpu_frame_cycles < \
        SCALES["test"].gpu_frame_cycles < \
        SCALES["bench"].gpu_frame_cycles < \
        SCALES["paper"].gpu_frame_cycles
    assert SCALES["paper"].mem_scale == 1


def test_effective_llc_scales_capacity_only():
    cfg = default_config("test")
    llc = cfg.effective_llc()
    assert llc.size_bytes == cfg.scale.llc_bytes
    assert llc.ways == 16
    assert llc.policy == "srrip"


def test_effective_cpu_scales_private_caches():
    cfg = default_config("test")     # mem_scale 4
    cpu = cfg.effective_cpu()
    assert cpu.l1d.size_bytes == 8 * 1024
    assert cpu.l2.size_bytes == 64 * 1024
    paper = default_config("paper")  # mem_scale 1
    assert paper.effective_cpu().l1d.size_bytes == 32 * 1024


def test_with_helpers():
    cfg = default_config().with_scale("smoke").with_cpus(2)
    assert cfg.scale.name == "smoke"
    assert cfg.n_cpus == 2
    cfg2 = cfg.with_qos(target_fps=50.0)
    assert cfg2.qos.target_fps == 50.0
    assert cfg.qos.target_fps == 40.0   # frozen original untouched
