"""Unit tests for the configuration layer (Table I + scaling)."""

import pytest

from repro.config import (CacheConfig, ConfigError, CpuCoreConfig,
                          DramConfig, GpuConfig, QosConfig, RingConfig,
                          SCALES, Scale, SystemConfig, default_config)


def test_table1_headline_values():
    cfg = default_config()
    assert cfg.n_cpus == 4
    assert cfg.cpu.l1d.size_bytes == 32 * 1024
    assert cfg.cpu.l1d.ways == 8
    assert cfg.cpu.l2.size_bytes == 256 * 1024
    assert cfg.llc.size_bytes == 16 * 1024 * 1024   # paper value
    assert cfg.llc.ways == 16
    assert cfg.llc.policy == "srrip"
    assert cfg.dram.channels == 2
    assert cfg.dram.timing.t_cas == 14
    assert cfg.gpu.shader_cores == 64
    assert cfg.gpu.rops == 16
    assert cfg.qos.target_fps == 40.0
    assert cfg.qos.rtp_table_entries == 64


def test_cache_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 7)


def test_construction_time_rejections():
    """Impossible machines fail at build time with a ConfigError naming
    the offending field — never as a nonsense simulation result."""
    cases = [
        lambda: CacheConfig("z", 0, 8),                 # zero-size cache
        lambda: CacheConfig("z", 32 * 1024, -1),        # negative ways
        lambda: CacheConfig("z", 32 * 1024, 8, mshr_entries=0),
        lambda: CpuCoreConfig(issue_width=0),           # zero-width core
        lambda: CpuCoreConfig(mlp_limit=-4),
        lambda: CpuCoreConfig(write_buffer=0),
        lambda: GpuConfig(shader_cores=0),
        lambda: GpuConfig(issue_rate=-1),
        lambda: DramConfig(channels=0),
        lambda: DramConfig(read_queue=-1),
        lambda: DramConfig(mapping="diagonal"),
        lambda: DramConfig(write_drain_lo=0.9,          # lo above hi
                           write_drain_hi=0.2),
        lambda: DramConfig(write_drain_hi=1.5),         # outside [0, 1]
        lambda: RingConfig(hop_ticks=0),
        lambda: RingConfig(model="mesh"),
        lambda: QosConfig(target_fps=-30.0),            # negative budget
        lambda: QosConfig(wg_step=0),
        lambda: QosConfig(recompute_interval_gpu_cycles=0),
        lambda: QosConfig(verify_threshold=1.5),        # lambda-like knob
        lambda: QosConfig(verify_threshold=0.0),
        lambda: Scale("z", gpu_frame_cycles=0, cpu_instructions=1000),
        lambda: Scale("z", gpu_frame_cycles=1000, cpu_instructions=-1),
        lambda: Scale("z", gpu_frame_cycles=1000, cpu_instructions=1000,
                      min_frames=9, max_frames=3),
        lambda: SystemConfig(n_cpus=-1),
        lambda: SystemConfig(gpu_frontend="raytrace"),
    ]
    for build in cases:
        with pytest.raises(ConfigError):
            build()


def test_frpu_rejects_bad_knobs():
    from repro.core.frpu import FrameRatePredictor
    for kwargs in ({"ewma_alpha": 0.0}, {"ewma_alpha": 1.5},
                   {"verify_threshold": 0.0}, {"rtp_entries": 0},
                   {"skip_frames": -1}):
        with pytest.raises(ConfigError):
            FrameRatePredictor(**kwargs)


def test_config_error_is_a_value_error():
    assert issubclass(ConfigError, ValueError)


def test_scale_presets_are_ordered():
    assert SCALES["smoke"].gpu_frame_cycles < \
        SCALES["test"].gpu_frame_cycles < \
        SCALES["bench"].gpu_frame_cycles < \
        SCALES["paper"].gpu_frame_cycles
    assert SCALES["paper"].mem_scale == 1


def test_effective_llc_scales_capacity_only():
    cfg = default_config("test")
    llc = cfg.effective_llc()
    assert llc.size_bytes == cfg.scale.llc_bytes
    assert llc.ways == 16
    assert llc.policy == "srrip"


def test_effective_cpu_scales_private_caches():
    cfg = default_config("test")     # mem_scale 4
    cpu = cfg.effective_cpu()
    assert cpu.l1d.size_bytes == 8 * 1024
    assert cpu.l2.size_bytes == 64 * 1024
    paper = default_config("paper")  # mem_scale 1
    assert paper.effective_cpu().l1d.size_bytes == 32 * 1024


def test_with_helpers():
    cfg = default_config().with_scale("smoke").with_cpus(2)
    assert cfg.scale.name == "smoke"
    assert cfg.n_cpus == 2
    cfg2 = cfg.with_qos(target_fps=50.0)
    assert cfg2.qos.target_fps == 50.0
    assert cfg.qos.target_fps == 40.0   # frozen original untouched
