"""The monitor must catch injected structural bugs — loudly, with a
diagnostic dump naming the failed check."""

import pytest

from repro.config import default_config
from repro.faults import FaultPlan, RequestFault
from repro.guard import InvariantMonitor, InvariantViolation
from repro.mixes import mix
from repro.policies import make_policy
from repro.sim.runner import run_system


def _run_faulted(plan, monitor):
    m = mix("W8")
    cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
    return run_system(cfg, m, make_policy("throtcpuprio"),
                      monitor=monitor, faults=plan)


def test_duplicate_completion_trips_conservation():
    plan = FaultPlan(RequestFault("duplicate", side="cpu", nth=10))
    with pytest.raises(InvariantViolation) as exc:
        _run_faulted(plan, InvariantMonitor(interval_ticks=1024))
    assert exc.value.check == "request_conservation"
    assert plan.fired() == 1


def test_dropped_request_trips_inflight_age():
    plan = FaultPlan(RequestFault("drop", side="cpu", nth=10))
    monitor = InvariantMonitor(interval_ticks=1024,
                               max_inflight_age=20_000)
    with pytest.raises(InvariantViolation) as exc:
        _run_faulted(plan, monitor)
    assert exc.value.check == "inflight_age"


def test_starved_core_trips_liveness_watchdog():
    """With a generous age limit, the stalled core is caught by the
    liveness/deadlock watchdog once the GPU renders its last frame and
    every progress counter freezes — no fault escapes both nets.

    The drop targets an ifetch (``kind="inst"``): the front end blocks
    on the missing line, so the core makes no further progress at all
    (a dropped data read would just leak one MLP slot).
    """
    plan = FaultPlan(RequestFault("drop", side="cpu", kind="inst",
                                  nth=2))
    monitor = InvariantMonitor(interval_ticks=1024,
                               max_inflight_age=10**9, stall_checks=4)
    with pytest.raises(InvariantViolation) as exc:
        _run_faulted(plan, monitor)
    assert exc.value.check in ("liveness", "deadlock")


def test_violation_carries_diagnostic_dump():
    plan = FaultPlan(RequestFault("drop", side="cpu", nth=10))
    monitor = InvariantMonitor(interval_ticks=1024,
                               max_inflight_age=20_000)
    with pytest.raises(InvariantViolation) as exc:
        _run_faulted(plan, monitor)
    v = exc.value
    assert v.dump is not None
    text = str(v)
    assert "[inflight_age]" in text
    assert "tick" in text and "llc" in text
    assert v.dump.oldest_inflight          # the leaked request is named


def test_monitor_rejects_bad_parameters():
    with pytest.raises(ValueError):
        InvariantMonitor(interval_ticks=0)
    with pytest.raises(ValueError):
        InvariantMonitor(max_inflight_age=-1)
    with pytest.raises(ValueError):
        InvariantMonitor(stall_checks=0)
