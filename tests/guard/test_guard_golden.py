"""Golden guarantee: the invariant monitor observes, never perturbs.

A monitored run must produce the bit-identical ``RunResult`` of the same
unmonitored run — the monitor's periodic check events are read-only and
interleave with simulation events without reordering them.
"""

import pytest

from repro.config import default_config
from repro.guard import InvariantMonitor
from repro.mixes import mix
from repro.policies import make_policy
from repro.sim.runner import run_system


def _run(policy: str, monitor=None):
    m = mix("W8")
    cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
    return run_system(cfg, m, make_policy(policy), monitor=monitor)


@pytest.mark.parametrize("policy", ["baseline", "throtcpuprio"])
def test_monitored_run_is_bit_identical(policy):
    clean = _run(policy)
    monitor = InvariantMonitor(interval_ticks=1024)
    guarded = _run(policy, monitor=monitor)
    assert guarded == clean
    assert monitor.checks_run > 0


def test_clean_run_passes_and_report_balances():
    monitor = InvariantMonitor(interval_ticks=1024)
    _run("throtcpuprio", monitor=monitor)       # no InvariantViolation
    rep = monitor.report()
    assert rep.issued - rep.retired == rep.in_flight_at_end
    assert rep.issued > 0 and rep.max_in_flight > 0
    assert "checks" in rep.format()
