"""Unit + property tests for render-target geometry and frame generation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LINE_BYTES
from repro.gpu.framebuffer import (FrameGenerator, RenderTarget, TILE_PX,
                                   KIND_COLOR, KIND_DEPTH, KIND_SHADERI,
                                   KIND_TEX, KIND_VERTEX, KIND_ZHIER)
from repro.gpu.workloads import GAME_ORDER, workload_for

BASE = 8 << 34


def fg(game="DOOM3", cycles=8000, seed=3, mem_scale=4):
    return FrameGenerator(workload_for(game), cycles, BASE, seed,
                          mem_scale=mem_scale)


def test_render_target_geometry():
    rt = RenderTarget(workload_for("DOOM3"), BASE)   # 1600x1200
    assert rt.tiles_x == 1600 // TILE_PX
    assert rt.tiles_y == 1200 // TILE_PX
    assert rt.n_tiles == rt.tiles_x * rt.tiles_y
    assert rt.depth_base > rt.color_base
    assert rt.buffer_bytes == 1600 * 1200 * 4


def test_tile_lines_are_distinct_lines_of_the_tile():
    rt = RenderTarget(workload_for("DOOM3"), BASE)
    lines = rt.color_lines(0)
    assert len(lines) == TILE_PX                 # 16 rows -> 16 lines
    assert len(set(lines.tolist())) == TILE_PX
    assert np.all(lines % LINE_BYTES == 0)
    # a different tile must not alias
    other = rt.color_lines(5)
    assert set(lines.tolist()).isdisjoint(other.tolist())


def test_depth_and_color_regions_disjoint():
    rt = RenderTarget(workload_for("NFS"), BASE)
    c = rt.color_lines(10)
    d = rt.depth_lines(10)
    assert set(c.tolist()).isdisjoint(d.tolist())


def test_frame_structure_matches_workload():
    g = fg("DOOM3")
    frame = g.next_frame(0)
    assert frame.n_rtps == workload_for("DOOM3").n_rtp
    for rtp in frame.rtps:
        assert rtp.n_tiles >= 2
        assert rtp.updates >= rtp.n_tiles        # hot tiles count double


def test_deterministic_generation():
    f1 = fg(seed=9).next_frame(0)
    f2 = fg(seed=9).next_frame(0)
    a1 = np.concatenate([t.addrs for r in f1.rtps for t in r.tiles])
    a2 = np.concatenate([t.addrs for r in f2.rtps for t in r.tiles])
    assert np.array_equal(a1, a2)


def test_tile_work_contains_all_kinds():
    g = fg()
    tile = g.next_frame(0).rtps[0].tiles[0]
    kinds = set(tile.kinds.tolist())
    assert {KIND_TEX, KIND_DEPTH, KIND_COLOR, KIND_VERTEX,
            KIND_ZHIER, KIND_SHADERI} <= kinds


def test_only_rop_kinds_write():
    g = fg()
    for rtp in g.next_frame(0).rtps:
        for t in rtp.tiles:
            w = t.writes
            k = t.kinds
            writers = set(k[w].tolist())
            assert writers <= {KIND_DEPTH, KIND_COLOR}


def test_frame_jitter_varies_work():
    g = fg("UT2004")
    sizes = {g.next_frame(i).total_accesses() for i in range(8)}
    assert len(sizes) > 1


def test_compute_budget_matches_compute_frac():
    w = workload_for("DOOM3")
    g = fg("DOOM3", cycles=8000)
    frame = g.next_frame(0)
    total = sum(t.compute_ticks for r in frame.rtps for t in r.tiles)
    design = w.compute_frac * 8000 * 4          # ticks
    assert total == pytest.approx(design, rel=0.35)


def test_mem_scale_shrinks_texture_footprint():
    big = fg(mem_scale=1)
    small = fg(mem_scale=4)
    assert small.tex_lines < big.tex_lines


@settings(max_examples=10, deadline=None)
@given(st.sampled_from(GAME_ORDER), st.integers(0, 100))
def test_property_all_addresses_within_gpu_region(game, seed):
    g = fg(game, seed=seed)
    frame = g.next_frame(0)
    for rtp in frame.rtps:
        for t in rtp.tiles:
            assert np.all(t.addrs >= BASE)
            assert np.all(t.addrs < g.end_addr)
            assert np.all(t.addrs % LINE_BYTES == 0)
            assert t.compute_ticks >= 1
