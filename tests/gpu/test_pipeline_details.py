"""Finer-grained GPU pipeline behaviours."""

import pytest

from repro.config import GpuConfig
from repro.gpu.framebuffer import FrameGenerator
from repro.gpu.pipeline import GpuPipeline, PassGate
from repro.gpu.workloads import workload_for
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator

BASE = 8 << 34


class FakeLLC:
    def __init__(self, sim, latency=60):
        self.sim = sim
        self.latency = latency
        self.timeline = []

    def send(self, req: MemRequest):
        self.timeline.append((self.sim.now, req.is_write, req.kind))
        if not req.is_write:
            self.sim.after(self.latency, req.complete)


def build(game="COR", frames=2, cycles=4000, seed=6):
    sim = Simulator()
    llc = FakeLLC(sim)
    w = workload_for(game)
    gen = FrameGenerator(w, cycles, BASE, seed, mem_scale=4)
    gpu = GpuPipeline(sim, GpuConfig(), w, gen, llc.send,
                      max_frames=frames)
    return sim, llc, gpu


def test_fps_measured_skips_warmup_frame():
    sim, llc, gpu = build(frames=3)
    gpu.start()
    sim.run(until=100_000_000)
    recs = gpu.completed_frames
    mean_rest = sum(f.cycles for f in recs[1:]) / (len(recs) - 1)
    expected = gpu.workload.fps_nominal * 4000 / mean_rest
    assert gpu.fps_measured(4000) == pytest.approx(expected)


def test_fps_measured_empty_is_zero():
    sim, llc, gpu = build()
    assert gpu.fps_measured(4000) == 0.0


def test_pass_gate_default():
    sim, llc, gpu = build()
    assert isinstance(gpu.gate, PassGate)
    assert not gpu.gate.active


def test_issue_rate_respected():
    """Consecutive LLC issues never violate the GTT port rate."""
    sim, llc, gpu = build(frames=1)
    gpu.start()
    sim.run(until=100_000_000)
    gap = 4 // GpuConfig().issue_rate
    times = [t for t, _, _ in llc.timeline]
    violations = sum(1 for a, b in zip(times, times[1:]) if b - a < 0)
    assert violations == 0


def test_throttle_stall_accounting_only_under_gate():
    sim, llc, gpu = build(frames=2)
    gpu.start()
    sim.run(until=100_000_000)
    assert all(f.throttle_ticks == 0 for f in gpu.completed_frames)

    class Gate:
        active = True

        def next_issue_time(self, t, kind=""):
            return t + 8
    sim2, llc2, gpu2 = build(frames=2)
    gpu2.gate = Gate()
    gpu2.start()
    sim2.run(until=100_000_000)
    assert all(f.throttle_ticks > 0 for f in gpu2.completed_frames)
    # and the stall total is consistent with the per-RTP records
    for f in gpu2.completed_frames:
        assert f.throttle_ticks >= sum(r.throttle_ticks for r in f.rtps)


def test_rop_flush_writes_appear_at_frame_end():
    sim, llc, gpu = build(frames=1)
    gpu.start()
    sim.run(until=100_000_000)
    writes = [(t, k) for t, w, k in llc.timeline if w]
    assert writes, "ROP flush must produce LLC writes"
    last_read_t = max(t for t, w, _ in llc.timeline if not w)
    assert max(t for t, _ in writes) >= last_read_t * 0.5


def test_wallclock_elapsed_never_decreases_within_frame():
    sim, llc, gpu = build(frames=2)
    gpu.start()
    prev = {"frame": 0, "elapsed": -1.0}

    def sample():
        if gpu.stopped:
            return
        if gpu.frames_completed != prev["frame"]:
            prev["frame"] = gpu.frames_completed
            prev["elapsed"] = -1.0
        e = gpu.current_frame_elapsed_cycles()
        assert e >= prev["elapsed"] - 1e-9
        prev["elapsed"] = e
        sim.after(500, sample)
    sim.after(500, sample)
    sim.run(until=100_000_000)
    assert gpu.frames_completed == 2
