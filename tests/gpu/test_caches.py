"""Unit tests for the GPU-internal cache hierarchy filter."""

import pytest

from repro.config import GpuCachesConfig
from repro.gpu.caches import GpuCacheHierarchy
from repro.gpu.framebuffer import (KIND_COLOR, KIND_DEPTH, KIND_SHADERI,
                                   KIND_TEX, KIND_VERTEX, KIND_ZHIER)


@pytest.fixture
def h():
    return GpuCacheHierarchy(GpuCachesConfig())


def test_texture_first_touch_misses_then_hits(h):
    need, wbs = h.access(KIND_TEX, 0x1000, False)
    assert need and wbs == []
    need, wbs = h.access(KIND_TEX, 0x1000, False)
    assert not need


def test_texture_chain_is_read_only(h):
    for i in range(2000):
        _, wbs = h.access(KIND_TEX, i * 64, False)
        assert wbs == []


def test_vertex_single_level(h):
    assert h.access(KIND_VERTEX, 0x2000, False)[0]
    assert not h.access(KIND_VERTEX, 0x2000, False)[0]


def test_color_write_miss_no_fetch(h):
    """Footnote 6: colour overwrites allocate dirty with no LLC read."""
    need, wbs = h.access(KIND_COLOR, 0x3000, True)
    assert not need
    assert wbs == []


def test_color_read_miss_fetches(h):
    need, _ = h.access(KIND_COLOR, 0x4000, False)
    assert need


def test_depth_write_miss_fetches(h):
    """Depth is read-modify-write: even write misses need the line."""
    need, _ = h.access(KIND_DEPTH, 0x5000, True)
    assert need


def test_dirty_rop_evictions_become_writebacks(h):
    wbs_seen = []
    # write far more distinct colour lines than the colour caches hold
    for i in range(4000):
        _, wbs = h.access(KIND_COLOR, i * 64, True)
        wbs_seen.extend(wbs)
    assert wbs_seen
    assert all(kind == "color" for _, kind in wbs_seen)


def test_flush_rop_returns_dirty_lines_once(h):
    h.access(KIND_COLOR, 0x6000, True)
    h.access(KIND_DEPTH, 0x7000, True)
    flushed = h.flush_rop()
    addrs = {a for a, _ in flushed}
    assert 0x6000 in addrs
    assert 0x7000 in addrs
    assert h.flush_rop() == []        # idempotent: all clean now


def test_zhier_and_shader_i_paths(h):
    assert h.access(KIND_ZHIER, 0x8000, False)[0]
    assert not h.access(KIND_ZHIER, 0x8000, False)[0]
    assert h.access(KIND_SHADERI, 0x9000, False)[0]
    assert not h.access(KIND_SHADERI, 0x9000, False)[0]


def test_unknown_kind_raises(h):
    with pytest.raises(ValueError):
        h.access(42, 0, False)


def test_mem_scale_shrinks_shared_levels():
    full = GpuCacheHierarchy(GpuCachesConfig(), mem_scale=1)
    quarter = GpuCacheHierarchy(GpuCachesConfig(), mem_scale=4)
    assert quarter.tex_l2.cfg.size_bytes < full.tex_l2.cfg.size_bytes
    # tiny L0/L1 caches keep their size
    assert quarter.tex_l0.cfg.size_bytes == full.tex_l0.cfg.size_bytes


def test_filter_counts_accumulate(h):
    h.access(KIND_TEX, 0, False)
    h.access(KIND_TEX, 0, False)
    assert h.stats.get("llc_reads") == 1
    assert h.stats.get("internal_hits") == 1
