"""Tests for the triangle-level geometry front end."""

import numpy as np
import pytest

from dataclasses import replace

from repro.config import default_config
from repro.gpu.framebuffer import FrameGenerator
from repro.gpu.geometry import GeometryFrameGenerator, Scene
from repro.gpu.workloads import workload_for
from repro.mixes import Mix
from repro.sim.system import HeterogeneousSystem

BASE = 8 << 34


def gen(game="DOOM3", cycles=8000, seed=3):
    return GeometryFrameGenerator(workload_for(game), cycles, BASE, seed,
                                  mem_scale=4)


def test_scene_is_deterministic_and_coherent():
    w = workload_for("NFS")
    a = Scene(w, 64, np.random.default_rng(5))
    b = Scene(w, 64, np.random.default_rng(5))
    xa, ya = a.triangle_positions()
    xb, yb = b.triangle_positions()
    assert np.array_equal(xa, xb) and np.array_equal(ya, yb)
    # drift: positions move, but not far (frame coherence)
    a.advance()
    xa2, ya2 = a.triangle_positions()
    moved = np.abs(xa2 - xa)
    moved = np.minimum(moved, w.width - moved)     # wraparound
    assert moved.max() <= 16.0
    assert (moved > 0).any()


def test_positions_within_screen():
    w = workload_for("HL2")
    s = Scene(w, 128, np.random.default_rng(2))
    for _ in range(5):
        s.advance()
        x, y = s.triangle_positions()
        assert np.all((0 <= x) & (x < w.width))
        assert np.all((0 <= y) & (y < w.height))


def test_frames_have_valid_structure():
    g = gen()
    frame = g.next_frame(0)
    w = workload_for("DOOM3")
    assert frame.n_rtps == w.n_rtp
    for rtp in frame.rtps:
        for t in rtp.tiles:
            assert 0 <= t.tile < g.rt.n_tiles
            assert t.updates >= 1
            assert np.all(t.addrs >= BASE)
            assert np.all(t.addrs < g.end_addr)


def test_coverage_driven_updates():
    g = gen()
    cov = g._cover()
    assert cov
    # overlapping triangles produce multi-update tiles somewhere
    assert max(cov.values()) >= 2
    assert min(cov.values()) >= 1


def test_access_budget_matches_procedural_front_end():
    proc = FrameGenerator(workload_for("DOOM3"), 8000, BASE, 3,
                          mem_scale=4)
    geom = gen()
    p = sum(proc.next_frame(i).total_accesses() for i in range(4)) / 4
    q = sum(geom.next_frame(i).total_accesses() for i in range(4)) / 4
    assert q == pytest.approx(p, rel=0.5)      # same design point


def test_system_runs_with_geometry_frontend():
    cfg = replace(default_config("smoke", n_cpus=1),
                  gpu_frontend="geometry")
    s = HeterogeneousSystem(cfg, Mix("g", "Quake4", (403,))).run()
    assert s.gpu.frames_completed >= cfg.scale.min_frames
    assert s.gpu_fps() > 0


def test_unknown_frontend_rejected():
    # replace() re-runs __post_init__, so the bad frontend is rejected
    # at config-construction time, before a system is ever built
    with pytest.raises(ValueError):
        replace(default_config("smoke", n_cpus=0), gpu_frontend="vulkan")


def test_cross_frame_tile_reuse():
    """Scene coherence: consecutive frames share most covered tiles."""
    g = gen("UT2004")
    f0 = {t.tile for r in g.next_frame(0).rtps for t in r.tiles}
    f1 = {t.tile for r in g.next_frame(1).rtps for t in r.tiles}
    overlap = len(f0 & f1) / max(len(f0), 1)
    assert overlap > 0.3
