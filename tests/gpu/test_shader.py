"""Tests for the shader warp-occupancy model."""

import pytest

from repro.config import GpuConfig
from repro.gpu.shader import WarpOccupancyModel


class StubPipeline:
    def __init__(self):
        self.outstanding = 0
        self._counters = {"mshr_stalls": 0, "llc_reads": 0}

    class _Stats:
        def __init__(self, owner):
            self.owner = owner

        def get(self, name):
            return self.owner._counters[name]

    @property
    def stats(self):
        return self._Stats(self)


def test_max_warps_from_table1_geometry():
    m = WarpOccupancyModel(StubPipeline())
    # 4096 contexts over 64 cores -> 64 warps per core
    assert m.max_warps == 64


def test_outstanding_fills_block_warps():
    p = StubPipeline()
    m = WarpOccupancyModel(p)
    full = m.ready_warps_now()
    p.outstanding = 64 * 8              # 8 blocked warps per core
    assert m.ready_warps_now() == pytest.approx(full - 8)


def test_stall_rate_collapses_readiness():
    p = StubPipeline()
    m = WarpOccupancyModel(p)
    p._counters = {"mshr_stalls": 0, "llc_reads": 100}
    w1 = m.sample_window()
    assert w1["stall_rate"] == 0.0
    p._counters = {"mshr_stalls": 100, "llc_reads": 200}
    w2 = m.sample_window()
    assert w2["stall_rate"] == pytest.approx(1.0)
    assert w2["ready_warps"] == 0.0


def test_average_over_windows():
    p = StubPipeline()
    m = WarpOccupancyModel(p)
    assert m.average_ready_warps() == m.max_warps   # no samples yet
    p._counters = {"mshr_stalls": 0, "llc_reads": 10}
    m.sample_window()
    assert 0 < m.average_ready_warps() <= m.max_warps


def test_windows_are_deltas_not_totals():
    p = StubPipeline()
    m = WarpOccupancyModel(p)
    p._counters = {"mshr_stalls": 50, "llc_reads": 100}
    m.sample_window()
    # no new activity: zero reads in the second window
    w = m.sample_window()
    assert w["reads"] == 0.0
