"""Unit tests for the Table II game workload models."""

import pytest

from repro.gpu.workloads import (GAME_ORDER, GAME_WORKLOADS,
                                 HIGH_FPS_GAMES, LOW_FPS_GAMES,
                                 RESOLUTIONS, workload_for)


def test_fourteen_games_in_paper_order():
    assert len(GAME_ORDER) == 14
    assert GAME_ORDER[0] == "3DMark06GT1"
    assert GAME_ORDER[-1] == "UT3"
    assert set(GAME_ORDER) == set(GAME_WORKLOADS)


def test_table2_fps_values():
    """Spot-check the nominal FPS column against Table II."""
    assert workload_for("DOOM3").fps_nominal == 81.0
    assert workload_for("UT2004").fps_nominal == 130.7
    assert workload_for("Crysis").fps_nominal == 6.6
    assert workload_for("L4D").fps_nominal == 32.5


def test_high_low_fps_split_matches_paper():
    """Six games exceed the 40 FPS target (the Fig. 9-12 set)."""
    assert sorted(HIGH_FPS_GAMES) == sorted(
        ["DOOM3", "HL2", "NFS", "Quake4", "COR", "UT2004"])
    assert len(LOW_FPS_GAMES) == 8
    for g in HIGH_FPS_GAMES:
        assert workload_for(g).fps_nominal > 40
    for g in LOW_FPS_GAMES:
        assert workload_for(g).fps_nominal < 40


def test_resolutions_match_table2():
    assert RESOLUTIONS["R1"] == (1280, 1024)
    assert RESOLUTIONS["R2"] == (1920, 1200)
    assert RESOLUTIONS["R3"] == (1600, 1200)
    assert workload_for("COD2").resolution == "R2"
    assert workload_for("DOOM3").resolution == "R3"
    assert workload_for("NFS").resolution == "R1"


def test_frame_ranges_match_table2():
    assert workload_for("3DMark06GT1").frames == (670, 671)
    assert workload_for("HL2").frames == (25, 33)
    assert workload_for("UT2004").frames == (200, 217)


def test_time_scale_inverts_fps():
    w = workload_for("DOOM3")
    s = w.time_scale(24_000)
    # S * fps * frame_cycles == 1e9 by construction
    assert s * w.fps_nominal * 24_000 == pytest.approx(1e9)


def test_rop_heavier_than_texture_for_ogl_shooters():
    """Section IV: texture is only ~25% of GPU LLC traffic; ROP
    (depth+colour) dominates for DOOM3-style pipelines."""
    w = workload_for("DOOM3")
    assert w.depth_per_tile + w.color_per_tile > 2 * w.tex_per_tile


def test_unknown_game_raises():
    with pytest.raises(KeyError):
        workload_for("Minesweeper")
