"""Unit tests for the GPU pipeline against a fake LLC."""

import pytest

from repro.config import GpuConfig
from repro.gpu.framebuffer import FrameGenerator
from repro.gpu.pipeline import GpuPipeline
from repro.gpu.workloads import workload_for
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator

BASE = 8 << 34


class FakeLLC:
    def __init__(self, sim, latency=60):
        self.sim = sim
        self.latency = latency
        self.reads = []
        self.writes = []

    def send(self, req: MemRequest):
        if req.is_write:
            self.writes.append(req.addr)
            return
        self.reads.append(req.addr)
        self.sim.after(self.latency, req.complete)


def build(game="DOOM3", frames=3, cycles=4000, latency=60, seed=2,
          gpu_cfg=None):
    sim = Simulator()
    llc = FakeLLC(sim, latency)
    w = workload_for(game)
    gen = FrameGenerator(w, cycles, BASE, seed, mem_scale=4)
    gpu = GpuPipeline(sim, gpu_cfg or GpuConfig(), w, gen, llc.send,
                      max_frames=frames)
    return sim, llc, gpu


def test_renders_requested_frames_and_stops():
    sim, llc, gpu = build(frames=3)
    gpu.start()
    sim.run(until=100_000_000)
    assert gpu.frames_completed == 3
    assert gpu.stopped
    assert llc.reads and llc.writes   # both traffic classes exist


def test_frame_records_structure():
    sim, llc, gpu = build(game="HL2", frames=2)
    gpu.start()
    sim.run(until=100_000_000)
    w = workload_for("HL2")
    for rec in gpu.completed_frames:
        assert len(rec.rtps) == w.n_rtp
        assert rec.cycles >= 1
        # frame total includes the end-of-frame ROP flush, which happens
        # after the last RTP record closes
        assert rec.llc_accesses >= sum(r.llc_accesses for r in rec.rtps)
        for r in rec.rtps:
            assert r.updates >= r.n_rtts


def test_standalone_fps_near_nominal():
    sim, llc, gpu = build(game="UT2004", frames=4, cycles=8000)
    gpu.start()
    sim.run(until=200_000_000)
    w = workload_for("UT2004")
    fps = gpu.fps_measured(8000)
    assert 0.6 * w.fps_nominal < fps < 1.3 * w.fps_nominal


def test_memory_latency_slows_frames():
    sim_f, _, fast = build(latency=40, frames=3)
    fast.start()
    sim_f.run(until=100_000_000)
    sim_s, _, slow = build(latency=2000, frames=3)
    slow.start()
    sim_s.run(until=400_000_000)
    assert slow.fps_measured(4000) < fast.fps_measured(4000)


def test_throttle_gate_slows_frames():
    from repro.core.atu import AccessThrottlingUnit
    sim_b, _, base = build(frames=3)
    base.start()
    sim_b.run(until=100_000_000)

    sim_t, _, gated = build(frames=3)
    atu = AccessThrottlingUnit()
    atu.wg_ticks = 40                 # brutal: 10 GPU cycles per access
    gated.gate = atu
    gated.start()
    sim_t.run(until=400_000_000)
    assert gated.fps_measured(4000) < 0.8 * base.fps_measured(4000)
    assert gated.completed_frames[1].throttle_ticks > 0


def test_mshr_backpressure_engages():
    cfg = GpuConfig(mshr_entries=2)
    sim, llc, gpu = build(latency=500, frames=2, gpu_cfg=cfg)
    gpu.start()
    sim.run(until=400_000_000)
    assert gpu.stats.get("mshr_stalls") > 0
    assert gpu.frames_completed == 2   # still finishes


def test_frame_progress_monotone_within_frame():
    sim, llc, gpu = build(frames=2)
    gpu.start()
    seen = []
    prev_frames = [0]

    def sample():
        if gpu.stopped:
            return
        if gpu.frames_completed == prev_frames[0]:
            seen.append(gpu.frame_progress)
        else:
            prev_frames[0] = gpu.frames_completed
            seen.clear()
        assert 0.0 <= gpu.frame_progress <= 1.0
        if not gpu.stopped:
            sim.after(200, sample)
    sim.after(200, sample)
    sim.run(until=100_000_000)
    assert gpu.frames_completed == 2


def test_texture_share_in_paper_band():
    sim, llc, gpu = build(game="COD2", frames=3, cycles=8000)
    gpu.start()
    sim.run(until=100_000_000)
    # Section IV: texture ~= 25% of GPU LLC accesses on average
    assert 0.08 < gpu.texture_share() < 0.45


def test_kind_counters_sum_to_total():
    sim, llc, gpu = build(frames=2)
    gpu.start()
    sim.run(until=100_000_000)
    total = gpu.stats.get("llc_accesses")
    by_kind = sum(gpu.stats.get(f"llc_{k}") for k in
                  ("texture", "depth", "color", "vertex", "zhier",
                   "shader_i"))
    assert total == by_kind
    assert total == gpu.stats.get("llc_reads") + \
        gpu.stats.get("llc_writes")
