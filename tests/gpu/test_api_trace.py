"""Tests for the frame command-stream record/replay format."""

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.gpu.api_trace import (ApiTraceFrameGenerator, frame_to_commands,
                                 load_frames, record_frames)
from repro.gpu.framebuffer import FrameGenerator
from repro.gpu.pipeline import GpuPipeline
from repro.gpu.workloads import workload_for
from repro.sim.engine import Simulator

BASE = 8 << 34


@pytest.fixture()
def gen():
    return FrameGenerator(workload_for("HL2"), 4000, BASE, seed=9,
                          mem_scale=4)


def test_roundtrip_preserves_frames(tmp_path, gen):
    path = tmp_path / "hl2.trace"
    n = record_frames(gen, 2, str(path))
    assert n > 4
    frames = load_frames(str(path))
    assert len(frames) == 2
    # regenerate the same frames and compare exactly
    gen2 = FrameGenerator(workload_for("HL2"), 4000, BASE, seed=9,
                          mem_scale=4)
    for i, frame in enumerate(frames):
        ref = gen2.next_frame(i)
        assert frame.n_rtps == ref.n_rtps
        for rtp, rtp_ref in zip(frame.rtps, ref.rtps):
            assert rtp.n_tiles == rtp_ref.n_tiles
            for t, tr in zip(rtp.tiles, rtp_ref.tiles):
                assert t.tile == tr.tile
                assert t.compute_ticks == tr.compute_ticks
                assert np.array_equal(t.addrs, tr.addrs)
                assert np.array_equal(t.kinds, tr.kinds)
                assert np.array_equal(t.writes, tr.writes)


def test_command_stream_structure(gen):
    cmds = list(frame_to_commands(gen.next_frame(0)))
    assert cmds[0]["cmd"] == "frame"
    assert cmds[1]["cmd"] == "pass"
    assert cmds[-1]["cmd"] == "present"
    assert any(c["cmd"] == "draw" for c in cmds)


def test_replay_wraps_around(tmp_path, gen):
    path = tmp_path / "t.trace"
    record_frames(gen, 2, str(path))
    replay = ApiTraceFrameGenerator(str(path))
    f0 = replay.next_frame(0)
    f2 = replay.next_frame(2)           # wraps to recorded frame 0
    assert f2.index == 2
    assert f2.rtps is f0.rtps
    assert replay.replays == 1


def test_empty_trace_rejected(tmp_path):
    p = tmp_path / "empty.trace"
    p.write_text("")
    with pytest.raises(ValueError):
        ApiTraceFrameGenerator(str(p))


def test_pipeline_runs_from_api_trace(tmp_path, gen):
    path = tmp_path / "drive.trace"
    record_frames(gen, 2, str(path))
    replay = ApiTraceFrameGenerator(str(path))
    sim = Simulator()

    def send(req):
        if req.on_done:
            sim.after(40, req.complete)
    w = workload_for("HL2")
    gpu = GpuPipeline(sim, GpuConfig(), w, replay, send, max_frames=4)
    gpu.start()
    sim.run(until=200_000_000)
    assert gpu.frames_completed == 4    # 2 recorded + 2 wrapped
