"""Unit tests for the DRAM bank row-buffer state machine."""

import pytest

from repro.config import DramTiming
from repro.dram.bank import Bank
from repro.dram.timing import TimingTicks


@pytest.fixture
def timing():
    return TimingTicks.from_timing(DramTiming(), cycle_ticks=4)


def test_timing_conversion(timing):
    assert timing.t_cas == 14 * 4
    assert timing.burst == 4 * 4
    assert timing.access_ticks("hit") == timing.t_cas
    assert timing.access_ticks("closed") == timing.t_rcd + timing.t_cas
    assert timing.access_ticks("conflict") == \
        timing.t_rp + timing.t_rcd + timing.t_cas
    with pytest.raises(ValueError):
        timing.access_ticks("nope")


def test_closed_then_hit_then_conflict(timing):
    b = Bank(0)
    assert b.row_state(5) == "closed"
    start, done = b.service(5, 0, timing, is_write=False, open_page=True,
                            bus_free_at=0)
    assert start == timing.t_rcd + timing.t_cas
    assert done == start + timing.burst
    assert b.open_row == 5
    assert b.row_misses == 1 and b.activations == 1

    assert b.row_state(5) == "hit"
    t = b.ready_at
    start2, done2 = b.service(5, t, timing, is_write=False, open_page=True,
                              bus_free_at=0)
    assert start2 == t + timing.t_cas
    assert b.row_hits == 1

    assert b.row_state(7) == "conflict"
    t = b.ready_at
    start3, _ = b.service(7, t, timing, is_write=False, open_page=True,
                          bus_free_at=0)
    assert start3 == t + timing.t_rp + timing.t_rcd + timing.t_cas
    assert b.row_conflicts == 1
    assert b.open_row == 7


def test_closed_page_policy_leaves_row_closed(timing):
    b = Bank(0)
    b.service(3, 0, timing, is_write=False, open_page=False, bus_free_at=0)
    assert b.open_row is None
    assert b.row_state(3) == "closed"


def test_bus_contention_delays_data(timing):
    b = Bank(0)
    busy_until = 10_000
    start, done = b.service(1, 0, timing, is_write=False, open_page=True,
                            bus_free_at=busy_until)
    assert start == busy_until
    assert done == busy_until + timing.burst


def test_write_recovery_extends_ready(timing):
    b = Bank(0)
    _, done = b.service(1, 0, timing, is_write=True, open_page=True,
                        bus_free_at=0)
    assert b.ready_at == done + timing.t_wr


def test_command_before_ready_is_illegal(timing):
    b = Bank(0)
    b.service(1, 0, timing, is_write=False, open_page=True, bus_free_at=0)
    with pytest.raises(RuntimeError):
        b.service(1, 0, timing, is_write=False, open_page=True,
                  bus_free_at=0)
