"""Unit tests for the memory controller and DRAM system."""

import pytest

from repro.config import DramConfig
from repro.dram.controller import DramSystem, MemoryController
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


def mk(sim=None, **cfg_kwargs):
    sim = sim or Simulator()
    return sim, MemoryController(sim, DramConfig(**cfg_kwargs), 0)


def read(addr, done, src="cpu0"):
    return MemRequest(addr, False, src, on_done=lambda r: done.append(r))


def test_address_mapping_row_locality():
    _, mc = mk()
    # consecutive lines routed to this channel (stride 128B for 2ch)
    b0, r0 = mc.map_address(0)
    b1, r1 = mc.map_address(128)
    assert (b0, r0) == (b1, r1)        # same row, same bank
    # a row holds row_bytes/line span; the next row lands in next bank
    row_span = 8192 // 64 * 128        # 128 lines * 2-channel stride
    b2, _ = mc.map_address(row_span)
    assert b2 == b0 + 1


def test_single_read_completes():
    sim, mc = mk()
    done = []
    mc.enqueue(read(0, done))
    sim.run()
    assert len(done) == 1
    assert sim.now > 0
    assert mc.bytes_served("cpu", False) == 64


def test_fr_fcfs_prefers_row_hit():
    sim, mc = mk()
    order = []
    row_span = 8192 // 64 * 128
    # first access opens row 0 of bank 0
    mc.enqueue(MemRequest(0, False, "cpu0",
                          on_done=lambda r: order.append("warm")))
    sim.run()
    # enqueue a conflict (same bank, different row) then a row hit;
    # the hit must be served first despite arriving later
    conflict = MemRequest(row_span * 8, False, "cpu0",
                          on_done=lambda r: order.append("conflict"))
    hit = MemRequest(128, False, "cpu0",
                     on_done=lambda r: order.append("hit"))
    # enqueue both within the same tick so the scheduler sees a choice
    sim.at(sim.now + 1, lambda: (mc.enqueue(conflict), mc.enqueue(hit)))
    sim.run()
    assert order == ["warm", "hit", "conflict"]


def test_starvation_cap_bounds_bypass():
    """A stream of row hits cannot starve an old row-miss forever."""
    sim, mc = mk()
    done = []
    mc.enqueue(read(0, done))          # opens bank0/row0
    sim.run()
    row_span = 8192 // 64 * 128
    victim = []
    mc.enqueue(MemRequest(row_span * 8, False, "cpu1",
                          on_done=lambda r: victim.append(sim.now)))
    # keep feeding row hits to row 0
    hits = []
    for i in range(200):
        sim.at(sim.now + i * 4, lambda i=i: mc.enqueue(
            MemRequest(128 * (i % 64), False, "gpu",
                       on_done=lambda r: hits.append(r))))
    start = sim.now
    sim.run()
    assert victim, "row-miss request starved"
    waited = victim[0] - start
    assert waited < 3000               # bounded by the starvation cap


def test_writes_complete_and_are_accounted():
    sim, mc = mk()
    for i in range(4):
        mc.enqueue(MemRequest(i * 128, True, "gpu"))
    sim.run()
    assert mc.bytes_served("gpu", True) == 4 * 64


def test_write_drain_hysteresis():
    sim, mc = mk(write_queue=10, write_drain_hi=0.5, write_drain_lo=0.2)
    done = []
    # flood writes beyond the hi watermark plus a read
    for i in range(8):
        mc.enqueue(MemRequest(i * 128, True, "gpu"))
    mc.enqueue(read(0, done))
    sim.run()
    assert done
    assert mc.bytes_served("gpu", True) == 8 * 64


def test_dram_system_channel_routing():
    sim = Simulator()
    ds = DramSystem(sim, DramConfig())
    done = []
    ds.send(read(0, done))             # line 0 -> channel 0
    ds.send(read(64, done))            # line 1 -> channel 1
    sim.run()
    assert len(done) == 2
    assert ds.controllers[0].bytes_served("cpu", False) == 64
    assert ds.controllers[1].bytes_served("cpu", False) == 64
    assert ds.reads("cpu") == 2
    assert ds.mean_read_latency("cpu") > 0


def test_dram_system_requires_pow2_channels():
    sim = Simulator()
    with pytest.raises(ValueError):
        DramSystem(sim, DramConfig(channels=3))


def test_bandwidth_cap_stream():
    """A saturating line stream approaches the data-bus bound
    (one 64B line per burst time per channel)."""
    sim, mc = mk()
    done = []
    n = 800
    for i in range(n):
        sim.at(i, (lambda a: (lambda: mc.enqueue(read(a, done))))(i * 128))
    sim.run()
    assert len(done) == n
    lines_per_tick = n / sim.now
    assert lines_per_tick > 0.045      # near the 1/16 bus bound
    assert lines_per_tick <= 1 / 16 + 0.01
    assert mc.row_hit_rate() > 0.9
