"""Tests for the opt-in refresh and tFAW constraints."""

import numpy as np

from repro.config import DramConfig, DramTiming
from repro.dram.controller import MemoryController
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


def controller(**timing_kw):
    sim = Simulator()
    cfg = DramConfig(timing=DramTiming(**timing_kw))
    return sim, MemoryController(sim, cfg, 0)


def drive(sim, mc, n=600, stride=2, seed=1):
    rng = np.random.default_rng(seed)
    done = []
    t = 0
    for i in range(n):
        addr = int(rng.integers(0, 1 << 20)) * 128
        req = MemRequest(addr, False, "cpu0",
                         on_done=lambda r: done.append(sim.now))
        sim.at(t, (lambda r: (lambda: mc.enqueue(r)))(req))
        t += stride
    sim.run()
    return done


def test_refresh_fires_periodically_and_blocks_banks():
    sim, mc = controller(t_refi=400, t_rfc=280)
    drive(sim, mc, n=300)
    assert mc.refreshes >= 2
    # lazy application: every boundary crossed before the last command
    # issue has been folded in
    assert mc.refreshes <= sim.now // (400 * 4)


def test_refresh_costs_bandwidth():
    sim_a, mc_a = controller()
    base = drive(sim_a, mc_a)
    sim_b, mc_b = controller(t_refi=1000, t_rfc=280)
    refreshed = drive(sim_b, mc_b)
    assert mc_b.refreshes > 0
    # the refreshed controller takes longer for the same work
    assert sim_b.now > sim_a.now


def test_tfaw_limits_activate_bursts():
    # without tFAW
    sim_a, mc_a = controller()
    drive(sim_a, mc_a, n=400)
    # with a large tFAW window the same random (activate-heavy) load
    # must take longer: max 4 activates per window
    sim_b, mc_b = controller(t_faw=200)
    drive(sim_b, mc_b, n=400)
    assert sim_b.now > sim_a.now


def test_tfaw_does_not_block_row_hits():
    sim, mc = controller(t_faw=10_000)   # draconian window
    done = []
    # one activate, then a stream of row hits: only the first access
    # counts against tFAW
    for i in range(32):
        req = MemRequest(i * 128, False, "cpu0",
                         on_done=lambda r: done.append(sim.now))
        sim.at(0, (lambda r: (lambda: mc.enqueue(r)))(req))
    sim.run()
    assert len(done) == 32
    assert len(mc._act_times) <= 1
