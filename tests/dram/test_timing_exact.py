"""Exact-cycle regression tests for the DRAM timing arithmetic.

These pin the boundary conventions and rounding behaviour audited for
off-by-one errors while batching the controller hot path:

* timing-parameter conversion rounds *up* (never ``int()`` truncation,
  which would under-wait and violate the DDR protocol),
* ``ready_at`` is the first legal issue tick (``now == ready_at`` is
  legal, ``now < ready_at`` raises),
* the shared data bus is half-open: a transfer occupies
  ``[data_start, done)`` and the next may start at exactly ``done``,
* the write-drain watermarks round toward the hysteresis band
  (``hi`` up, ``lo`` down) — ``64 * 0.8 = 51.2`` drains at 52, not 51.

Every assertion is an exact tick count for a scripted request
sequence; any drift here is a simulated-timing change, not a refactor.
"""

import math

import pytest

from repro.config import DRAM_CYCLE_TICKS, DramConfig, DramTiming
from repro.dram.bank import Bank
from repro.dram.controller import MemoryController
from repro.dram.timing import TimingTicks
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator

T = TimingTicks.from_timing(DramTiming(), cycle_ticks=4)


# -- parameter conversion ---------------------------------------------------

def test_integer_cycle_params_convert_exactly():
    raw = DramTiming()
    t = TimingTicks.from_timing(raw, cycle_ticks=4)
    assert (t.t_cas, t.t_rcd, t.t_rp, t.t_ras) == (56, 56, 56, 144)
    assert (t.burst, t.t_wr, t.t_wtr, t.t_rtp) == (16, 64, 32, 32)
    assert t.t_rfc == 280 * 4 and t.t_refi == 0 and t.t_faw == 0
    for name in ("t_cas", "t_rcd", "t_rp", "t_ras", "burst",
                 "t_wr", "t_wtr", "t_rtp", "t_refi", "t_rfc", "t_faw"):
        assert type(getattr(t, name)) is int, name


def test_fractional_cycle_params_round_up_not_truncate():
    # datasheet-derived parameters may be fractional cycles; truncation
    # would shorten the constraint (a protocol violation), so the
    # conversion must take the ceiling — and must yield real ints so no
    # float leaks into ready_at comparisons
    raw = DramTiming(t_cas=13.9, t_rcd=13.75)
    t = TimingTicks.from_timing(raw, cycle_ticks=4)
    assert t.t_cas == math.ceil(13.9 * 4) == 56      # int() gives 55
    assert t.t_rcd == 55                             # 13.75 * 4 is exact
    assert type(t.t_cas) is int and type(t.t_rcd) is int


# -- bank boundary conventions ----------------------------------------------

def test_issue_at_exactly_ready_at_is_legal():
    b = Bank(0)
    b.service(1, 0, T, is_write=False, open_page=True, bus_free_at=0)
    t = b.ready_at
    # one tick early: protocol violation
    with pytest.raises(RuntimeError):
        b.service(1, t - 1, T, is_write=False, open_page=True,
                  bus_free_at=0)
    # at exactly ready_at: legal (<, not <=, in the legality check)
    start, done = b.service(1, t, T, is_write=False, open_page=True,
                            bus_free_at=0)
    assert start == t + T.t_cas and done == start + T.burst


def test_data_bus_is_half_open():
    # a transfer owns [data_start, done); the next may start at done
    b0, b1 = Bank(0), Bank(1)
    _, done = b0.service(1, 0, T, is_write=False, open_page=True,
                         bus_free_at=0)
    start2, done2 = b1.service(1, 0, T, is_write=False, open_page=True,
                               bus_free_at=done)
    assert start2 == done                 # back-to-back, no dead tick
    assert done2 == done + T.burst


def test_write_recovery_exact_ready_tick():
    b = Bank(0)
    _, done = b.service(1, 0, T, is_write=True, open_page=True,
                        bus_free_at=0)
    assert done == T.t_rcd + T.t_cas + T.burst == 128
    assert b.ready_at == done + T.t_wr == 192


# -- scripted controller sequence -------------------------------------------

def _controller():
    sim = Simulator()
    return sim, MemoryController(sim, DramConfig(), 0)


def test_scripted_sequence_exact_completion_ticks():
    """closed -> hit -> write -> post-write read, pinned to the tick.

    DDR3-2133 14-14-14 at 4 ticks/cycle: tRCD = tCAS = 56, burst = 16,
    tWR = 64.
    """
    sim, mc = _controller()
    assert DRAM_CYCLE_TICKS == 4
    times = {}

    def track(name):
        return MemRequest(0 if name != "hit" else 128, False, "cpu0",
                          on_done=lambda r: times.__setitem__(
                              name, sim.now))

    # 1) cold read, row closed: tRCD + tCAS + burst = 56 + 56 + 16
    mc.enqueue(track("cold"))
    sim.run()
    assert times["cold"] == 128

    # 2) row hit to the same row (addr 128 maps to the same bank/row):
    #    issues at ready_at == 128 exactly, + tCAS + burst
    mc.enqueue(track("hit"))
    sim.run()
    assert times["hit"] == 128 + T.t_cas + T.burst == 200

    # 3) a write with no reads pending issues immediately (row still
    #    open -> tCAS + burst from the bank-ready tick 200) and extends
    #    ready_at by tWR
    done_w = {}
    mc.enqueue(MemRequest(0, True, "cpu0",
                          on_done=lambda r: done_w.__setitem__(
                              "w", sim.now)))
    sim.run()
    assert done_w["w"] == 200 + T.t_cas + T.burst == 272
    bank0 = mc.banks[mc.map_address(0)[0]]
    assert bank0.ready_at == 272 + T.t_wr == 336

    # 4) a read arriving during write recovery waits until exactly
    #    ready_at, then pays tCAS + burst
    mc.enqueue(track("post_write"))
    sim.run()
    assert times["post_write"] == 336 + T.t_cas + T.burst == 408


def test_drain_watermarks_round_toward_hysteresis_band():
    # 64 * 0.8 = 51.2: the first occupancy at-or-above 80% is 52 — the
    # old int() truncation started draining one entry early at 51
    sim, mc = _controller()
    assert mc.cfg.write_queue == 64
    assert mc._drain_hi == 52
    assert mc._drain_lo == 12             # 64 * 0.2 = 12.8 floors to 12
    # exact fractions stay exact
    _, mc10 = _controller()[0], MemoryController(
        Simulator(), DramConfig(write_queue=10), 0)
    assert mc10._drain_hi == 8 and mc10._drain_lo == 2
