"""Property tests: DRAM bank state machine legality under random
command sequences."""

from hypothesis import given, settings, strategies as st

from repro.config import DramTiming
from repro.dram.bank import Bank
from repro.dram.timing import TimingTicks

TIMING = TimingTicks.from_timing(DramTiming(), cycle_ticks=4)


@settings(max_examples=60)
@given(st.lists(st.tuples(st.integers(0, 5), st.booleans(),
                          st.integers(0, 50)),
                min_size=1, max_size=60),
       st.booleans())
def test_property_bank_times_are_legal(cmds, open_page):
    """For any command sequence issued at legal times:
    * data never starts before command + CAS,
    * completions are monotone on the shared bus,
    * the bank is never commanded while busy,
    * counters partition the commands exactly."""
    bank = Bank(0)
    bus_free = 0
    last_done = 0
    t = 0
    for row, is_write, gap in cmds:
        t = max(t + gap, bank.ready_at)
        start, done = bank.service(row, t, TIMING, is_write=is_write,
                                   open_page=open_page,
                                   bus_free_at=bus_free)
        assert start >= t + TIMING.t_cas
        assert start >= bus_free
        assert done == start + TIMING.burst
        assert done >= last_done
        assert bank.ready_at >= done
        if open_page:
            assert bank.open_row == row
        else:
            assert bank.open_row is None
        bus_free = done
        last_done = done
    total = bank.row_hits + bank.row_misses + bank.row_conflicts
    assert total == len(cmds)
    assert bank.activations == bank.row_misses + bank.row_conflicts


@settings(max_examples=30)
@given(st.lists(st.integers(0, 3), min_size=2, max_size=40))
def test_property_same_row_streak_hits_after_first(rows):
    bank = Bank(0)
    t = 0
    prev = None
    expected_hits = 0
    for row in rows:
        if prev == row:
            expected_hits += 1
        t = max(t, bank.ready_at)
        bank.service(row, t, TIMING, is_write=False, open_page=True,
                     bus_free_at=0)
        prev = row
    assert bank.row_hits == expected_hits
