"""Unit tests for the DRAM access schedulers against a real controller."""

from repro.config import DramConfig
from repro.dram.controller import MemoryController
from repro.dram.schedulers import (CpuPriorityScheduler, DynPrioScheduler,
                                   FrFcfsScheduler, SmsScheduler,
                                   make_scheduler)
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


def read(addr, src, order, tag):
    return MemRequest(addr, False, src,
                      on_done=lambda r: order.append(tag))


def test_registry():
    assert isinstance(make_scheduler("fr-fcfs"), FrFcfsScheduler)
    assert isinstance(make_scheduler("cpu-priority"), CpuPriorityScheduler)
    assert isinstance(make_scheduler("dynprio"), DynPrioScheduler)
    assert isinstance(make_scheduler("sms", p_sjf=0.5), SmsScheduler)
    import pytest
    with pytest.raises(KeyError):
        make_scheduler("nope")


def _race(scheduler, first, second):
    """Enqueue two same-timing reads and return completion order."""
    sim = Simulator()
    mc = MemoryController(sim, DramConfig(), 0, scheduler)
    order = []
    # two different banks, both closed: only priority differentiates
    row_span = 8192 // 64 * 128
    a = read(0, first, order, first)
    b = read(row_span * 3, second, order, second)
    sim.at(1, lambda: (mc.enqueue(a), mc.enqueue(b)))
    sim.run()
    return order


def test_cpu_priority_boost_reorders_gpu_behind_cpu():
    s = CpuPriorityScheduler()
    s.boost = True
    assert _race(s, "gpu", "cpu0") == ["cpu0", "gpu"]


def test_cpu_priority_without_boost_is_fifo():
    s = CpuPriorityScheduler()
    assert _race(s, "gpu", "cpu0") == ["gpu", "cpu0"]


def test_dynprio_modes():
    s = DynPrioScheduler()
    s.mode = "gpu_high"
    assert _race(s, "cpu0", "gpu") == ["gpu", "cpu0"]
    s2 = DynPrioScheduler()
    s2.mode = "cpu_high"
    assert _race(s2, "gpu", "cpu0") == ["cpu0", "gpu"]
    s3 = DynPrioScheduler()
    s3.mode = "equal"
    assert _race(s3, "gpu", "cpu0") == ["gpu", "cpu0"]   # FCFS tie-break


def test_sms_batches_by_row_and_source():
    sms = SmsScheduler(p_sjf=1.0, batch_cap=4)
    sim = Simulator()
    mc = MemoryController(sim, DramConfig(), 0, sms)
    done = []
    for i in range(6):
        mc.enqueue(read(i * 128, "gpu", done, f"g{i}"))
    # all six are row-local: first batch closes at cap 4
    assert sms.pending_reads() == 6
    sim.run()
    assert len(done) == 6


def test_sms_row_change_closes_batch():
    sms = SmsScheduler(p_sjf=1.0, batch_cap=100)
    sim = Simulator()
    mc = MemoryController(sim, DramConfig(), 0, sms)
    done = []
    row_span = 8192 // 64 * 128
    mc.enqueue(read(0, "gpu", done, "a"))
    mc.enqueue(read(row_span * 5, "gpu", done, "b"))   # row change
    assert len(sms._ready) >= 1
    sim.run()
    assert len(done) == 2


def test_sms_shortest_batch_first():
    from repro.dram.schedulers import _Batch
    sms = SmsScheduler(p_sjf=1.0)
    long_b = _Batch("gpu", opened_at=0)
    long_b.entries = ["g1", "g2", "g3"]
    short_b = _Batch("cpu0", opened_at=5)
    short_b.entries = ["c1"]
    sms._ready = [long_b, short_b]
    assert sms._next_batch() is short_b   # shortest batch served first
    assert sms._next_batch() is long_b


def test_sms_zero_sjf_alternates_classes():
    sms = SmsScheduler(p_sjf=0.0, batch_cap=2, age_limit=10)
    sim = Simulator()
    mc = MemoryController(sim, DramConfig(), 0, sms)
    done = []
    row_span = 8192 // 64 * 128
    def enqueue_all():
        for i in range(4):
            mc.enqueue(read(i * 128, "gpu", done, "gpu"))
        for i in range(4):
            mc.enqueue(read(row_span * 9 + i * 128, "cpu0", done, "cpu"))
    sim.at(1, enqueue_all)
    sim.run()
    assert len(done) == 8
    # both classes appear in the first half: neither side waits for the
    # other to fully drain
    assert {"gpu", "cpu"} <= set(done[:5])


def test_sms_head_of_line_falls_through_to_ready_batch():
    """Regression: when the current batch's head targets a busy bank,
    SMS must serve the oldest released batch whose head bank is idle
    instead of stalling the whole channel."""
    from types import SimpleNamespace
    from repro.dram.schedulers import _Batch

    banks = {0: SimpleNamespace(ready_at=100),   # busy until t=100
             1: SimpleNamespace(ready_at=0)}     # idle
    ctrl = SimpleNamespace(sim=SimpleNamespace(now=0), banks=banks)

    sms = SmsScheduler()
    cur = _Batch("gpu", opened_at=0)
    cur_entry = SimpleNamespace(bank=0, is_write=False)
    cur.entries = [cur_entry]
    sms._current = cur

    blocked = _Batch("cpu0", opened_at=1)
    blocked.entries = [SimpleNamespace(bank=0, is_write=False)]
    ready = _Batch("cpu1", opened_at=2)
    ready_entry = SimpleNamespace(bank=1, is_write=False)
    ready.entries = [ready_entry]
    sms._ready = [blocked, ready]

    picked = sms.select(ctrl, [])
    assert picked is ready_entry          # bypassed the blocked head
    assert ready not in sms._ready        # emptied batch is retired
    assert sms._current is cur            # current batch keeps its slot
    assert cur.entries == [cur_entry]

    # every serviceable head blocked: nothing to issue this cycle
    assert sms.select(ctrl, []) is None

    # once the bank frees up, the current batch resumes in order
    banks[0].ready_at = 0
    assert sms.select(ctrl, []) is cur_entry


def test_starvation_guard_in_boost_mode():
    """Even with the boost, ancient GPU requests eventually get served."""
    sim = Simulator()
    s = CpuPriorityScheduler()
    s.boost = True
    mc = MemoryController(sim, DramConfig(), 0, s)
    done = []
    gpu_done = []
    mc.enqueue(MemRequest(0, False, "gpu",
                          on_done=lambda r: gpu_done.append(sim.now)))
    # endless stream of CPU requests
    for i in range(300):
        sim.at(1 + i * 8, (lambda a: (lambda: mc.enqueue(
            read(a, "cpu0", done, "c"))))(128 * (i % 32) + 64 * 2 * 4096))
    sim.run()
    assert gpu_done, "GPU request starved forever under boost"
