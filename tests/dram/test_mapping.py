"""Tests for the DRAM address-mapping schemes."""

import pytest

from repro.config import DramConfig
from repro.dram.controller import DramSystem, MemoryController
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


def test_line_interleave_alternates_channels():
    ds = DramSystem(Simulator(), DramConfig(mapping="line"))
    assert ds.channel_of(0) == 0
    assert ds.channel_of(64) == 1
    assert ds.channel_of(128) == 0


def test_row_interleave_keeps_rows_together():
    cfg = DramConfig(mapping="row")
    ds = DramSystem(Simulator(), cfg)
    # all lines of the first 8 KB land on one channel
    chans = {ds.channel_of(a) for a in range(0, cfg.row_bytes, 64)}
    assert chans == {0}
    assert ds.channel_of(cfg.row_bytes) == 1


def test_bank_xor_spreads_same_bank_rows():
    sim = Simulator()
    plain = MemoryController(sim, DramConfig(mapping="line"), 0)
    hashed = MemoryController(sim, DramConfig(mapping="bank-xor"), 0)
    # two addresses that map to the same bank, different rows under the
    # plain scheme
    row_span = 8192 // 64 * 128
    a, b = 0, row_span * 8            # same bank 0, rows 0 and 8
    pb_a, pr_a = plain.map_address(a)
    pb_b, pr_b = plain.map_address(b)
    assert pb_a == pb_b and pr_a != pr_b
    hb_a, _ = hashed.map_address(a)
    hb_b, _ = hashed.map_address(b)
    assert hb_a != hb_b               # the XOR hash separates them


def test_unknown_mapping_rejected():
    with pytest.raises(ValueError):
        DramSystem(Simulator(), DramConfig(mapping="hilbert"))


def test_mappings_all_serve_traffic():
    for mapping in ("line", "row", "bank-xor"):
        sim = Simulator()
        ds = DramSystem(sim, DramConfig(mapping=mapping))
        done = []
        for i in range(64):
            ds.send(MemRequest(i * 64, False, "cpu0",
                               on_done=lambda r: done.append(r)))
        sim.run()
        assert len(done) == 64, mapping


def test_row_mapping_improves_stream_row_hits():
    """A single unit-stride stream sees better row locality under row
    interleaving (no channel ping-pong within the row)."""
    def run(mapping):
        sim = Simulator()
        ds = DramSystem(sim, DramConfig(mapping=mapping))
        done = []
        t = 0
        for i in range(400):
            req = MemRequest(i * 64, False, "cpu0",
                             on_done=lambda r: done.append(r))
            sim.at(t, (lambda r: (lambda: ds.send(r)))(req))
            t += 20
        sim.run()
        return ds.row_hit_rate()
    assert run("row") >= run("line") - 0.02
