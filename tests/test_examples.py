"""Every shipped example must run end to end at smoke scale.

These are the repository's living documentation; a broken example is a
broken deliverable.  Each test drives the example's ``main()`` with a
patched argv (smoke scale, smallest mixes).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def run_example(monkeypatch, capsys, name, argv):
    mod = load(name)
    monkeypatch.setattr(sys, "argv", [f"{name}.py"] + argv)
    mod.main()
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart",
                      ["--scale", "smoke", "--mix", "M7"])
    assert "baseline" in out and "proposal" in out
    assert "FPS" in out


def test_frame_rate_estimator(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "frame_rate_estimator",
                      ["--scale", "smoke", "--game", "Quake4"])
    assert "phase transitions" in out
    assert "prediction" in out


def test_throttle_timeline(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "throttle_timeline",
                      ["--scale", "smoke"])
    assert "wg_ticks" in out
    assert "FRPU" in out


def test_hpc_visualization(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "hpc_visualization",
                      ["--scale", "smoke"])
    assert "simulation weighted speedup" in out


def test_game_physics(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "game_physics",
                      ["--scale", "smoke"])
    assert "GPU FPS" in out
    assert "429" in out


def test_memory_trace_analysis(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "memory_trace_analysis",
                      ["--scale", "smoke", "--mix", "M12"])
    assert "recorded" in out
    assert "replaying the GPU" in out
    assert "energy" in out


def test_scheduler_shootout_subset(monkeypatch, capsys):
    # patch the policy list down to keep the smoke run quick
    mod = load("scheduler_shootout")
    monkeypatch.setattr(mod, "POLICIES", ["baseline", "throtcpuprio"])
    monkeypatch.setattr(sys, "argv",
                        ["scheduler_shootout.py", "--scale", "smoke",
                         "--mix", "M7"])
    mod.main()
    out = capsys.readouterr().out
    assert "throtcpuprio" in out
