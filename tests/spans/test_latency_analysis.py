"""Offline span analysis: stage tables, timelines, comparisons."""

import pytest

from repro.analysis.latency import (SpanReport, compare,
                                    format_comparison)
from repro.spans.recording import trace_mix


@pytest.fixture(scope="module")
def reports(tmp_path_factory):
    d = tmp_path_factory.mktemp("lat")
    out = {}
    for policy in ("baseline", "throtcpuprio"):
        path = d / f"{policy}.jsonl"
        trace_mix("W8", policy=policy, scale="smoke", seed=1,
                  path=str(path), sample_every=8)
        out[policy] = SpanReport.load(str(path))
    return out


def test_load_roundtrip(reports):
    rep = reports["baseline"]
    assert len(rep) > 50
    assert rep.meta["policy"] == "baseline"
    assert rep.gauge_names()                 # saw some occupancy


def test_stage_table_shares_sum_to_one_for_misses(reports):
    rep = reports["baseline"]
    for side in ("cpu", "gpu"):
        rows = {r["metric"]: r for r in rep.stage_table(side)}
        assert "total" in rows and rows["total"]["n"] > 0
        # every non-total share is a fraction of total cycles
        for m, r in rows.items():
            if m == "total":
                assert r["share"] is None
            else:
                assert 0.0 <= r["share"] <= 1.0
        assert rows["total"]["p50"] <= rows["total"]["p95"] \
            <= rows["total"]["p99"]


def test_class_mix_counts_match_span_count(reports):
    rep = reports["baseline"]
    total = sum(n for side in ("cpu", "gpu")
                for n in rep.class_mix(side).values())
    assert total == len(rep)


def test_queue_timeline_buckets(reports):
    rep = reports["baseline"]
    tl = rep.queue_timeline("dram_queue", buckets=8)
    assert 0 < len(tl) <= 8
    assert all(r["n"] > 0 and r["max"] >= r["mean"] for r in tl)
    by_bank = rep.queue_timeline("dram_bank_queue", buckets=4,
                                 facet="bank")
    assert all("bank" in r for r in by_bank)


def test_compare_reports_share_deltas(reports):
    rows = compare(reports["baseline"], reports["throtcpuprio"],
                   side="cpu")
    metrics = {r["metric"] for r in rows}
    assert "dram_queue" in metrics
    for r in rows:
        assert r["delta"] == pytest.approx(r["b_share"] - r["a_share"],
                                           abs=1e-6)
    text = format_comparison(reports["baseline"],
                             reports["throtcpuprio"])
    assert "baseline" in text and "throtcpuprio" in text


def test_format_report_renders(reports):
    text = reports["baseline"].format_report()
    assert "latency report" in text
    assert "dram_queue" in text and "occupancy timelines" in text
