"""Invariants of the log2 histogram/gauge primitives."""

import random

import pytest

from repro.spans.histogram import Gauge, Histogram, N_BUCKETS


def test_bucket_edges_are_monotone():
    uppers = [Histogram.bucket_upper(i) for i in range(N_BUCKETS)]
    assert uppers[0] == 0
    assert all(a < b for a, b in zip(uppers, uppers[1:]))


def test_record_places_value_in_covering_bucket():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 63, 64, 1023, 1024, 1 << 40):
        h.record(v)
        i = v.bit_length()
        lo = 0 if i == 0 else 1 << (i - 1)
        assert lo <= v <= Histogram.bucket_upper(i)
    assert h.n == 10


def test_negative_values_clamp_to_zero_bucket():
    h = Histogram()
    h.record(-5)
    assert h.counts[0] == 1
    assert h.min == 0 and h.total == 0


def test_percentiles_monotone_in_p():
    h = Histogram()
    rng = random.Random(7)
    for _ in range(500):
        h.record(rng.randrange(0, 100_000))
    ps = [h.percentile(p) for p in (0, 10, 50, 90, 95, 99, 100)]
    assert all(a <= b for a, b in zip(ps, ps[1:]))


def test_percentile_upper_bounds_true_order_statistic():
    h = Histogram()
    rng = random.Random(11)
    samples = sorted(rng.randrange(0, 10_000) for _ in range(1000))
    for v in samples:
        h.record(v)
    for p in (50, 95, 99):
        true = samples[min(int(p / 100 * len(samples)), len(samples) - 1)]
        assert h.percentile(p) >= true
    # ...and never above the observed max
    assert h.percentile(99) <= h.max


def test_empty_histogram_is_inert():
    h = Histogram()
    assert h.n == 0 and h.mean == 0.0 and h.percentile(95) == 0
    assert h.summary()["max"] == 0


def test_merge_is_associative_and_matches_pooled():
    rng = random.Random(3)
    parts = [[rng.randrange(0, 1 << 20) for _ in range(200)]
             for _ in range(3)]
    hists = []
    for vals in parts:
        h = Histogram()
        for v in vals:
            h.record(v)
        hists.append(h)
    pooled = Histogram()
    for v in [v for vals in parts for v in vals]:
        pooled.record(v)
    left = hists[0].copy().merge(hists[1]).merge(hists[2])
    right = hists[0].copy().merge(hists[1].copy().merge(hists[2]))
    assert left == right == pooled
    assert left.mean == pytest.approx(pooled.mean)


def test_copy_is_independent():
    h = Histogram()
    h.record(10)
    c = h.copy()
    c.record(99)
    assert h.n == 1 and c.n == 2
    assert h != c


def test_gauge_tracks_last_and_distribution():
    g = Gauge("mshr")
    for v in (3, 9, 1):
        g.record(v)
    s = g.summary()
    assert g.last == 1
    assert s["n"] == 3 and s["max"] == 9 and s["last"] == 1
