"""Invariants of the log2 histogram/gauge primitives."""

import random

import pytest

from repro.spans.histogram import Gauge, Histogram, N_BUCKETS


def test_bucket_edges_are_monotone():
    uppers = [Histogram.bucket_upper(i) for i in range(N_BUCKETS)]
    assert uppers[0] == 0
    assert all(a < b for a, b in zip(uppers, uppers[1:]))


def test_record_places_value_in_covering_bucket():
    h = Histogram()
    for v in (0, 1, 2, 3, 4, 63, 64, 1023, 1024, 1 << 40):
        h.record(v)
        i = v.bit_length()
        lo = 0 if i == 0 else 1 << (i - 1)
        assert lo <= v <= Histogram.bucket_upper(i)
    assert h.n == 10


def test_negative_values_clamp_to_zero_bucket():
    h = Histogram()
    h.record(-5)
    assert h.counts[0] == 1
    assert h.min == 0 and h.total == 0


def test_percentiles_monotone_in_p():
    h = Histogram()
    rng = random.Random(7)
    for _ in range(500):
        h.record(rng.randrange(0, 100_000))
    ps = [h.percentile(p) for p in (0, 10, 50, 90, 95, 99, 100)]
    assert all(a <= b for a, b in zip(ps, ps[1:]))


def test_percentile_upper_bounds_true_order_statistic():
    h = Histogram()
    rng = random.Random(11)
    samples = sorted(rng.randrange(0, 10_000) for _ in range(1000))
    for v in samples:
        h.record(v)
    for p in (50, 95, 99):
        true = samples[min(int(p / 100 * len(samples)), len(samples) - 1)]
        assert h.percentile(p) >= true
    # ...and never above the observed max
    assert h.percentile(99) <= h.max


def test_empty_histogram_is_inert():
    h = Histogram()
    assert h.n == 0 and h.mean == 0.0 and h.percentile(95) == 0
    assert h.summary()["max"] == 0


def test_percentile_zero_is_exactly_the_min():
    # the generic bucket walk returns the first non-empty bucket's
    # *upper* edge, which overshoots whenever min is mid-bucket — p=0
    # must return the observed min itself
    h = Histogram()
    for v in (5, 9, 1000):                # 5 lands in bucket [4, 7]
        h.record(v)
    assert h.percentile(0) == h.min == 5
    assert h.percentile(0) <= h.percentile(0.001)


def test_percentile_hundred_is_exactly_the_max():
    h = Histogram()
    for v in (3, 70, 12345):
        h.record(v)
    assert h.percentile(100) == h.max == 12345


def test_percentile_rejects_out_of_range_p():
    h = Histogram()
    h.record(1)
    for bad in (-1, -0.001, 100.001, 200):
        with pytest.raises(ValueError):
            h.percentile(bad)
    empty = Histogram()                    # validation precedes n == 0
    with pytest.raises(ValueError):
        empty.percentile(-5)


def test_empty_percentile_consistent_with_summary():
    # every percentile of an empty histogram is 0, matching the 0
    # min/max summary() reports — no None leaking into one but not
    # the other
    h = Histogram()
    for p in (0, 50, 95, 100):
        assert h.percentile(p) == 0
    s = h.summary()
    assert s["min"] == s["max"] == s["p50"] == s["p95"] == 0


def test_percentile_properties_random_samples():
    # property-style sweep: for many random histograms, percentile is
    # monotone in p, bounded by [min, max], with exact endpoints
    rng = random.Random(42)
    for _ in range(50):
        h = Histogram()
        for _ in range(rng.randrange(1, 60)):
            h.record(rng.randrange(0, 1 << rng.randrange(1, 30)))
        ps = [0, 1, 25, 50, 75, 95, 99, 100]
        vals = [h.percentile(p) for p in ps]
        assert all(a <= b for a, b in zip(vals, vals[1:]))
        assert vals[0] == h.min and vals[-1] == h.max
        assert all(h.min <= v <= h.max for v in vals)


def test_merge_is_associative_and_matches_pooled():
    rng = random.Random(3)
    parts = [[rng.randrange(0, 1 << 20) for _ in range(200)]
             for _ in range(3)]
    hists = []
    for vals in parts:
        h = Histogram()
        for v in vals:
            h.record(v)
        hists.append(h)
    pooled = Histogram()
    for v in [v for vals in parts for v in vals]:
        pooled.record(v)
    left = hists[0].copy().merge(hists[1]).merge(hists[2])
    right = hists[0].copy().merge(hists[1].copy().merge(hists[2]))
    assert left == right == pooled
    assert left.mean == pytest.approx(pooled.mean)


def test_copy_is_independent():
    h = Histogram()
    h.record(10)
    c = h.copy()
    c.record(99)
    assert h.n == 1 and c.n == 2
    assert h != c


def test_gauge_tracks_last_and_distribution():
    g = Gauge("mshr")
    for v in (3, 9, 1):
        g.record(v)
    s = g.summary()
    assert g.last == 1
    assert s["n"] == 3 and s["max"] == 9 and s["last"] == 1
