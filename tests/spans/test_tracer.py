"""Span lifecycle, sampling determinism, and stream format."""

import json

import pytest

from repro.mem.request import MemRequest
from repro.spans import METRICS, STAGES, SpanTracer, stage_durations
from repro.spans.recording import trace_mix


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    path = tmp_path_factory.mktemp("spans") / "w8.jsonl"
    result, tracer = trace_mix("W8", policy="baseline", scale="smoke",
                               seed=1, path=str(path), sample_every=8)
    rows = [json.loads(line) for line in
            path.read_text().splitlines() if line]
    return result, tracer, rows


def test_spans_finish_and_stream(traced):
    _, tracer, rows = traced
    assert tracer.finished > 50
    spans = [r for r in rows if r["t"] == "span"]
    assert len(spans) == tracer.finished
    assert rows[0]["t"] == "meta"
    assert rows[0]["mix"] == "W8" and rows[0]["sample"] == 8


def test_stage_names_valid_and_stamps_monotone(traced):
    _, _, rows = traced
    for r in rows:
        if r["t"] != "span":
            continue
        names = [s for s, _ in r["stages"]]
        ticks = [t for _, t in r["stages"]]
        assert set(names) <= set(STAGES)
        assert names[0] == "issue" and names[-1] == "done"
        assert all(a <= b for a, b in zip(ticks, ticks[1:])), r


def test_miss_durations_partition_total(traced):
    _, _, rows = traced
    checked = 0
    for r in rows:
        if r["t"] != "span":
            continue
        cls, durs = stage_durations([(s, t) for s, t in r["stages"]])
        assert set(durs) <= set(METRICS)
        if cls == "miss" and "return_path" in durs:
            parts = (durs["ring_fwd"] + durs["llc_wait"] +
                     durs["to_dram"] + durs["dram_queue"] +
                     durs["bank_service"] + durs["return_path"])
            assert parts == durs["total"], r
            checked += 1
    assert checked > 10


def test_both_sides_and_gauges_observed(traced):
    _, tracer, rows = traced
    srcs = {r["src"] for r in rows if r["t"] == "span"}
    assert "gpu" in srcs
    assert any(s.startswith("cpu") for s in srcs)
    gauge_names = {r["name"] for r in rows if r["t"] == "gauge"}
    assert {"llc_mshr", "dram_queue", "dram_bank_queue"} <= gauge_names
    assert set(tracer.gauges) == gauge_names


def test_sampling_is_deterministic(tmp_path):
    p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    trace_mix("W8", policy="baseline", scale="smoke", seed=1,
              path=str(p1), sample_every=32)
    trace_mix("W8", policy="baseline", scale="smoke", seed=1,
              path=str(p2), sample_every=32)
    assert p1.read_bytes() == p2.read_bytes()


def test_sample_rate_bounds_span_count(traced):
    _, tracer, _ = traced
    coarse = SpanTracer(sample_every=10_000)
    # 1-in-8 sampled ~1/8 of eligible requests; a 1-in-10000 tracer on
    # the same run would have sampled at most a handful
    assert tracer.started <= tracer._eligible // 8 + 1
    assert coarse.sample_every == 10_000


def test_writes_and_callbackless_requests_ineligible():
    tr = SpanTracer(sample_every=1)
    wb = MemRequest(0x40, True, "cpu0", "writeback")
    rd = MemRequest(0x80, False, "cpu0", "load")   # no on_done
    tr.maybe_start(wb, 0)
    tr.maybe_start(rd, 0)
    assert wb.span is None and rd.span is None and tr.started == 0


def test_sample_every_validated():
    with pytest.raises(ValueError):
        SpanTracer(sample_every=0)


def test_format_report_mentions_stages(traced):
    _, tracer, _ = traced
    rep = tracer.format_report()
    assert "dram_queue" in rep and "cpu:" in rep and "gpu:" in rep
