"""Tests for the TAP-lite and DRP-lite LLC-management extensions."""

from repro.config import default_config
from repro.mem.request import MemRequest
from repro.mixes import Mix
from repro.policies import make_policy
from repro.policies.drp import DrpPolicy, ReuseBook
from repro.policies.tap import TapPolicy
from repro.sim.system import HeterogeneousSystem


def run(policy, game="Quake4", apps=(403, 462), seed=1):
    cfg = default_config(scale="smoke", n_cpus=len(apps), seed=seed)
    return HeterogeneousSystem(cfg, Mix("t", game, apps), policy).run()


# -- TAP -------------------------------------------------------------------


def test_tap_registry_and_attach():
    pol = make_policy("tap")
    assert isinstance(pol, TapPolicy)
    s = run(pol)
    assert s.llc.fill_rrpv_fn is not None
    assert pol.samples > 0


def test_tap_demotes_only_gpu_when_flagged():
    pol = TapPolicy()
    pol.demote_gpu = True
    pol._max_rrpv = 3
    assert pol._fill_rrpv(MemRequest(0, False, "gpu", "texture")) == 3
    assert pol._fill_rrpv(MemRequest(0, False, "cpu0", "load")) is None
    pol.demote_gpu = False
    assert pol._fill_rrpv(MemRequest(0, False, "gpu", "texture")) is None


def test_tap_run_completes_and_keeps_gpu_alive():
    pol = make_policy("tap")
    s = run(pol)
    assert s.gpu_fps() > 0
    assert all(c.done for c in s.cores)


# -- DRP -------------------------------------------------------------------


def test_reuse_book_probability_and_decay():
    b = ReuseBook()
    assert b.prob() == 0.5             # no evidence yet
    b.reused, b.dead = 30, 10
    assert b.prob() == 0.75
    b.decay()
    assert (b.reused, b.dead) == (15, 5)


def test_drp_insertion_steering():
    pol = DrpPolicy(hi=0.6, lo=0.2, min_samples=4)
    pol._max_rrpv = 3
    hot = pol.book("depth")
    hot.reused, hot.dead = 90, 10
    cold = pol.book("texture")
    cold.reused, cold.dead = 1, 99
    thin = pol.book("vertex")          # below min_samples
    thin.reused = 1
    assert pol._fill_rrpv(MemRequest(0, False, "gpu", "depth")) == 0
    assert pol._fill_rrpv(MemRequest(0, False, "gpu", "texture")) == 3
    assert pol._fill_rrpv(MemRequest(0, False, "gpu", "vertex")) is None
    assert pol._fill_rrpv(MemRequest(0, False, "cpu1", "load")) is None


def test_drp_learns_from_live_eviction_stream():
    pol = make_policy("drp")
    s = run(pol, game="HL2", apps=(437, 450))
    assert pol.books                    # observed GPU evictions
    total = sum(b.total for b in pol.books.values())
    assert total > 0
    # render-target classes exist in the books
    assert {"depth", "color", "texture"} & set(pol.books)


def test_drp_run_is_deterministic():
    a = run(make_policy("drp"), seed=5)
    b = run(make_policy("drp"), seed=5)
    assert a.sim.now == b.sim.now
    assert a.gpu_fps() == b.gpu_fps()
