"""The top view's Prometheus parser, quantile recovery, and frame
renderer — exercised against real ``MetricsRegistry.render()`` output,
so the parser and the renderer can never drift apart."""

import io
import json

from repro.metrics import MetricsRegistry
from repro.metrics.top import (_parse_address, hist_quantile,
                               parse_prometheus, render_frame, run_top,
                               sample_value)


def _families():
    reg = MetricsRegistry()
    reg.counter("repro_jobs_queued_total", "jobs enqueued").inc(5)
    done = reg.counter("repro_jobs_done_total", labels=("ok",))
    done.labels(ok="true").inc(4)
    done.labels(ok="false").inc(1)
    hits = reg.counter("repro_cache_hits_total", labels=("layer",))
    hits.labels(layer="memory").inc(2)
    hits.labels(layer="disk").inc(1)
    h = reg.histogram("repro_request_ns", labels=("transport",))
    child = h.labels(transport="socket")
    for v in (100, 100, 100, 100_000):
        child.record(v)
    return parse_prometheus(reg.render())


class TestParse:
    def test_roundtrip_against_render(self):
        fam = _families()
        assert fam["repro_jobs_queued_total"]["type"] == "counter"
        assert fam["repro_jobs_queued_total"]["help"] == "jobs enqueued"
        assert fam["repro_request_ns"]["type"] == "histogram"
        # bucket/sum/count series fold under the base family
        names = {s[0] for s in fam["repro_request_ns"]["samples"]}
        assert "repro_request_ns_bucket" in names
        assert "repro_request_ns_sum" in names
        assert "repro_request_ns_count" in names
        assert "repro_request_ns" in fam
        assert "repro_request_ns_bucket" not in fam

    def test_sample_value_sums_and_filters(self):
        fam = _families()
        assert sample_value(fam, "repro_jobs_queued_total") == 5
        assert sample_value(fam, "repro_jobs_done_total") == 5
        assert sample_value(fam, "repro_jobs_done_total", ok="true") == 4
        assert sample_value(fam, "repro_cache_hits_total",
                            layer="disk") == 1
        assert sample_value(fam, "repro_missing_total", default=-1) == -1
        # histogram series never leak into the plain sum
        assert sample_value(fam, "repro_request_ns", default=-1) == -1

    def test_hist_quantile_from_buckets(self):
        fam = _families()
        # 3 of 4 samples land in the le=127 bucket (value 100)
        p50 = hist_quantile(fam, "repro_request_ns", 0.5,
                            transport="socket")
        assert p50 == 127
        p99 = hist_quantile(fam, "repro_request_ns", 0.99,
                            transport="socket")
        assert p99 == 131071            # upper edge of 100_000's bucket
        assert hist_quantile(fam, "repro_request_ns", 0.5,
                             transport="tcp") is None
        assert hist_quantile(fam, "repro_nope_ns", 0.5) is None


class TestAddress:
    def test_host_port_is_tcp(self):
        assert _parse_address("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert _parse_address(":9000") == ("127.0.0.1", 9000)

    def test_everything_else_is_a_path(self):
        assert _parse_address("/tmp/repro.sock") == "/tmp/repro.sock"
        assert _parse_address("host:notaport") == "host:notaport"


class TestRenderFrame:
    def test_frame_lines(self):
        health = {"ok": True, "pid": 42, "uptime": 12.0,
                  "draining": False, "queue_depth": 1,
                  "pool": {"size": 2, "alive": 2, "busy": 1,
                           "recycled": 0}}
        frame = render_frame(_families(), health)
        assert "[ok]" in frame
        assert "pid 42" in frame
        assert "2/2 alive" in frame
        assert "5 queued" in frame
        assert "4 done  1 failed" in frame
        assert "2 mem + 1 disk hits" in frame
        assert "p50 127ns" in frame

    def test_degraded_and_draining(self):
        assert "[DEGRADED]" in render_frame({}, {"ok": False})
        assert "[DRAINING]" in render_frame(
            {}, {"ok": False, "draining": True})

    def test_drain_line(self):
        frame = render_frame({}, {"ok": True,
                                  "last_drain": {"submitted": 3}})
        assert 'drain  last: {"submitted": 3}' in frame


class TestRunTop:
    def test_once_against_dead_socket(self, tmp_path):
        out = io.StringIO()
        rc = run_top(address=str(tmp_path / "nope.sock"), once=True,
                     out=out)
        assert rc == 1
        assert "no daemon" in out.getvalue()

    def test_daemon_vanishing_shows_stale_banner_keeps_last_frame(
            self, monkeypatch):
        """The view degrades instead of exiting when the daemon
        disappears between refreshes: a STALE banner over the last
        good frame, still retrying."""
        healthy = {"/metrics": (200, b"repro_jobs_queued_total 5\n"),
                   "/healthz": (200, json.dumps(
                       {"ok": True, "pid": 42, "uptime": 1.0,
                        "pool": {"size": 1, "alive": 1},
                        "queue_depth": 0}).encode())}
        calls = {"n": 0}

        def fetch_fn(address, path, timeout=5.0):
            calls["n"] += 1
            if calls["n"] > 2:          # daemon dies after frame one
                raise OSError("connection refused")
            return healthy[path]

        sleeps = []

        def sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) >= 2:        # one good frame, one stale
                raise KeyboardInterrupt

        monkeypatch.setattr("repro.metrics.top.time.sleep", sleep)
        out = io.StringIO()
        rc = run_top(address="gone.sock", interval=0.01, out=out,
                     fetch_fn=fetch_fn)
        assert rc == 0                  # Ctrl-C, not a crash
        text = out.getvalue()
        assert "[STALE" in text
        assert "retrying" in text
        # the last-seen data is still on screen under the banner
        assert text.count("repro service  pid 42") == 2
