"""The metric primitives: counters, gauges, histograms, and their
snapshot (to_dict/from_dict) and merge semantics."""

import pytest

from repro.metrics.instruments import N_BUCKETS, Counter, Gauge, Histogram


class TestCounter:
    def test_inc_and_value(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_roundtrip_and_merge(self):
        a, b = Counter(), Counter()
        a.inc(3)
        b.inc(7)
        a.merge(Counter.from_dict(b.to_dict()))
        assert a.value == 10

    def test_equality(self):
        a, b = Counter(), Counter()
        a.inc(2)
        assert a != b
        b.inc(2)
        assert a == b


class TestHistogram:
    def test_log2_bucketing(self):
        h = Histogram()
        for v in (0, 1, 2, 3, 4, 1023, 1024):
            h.record(v)
        assert h.n == 7
        assert h.min == 0 and h.max == 1024
        assert sum(h.counts) == 7

    def test_roundtrip_preserves_everything(self):
        h = Histogram()
        for v in (5, 50, 500, 5000):
            h.record(v)
        h2 = Histogram.from_dict(h.to_dict())
        assert h2.counts == h.counts
        assert (h2.n, h2.total, h2.min, h2.max) == \
               (h.n, h.total, h.min, h.max)

    def test_to_dict_is_sparse(self):
        h = Histogram()
        h.record(7)
        d = h.to_dict()
        assert len(d["counts"]) == 1     # one non-empty bucket only
        assert all(isinstance(k, str) for k in d["counts"])

    def test_merge_adds_buckets(self):
        a, b = Histogram(), Histogram()
        a.record(10)
        b.record(10)
        b.record(100000)
        a.merge(b)
        assert a.n == 3
        assert a.max == 100000

    def test_empty_roundtrip(self):
        h = Histogram.from_dict(Histogram().to_dict())
        assert h.n == 0 and sum(h.counts) == 0

    def test_bucket_count_is_pinned(self):
        assert N_BUCKETS == 65
        assert len(Histogram().counts) == N_BUCKETS


class TestGauge:
    def test_set_is_record(self):
        g = Gauge()
        g.set(5)
        g.set(9)
        assert g.last == 9
        assert g.hist.n == 2

    def test_roundtrip(self):
        g = Gauge()
        g.record(3)
        g.record(11)
        g2 = Gauge.from_dict(g.to_dict())
        assert g2.last == 11
        assert g2.hist.n == 2

    def test_merge_follows_other_last(self):
        a, b = Gauge(), Gauge()
        a.set(1)
        b.set(42)
        a.merge(b)
        assert a.last == 42
        assert a.hist.n == 2

    def test_merge_empty_keeps_last(self):
        a, b = Gauge(), Gauge()
        a.set(7)
        a.merge(b)                      # b never recorded
        assert a.last == 7
        assert a.hist.n == 1
