"""Import-compat: ``repro.spans.histogram`` is a shim over
``repro.metrics.instruments`` — one implementation, every historical
import path."""

import repro.metrics.instruments as instruments
import repro.spans
import repro.spans.histogram as shim


def test_shim_reexports_same_classes():
    assert shim.Histogram is instruments.Histogram
    assert shim.Gauge is instruments.Gauge
    assert shim.N_BUCKETS is instruments.N_BUCKETS


def test_spans_package_reexport():
    assert repro.spans.Histogram is instruments.Histogram
    assert repro.spans.Gauge is instruments.Gauge


def test_isinstance_across_paths():
    # an instrument built via the old path is the new type, and
    # merges with one built via the new path
    old = shim.Histogram()
    new = instruments.Histogram()
    old.record(8)
    new.record(8)
    new.merge(old)
    assert isinstance(old, instruments.Histogram)
    assert new.n == 2
