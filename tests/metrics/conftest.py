"""Shared fixtures: isolate the process-global metrics state per test."""

import pytest

from repro.metrics import MetricsRegistry, set_registry
from repro.metrics.oplog import disable as disable_oplog


@pytest.fixture
def fresh_registry():
    """A fresh process-global registry, restored afterwards."""
    reg = MetricsRegistry()
    old = set_registry(reg)
    yield reg
    set_registry(old)


@pytest.fixture
def no_oplog():
    """Ensure the global oplog is the disabled sentinel, before and
    after."""
    disable_oplog()
    yield
    disable_oplog()
