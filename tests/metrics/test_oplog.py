"""The structured operational log and its per-trace analysis view."""

import io
import json

import pytest

from repro.analysis.ingest import MalformedLineWarning
from repro.analysis.oplog import OpLogView
from repro.metrics.oplog import (OpLog, configure, disable,
                                 mint_trace_id, oplog)


class TestMint:
    def test_shape_and_uniqueness(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 16 for t in ids)
        assert all(int(t, 16) >= 0 for t in ids)


class TestOpLog:
    def test_emits_one_json_line(self):
        buf = io.StringIO()
        log = OpLog(stream=buf)
        log.emit("started", trace_id="abc", label="M1")
        rec = json.loads(buf.getvalue())
        assert rec["event"] == "started"
        assert rec["trace_id"] == "abc"
        assert rec["label"] == "M1"
        assert rec["level"] == "info"
        assert isinstance(rec["ts"], float)
        assert isinstance(rec["pid"], int)
        assert log.emitted == 1

    def test_level_threshold(self):
        buf = io.StringIO()
        log = OpLog(stream=buf, level="warning")
        log.emit("quiet", level="debug")
        log.emit("quiet", level="info")
        log.emit("loud", level="warning")
        lines = buf.getvalue().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "loud"

    def test_bad_level_refused(self):
        with pytest.raises(ValueError, match="unknown log level"):
            OpLog(stream=io.StringIO(), level="loudest")

    def test_path_sink_appends(self, tmp_path):
        p = tmp_path / "ops.jsonl"
        log = OpLog(path=str(p))
        log.emit("a")
        log.close()
        log2 = OpLog(path=str(p))
        log2.emit("b")
        log2.close()
        events = [json.loads(ln)["event"]
                  for ln in p.read_text().splitlines()]
        assert events == ["a", "b"]

    def test_closed_log_drops(self):
        buf = io.StringIO()
        log = OpLog(stream=buf)
        log.close()
        log.emit("late")
        assert buf.getvalue() == ""


class TestGlobal:
    def test_disabled_sentinel_is_noop(self, no_oplog):
        log = oplog()
        assert not log.enabled
        log.emit("anything", trace_id="t")   # must not raise
        assert log.emitted == 0

    def test_configure_then_disable(self, no_oplog, tmp_path):
        p = tmp_path / "ops.jsonl"
        log = configure(path=str(p), level="debug")
        assert oplog() is log
        oplog().emit("hello", level="debug")
        disable()
        assert not oplog().enabled
        assert json.loads(p.read_text())["event"] == "hello"


def _write_oplog(path, records):
    with open(path, "w", encoding="utf-8") as fh:
        for r in records:
            fh.write(json.dumps(r) + "\n")


class TestOpLogView:
    def _sample(self, path):
        # trace "aaa" executes; trace "bbb" coalesces onto it.
        _write_oplog(path, [
            {"ts": 1.0, "event": "submit", "trace_id": "aaa",
             "label": "M1", "client": "c1"},
            {"ts": 1.1, "event": "queued", "trace_id": "aaa"},
            {"ts": 1.2, "event": "submit", "trace_id": "bbb",
             "label": "M1", "client": "c2"},
            {"ts": 1.3, "event": "coalesced", "trace_id": "bbb",
             "exec_trace_id": "aaa"},
            {"ts": 1.4, "event": "started", "trace_id": "aaa"},
            {"ts": 2.0, "event": "done", "trace_id": "aaa",
             "ok": True, "source": "executed", "elapsed": 0.6},
        ])
        return OpLogView.load(str(path))

    def test_trace_ids_in_order(self, tmp_path):
        view = self._sample(tmp_path / "ops.jsonl")
        assert view.trace_ids() == ["aaa", "bbb"]
        assert view.skipped == 0

    def test_waiter_follows_winner(self, tmp_path):
        view = self._sample(tmp_path / "ops.jsonl")
        events = [r["event"] for r in view.trace("bbb")]
        assert events == ["submit", "queued", "submit", "coalesced",
                          "started", "done"]
        assert [r["event"] for r in view.trace("bbb", follow=False)] \
            == ["submit", "coalesced"]

    def test_lifecycle(self, tmp_path):
        view = self._sample(tmp_path / "ops.jsonl")
        winner = view.lifecycle("aaa")
        assert winner["ok"] is True
        assert winner["source"] == "executed"
        assert winner["coalesced_onto"] is None
        waiter = view.lifecycle("bbb")
        assert waiter["coalesced_onto"] == "aaa"
        assert waiter["ok"] is True          # settled via the winner
        assert waiter["client"] == "c2"

    def test_join_by_label(self, tmp_path):
        view = self._sample(tmp_path / "ops.jsonl")
        spans = [{"label": "M1", "t": "span"},
                 {"label": "other", "t": "span"}]
        joined = view.join(spans)
        assert set(joined) == {"aaa", "bbb"}
        assert all(len(v) == 1 for v in joined.values())
        only = view.join(spans, trace_id="aaa")
        assert set(only) == {"aaa"}

    def test_format_renders_flow(self, tmp_path):
        view = self._sample(tmp_path / "ops.jsonl")
        text = view.format()
        assert "ok/executed" in text
        assert "[rode aaa]" in text
        assert text.splitlines()[0].startswith("trace")

    def test_malformed_lines_counted(self, tmp_path):
        p = tmp_path / "ops.jsonl"
        p.write_text('{"ts": 1.0, "event": "submit", "trace_id": "x"}\n'
                     "not json\n")
        with pytest.warns(MalformedLineWarning):
            view = OpLogView.load(str(p))
        assert view.skipped == 1
        assert "malformed" in view.format()
