"""The persist_stats read-merge-write is race-free: two writers on one
store never lose each other's deltas (the pre-fix behaviour was
last-writer-wins)."""

import threading

import pytest

from repro.exec.cache import ResultCache

try:
    import fcntl                                    # noqa: F401
    HAVE_FLOCK = True
except ImportError:                                 # pragma: no cover
    HAVE_FLOCK = False

pytestmark = pytest.mark.skipif(
    not HAVE_FLOCK, reason="persist_stats locking needs fcntl")


def test_single_writer_accumulates(tmp_path):
    root = str(tmp_path / "store")
    cache = ResultCache(root=root, salt="t")
    cache.stats.misses = 3
    merged = cache.persist_stats()
    assert merged["misses"] == 3
    # second call with no new activity is a no-op
    assert cache.persist_stats()["misses"] == 3
    cache.stats.misses = 5
    assert cache.persist_stats()["misses"] == 5
    assert ResultCache(root=root, salt="t").persisted_stats()["misses"] == 5


def test_two_writer_race_loses_nothing(tmp_path):
    """Many concurrent writers, each folding its own delta in
    repeatedly; the store total must equal the sum of every delta."""
    root = str(tmp_path / "store")
    writers, rounds, per_round = 4, 25, 2
    barrier = threading.Barrier(writers)
    errors = []

    def writer():
        cache = ResultCache(root=root, salt="t")
        try:
            barrier.wait(timeout=30)
            for _ in range(rounds):
                cache.stats.misses += per_round
                cache.stats.stores += 1
                cache.persist_stats()
        except Exception as exc:       # pragma: no cover - diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    totals = ResultCache(root=root, salt="t").persisted_stats()
    assert totals["misses"] == writers * rounds * per_round
    assert totals["stores"] == writers * rounds
