"""The registry: families, labels, snapshot/delta/merge, rendering."""

import json

import pytest

from repro import metrics
from repro.metrics import MetricsRegistry, snapshot_delta
from repro.metrics.registry import _child_key


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestFamilies:
    def test_get_or_create_is_idempotent(self, reg):
        a = reg.counter("repro_x_total", "help text")
        b = reg.counter("repro_x_total")
        assert a is b

    def test_kind_conflict_raises(self, reg):
        reg.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_label_conflict_raises(self, reg):
        reg.counter("repro_x_total", labels=("layer",))
        with pytest.raises(ValueError, match="labels"):
            reg.counter("repro_x_total", labels=("other",))

    def test_bad_names_refused(self, reg):
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("ok_name", labels=("bad-label",))

    def test_labeled_children_are_distinct(self, reg):
        fam = reg.counter("repro_hits_total", labels=("layer",))
        fam.labels(layer="memory").inc(2)
        fam.labels(layer="disk").inc(1)
        assert fam.labels(layer="memory").value == 2
        assert fam.labels(layer="disk").value == 1

    def test_wrong_labels_refused(self, reg):
        fam = reg.counter("repro_hits_total", labels=("layer",))
        with pytest.raises(ValueError, match="takes labels"):
            fam.labels(wrong="x")

    def test_anonymous_child_forwarding(self, reg):
        fam = reg.counter("repro_plain_total")
        fam.inc(3)
        assert fam.value == 3
        g = reg.gauge("repro_depth")
        g.set(7)
        assert g.labels().last == 7


class TestSnapshotMerge:
    def test_snapshot_is_jsonable(self, reg):
        reg.counter("repro_a_total").inc(2)
        reg.histogram("repro_h_ns").record(1000)
        snap = reg.snapshot()
        assert json.loads(json.dumps(snap)) == snap

    def test_merge_recreates_unknown_families(self, reg):
        reg.counter("repro_a_total", "h", labels=("k",)) \
           .labels(k="x").inc(5)
        reg.gauge("repro_g").set(3)
        reg.histogram("repro_h_ns").record(64)
        other = MetricsRegistry()
        other.merge(reg.snapshot())
        assert other.render() == reg.render()

    def test_merge_adds_counters(self, reg):
        reg.counter("repro_a_total").inc(5)
        reg.merge(reg.snapshot())
        assert reg.counter("repro_a_total").value == 10

    def test_delta_exact(self, reg):
        c = reg.counter("repro_a_total")
        h = reg.histogram("repro_h_ns")
        c.inc(2)
        h.record(10)
        before = reg.snapshot()
        c.inc(3)
        h.record(99)
        delta = snapshot_delta(reg.snapshot(), before)
        assert delta["repro_a_total"]["children"][
            _child_key(())]["value"] == 3
        assert delta["repro_h_ns"]["children"][_child_key(())]["n"] == 1

    def test_empty_delta_is_empty(self, reg):
        reg.counter("repro_a_total").inc()
        snap = reg.snapshot()
        assert snapshot_delta(snap, snap) == {}

    def test_prev_plus_delta_equals_current(self, reg):
        """The pool's shipping invariant: merge(prev)+merge(delta)
        reconstructs the current registry exactly."""
        c = reg.counter("repro_a_total", labels=("k",))
        g = reg.gauge("repro_depth")
        c.labels(k="x").inc(4)
        g.set(2)
        prev = reg.snapshot()
        c.labels(k="x").inc(1)
        c.labels(k="y").inc(7)
        g.set(9)
        delta = snapshot_delta(reg.snapshot(), prev)
        rebuilt = MetricsRegistry()
        rebuilt.merge(prev)
        rebuilt.merge(delta)
        assert rebuilt.render() == reg.render()


class TestRender:
    def test_counter_and_gauge_lines(self, reg):
        reg.counter("repro_a_total", "things counted",
                    labels=("layer",)).labels(layer="x").inc(2)
        reg.gauge("repro_depth", "queue depth").set(4)
        text = reg.render()
        assert "# HELP repro_a_total things counted" in text
        assert "# TYPE repro_a_total counter" in text
        assert 'repro_a_total{layer="x"} 2' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 4" in text
        assert text.endswith("\n")

    def test_histogram_cumulative_buckets(self, reg):
        h = reg.histogram("repro_h_ns")
        h.record(3)                     # bucket 2, upper edge 3
        h.record(3)
        h.record(1000)                  # bucket 10, upper edge 1023
        text = reg.render()
        assert 'repro_h_ns_bucket{le="3"} 2' in text
        assert 'repro_h_ns_bucket{le="1023"} 3' in text
        assert 'repro_h_ns_bucket{le="+Inf"} 3' in text
        assert "repro_h_ns_sum 1006" in text
        assert "repro_h_ns_count 3" in text

    def test_label_escaping(self, reg):
        reg.counter("repro_a_total", labels=("k",)) \
           .labels(k='we"ird\nvalue').inc()
        text = reg.render()
        assert 'k="we\\"ird\\nvalue"' in text

    def test_empty_registry_renders_empty(self, reg):
        assert reg.render() == ""


class TestGlobalAccessors:
    def test_convenience_helpers_hit_current_registry(self, fresh_registry):
        metrics.counter("repro_conv_total", "h").inc()
        metrics.counter("repro_conv_labeled_total", labeled="yes").inc(2)
        metrics.gauge("repro_conv_depth").set(3)
        metrics.histogram("repro_conv_ns").record(5)
        text = fresh_registry.render()
        assert "repro_conv_total 1" in text
        assert 'repro_conv_labeled_total{labeled="yes"} 2' in text
        assert "repro_conv_depth 3" in text
        assert "repro_conv_ns_count 1" in text
