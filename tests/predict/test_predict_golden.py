"""Golden bit-identity: the predictor seam must not move a single bit.

ISSUE 8's tentpole refactor extracted the FRPU's Eqs. 1-3 extrapolator
out of ``repro.core.frpu`` into ``repro.predict.rtp.RtpExtrapolator``
behind the :class:`~repro.predict.base.Predictor` interface, and
rewired :class:`~repro.core.qos.QoSController` to speak only that
interface.  These tests prove the refactor is *pure*: a full
``throtcpuprio`` simulation under the new seam produces a bit-identical
:class:`~repro.sim.metrics.RunResult` AND a bit-identical telemetry
byte stream compared to the pre-seam wiring.

The reference is re-created here as a verbatim copy of the pre-refactor
code (the same idiom the batching PR used for its bit-identity proof):

* ``LegacyFrameRatePredictor`` — ``src/repro/core/frpu.py`` at the
  parent commit, copied line-for-line (no ``Predictor`` base class, no
  ``seed``, phase checked directly, the old int-typed ``actual`` in
  ``_log_error``, and **without** the first-frame ``C_inter`` floor —
  the floor must be inert on these runs);
* ``LegacyQoSController`` — the old ``_chain_frame_done`` (checks
  ``phase is Phase.LEARNING`` instead of ``not ready``), the old
  ``recompute`` (reads ``frpu.learned.llc_accesses`` directly) and the
  old inline ``storage_overhead_bits``;
* ``LegacyThrottlePolicy`` — attaches the legacy controller with the
  old constructor call (no ``seed=``).

Each mix x seed runs both wirings at smoke scale with telemetry
attached (telemetry-attached runs are never cached, so both executions
are genuinely fresh) and compares the full result dict plus a SHA-256
over the canonicalised record stream.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, replace
from typing import Optional

import pytest

from repro.config import default_config
from repro.core.qos import QoSController
from repro.core.rtp_table import RtpInfoTable
from repro.gpu.pipeline import FrameRecord, GpuPipeline
from repro.mixes import mix
from repro.policies.throttle import ThrottlePolicy
from repro.predict.rtp import LearnedFrame, Phase
from repro.sim.runner import run_system
from repro.telemetry import Telemetry

# --------------------------------------------------------------------------
# Verbatim pre-refactor reference (HEAD^ src/repro/core/frpu.py), with one
# metadata addition: a ``name`` class attribute so the *new* metrics
# collector (which tags RunResult.predictor) reads the same tag from both
# wirings.  ``name`` is never consulted by the legacy control path.
# --------------------------------------------------------------------------


class LegacyFrameRatePredictor:
    name = "rtp"                       # metrics tag only (see above)

    MID_FRAME_BOUND = 4

    def __init__(self, rtp_entries: int = 64, verify_threshold: float = 0.25,
                 correct_throttle: bool = True, skip_frames: int = 1,
                 ewma_alpha: float = 0.4, telemetry=None):
        self.table = RtpInfoTable(rtp_entries)
        self.telemetry = telemetry
        self.verify_threshold = verify_threshold
        self.correct_throttle = correct_throttle
        self.skip_frames = skip_frames
        self.ewma_alpha = ewma_alpha
        self.phase = Phase.LEARNING
        self.learned: Optional[LearnedFrame] = None
        self.phase_transitions: list[tuple[int, Phase]] = []
        self.error_log: list[tuple[int, float, float]] = []
        self._mid_frame_prediction: dict[int, float] = {}
        self.frames_learned = 0
        self.frames_predicted = 0

    def predict_frame_cycles(self, pipeline: GpuPipeline) -> Optional[float]:
        if self.phase is not Phase.PREDICTION or self.learned is None:
            return None
        lam = pipeline.frame_progress
        c_avg = self.learned.c_avg
        records = pipeline.current_rtp_records()
        if records:
            cycles = sum(r.cycles for r in records)
            if self.correct_throttle:
                cycles -= sum(r.throttle_ticks for r in records)
            c_inter = max(cycles / len(records), 1.0)
        else:
            elapsed = pipeline.current_frame_elapsed_cycles()
            if self.correct_throttle:
                elapsed -= pipeline.current_frame_throttle_cycles()
            frac = lam * self.learned.n_rtp
            c_inter = (elapsed / frac) if frac > 0.05 else c_avg
        c_rtp = lam * c_inter + (1.0 - lam) * c_avg
        f = c_rtp * self.learned.n_rtp
        if 0.25 <= lam <= 0.75:
            self._note_mid_frame(pipeline._frame_idx, f)
        return f

    def _note_mid_frame(self, frame_idx: int, predicted: float) -> None:
        mid = self._mid_frame_prediction
        mid[frame_idx] = predicted
        while len(mid) > self.MID_FRAME_BOUND:
            del mid[min(mid)]

    def predicted_fps(self, pipeline: GpuPipeline, fps_nominal: float,
                      gpu_frame_cycles: int) -> Optional[float]:
        f = self.predict_frame_cycles(pipeline)
        if f is None or f <= 0:
            return None
        return fps_nominal * gpu_frame_cycles / f

    def on_frame_complete(self, rec: FrameRecord) -> None:
        if rec.index < self.skip_frames:
            return
        if self.phase is Phase.LEARNING:
            self._learn(rec)
            return
        self.frames_predicted += 1
        self._log_error(rec)
        if not self._verify(rec):
            self.table.reset()
            self.learned = None
            self._mid_frame_prediction.clear()
            self.phase = Phase.LEARNING
            self.phase_transitions.append((rec.index, Phase.LEARNING))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "frpu_phase", tick=rec.end_time, frame=rec.index,
                    phase=Phase.LEARNING.value,
                    actual_cycles=rec.cycles)
        else:
            self._refresh(rec)

    def _refresh(self, rec: FrameRecord) -> None:
        a = self.ewma_alpha
        learned = self.learned
        n = max(len(rec.rtps), 1)
        cycles = rec.cycles - (rec.throttle_ticks
                               if self.correct_throttle else 0)
        llc = sum(r.llc_accesses for r in rec.rtps)
        learned.c_avg = (1 - a) * learned.c_avg + a * (cycles / n)
        learned.llc_accesses = int((1 - a) * learned.llc_accesses + a * llc)
        learned.updates_per_rtp = ((1 - a) * learned.updates_per_rtp +
                                   a * sum(r.updates for r in rec.rtps) / n)
        learned.rtts_per_rtp = ((1 - a) * learned.rtts_per_rtp +
                                a * sum(r.n_rtts for r in rec.rtps) / n)
        learned.llc_per_rtp = (1 - a) * learned.llc_per_rtp + a * llc / n

    def _learn(self, rec: FrameRecord) -> None:
        self.table.reset()
        for r in rec.rtps:
            self.table.record(r.updates, r.cycles - (
                r.throttle_ticks if self.correct_throttle else 0),
                r.n_rtts, r.llc_accesses)
        n = self.table.n_rtps
        if n == 0:
            return
        entries = self.table.valid_entries()
        self.learned = LearnedFrame(
            n_rtp=n,
            c_avg=self.table.avg_cycles_per_rtp(),
            llc_accesses=self.table.total_llc_accesses(),
            updates_per_rtp=sum(e.updates for e in entries) / n,
            rtts_per_rtp=sum(e.n_rtts for e in entries) / n,
            llc_per_rtp=sum(e.llc_accesses for e in entries) / n,
        )
        self.frames_learned += 1
        self.phase = Phase.PREDICTION
        self.phase_transitions.append((rec.index, Phase.PREDICTION))
        if self.telemetry is not None:
            self.telemetry.emit(
                "frpu_phase", tick=rec.end_time, frame=rec.index,
                phase=Phase.PREDICTION.value, n_rtp=self.learned.n_rtp,
                c_avg=self.learned.c_avg, actual_cycles=rec.cycles)

    def _verify(self, rec: FrameRecord) -> bool:
        learned = self.learned
        if learned is None:
            return False
        if not rec.rtps:
            return False
        thr = self.verify_threshold

        def drift(observed: float, expected: float) -> float:
            if expected <= 0:
                return 0.0 if observed <= 0 else 1.0
            return abs(observed - expected) / expected

        n_rtp_obs = len(rec.rtps)
        if drift(n_rtp_obs, learned.n_rtp) > thr:
            return False
        upd = sum(r.updates for r in rec.rtps) / n_rtp_obs
        rtts = sum(r.n_rtts for r in rec.rtps) / n_rtp_obs
        llc = sum(r.llc_accesses for r in rec.rtps) / n_rtp_obs
        return (drift(upd, learned.updates_per_rtp) <= thr and
                drift(rtts, learned.rtts_per_rtp) <= thr and
                drift(llc, learned.llc_per_rtp) <= thr)

    def _log_error(self, rec: FrameRecord) -> None:
        mid = self._mid_frame_prediction
        for idx in [i for i in mid if i < rec.index]:
            del mid[idx]
        pred = mid.pop(rec.index, None)
        if pred is None:
            return
        actual = rec.cycles - (rec.throttle_ticks
                               if self.correct_throttle else 0)
        if actual > 0:
            self.error_log.append((rec.index, pred, float(actual)))
            if self.telemetry is not None:
                self.telemetry.emit(
                    "frpu_error", tick=rec.end_time, frame=rec.index,
                    predicted_cycles=pred, actual_cycles=float(actual),
                    error_pct=100.0 * (pred - actual) / actual)

    def percent_errors(self) -> list[float]:
        return [100.0 * (p - a) / a for _, p, a in self.error_log]

    def mean_abs_percent_error(self) -> float:
        errs = self.percent_errors()
        return sum(abs(e) for e in errs) / len(errs) if errs else 0.0


# --------------------------------------------------------------------------
# Pre-refactor controller wiring (HEAD^ src/repro/core/qos.py).
# --------------------------------------------------------------------------


class LegacyQoSController(QoSController):
    def __init__(self, sim, cfg, pipeline, gpu_frame_cycles,
                 dram_schedulers=(), correct_throttle=True, seed=0,
                 telemetry=None):
        super().__init__(sim, cfg, pipeline, gpu_frame_cycles,
                         dram_schedulers=dram_schedulers,
                         correct_throttle=correct_throttle, seed=seed,
                         telemetry=telemetry)
        # replace the seam-built predictor with the verbatim old one,
        # constructed exactly as the old controller did (no seed)
        self.frpu = LegacyFrameRatePredictor(
            rtp_entries=cfg.rtp_table_entries,
            verify_threshold=cfg.verify_threshold,
            correct_throttle=correct_throttle,
            telemetry=telemetry)

    def _chain_frame_done(self, prev):
        def handler(rec: FrameRecord) -> None:
            self.frpu.on_frame_complete(rec)
            if self.frpu.phase is Phase.LEARNING:
                self._disable()
            if prev is not None:
                prev(rec)
        return handler

    def recompute(self) -> None:
        self._c_recompute.inc()
        c_p = self.frpu.predict_frame_cycles(self.pipeline)
        if c_p is None:
            self._disable()
            return
        c_t = self.target_cycles_per_frame
        a = self.frpu.learned.llc_accesses if self.frpu.learned else 0
        if c_p >= c_t or a <= 0:
            self.atu.compute(c_p, c_t, max(a, 1))
            self._emit_atu(c_p, c_t, a, active=False)
            self._disable()
            return
        self.atu.compute(c_p, c_t, a)
        self._emit_atu(c_p, c_t, a, active=True)
        self._enable()

    def storage_overhead_bits(self) -> int:
        return self.frpu.table.storage_bits() + 12 * 32


class LegacyThrottlePolicy(ThrottlePolicy):
    def attach(self, system) -> None:
        self._system = system
        if system.gpu is None:
            return
        qos_cfg = system.cfg.qos
        if self.target_fps is not None:
            qos_cfg = replace(qos_cfg, target_fps=self.target_fps)
        if not self.cpu_priority:
            qos_cfg = replace(qos_cfg, cpu_priority_boost=False)
        self.qos = LegacyQoSController(
            system.sim, qos_cfg, system.gpu,
            system.cfg.scale.gpu_frame_cycles,
            dram_schedulers=self._schedulers,
            correct_throttle=self.correct_throttle,
            telemetry=system.telemetry)
        self.qos.start()


# --------------------------------------------------------------------------
# The golden comparison.
# --------------------------------------------------------------------------


def run_once(mix_name: str, seed: int, policy):
    m = mix(mix_name)
    cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=seed)
    tel = Telemetry()
    res = run_system(cfg, m, policy, telemetry=tel)
    tel.close()
    stream = json.dumps(tel.records, sort_keys=True).encode()
    return asdict(res), hashlib.sha256(stream).hexdigest()


@pytest.mark.parametrize("mix_name", ["M1", "M7"])
@pytest.mark.parametrize("seed", [1, 2])
def test_rtp_seam_is_bit_identical_to_preseam_frpu(mix_name, seed):
    new_res, new_sha = run_once(mix_name, seed,
                                ThrottlePolicy(cpu_priority=True))
    old_res, old_sha = run_once(mix_name, seed,
                                LegacyThrottlePolicy(cpu_priority=True))
    diff = [k for k in new_res if new_res[k] != old_res[k]]
    assert not diff, f"RunResult drift in field(s): {diff}"
    assert new_sha == old_sha, "telemetry byte stream drift"


def test_default_config_routes_to_the_reference_extrapolator():
    """The seam's default must BE the paper's extrapolator."""
    from repro.predict import RtpExtrapolator
    assert default_config(scale="smoke").qos.predictor == "rtp"
    m = mix("M1")
    cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
    pol = ThrottlePolicy(cpu_priority=True)
    run_system(cfg, m, pol)
    assert isinstance(pol.qos.frpu, RtpExtrapolator)
