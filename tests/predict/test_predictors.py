"""Unit tests for the predictor seam: registry/config sync, the
interface contract, first-frame/mid-frame edge cases, determinism, and
the prediction-error telemetry records (docs/predictors.md)."""

import json

import pytest

from repro.config import PREDICTORS, ConfigError, QosConfig
from repro.gpu.pipeline import FrameRecord, RtpRecord
from repro.predict import (EwmaBlendPredictor, LastFramePredictor,
                           PREDICTOR_NAMES, Predictor, RlsPredictor,
                           RtpExtrapolator, make_predictor)
from repro.predict.features import (FEATURE_NAMES, N_FEATURES,
                                    frame_features, partial_features)
from repro.telemetry import Telemetry


def frame(index, n_rtp=4, cycles_per_rtp=1000, updates=50, rtts=50,
          llc=2000, throttle=0):
    rtps = [RtpRecord(updates, cycles_per_rtp, rtts, llc, throttle)
            for _ in range(n_rtp)]
    return FrameRecord(index, cycles_per_rtp * n_rtp, llc * n_rtp, rtps,
                       throttle * n_rtp, end_time=index * 10_000)


class StubPipeline:
    """Minimal stand-in exposing the predictor observation surface."""

    def __init__(self, progress=0.5, records=None, elapsed=0.0,
                 throttle=0.0, frame_idx=10):
        self.frame_progress = progress
        self._records = records or []
        self._elapsed = elapsed
        self._throttle = throttle
        self._frame_idx = frame_idx

    def current_rtp_records(self):
        return self._records

    def current_frame_elapsed_cycles(self):
        return self._elapsed

    def current_frame_throttle_cycles(self):
        return self._throttle


# -- registry <-> config sync -------------------------------------------------

def test_registry_matches_config_literal():
    """config.PREDICTORS is a literal copy of the registry (kept so the
    config tree stays import-light); they must never drift."""
    assert tuple(PREDICTOR_NAMES) == tuple(PREDICTORS)


def test_make_predictor_builds_every_registered_name():
    for name in PREDICTOR_NAMES:
        p = make_predictor(name)
        assert isinstance(p, Predictor)
        assert p.name == name
        assert p.storage_bits() > 0


def test_make_predictor_unknown_name():
    with pytest.raises(KeyError, match="unknown predictor"):
        make_predictor("oracle")


def test_make_predictor_routes_rtp_knobs_only_to_reference():
    p = make_predictor("rtp", rtp_entries=8, verify_threshold=0.5)
    assert p.table.capacity == 8
    assert p.verify_threshold == 0.5
    # the same knobs must not leak into learned predictors
    q = make_predictor("rls", rtp_entries=8, verify_threshold=0.5)
    assert isinstance(q, RlsPredictor)
    assert not hasattr(q, "verify_threshold")


def test_make_predictor_passes_impl_kwargs():
    p = make_predictor("rls", forgetting=0.9)
    assert p.forgetting == 0.9


def test_qos_config_rejects_unknown_predictor():
    with pytest.raises(ConfigError, match="qos.predictor"):
        QosConfig(predictor="oracle")


def test_mix_spec_predictor_changes_cache_key():
    from repro.exec.specs import mix_spec
    base = mix_spec("M7", "throtcpuprio", "smoke", 1)
    rtp = mix_spec("M7", "throtcpuprio", "smoke", 1, predictor="rtp")
    rls = mix_spec("M7", "throtcpuprio", "smoke", 1, predictor="rls")
    # the default predictor IS rtp: explicit selection resolves to the
    # same machine, hence the same content hash (cache sharing)
    assert base.key("s") == rtp.key("s")
    assert rls.key("s") != base.key("s")


# -- the interface contract ---------------------------------------------------

@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_not_ready_predicts_none(name):
    p = make_predictor(name)
    assert not p.ready
    assert p.predict_frame_cycles(StubPipeline()) is None
    assert p.frame_llc_accesses() == 0
    assert p.predicted_fps(StubPipeline(), 60.0, 8000) is None


@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_cold_frames_skipped(name):
    p = make_predictor(name, skip_frames=2)
    p.on_frame_complete(frame(0))
    p.on_frame_complete(frame(1))
    assert not p.ready                  # both below skip_frames: ignored
    assert p.frames_learned == 0


@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_becomes_ready_and_predicts_positive(name):
    p = make_predictor(name)
    for i in range(1, 5):
        p.on_frame_complete(frame(i))
    assert p.ready
    pred = p.predict_frame_cycles(StubPipeline(
        0.5, [RtpRecord(50, 1000, 50, 2000, 0)] * 2, elapsed=2000.0,
        frame_idx=5))
    assert pred is not None and pred > 0
    assert p.frame_llc_accesses() > 0


@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_skip_frames_validation(name):
    with pytest.raises(ConfigError, match="skip_frames"):
        make_predictor(name, skip_frames=-1)


@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_error_log_scores_mid_frame_predictions(name):
    p = make_predictor(name)
    for i in range(1, 5):
        p.on_frame_complete(frame(i))
    p.predict_frame_cycles(StubPipeline(
        0.5, [RtpRecord(50, 1000, 50, 2000, 0)] * 2, elapsed=2000.0,
        frame_idx=5))
    p.on_frame_complete(frame(5))
    assert [i for i, _p, _a in p.error_log] == [5]
    (idx, pred, actual) = p.error_log[0]
    assert actual == pytest.approx(4000.0)
    assert p.percent_errors() == \
        [pytest.approx(100.0 * (pred - actual) / actual)]


# -- first-frame / mid-frame edge cases (the extraction's bug fixes) ----------

def learned_rtp():
    p = RtpExtrapolator()
    p.on_frame_complete(frame(1))       # learn: c_avg=1000, n_rtp=4
    assert p.ready
    return p


def test_rtp_zero_elapsed_before_first_rtp_falls_back_to_history():
    """Regression: a mid-frame prediction taken before any RTP (or any
    cycle) of the frame has run used to extrapolate C_inter = 0 and
    halve the projection; it must fall back to the learned average."""
    p = learned_rtp()
    pred = p.predict_frame_cycles(
        StubPipeline(progress=0.5, records=[], elapsed=0.0))
    assert pred == pytest.approx(1000 * 4)


def test_rtp_throttled_negative_elapsed_does_not_underpredict():
    """Regression: with throttle correction on, a frame whose accounted
    stall exceeds its elapsed cycles observed a *negative* C_inter and
    projected an absurdly fast frame — which opens the throttle at full
    width.  The natural-elapsed floor keeps the projection sane."""
    p = learned_rtp()
    pred = p.predict_frame_cycles(StubPipeline(
        progress=0.5, records=[], elapsed=100.0, throttle=500.0))
    assert pred == pytest.approx(1000 * 4)


def test_rtp_sane_elapsed_unaffected_by_the_floor():
    """The edge-case floor must be inert on the normal path (this is
    what keeps the golden byte streams bit-identical)."""
    p = learned_rtp()
    pred = p.predict_frame_cycles(
        StubPipeline(progress=0.25, records=[], elapsed=1500.0))
    # c_inter = 1500/(0.25*4) = 1500; (0.25*1500 + 0.75*1000) * 4
    assert pred == pytest.approx(1125 * 4)


def test_rls_predicts_before_any_rtp_completes_via_history():
    p = RlsPredictor(min_history=2)
    for i in range(1, 4):
        p.on_frame_complete(frame(i))
    assert p.ready
    # brand-new frame: no records, nothing elapsed — history carries it
    pred = p.predict_frame_cycles(
        StubPipeline(progress=0.0, records=[], elapsed=0.0))
    assert pred is not None and pred > 0


def test_rls_no_history_no_records_predicts_none():
    p = RlsPredictor(min_history=1)
    p._frames_observed = 1              # ready, but never saw features
    assert p.predict_frame_cycles(
        StubPipeline(progress=0.0, records=[], elapsed=0.0)) is None


def test_prediction_floored_at_natural_elapsed():
    """A frame cannot finish in the past: every learned predictor's
    projection is floored at the frame's natural elapsed cycles."""
    for name in ("rls", "ewma-blend", "last-frame"):
        p = make_predictor(name)
        for i in range(1, 4):
            p.on_frame_complete(frame(i))
        pred = p.predict_frame_cycles(StubPipeline(
            progress=0.8, records=[], elapsed=50_000.0))
        assert pred >= 50_000.0, name


def test_mid_frame_predictions_bounded():
    for name in PREDICTOR_NAMES:
        p = make_predictor(name)
        for i in range(1, 4):
            p.on_frame_complete(frame(i))
        recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
        for idx in range(4, 60):
            p.predict_frame_cycles(
                StubPipeline(0.5, recs, elapsed=2000.0, frame_idx=idx))
        assert len(p._mid_frame_prediction) <= p.MID_FRAME_BOUND, name


# -- learned-model behaviour --------------------------------------------------

def test_rls_learns_a_linear_workload_exactly():
    """y = 1000 * n_rtp is inside the model class; RLS must drive the
    prediction error to ~0 once the covariance settles."""
    p = RlsPredictor(min_history=2, forgetting=1.0)
    for i in range(1, 30):
        n = 3 + (i % 3)                 # vary n_rtp so features span
        p.on_frame_complete(frame(i, n_rtp=n))
    recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
    pred = p.predict_frame_cycles(
        StubPipeline(progress=0.5, records=recs, elapsed=2000.0))
    assert pred == pytest.approx(4000, rel=0.05)


def test_ewma_blend_shifts_weight_to_fast_horizon_on_phase_change():
    p = EwmaBlendPredictor(alphas=(0.5, 0.05))
    for i in range(1, 10):
        p.on_frame_complete(frame(i, cycles_per_rtp=1000))
    w_before = list(p._weights)
    for i in range(10, 14):
        p.on_frame_complete(frame(i, cycles_per_rtp=3000))
    # after the jump the fast tracker is closer to the data: hedge
    # moves mixture weight onto it
    assert p._weights[0] > w_before[0]
    assert p.history_estimate() > 4000.0


def test_last_frame_predicts_previous_natural_frame():
    p = LastFramePredictor()
    p.on_frame_complete(frame(1, cycles_per_rtp=1000, throttle=100))
    pred = p.predict_frame_cycles(StubPipeline(progress=0.5))
    assert pred == pytest.approx(4 * 1000 - 4 * 100)


def test_empty_frames_do_not_poison_learned_predictors():
    for name in ("rls", "ewma-blend", "last-frame"):
        p = make_predictor(name)
        for i in range(1, 4):
            p.on_frame_complete(frame(i))
        before = p.frames_learned
        p.on_frame_complete(frame(4, n_rtp=0))   # empty frame
        assert p.frames_learned == before, name
        assert p.ready, name


@pytest.mark.parametrize("name", PREDICTOR_NAMES)
def test_deterministic_under_fixed_seed(name):
    """Two predictors fed the identical (seeded) frame stream must make
    bit-identical predictions and keep bit-identical state."""
    import random

    def drive(seed):
        rng = random.Random(seed)
        p = make_predictor(name, seed=seed)
        preds = []
        for i in range(1, 25):
            cyc = 900 + rng.randrange(200)
            recs = [RtpRecord(50, cyc, 50, 2000, 0)] * 2
            preds.append(p.predict_frame_cycles(StubPipeline(
                0.5, recs, elapsed=2.0 * cyc, frame_idx=i)))
            p.on_frame_complete(frame(i, cycles_per_rtp=cyc))
        return preds, p.error_log

    a_preds, a_log = drive(7)
    b_preds, b_log = drive(7)
    assert a_preds == b_preds           # exact float equality
    assert a_log == b_log


# -- feature schema -----------------------------------------------------------

def test_frame_features_schema():
    x = frame_features(frame(3, n_rtp=4))
    assert len(x) == N_FEATURES == len(FEATURE_NAMES)
    assert x == [1.0, 4.0, 200.0, 200.0, 8000.0]


def test_partial_features_blend_and_fallbacks():
    recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
    hist = [1.0, 4.0, 200.0, 200.0, 8000.0]
    # lam=0.5: partial scales by 2, then blends half-half with history
    x = partial_features(StubPipeline(0.5, recs), 0.5, hist)
    assert x == pytest.approx([1.0, 4.0, 200.0, 200.0, 8000.0])
    # nothing rendered yet: history only
    assert partial_features(StubPipeline(0.0), 0.0, hist) == hist
    # no history either: nothing to predict from
    assert partial_features(StubPipeline(0.0), 0.0, None) is None


# -- telemetry: prediction-error records --------------------------------------

def drive_with_telemetry(name, tel):
    p = make_predictor(name, telemetry=tel)
    for i in range(1, 5):
        p.on_frame_complete(frame(i))
    p.predict_frame_cycles(StubPipeline(
        0.5, [RtpRecord(50, 1000, 50, 2000, 0)] * 2, elapsed=2000.0,
        frame_idx=5))
    p.on_frame_complete(frame(5))
    return p


def test_learned_predictors_emit_predictor_error_records():
    tel = Telemetry(sample_interval_ticks=0)
    p = drive_with_telemetry("rls", tel)
    recs = [r for r in tel.records if r["type"] == "predictor_error"]
    assert len(recs) == len(p.error_log) == 1
    r = recs[0]
    assert r["predictor"] == "rls"
    assert r["frame"] == 5
    assert r["actual_cycles"] == pytest.approx(4000.0)
    assert r["error_pct"] == pytest.approx(
        100.0 * (r["predicted_cycles"] - 4000.0) / 4000.0)


def test_reference_keeps_the_preseam_frpu_error_stream():
    tel = Telemetry(sample_interval_ticks=0)
    drive_with_telemetry("rtp", tel)
    assert tel.count("predictor_error") == 0
    assert tel.count("frpu_error") == 1
    r = [x for x in tel.records if x["type"] == "frpu_error"][0]
    assert "predictor" not in r         # byte-stream compatibility


def test_predictor_error_round_trips_through_jsonl(tmp_path):
    path = str(tmp_path / "tel.jsonl")
    tel = Telemetry.to_file(path)
    drive_with_telemetry("ewma-blend", tel)
    tel.close()
    with open(path) as fh:
        recs = [json.loads(line) for line in fh]
    errs = [r for r in recs if r["type"] == "predictor_error"]
    assert len(errs) == 1
    from repro.telemetry.events import validate
    fields = {k: v for k, v in errs[0].items() if k != "type"}
    validate("predictor_error", fields)   # schema round-trip
    assert errs[0]["predictor"] == "ewma-blend"
