"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "DOOM3" in out
    assert "429" in out
    assert "throtcpuprio" in out


def test_standalone_requires_target(capsys):
    assert main(["standalone", "--scale", "smoke"]) == 2


def test_standalone_game(capsys):
    assert main(["standalone", "--game", "UT2004",
                 "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "UT2004" in out
    assert "FPS" in out


def test_standalone_spec(capsys):
    assert main(["standalone", "--spec", "403", "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out


def test_run_prints_result(capsys):
    assert main(["run", "--mix", "W8", "--policy", "baseline",
                 "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "mix=W8" in out
    assert "GPU HL2" in out
    assert "weighted speedup" in out


def test_trace_records_npz(tmp_path, capsys):
    out = tmp_path / "w8.npz"
    assert main(["trace", "--mix", "W8", "--out", str(out),
                 "--scale", "smoke"]) == 0
    assert out.exists()
    assert "recorded" in capsys.readouterr().out


def test_sweep_targets(capsys):
    assert main(["sweep", "--mix", "W8", "--targets", "40",
                 "--scale", "smoke"]) == 0
    out = capsys.readouterr().out
    assert "target_fps=40" in out


def test_report_table3(capsys):
    assert main(["report", "--experiment", "table3",
                 "--scale", "smoke"]) == 0
    assert "Table III" in capsys.readouterr().out
