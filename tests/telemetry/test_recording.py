"""End-to-end recordings: system wiring, CLI, and timeline round-trip."""

import pytest

from repro.__main__ import main
from repro.analysis.timeline import Timeline
from repro.telemetry import Telemetry, record_mix, record_standalone
from repro.telemetry.sinks import ListSink


def test_record_mix_emits_control_loop_events():
    r, tel = record_mix("W8", "throtcpuprio", scale="smoke", seed=1)
    counts = tel.counts()
    assert counts["run_meta"] == 1
    assert counts["frame"] >= r.frames_rendered
    assert counts["atu_update"] >= 1
    assert counts["llc_interval"] >= 1
    assert counts["dram_interval"] == counts["llc_interval"]
    assert counts["cpu_interval"] == counts["llc_interval"]
    meta = tel.records[0]
    assert meta["type"] == "run_meta"
    assert (meta["mix"], meta["policy"]) == ("W8", "throtcpuprio")
    # records come out in simulation order
    ticks = [rec["tick"] for rec in tel.records]
    assert ticks == sorted(ticks)


def test_record_mix_baseline_has_no_control_events():
    _, tel = record_mix("W8", "baseline", scale="smoke", seed=1)
    counts = tel.counts()
    assert "atu_update" not in counts
    assert "gate" not in counts
    assert "dram_priority" not in counts
    assert counts["frame"] >= 1        # frames still recorded


def test_record_mix_dynprio_emits_priority_flips():
    _, tel = record_mix("M7", "dynprio", scale="smoke", seed=1)
    flips = [r for r in tel.records if r["type"] == "dram_priority"]
    assert flips, "DynPrio never flipped DRAM priority at smoke scale"
    assert all(f["source"] == "dynprio" for f in flips)
    assert {f["mode"] for f in flips} <= {"cpu_high", "equal", "gpu_high"}


def test_record_standalone_gpu():
    r, tel = record_standalone(game="DOOM3", scale="smoke", seed=1)
    assert r.fps > 0
    assert tel.count("frame") >= 1
    with pytest.raises(ValueError):
        record_standalone(scale="smoke")           # neither game nor spec


def test_custom_sampling_interval():
    coarse = Telemetry(sample_interval_ticks=65536)
    _, coarse = record_mix("W8", "baseline", scale="smoke", telemetry=coarse)
    fine = Telemetry(sample_interval_ticks=4096)
    _, fine = record_mix("W8", "baseline", scale="smoke", telemetry=fine)
    assert fine.count("llc_interval") > coarse.count("llc_interval")


def test_sampler_off_when_interval_zero():
    tel = Telemetry(sample_interval_ticks=0)
    tel.add_sink(ListSink())
    _, tel = record_mix("W8", "baseline", scale="smoke", telemetry=tel)
    assert tel.count("llc_interval") == 0
    assert tel.count("frame") >= 1


def test_cli_scale_test_jsonl_round_trip(tmp_path, capsys):
    """The acceptance path: a scale=test CLI recording contains FRPU
    phase transitions, ATU updates, and DRAM priority flips, and the
    timeline loads it into a per-frame table."""
    path = str(tmp_path / "run.jsonl")
    assert main(["run", "--mix", "W8", "--policy", "throtcpuprio",
                 "--scale", "test", "--telemetry", path]) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out and "run.jsonl" in out

    tl = Timeline.load(path)
    assert tl.events("frpu_phase"), "no FRPU phase transition recorded"
    assert tl.events("atu_update"), "no ATU (N_G, W_G) update recorded"
    assert tl.events("dram_priority"), "no DRAM priority flip recorded"

    rows = tl.per_frame_table()
    assert len(rows) == len(tl.events("frame"))
    assert rows[0]["frame"] == 0
    assert all(row["cycles"] > 0 for row in rows)
    predicted = [row for row in rows if row["error_pct"] is not None]
    assert predicted, "no frame carries a prediction error"
    gated = [row for row in rows if row["gated"]]
    assert gated, "no frame overlaps a gate-open span"

    s = tl.summary()
    assert s["mix"] == "W8" and s["policy"] == "throtcpuprio"
    assert s["frames"] == len(rows)
    assert 0.0 < s["gating_duty_cycle"] <= 1.0
    assert "frame" in tl.format_table()


def test_cli_standalone_telemetry(tmp_path, capsys):
    path = str(tmp_path / "alone.csv")
    assert main(["standalone", "--game", "HL2", "--scale", "smoke",
                 "--telemetry", path]) == 0
    assert "telemetry:" in capsys.readouterr().out
    tl = Timeline.load(path)
    assert tl.events("frame")
    assert tl.meta["gpu_app"] == "HL2"
