"""The record schema is the contract — drift must fail loudly."""

import pytest

from repro.telemetry import Telemetry
from repro.telemetry.events import SCHEMA, csv_columns, validate


def test_every_spec_documents_itself():
    for etype, spec in SCHEMA.items():
        assert spec.etype == etype
        assert spec.site and spec.doc
        names = [f.name for f in spec.fields]
        assert len(names) == len(set(names)), f"{etype}: duplicate field"
        assert "tick" in names, f"{etype}: every event carries a tick"
        assert spec.required <= set(names)
        for f in spec.fields:
            assert f.kind in ("int", "float", "str"), (etype, f.name)
            assert f.doc, f"{etype}.{f.name}: undocumented field"


def test_csv_columns_stable_and_unique():
    cols = csv_columns()
    assert cols[0] == "type"
    assert len(cols) == len(set(cols))
    for spec in SCHEMA.values():
        for f in spec.fields:
            assert f.name in cols
    assert cols == csv_columns()       # deterministic


def test_validate_unknown_type():
    with pytest.raises(ValueError, match="unknown telemetry event type"):
        validate("nope", {"tick": 0})


def test_validate_undeclared_field():
    with pytest.raises(ValueError, match="undeclared"):
        validate("gate", {"tick": 0, "state": "open", "wg_cycles": 1.0,
                          "bogus": 1})


def test_validate_missing_required():
    with pytest.raises(ValueError, match="missing required"):
        validate("gate", {"tick": 0})


def test_validate_optional_fields_may_be_absent():
    # frpu_phase: n_rtp / c_avg only appear when entering prediction
    validate("frpu_phase", {"tick": 5, "frame": 2, "phase": "learning",
                            "actual_cycles": 1000})
    validate("frpu_phase", {"tick": 5, "frame": 2, "phase": "prediction",
                            "n_rtp": 4, "c_avg": 250.0,
                            "actual_cycles": 1000})


def test_telemetry_emit_validates_and_counts():
    tel = Telemetry(sample_interval_ticks=0)
    tel.emit("gate", tick=10, state="open", wg_cycles=32.0)
    tel.emit("gate", tick=20, state="closed", wg_cycles=0.0)
    with pytest.raises(ValueError):
        tel.emit("gate", tick=30)      # missing required fields
    assert tel.count("gate") == 2
    assert tel.count() == 2
    assert tel.counts() == {"gate": 2}
    assert [r["tick"] for r in tel.records] == [10, 20]


def test_telemetry_close_is_final():
    tel = Telemetry(sample_interval_ticks=0)
    tel.close()
    tel.close()                        # idempotent
    with pytest.raises(RuntimeError):
        tel.emit("gate", tick=0, state="open", wg_cycles=1.0)
