"""Unit tests for the timeline derivations (synthetic recordings)."""

import pytest

from repro.analysis.timeline import Timeline


def _records():
    return [
        {"type": "run_meta", "tick": 0, "mix": "M7",
         "policy": "throtcpuprio", "scale": "test", "seed": 1,
         "n_cpus": 4, "gpu_app": "COD2"},
        {"type": "frame", "tick": 1000, "frame": 0, "cycles": 250,
         "llc_accesses": 40, "throttle_cycles": 0, "n_rtps": 4},
        {"type": "frpu_phase", "tick": 1000, "frame": 0,
         "phase": "prediction", "n_rtp": 4, "c_avg": 62.5,
         "actual_cycles": 250},
        {"type": "gate", "tick": 1200, "state": "open", "wg_cycles": 16.0},
        {"type": "frpu_error", "tick": 2000, "frame": 1,
         "predicted_cycles": 260.0, "actual_cycles": 250.0,
         "error_pct": 4.0},
        {"type": "frame", "tick": 2000, "frame": 1, "cycles": 250,
         "llc_accesses": 42, "throttle_cycles": 30, "n_rtps": 4},
        {"type": "gate", "tick": 2600, "state": "closed", "wg_cycles": 0.0},
        {"type": "frame", "tick": 3000, "frame": 2, "cycles": 240,
         "llc_accesses": 41, "throttle_cycles": 0, "n_rtps": 4},
    ]


def test_indexing_and_meta():
    tl = Timeline(_records())
    assert len(tl) == 8
    assert tl.meta["mix"] == "M7"
    assert len(tl.events("frame")) == 3
    assert tl.events("nonexistent") == []
    assert tl.span_ticks == 3000


def test_gate_spans_and_duty_cycle():
    tl = Timeline(_records())
    assert tl.gate_spans() == [(1200, 2600)]
    assert tl.gating_duty_cycle() == pytest.approx(1400 / 3000)


def test_gate_left_open_closes_at_recording_end():
    recs = [r for r in _records() if not
            (r["type"] == "gate" and r["state"] == "closed")]
    tl = Timeline(recs)
    assert tl.gate_spans() == [(1200, 3000)]


def test_per_frame_table_joins_streams():
    rows = Timeline(_records()).per_frame_table()
    assert [row["frame"] for row in rows] == [0, 1, 2]
    assert rows[0]["phase"] == "prediction"
    assert rows[0]["error_pct"] is None
    assert rows[1]["error_pct"] == 4.0
    assert rows[1]["predicted_cycles"] == 260.0
    assert rows[1]["throttle_cycles"] == 30
    # gate open 1200-2600: overlaps frames 1 (1000-2000) and 2 (2000-3000)
    assert [row["gated"] for row in rows] == [0, 1, 1]


def test_summary_digest():
    s = Timeline(_records()).summary()
    assert s["frames"] == 3
    assert s["records"] == 8
    assert s["frpu_predictions"] == 1
    assert s["frpu_mean_abs_error_pct"] == 4.0
    assert s["gate_spans"] == 1
    assert s["mix"] == "M7"


def test_empty_timeline():
    tl = Timeline([])
    assert tl.span_ticks == 0
    assert tl.gating_duty_cycle() == 0.0
    assert tl.per_frame_table() == []
    assert tl.summary()["frames"] == 0
    assert tl.format_table().startswith("frame")


def test_format_table_truncates():
    recs = [{"type": "frame", "tick": 100 * (i + 1), "frame": i,
             "cycles": 10, "llc_accesses": 1, "throttle_cycles": 0,
             "n_rtps": 1} for i in range(50)]
    text = Timeline(recs).format_table(max_rows=10)
    assert "40 more frame(s)" in text


def test_plots_render_when_matplotlib_available(tmp_path):
    pytest.importorskip("matplotlib", reason="plots need matplotlib")
    from repro.analysis.timeline import (plot_gating_vs_ipc,
                                         plot_prediction_error)
    tl = Timeline(_records())
    out = plot_prediction_error(tl, str(tmp_path / "err.png"))
    assert (tmp_path / "err.png").exists() and out.endswith("err.png")
    plot_gating_vs_ipc(tl, str(tmp_path / "gate.png"))
    assert (tmp_path / "gate.png").exists()


def test_plot_error_message_without_matplotlib():
    try:
        import matplotlib  # noqa: F401
        pytest.skip("matplotlib installed; gating path not reachable")
    except ImportError:
        pass
    from repro.analysis.timeline import plot_prediction_error
    with pytest.raises(RuntimeError, match="matplotlib"):
        plot_prediction_error(Timeline(_records()), "/tmp/x.png")
