"""Sink round-trips: what goes in comes back out, typed."""

import csv
import json

from repro.telemetry import Telemetry
from repro.telemetry.events import csv_columns
from repro.telemetry.sinks import ListSink, open_sink
from repro.analysis.timeline import load_records

RECORDS = [
    ("frame", dict(tick=100, frame=0, cycles=5000, llc_accesses=1200,
                   throttle_cycles=0, n_rtps=4)),
    ("gate", dict(tick=150, state="open", wg_cycles=32.5)),
    ("dram_priority", dict(tick=150, mode="cpu_boost", source="qos")),
    ("gate", dict(tick=220, state="closed", wg_cycles=0.0)),
]


def _emit_all(tel):
    for etype, fields in RECORDS:
        tel.emit(etype, **fields)
    tel.close()


def test_jsonl_round_trip(tmp_path):
    path = str(tmp_path / "run.jsonl")
    _emit_all(Telemetry.to_file(path))
    got = load_records(path)
    assert got == [{"type": t, **f} for t, f in RECORDS]
    # one compact JSON object per line, keys sorted (stable diffs)
    with open(path) as fh:
        lines = fh.read().splitlines()
    assert len(lines) == len(RECORDS)
    keys = list(json.loads(lines[0]))
    assert keys == sorted(keys)


def test_csv_round_trip_restores_types(tmp_path):
    path = str(tmp_path / "run.csv")
    _emit_all(Telemetry.to_file(path))
    with open(path, newline="") as fh:
        header = next(csv.reader(fh))
    assert header == csv_columns()
    got = load_records(path)
    assert got == [{"type": t, **f} for t, f in RECORDS]
    assert isinstance(got[0]["cycles"], int)
    assert isinstance(got[1]["wg_cycles"], float)


def test_open_sink_picks_format(tmp_path):
    for name, expected in (("a.csv", "CsvSink"), ("a.jsonl", "JsonlSink"),
                           ("a.log", "JsonlSink")):
        sink = open_sink(str(tmp_path / name))
        try:
            assert type(sink).__name__ == expected
        finally:
            sink.close()


def test_list_sink_and_multiple_sinks(tmp_path):
    ls = ListSink()
    tel = Telemetry(sample_interval_ticks=0)
    tel.add_sink(ls)
    tel.add_sink(open_sink(str(tmp_path / "b.jsonl")))
    _emit_all(tel)
    assert len(ls.records) == len(RECORDS)
    assert len(load_records(str(tmp_path / "b.jsonl"))) == len(RECORDS)


def test_unbuffered_telemetry_streams_only(tmp_path):
    ls = ListSink()
    tel = Telemetry(sample_interval_ticks=0, buffer=False)
    tel.add_sink(ls)
    _emit_all(tel)
    assert tel.records == []           # nothing held in memory
    assert len(ls.records) == len(RECORDS)
    assert tel.count() == len(RECORDS)  # counts still maintained
