"""Telemetry is observation, not intervention.

A run with a Telemetry attached must produce the *bit-identical*
RunResult of the same run without one: every emitting site only reads
simulator state, and the interval sampler's events never touch it.
This is the acceptance gate for the zero-cost-when-off contract — if a
future emitter perturbs ordering or state, these comparisons fail.
"""

from repro.config import default_config
from repro.mixes import mix
from repro.policies import make_policy
from repro.sim.runner import run_system
from repro.telemetry import Telemetry


def _run(mix_name: str, policy: str, telemetry=None):
    m = mix(mix_name)
    cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
    return run_system(cfg, m, make_policy(policy), telemetry=telemetry)


def test_throttle_run_identical_with_and_without_telemetry():
    plain = _run("W8", "throtcpuprio")
    tel = Telemetry()
    recorded = _run("W8", "throtcpuprio", telemetry=tel)
    tel.close()
    assert tel.count() > 0             # the recording actually happened
    assert recorded == plain           # full dataclass equality
    assert recorded.ticks == plain.ticks
    assert recorded.cpu_ipcs == plain.cpu_ipcs
    assert recorded.qos == plain.qos


def test_dynprio_run_identical_with_and_without_telemetry():
    plain = _run("M7", "dynprio")
    tel = Telemetry()
    recorded = _run("M7", "dynprio", telemetry=tel)
    tel.close()
    assert tel.count("dram_priority") > 0
    assert recorded == plain


def test_plain_runs_are_reproducible():
    """Baseline determinism the two tests above lean on."""
    assert _run("W8", "throtcpuprio") == _run("W8", "throtcpuprio")
