"""Macro-equivalence gate for the batched hot paths.

The batched component paths (DRAM O(banks) issue scan, core
``tolist``-batched issue loop, engine bucket-batched bookkeeping — see
:mod:`repro.hotpath`) claim *bit-identical* simulation to the legacy
per-entry paths.  This test is the claim's enforcement at full-system
scale: M1 and M7 at ``scale=test``, two seeds each, batching on vs
off, asserting equality of the complete ``RunResult`` dataclass (as a
dict) and of the telemetry JSONL byte stream.

These are the slowest tests in the suite (the legacy path at test
scale is the expensive half — that cost is the tentpole's point), but
they are the only ones that would catch a divergence that the TINY
engine goldens are too small to excite (write-drain hysteresis, MSHR
backpressure, multi-channel bus contention all need sustained load).
"""

import dataclasses
import hashlib

import pytest

from repro import hotpath
from repro.config import default_config
from repro.mixes import mix
from repro.policies import make_policy
from repro.sim.runner import run_system
from repro.telemetry import Telemetry


def _run(mix_name: str, seed: int, batching: bool, jsonl_path):
    m = mix(mix_name)
    cfg = default_config(scale="test", n_cpus=m.n_cpus, seed=seed)
    tel = Telemetry.to_file(str(jsonl_path))
    with hotpath.batching(batching):
        result = run_system(cfg, m, make_policy("throtcpuprio"),
                            telemetry=tel)
    tel.close()
    return result


@pytest.mark.parametrize("mix_name,seed", [("M1", 1), ("M1", 2),
                                           ("M7", 1), ("M7", 2)])
def test_batched_run_bit_identical_to_legacy(mix_name, seed, tmp_path):
    on_path = tmp_path / f"{mix_name}-{seed}-on.jsonl"
    off_path = tmp_path / f"{mix_name}-{seed}-off.jsonl"
    on = _run(mix_name, seed, True, on_path)
    off = _run(mix_name, seed, False, off_path)

    assert dataclasses.asdict(on) == dataclasses.asdict(off)

    on_hash = hashlib.sha256(on_path.read_bytes()).hexdigest()
    off_hash = hashlib.sha256(off_path.read_bytes()).hexdigest()
    assert on_hash == off_hash, "telemetry JSONL diverged"
    assert on_path.stat().st_size > 0      # the recording happened
