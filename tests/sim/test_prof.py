"""Tests for the opt-in kernel profiling layer (:mod:`repro.prof`)."""

from __future__ import annotations

from repro.prof import KernelProfile, owner_of, profile_mix
from repro.sim.engine import Simulator


class _Widget:
    name = "widget0"

    def tick(self) -> None:
        pass


class _Anon:
    def tick(self) -> None:
        pass


def _free() -> None:
    pass


def test_owner_of_prefers_name_then_class_then_qualname():
    assert owner_of(_Widget().tick) == "widget0.tick"
    assert owner_of(_Anon().tick) == "_Anon.tick"
    assert owner_of(_free) == "_free"


def test_profiling_is_opt_in():
    sim = Simulator()
    assert sim.profile is None
    prof = sim.enable_profiling()
    assert isinstance(prof, KernelProfile)
    assert sim.enable_profiling() is prof      # idempotent


def test_profile_records_per_owner_counts():
    sim = Simulator()
    prof = sim.enable_profiling()
    w = _Widget()
    for t in range(5):
        sim.at(t, w.tick)
    sim.at_call(9, _Widget.tick, w)            # unbound style, like hot paths
    sim.run()
    assert prof.events == 6
    assert prof.by_owner["widget0.tick"][0] == 5
    assert prof.by_owner["_Widget.tick"][0] == 1
    assert prof.run_time >= prof.event_time >= 0.0
    assert prof.kernel_time >= 0.0


def test_profile_counts_cancelled_skips():
    sim = Simulator()
    prof = sim.enable_profiling()
    evs = [sim.at(1, lambda: None) for _ in range(4)]
    evs[1].cancel()
    evs[2].cancel()
    sim.run()
    assert prof.events == 2
    assert prof.cancelled_seen == 2


def test_as_dict_and_report_render():
    sim = Simulator()
    prof = sim.enable_profiling()
    w = _Widget()
    for t in range(3):
        sim.at(t, w.tick)
    sim.run()
    d = prof.as_dict()
    assert d["events"] == 3
    assert d["owners"]["widget0.tick"]["events"] == 3
    text = prof.report()
    assert "widget0.tick" in text
    assert "kernel profile: 3 events" in text


def test_profile_mix_end_to_end():
    # cheapest real profiled run: one-CPU mix at smoke scale
    result, prof = profile_mix("W8", "baseline", scale="smoke", seed=1)
    assert result.ticks > 0
    assert prof.events > 0
    # the memory hierarchy must show up by component name
    owners = "\n".join(prof.by_owner)
    assert "SharedLLC" in owners or "llc" in owners
    assert "complete" in owners       # closure-free MemRequest.complete
