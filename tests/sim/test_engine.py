"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.at(10, lambda: log.append("b"))
    sim.at(5, lambda: log.append("a"))
    sim.at(20, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 20


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    log = []
    for i in range(10):
        sim.at(7, lambda i=i: log.append(i))
    sim.run()
    assert log == list(range(10))


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    def chain():
        times.append(sim.now)
        if len(times) < 3:
            sim.after(5, chain)
    sim.after(5, chain)
    sim.run()
    assert times == [5, 10, 15]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_cancel_is_lazy_but_effective():
    sim = Simulator()
    log = []
    ev = sim.at(5, lambda: log.append("x"))
    ev.cancel()
    sim.at(6, lambda: log.append("y"))
    executed = sim.run()
    assert log == ["y"]
    assert executed == 1


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    log = []
    sim.at(5, lambda: log.append(5))
    sim.at(15, lambda: log.append(15))
    sim.run(until=10)
    assert log == [5]
    assert sim.now == 10
    sim.run()
    assert log == [5, 15]


def test_run_until_advances_clock_on_queue_drain():
    """Regression: ``run(until=N)`` must leave ``now == N`` even when the
    event queue drains early, so wall-clock-derived metrics (ticks, FPS)
    see the full simulated horizon rather than the last event time."""
    sim = Simulator()
    sim.at(3, lambda: None)
    sim.run(until=1_000_000)
    assert sim.now == 1_000_000
    # idempotent: re-running to the same horizon does not move the clock
    sim.run(until=1_000_000)
    assert sim.now == 1_000_000
    # and a later horizon with an empty queue still advances
    sim.run(until=2_000_000)
    assert sim.now == 2_000_000


def test_stop_does_not_advance_to_until():
    sim = Simulator()
    sim.at(1, lambda: sim.stop())
    sim.run(until=1_000_000)
    assert sim.now == 1


def test_max_events_does_not_advance_to_until():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    sim.run(until=1_000_000, max_events=4)
    assert sim.now == 3
    assert sim.pending() == 6


def test_stop_exits_immediately():
    sim = Simulator()
    log = []
    sim.at(1, lambda: (log.append(1), sim.stop()))
    sim.at(2, lambda: log.append(2))
    sim.run()
    assert log == [1]
    # remaining event still pending
    assert sim.pending() == 1


def test_max_events():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending() == 6


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    log = []
    sim.at(1, lambda: sim.after(1, lambda: log.append("inner")))
    sim.run()
    assert log == ["inner"]


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=60))
def test_property_execution_order_is_sorted_stable(times):
    sim = Simulator()
    log = []
    for seq, t in enumerate(times):
        sim.at(t, lambda t=t, seq=seq: log.append((t, seq)))
    sim.run()
    assert log == sorted(log)
    assert len(log) == len(times)


# -- calendar-queue bookkeeping (O(1) pending, lazy-cancel compaction) --

def test_pending_is_live_counter():
    sim = Simulator()
    evs = [sim.at(i, lambda: None) for i in range(10)]
    assert sim.pending() == 10
    evs[3].cancel()
    evs[7].cancel()
    assert sim.pending() == 8
    sim.run(max_events=4)
    assert sim.pending() == 4


def test_double_cancel_counts_once():
    sim = Simulator()
    ev = sim.at(5, lambda: None)
    sim.at(6, lambda: None)
    ev.cancel()
    ev.cancel()
    assert sim.pending() == 1
    assert sim.run() == 1
    assert sim.pending() == 0


def test_cancel_after_execution_is_harmless():
    sim = Simulator()
    log = []
    ev = sim.at(1, lambda: log.append(1))
    sim.at(2, lambda: log.append(2))
    sim.run(until=1)
    ev.cancel()                    # already ran: must not corrupt counters
    assert sim.pending() == 1
    sim.run()
    assert log == [1, 2]
    assert sim.pending() == 0


def test_at_call_and_after_call_pass_argument():
    sim = Simulator()
    log = []
    sim.at_call(5, log.append, "at")
    sim.after_call(7, log.append, "after")
    sim.run()
    assert log == ["at", "after"]
    assert sim.now == 7


def test_call_variants_interleave_with_closures_in_seq_order():
    sim = Simulator()
    log = []
    sim.at(5, lambda: log.append(0))
    sim.at_call(5, log.append, 1)
    sim.at(5, lambda: log.append(2))
    sim.after_call(5, log.append, 3)
    sim.run()
    assert log == [0, 1, 2, 3]


def test_compaction_drops_cancelled_entries():
    from repro.sim import engine
    sim = Simulator()
    keep = [sim.at(1_000_000, lambda: None) for _ in range(4)]
    doomed = [sim.at(i, lambda: None)
              for i in range(engine._COMPACT_MIN * 3)]
    for ev in doomed:
        ev.cancel()
    assert sim._cancelled == len(doomed)
    sim.run(until=500_000)         # compacts; nothing executes
    assert sim._cancelled == 0
    assert sim._size == len(keep)
    assert sim.pending() == len(keep)
    assert sim.run() == len(keep)


def test_compaction_preserves_order_of_survivors():
    from repro.sim import engine
    sim = Simulator()
    log = []
    events = [sim.at_call(t, log.append, i)
              for i, t in enumerate([5, 5, 5, 9, 9, 2])]
    doomed = [sim.at(1, lambda: None)
              for _ in range(engine._COMPACT_MIN * 3)]
    for ev in doomed:
        ev.cancel()
    sim.run()
    assert log == [5, 0, 1, 2, 3, 4]
    assert (sim._size, sim._cancelled, sim.pending()) == (0, 0, 0)


def test_max_events_zero_runs_one_event():
    # old-kernel edge case, preserved: max_events < 1 still runs one event
    sim = Simulator()
    log = []
    sim.at(1, lambda: log.append(1))
    sim.at(2, lambda: log.append(2))
    assert sim.run(max_events=0) == 1
    assert log == [1]
