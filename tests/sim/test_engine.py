"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.at(10, lambda: log.append("b"))
    sim.at(5, lambda: log.append("a"))
    sim.at(20, lambda: log.append("c"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 20


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    log = []
    for i in range(10):
        sim.at(7, lambda i=i: log.append(i))
    sim.run()
    assert log == list(range(10))


def test_after_is_relative_to_now():
    sim = Simulator()
    times = []
    def chain():
        times.append(sim.now)
        if len(times) < 3:
            sim.after(5, chain)
    sim.after(5, chain)
    sim.run()
    assert times == [5, 10, 15]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.at(10, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.at(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.after(-1, lambda: None)


def test_cancel_is_lazy_but_effective():
    sim = Simulator()
    log = []
    ev = sim.at(5, lambda: log.append("x"))
    ev.cancel()
    sim.at(6, lambda: log.append("y"))
    executed = sim.run()
    assert log == ["y"]
    assert executed == 1


def test_run_until_pauses_and_resumes():
    sim = Simulator()
    log = []
    sim.at(5, lambda: log.append(5))
    sim.at(15, lambda: log.append(15))
    sim.run(until=10)
    assert log == [5]
    assert sim.now == 10
    sim.run()
    assert log == [5, 15]


def test_run_until_advances_clock_on_queue_drain():
    """Regression: ``run(until=N)`` must leave ``now == N`` even when the
    event queue drains early, so wall-clock-derived metrics (ticks, FPS)
    see the full simulated horizon rather than the last event time."""
    sim = Simulator()
    sim.at(3, lambda: None)
    sim.run(until=1_000_000)
    assert sim.now == 1_000_000
    # idempotent: re-running to the same horizon does not move the clock
    sim.run(until=1_000_000)
    assert sim.now == 1_000_000
    # and a later horizon with an empty queue still advances
    sim.run(until=2_000_000)
    assert sim.now == 2_000_000


def test_stop_does_not_advance_to_until():
    sim = Simulator()
    sim.at(1, lambda: sim.stop())
    sim.run(until=1_000_000)
    assert sim.now == 1


def test_max_events_does_not_advance_to_until():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    sim.run(until=1_000_000, max_events=4)
    assert sim.now == 3
    assert sim.pending() == 6


def test_stop_exits_immediately():
    sim = Simulator()
    log = []
    sim.at(1, lambda: (log.append(1), sim.stop()))
    sim.at(2, lambda: log.append(2))
    sim.run()
    assert log == [1]
    # remaining event still pending
    assert sim.pending() == 1


def test_max_events():
    sim = Simulator()
    for i in range(10):
        sim.at(i, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending() == 6


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    log = []
    sim.at(1, lambda: sim.after(1, lambda: log.append("inner")))
    sim.run()
    assert log == ["inner"]


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                max_size=60))
def test_property_execution_order_is_sorted_stable(times):
    sim = Simulator()
    log = []
    for seq, t in enumerate(times):
        sim.at(t, lambda t=t, seq=seq: log.append((t, seq)))
    sim.run()
    assert log == sorted(log)
    assert len(log) == len(times)
