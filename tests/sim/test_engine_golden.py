"""Golden equivalence tests: calendar-queue kernel vs the old heap kernel.

The calendar-queue :class:`Simulator` must execute callbacks in exactly
the ``(time, seq)`` order of the pre-existing single-heap kernel (kept
verbatim as :class:`ReferenceSimulator`).  Three layers of proof:

* a randomized "chaos" scenario driving every scheduling entry point
  (``at``/``after``/``at_call``/``after_call``), cancellations included,
  hashed and compared across kernels and seeds;
* full-system bit-equality — two mixes x three seeds at a tiny scale,
  every metric of the run identical under either kernel;
* closure vs closure-free scheduling and profiled vs fast-path runs
  produce identical orderings.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random

import pytest

from repro.config import Scale, SystemConfig
from repro.mixes import mix
from repro.sim.engine import ReferenceSimulator, Simulator
from repro.sim.metrics import collect
from repro.sim.system import HeterogeneousSystem

#: just enough work for every subsystem (frames, DRAM refresh, policy
#: sampling, warm-up reset) to fire, while keeping each run sub-second
TINY = Scale("tiny", gpu_frame_cycles=1200, cpu_instructions=2000,
             min_frames=2, max_frames=2, warmup_instructions=400,
             llc_bytes=64 * 1024, mem_scale=16)


# -- layer 1: randomized kernel-level scenario ---------------------------

def _chaos(sim, seed: int, n_events: int = 4000) -> str:
    """Drive one kernel through a seeded storm of schedules/cancels.

    Each callback logs ``(now, ident)`` and schedules follow-on work
    through a scheduling entry point chosen by the (seeded) rng — so the
    log hash pins down the exact execution order, including same-tick
    tie-breaking and cancellation semantics.
    """
    rng = random.Random(seed)
    log: list[tuple[int, int]] = []
    cancellable: list = []

    def fire(ident: int) -> None:
        log.append((sim.now, ident))
        if len(log) >= n_events:
            return
        for _ in range(rng.randrange(3)):
            nxt = rng.randrange(1 << 30)
            delay = rng.choice((0, 0, 1, 1, 2, 3, 7, 40, 1000))
            style = rng.randrange(4)
            if style == 0:
                ev = sim.after_call(delay, fire, nxt)
            elif style == 1:
                ev = sim.at_call(sim.now + delay, fire, nxt)
            elif style == 2:
                ev = sim.after(delay, lambda n=nxt: fire(n))
            else:
                ev = sim.at(sim.now + delay, lambda n=nxt: fire(n))
            if rng.random() < 0.25:
                cancellable.append(ev)
        # cancel ~half of the remembered events, sometimes twice
        while cancellable and rng.random() < 0.5:
            ev = cancellable.pop(rng.randrange(len(cancellable)))
            ev.cancel()
            if rng.random() < 0.1:
                ev.cancel()       # double-cancel must be harmless

    for ident in range(40):       # seed the queue wide
        sim.after_call(rng.randrange(50), fire, ident)
    while sim.pending() and len(log) < n_events:
        sim.run(until=sim.now + 10_000)
    return hashlib.sha256(repr(log).encode()).hexdigest()


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_chaos_order_matches_reference(seed):
    assert _chaos(Simulator(), seed) == _chaos(ReferenceSimulator(), seed)


def test_chaos_order_is_seed_sensitive():
    # the scenario actually exercises distinct orders per seed —
    # otherwise the cross-kernel comparison above would prove nothing
    assert _chaos(Simulator(), 1) != _chaos(Simulator(), 2)


# -- layer 2: full-system bit-equality -----------------------------------

def _run_system(mix_name: str, seed: int, sim) -> dict:
    m = mix(mix_name)
    cfg = SystemConfig(n_cpus=m.n_cpus, scale=TINY, seed=seed)
    system = HeterogeneousSystem(cfg, m, sim=sim)
    system.run()
    out = dataclasses.asdict(collect(system))
    out["final_tick"] = system.sim.now
    return out


@pytest.mark.parametrize("mix_name", ["W8", "M7"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_system_bit_equal_across_kernels(mix_name, seed):
    new = _run_system(mix_name, seed, Simulator())
    ref = _run_system(mix_name, seed, ReferenceSimulator())
    assert new == ref


# -- layer 3: scheduling-style and profiling equivalence -----------------

class _ClosureOnlySimulator(Simulator):
    """Routes at_call/after_call through closures, as pre-PR code did."""

    def at_call(self, time, fn, arg):
        return self.at(time, lambda: fn(arg))

    def after_call(self, delay, fn, arg):
        return self.after(delay, lambda: fn(arg))


def test_closure_free_matches_closure_scheduling():
    new = _run_system("W8", 1, Simulator())
    old_style = _run_system("W8", 1, _ClosureOnlySimulator())
    assert new == old_style


def test_profiled_run_matches_fast_path():
    fast = _chaos(Simulator(), 7)
    prof_sim = Simulator()
    prof = prof_sim.enable_profiling()
    assert _chaos(prof_sim, 7) == fast
    assert prof.events > 0
    assert prof.run_time > 0.0
    assert any(".fire" in k or "fire" in k for k in prof.by_owner)


def test_profiled_system_bit_equal():
    prof_sim = Simulator()
    prof_sim.enable_profiling()
    assert _run_system("W8", 2, prof_sim) == _run_system("W8", 2,
                                                         Simulator())
