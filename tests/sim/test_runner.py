"""Tests for experiment orchestration and memoisation."""

import pytest

from repro.mixes import Mix
from repro.sim import runner


@pytest.fixture(autouse=True)
def _fresh():
    runner.clear_caches()
    yield
    runner.clear_caches()


def test_standalone_cpu_memoised():
    from repro.exec import counters
    a = runner.standalone_cpu(403, "smoke")
    n = counters["executed"]
    b = runner.standalone_cpu(403, "smoke")
    assert counters["executed"] == n          # second call is a cache hit
    assert a == b
    assert a is not b                         # callers get private copies


def test_standalone_cpu_cache_is_mutation_safe():
    a = runner.standalone_cpu(403, "smoke")
    ipc = a.cpu_ipcs[0]
    a.cpu_ipcs[0] = -1.0                      # corrupt the caller's copy
    b = runner.standalone_cpu(403, "smoke")
    assert b.cpu_ipcs[0] == ipc               # cache stayed pristine


def test_standalone_gpu_memoised():
    from repro.exec import counters
    a = runner.standalone_gpu("NFS", "smoke")
    n = counters["executed"]
    assert a == runner.standalone_gpu("NFS", "smoke")
    assert counters["executed"] == n
    assert a.gpu_app == "NFS"
    assert a.cpu_apps == ()


def test_alone_ipcs_shape():
    out = runner.alone_ipcs((403, 401), "smoke")
    assert set(out) == {403, 401}
    assert all(v > 0 for v in out.values())


def test_run_mix_accepts_policy_names():
    r = runner.run_mix("W8", "baseline", scale="smoke")
    assert r.policy_name == "baseline"
    assert r.mix_name == "W8"


def test_weighted_speedup_for_standalone_is_n_apps():
    """A mix measured against itself standalone: each app's alone run
    has WS contribution exactly 1."""
    r = runner.standalone_cpu(403, "smoke")
    ws = runner.weighted_speedup_for(r, "smoke")
    assert ws == pytest.approx(1.0)


def test_run_system_with_custom_mix():
    m = Mix("custom", "HL2", (401, 470))
    from repro.config import default_config
    r = runner.run_system(default_config("smoke", n_cpus=2), m,
                          "baseline")
    assert len(r.cpu_ipcs) == 2
    assert r.gpu_app == "HL2"
