"""Span tracing is observation, not intervention.

A run with a SpanTracer attached must produce the *bit-identical*
RunResult of the same run without one: stamp sites only read
``sim.now`` and write span fields, and the completion hook stamps
synchronously inside the same event.  This is the acceptance gate for
the zero-cost-when-off contract — if a future stamp site schedules an
event or perturbs ordering, these comparisons fail.
"""

from repro.config import default_config
from repro.mixes import mix
from repro.policies import make_policy
from repro.sim.runner import run_system
from repro.spans import SpanTracer


def _run(mix_name: str, policy: str, tracer=None):
    m = mix(mix_name)
    cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
    return run_system(cfg, m, make_policy(policy), tracer=tracer)


def test_baseline_run_identical_with_and_without_spans():
    plain = _run("W8", "baseline")
    tracer = SpanTracer(sample_every=4)
    traced = _run("W8", "baseline", tracer=tracer)
    assert tracer.finished > 0         # the tracing actually happened
    assert traced == plain             # full dataclass equality
    assert traced.ticks == plain.ticks
    assert traced.llc_latency == plain.llc_latency


def test_throttle_run_identical_with_and_without_spans():
    plain = _run("W8", "throtcpuprio")
    tracer = SpanTracer(sample_every=4)
    traced = _run("W8", "throtcpuprio", tracer=tracer)
    assert tracer.finished > 0
    assert traced == plain


def test_sample_rate_does_not_change_results():
    fine = SpanTracer(sample_every=1)
    coarse = SpanTracer(sample_every=512)
    assert _run("W8", "baseline", tracer=fine) == \
        _run("W8", "baseline", tracer=coarse)
    assert fine.finished > coarse.finished


def test_llc_latency_always_populated():
    r = _run("W8", "baseline")
    for key in ("cpu_mean", "cpu_p95", "cpu_n",
                "gpu_mean", "gpu_p95", "gpu_n"):
        assert key in r.llc_latency
    assert r.llc_latency["cpu_n"] > 0
    assert r.llc_latency["gpu_n"] > 0
    assert r.llc_latency["cpu_mean"] <= r.llc_latency["cpu_p95"]
