"""Integration tests: the assembled heterogeneous CMP end to end."""

import pytest

from repro.config import default_config
from repro.mixes import MIXES_M, MIXES_W, Mix
from repro.sim.metrics import collect
from repro.sim.system import HeterogeneousSystem


def run(mix, scale="smoke", policy=None, seed=1, n_cpus=None):
    cfg = default_config(scale=scale,
                         n_cpus=n_cpus if n_cpus is not None
                         else mix.n_cpus, seed=seed)
    return HeterogeneousSystem(cfg, mix, policy).run()


def test_cpu_only_run_completes():
    s = run(Mix("c", None, (403,)))
    core = s.cores[0]
    assert core.done
    assert core.ipc_achieved() > 0
    assert s.llc.stats.get("cpu_accesses") > 0
    assert s.dram.reads("cpu") > 0
    assert s.gpu is None


def test_gpu_only_run_completes():
    s = run(Mix("g", "NFS", ()))
    assert s.gpu.frames_completed == s.cfg.scale.max_frames
    assert s.gpu_fps() > 0
    assert s.dram.reads("gpu") > 0
    assert s.llc.stats.get("gpu_accesses") > 0


def test_heterogeneous_run_completes_both_sides():
    s = run(MIXES_W["W7"])
    assert s.cores[0].done
    assert s.gpu.frames_completed >= s.cfg.scale.min_frames
    assert s.dram.reads("cpu") > 0 and s.dram.reads("gpu") > 0


def test_determinism_same_seed_same_result():
    a = collect(run(MIXES_W["W10"], seed=7))
    b = collect(run(MIXES_W["W10"], seed=7))
    assert a.ticks == b.ticks
    assert a.cpu_ipcs == b.cpu_ipcs
    assert a.fps == b.fps
    assert a.llc == b.llc


def test_different_seed_different_result():
    a = collect(run(MIXES_W["W10"], seed=7))
    b = collect(run(MIXES_W["W10"], seed=8))
    assert a.ticks != b.ticks or a.cpu_ipcs != b.cpu_ipcs


def test_four_core_mix_all_cores_finish():
    s = run(MIXES_M["M12"])
    assert all(c.done for c in s.cores)
    assert len(s.cpu_ipcs()) == 4
    assert all(v > 0 for v in s.cpu_ipcs().values())


def test_address_spaces_disjoint():
    s = run(MIXES_W["W1"])
    core_trace = s.cores[0].trace
    gpu_gen = s.gpu.frames
    assert core_trace.end_addr <= (8 << 34)
    assert gpu_gen.rt.color_base >= (8 << 34)


def test_contention_hurts_cpu():
    alone = run(Mix("a", None, (462,)))
    hetero = run(MIXES_W["W7"])        # 462 + DOOM3
    assert hetero.cores[0].ipc_achieved() < \
        alone.cores[0].ipc_achieved()


def test_inclusion_back_invalidation_happens_under_pressure():
    s = run(MIXES_M["M13"])
    assert s.llc.stats.get("back_invalidations") > 0


def test_collect_harvests_consistent_result():
    s = run(MIXES_W["W5"])
    r = collect(s)
    assert r.mix_name == "W5"
    assert r.policy_name == "baseline"
    assert r.gpu_app == "COD2"
    assert r.frames_rendered == len(r.frame_cycles)
    assert r.ticks == s.sim.now
    assert r.dram_gpu_read_bytes % 64 == 0
    assert 0.0 <= r.dram_row_hit_rate <= 1.0
    assert 0.0 <= r.gpu_texture_share <= 1.0


def test_safety_cap_raises():
    cfg = default_config(scale="smoke", n_cpus=1)
    system = HeterogeneousSystem(cfg, MIXES_W["W2"])
    with pytest.raises(RuntimeError):
        system.run(max_ticks=1000)     # nothing can finish in 1k ticks
