"""Unit tests for counters and stat sets."""

from repro.sim.stats import Accumulator, Counter, StatSet


def test_counter_basics():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert int(c) == 6
    c.reset()
    assert c.value == 0


def test_accumulator_tracks_min_max_mean():
    a = Accumulator("lat")
    for v in (10, 20, 30):
        a.add(v)
    assert a.n == 3
    assert a.min == 10
    assert a.max == 30
    assert a.mean == 20.0
    a.reset()
    assert a.n == 0 and a.mean == 0.0 and a.min is None


def test_statset_counter_identity():
    s = StatSet("llc")
    assert s.counter("hits") is s.counter("hits")
    s.counter("hits").inc(3)
    assert s.get("hits") == 3
    assert s.get("missing") == 0


def test_statset_snapshot_and_diff():
    s = StatSet("mc")
    s.counter("reads").inc(10)
    snap = s.snapshot()
    s.counter("reads").inc(7)
    s.counter("writes").inc(2)
    d = s.diff(snap)
    assert d == {"reads": 7, "writes": 2}


def test_statset_reset():
    s = StatSet("x")
    s.counter("a").inc()
    s.accumulator("b").add(5)
    s.reset()
    assert s.get("a") == 0
    assert s.accumulator("b").n == 0


def test_snapshot_includes_accumulators():
    """Regression: snapshot()/diff()/as_dict() used to drop accumulators
    entirely, hiding e.g. the DRAM queueing-latency stats from metrics."""
    s = StatSet("dram")
    s.counter("reads").inc(3)
    lat = s.accumulator("queue_lat")
    lat.add(10)
    lat.add(30)
    snap = s.snapshot()
    assert snap == {"reads": 3, "queue_lat_n": 2, "queue_lat_total": 40}
    lat.add(2)
    assert s.diff(snap) == {"reads": 0, "queue_lat_n": 1,
                            "queue_lat_total": 2}


def test_as_dict_empty_accumulator_no_zero_division():
    """Regression: as_dict()'s derived mean must not divide by zero for
    an accumulator that never received a sample (e.g. the write-latency
    accumulator of a read-only run)."""
    s = StatSet("dram")
    s.accumulator("write_lat")         # registered, never add()ed
    d = s.as_dict()                    # must not raise ZeroDivisionError
    assert d["write_lat_n"] == 0
    assert d["write_lat_total"] == 0
    assert d["write_lat_mean"] == 0.0
    assert "write_lat_min" not in d and "write_lat_max" not in d

    class NoGuard(Accumulator):
        """An override without the n==0 guard (the historical bug)."""
        @property
        def mean(self):                # pragma: no cover - trivially wrong
            return self.total / self.n

    s._accs["bad"] = NoGuard("bad")
    assert s.as_dict()["bad_mean"] == 0.0


def test_as_dict_derives_mean_min_max():
    s = StatSet("x")
    a = s.accumulator("lat")
    d = s.as_dict()
    assert d["lat_n"] == 0 and d["lat_mean"] == 0.0
    assert "lat_min" not in d          # no samples: no min/max
    a.add(4)
    a.add(8)
    d = s.as_dict()
    assert d["lat_mean"] == 6.0
    assert (d["lat_min"], d["lat_max"]) == (4, 8)
