"""Unit tests for counters and stat sets."""

from repro.sim.stats import Accumulator, Counter, StatSet


def test_counter_basics():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert int(c) == 6
    c.reset()
    assert c.value == 0


def test_accumulator_tracks_min_max_mean():
    a = Accumulator("lat")
    for v in (10, 20, 30):
        a.add(v)
    assert a.n == 3
    assert a.min == 10
    assert a.max == 30
    assert a.mean == 20.0
    a.reset()
    assert a.n == 0 and a.mean == 0.0 and a.min is None


def test_statset_counter_identity():
    s = StatSet("llc")
    assert s.counter("hits") is s.counter("hits")
    s.counter("hits").inc(3)
    assert s.get("hits") == 3
    assert s.get("missing") == 0


def test_statset_snapshot_and_diff():
    s = StatSet("mc")
    s.counter("reads").inc(10)
    snap = s.snapshot()
    s.counter("reads").inc(7)
    s.counter("writes").inc(2)
    d = s.diff(snap)
    assert d == {"reads": 7, "writes": 2}


def test_statset_reset():
    s = StatSet("x")
    s.counter("a").inc()
    s.accumulator("b").add(5)
    s.reset()
    assert s.get("a") == 0
    assert s.accumulator("b").n == 0
