"""Unit tests for the performance metrics."""

import pytest

from repro.sim.metrics import (RunResult, combined_performance, geomean,
                               weighted_speedup)


def result(cpu_ipcs, apps):
    return RunResult(
        mix_name="t", policy_name="baseline", scale_name="smoke",
        ticks=1000, cpu_apps=tuple(apps), cpu_ipcs=cpu_ipcs,
        gpu_app=None, fps=0.0, frames_rendered=0, frame_cycles=[],
        llc={}, dram={}, dram_gpu_read_bytes=0, dram_gpu_write_bytes=0,
        dram_cpu_read_bytes=0, dram_cpu_write_bytes=0,
        dram_row_hit_rate=0.0)


def test_weighted_speedup_definition():
    r = result({0: 1.0, 1: 0.5}, (401, 403))
    ws = weighted_speedup(r, {401: 2.0, 403: 1.0})
    assert ws == pytest.approx(0.5 + 0.5)


def test_weighted_speedup_requires_alone_ipcs():
    r = result({0: 1.0}, (401,))
    with pytest.raises(KeyError):
        weighted_speedup(r, {})
    with pytest.raises(ValueError):
        weighted_speedup(r, {401: 0.0})


def test_geomean():
    assert geomean([1.0, 4.0]) == pytest.approx(2.0)
    assert geomean([]) == 0.0
    assert geomean([2.0, 0.0]) == pytest.approx(2.0)   # zeros skipped


def test_combined_performance_equal_weight():
    assert combined_performance(1.0, 1.0) == pytest.approx(1.0)
    assert combined_performance(1.21, 1.0 / 1.21) == pytest.approx(1.0)
    # losing GPU cannot be fully paid by CPU gains of the same ratio
    assert combined_performance(0.5, 1.0) < 1.0


def test_runresult_convenience_props():
    r = result({}, ())
    r.llc = {"cpu_misses": 10, "gpu_misses": 20}
    assert r.cpu_llc_misses == 10
    assert r.gpu_llc_misses == 20
    r2 = result({}, ())
    assert r2.cpu_llc_misses == 0
