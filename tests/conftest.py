"""Suite-wide fixtures.

The persistent result cache is pointed at a per-session temporary
directory so test runs neither litter the repo with ``.repro_cache/``
nor observe results persisted by earlier (possibly different) checkouts.
Individual tests that exercise the disk layer construct their own
:class:`repro.exec.ResultCache` on a ``tmp_path``.
"""

import os
import tempfile

if "REPRO_CACHE_DIR" not in os.environ:
    os.environ["REPRO_CACHE_DIR"] = tempfile.mkdtemp(
        prefix="repro-cache-tests-")
