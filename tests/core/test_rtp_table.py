"""Unit tests for the 64-entry RTP information table (Section III-A1)."""

import pytest

from repro.core.rtp_table import RtpInfoTable


def test_record_and_aggregate():
    t = RtpInfoTable(4)
    t.record(updates=10, cycles=100, n_rtts=10, llc=500)
    t.record(updates=20, cycles=300, n_rtts=20, llc=700)
    assert t.n_rtps == 2
    assert t.total_cycles() == 400
    assert t.total_llc_accesses() == 1200
    assert t.avg_cycles_per_rtp() == 200.0


def test_overflow_folds_into_last_entry():
    t = RtpInfoTable(2)
    for i in range(5):
        t.record(updates=1, cycles=10, n_rtts=1, llc=10)
    assert t.n_rtps == 5                 # logical count keeps growing
    entries = t.valid_entries()
    assert len(entries) == 2             # physical capacity respected
    # last entry accumulated RTPs 2..5 (four of them)
    assert entries[-1].cycles == 40
    assert t.total_cycles() == 50
    # the paper's average is over the logical RTP count
    assert t.avg_cycles_per_rtp() == 10.0


def test_reset():
    t = RtpInfoTable(8)
    t.record(1, 2, 3, 4)
    t.reset()
    assert t.n_rtps == 0
    assert t.valid_entries() == []
    assert t.total_cycles() == 0


def test_capacity_validation():
    with pytest.raises(ValueError):
        RtpInfoTable(0)


def test_storage_overhead_matches_paper_claim():
    """Section III-D: four 4-byte fields x 64 entries — 'just over a
    kilobyte of additional storage'."""
    t = RtpInfoTable(64)
    bits = t.storage_bits()
    assert bits == 64 * (4 * 4 * 8 + 1)
    kb = bits / 8 / 1024
    assert 1.0 < kb < 1.2
