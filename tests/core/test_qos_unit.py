"""Unit-level tests for QoSController wiring (no full system)."""

import pytest

from repro.config import GpuConfig, QosConfig
from repro.core.qos import QoSController
from repro.dram.schedulers import CpuPriorityScheduler
from repro.gpu.framebuffer import FrameGenerator
from repro.gpu.pipeline import GpuPipeline
from repro.gpu.workloads import workload_for
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator

BASE = 8 << 34


class FakeLLC:
    def __init__(self, sim, latency=50):
        self.sim = sim
        self.latency = latency

    def send(self, req: MemRequest):
        if not req.is_write:
            self.sim.after(self.latency, req.complete)


def build(game="UT2004", frames=6, cycles=6000):
    sim = Simulator()
    llc = FakeLLC(sim)
    w = workload_for(game)
    gen = FrameGenerator(w, cycles, BASE, seed=4, mem_scale=4)
    gpu = GpuPipeline(sim, GpuConfig(), w, gen, llc.send,
                      max_frames=frames)
    scheds = [CpuPriorityScheduler(), CpuPriorityScheduler()]
    qos = QoSController(sim, QosConfig(), gpu, cycles,
                        dram_schedulers=scheds)
    return sim, gpu, qos, scheds


def test_controller_learns_then_throttles_fast_gpu():
    sim, gpu, qos, scheds = build()
    qos.start()
    gpu.start()
    sim.run(until=100_000_000)
    assert qos.frpu.frames_learned >= 1
    assert qos.stats.get("recomputes") > 0
    # UT2004 at 130 FPS nominal is far above target: must throttle
    assert qos.atu.throttled_recomputes > 0


def test_frame_done_chain_preserves_previous_callback():
    sim, gpu, qos, _ = build(frames=3)
    seen = []
    gpu.on_frame_done = lambda rec: seen.append(rec.index)
    qos.start()                        # chains on top
    gpu.start()
    sim.run(until=100_000_000)
    assert seen == [0, 1, 2]
    assert qos.frpu.frames_learned >= 1


def test_boost_cleared_on_stop():
    sim, gpu, qos, scheds = build()
    qos.start()
    gpu.start()
    sim.run(until=100_000_000)
    qos.stop()
    assert all(not s.boost for s in scheds)
    assert gpu.gate is qos._pass_gate


def test_recompute_without_learning_disables():
    sim, gpu, qos, scheds = build()
    qos.recompute()                    # FRPU still LEARNING
    assert not qos.throttling
    assert all(not s.boost for s in scheds)


def test_storage_overhead_matches_section_iii_d():
    """The paper: the proposal costs 'just over a kilobyte'."""
    sim, gpu, qos, _ = build()
    kb = qos.storage_overhead_bits() / 8 / 1024
    assert 1.0 < kb < 1.3


def test_predicted_fps_reporting():
    sim, gpu, qos, _ = build()
    qos.start()
    gpu.start()
    sim.run(until=100_000_000)
    fps = qos.predicted_fps()
    if fps is not None:                # prediction phase at end of run
        w = gpu.workload
        assert 0.1 * w.fps_nominal < fps < 3 * w.fps_nominal
