"""Property tests on FRPU estimate behaviour."""

from hypothesis import given, settings, strategies as st

from repro.core.frpu import FrameRatePredictor, Phase
from repro.gpu.pipeline import FrameRecord, RtpRecord


def make_frame(index, cycles_per_rtp, n_rtp=4, updates=50, rtts=50,
               llc=1000):
    rtps = [RtpRecord(updates, cycles_per_rtp, rtts, llc, 0)
            for _ in range(n_rtp)]
    return FrameRecord(index, cycles_per_rtp * n_rtp, llc * n_rtp,
                       rtps, 0, 0)


class P:
    """Pipeline stub with adjustable progress/records."""

    def __init__(self, lam, records, idx=5):
        self.frame_progress = lam
        self._records = records
        self._frame_idx = idx

    def current_rtp_records(self):
        return self._records

    def current_frame_elapsed_cycles(self):
        return 0.0

    def current_frame_throttle_cycles(self):
        return 0.0


@settings(max_examples=60)
@given(st.floats(0.05, 1.0), st.integers(100, 100_000),
       st.integers(100, 100_000))
def test_property_prediction_bounded_by_blend_extremes(lam, c_avg,
                                                       c_inter):
    """Eq. 3 is a convex blend: the prediction always lies between the
    all-learned and all-observed extrapolations."""
    f = FrameRatePredictor()
    f.on_frame_complete(make_frame(f.skip_frames, c_avg))
    assert f.phase is Phase.PREDICTION
    records = [RtpRecord(50, c_inter, 50, 1000, 0)] * 2
    pred = f.predict_frame_cycles(P(lam, records))
    lo = 4 * min(c_avg, c_inter)
    hi = 4 * max(c_avg, c_inter)
    assert lo - 1e-6 <= pred <= hi + 1e-6


@settings(max_examples=40)
@given(st.integers(100, 10_000), st.floats(0.0, 3.0))
def test_property_steady_workload_never_discards(c_avg, cycle_scale):
    """Cycle changes alone (contention) must never trigger re-learning;
    only work-metric drift may."""
    f = FrameRatePredictor()
    f.on_frame_complete(make_frame(f.skip_frames, c_avg))
    stretched = make_frame(f.skip_frames + 1,
                           max(int(c_avg * (0.25 + cycle_scale)), 1))
    f.on_frame_complete(stretched)
    assert f.phase is Phase.PREDICTION


@settings(max_examples=40)
@given(st.floats(2.0, 10.0))
def test_property_large_work_drift_discards(factor):
    f = FrameRatePredictor(verify_threshold=0.25)
    f.on_frame_complete(make_frame(f.skip_frames, 1000))
    heavy = make_frame(f.skip_frames + 1, 1000,
                       updates=int(50 * factor),
                       rtts=int(50 * factor), llc=int(1000 * factor))
    f.on_frame_complete(heavy)
    assert f.phase is Phase.LEARNING
