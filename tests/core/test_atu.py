"""Unit + property tests for the access throttling unit (Fig. 6)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.atu import AccessThrottlingUnit

TICKS = 4  # gpu_cycle_ticks used throughout


def test_no_throttle_when_gpu_slower_than_target():
    atu = AccessThrottlingUnit()
    ng, wg = atu.compute(c_p=2000, c_t=1000, a=100)
    assert (ng, wg) == (1, 0)
    assert not atu.active


def test_wg_lands_on_fig6_bound():
    atu = AccessThrottlingUnit()
    # C_T - C_P = 1000 over 100 accesses -> 10 cycles = 40 ticks/access
    ng, wg = atu.compute(c_p=1000, c_t=2000, a=100)
    assert ng == 1
    assert atu.wg_ticks == 40
    assert wg == pytest.approx(10.0)
    assert atu.active


def test_wg_quantised_down_to_step():
    atu = AccessThrottlingUnit(wg_step=2)
    atu.compute(c_p=1000, c_t=2000, a=130)   # 30.77 ticks/access
    assert atu.wg_ticks == 30                # floor to even
    assert atu.wg_ticks % 2 == 0


def test_wg_resets_after_target_reached():
    atu = AccessThrottlingUnit()
    atu.compute(c_p=1000, c_t=2000, a=100)
    assert atu.wg_ticks > 0
    atu.compute(c_p=2100, c_t=2000, a=100)
    assert atu.wg_ticks == 0


def test_tiny_gap_floors_to_zero():
    """A gap smaller than one step must not throttle (stay above QoS)."""
    atu = AccessThrottlingUnit(wg_step=2)
    atu.compute(c_p=1999, c_t=2000, a=100)   # 0.04 ticks/access
    assert atu.wg_ticks == 0
    assert not atu.active


def test_zero_accesses_means_no_throttle():
    atu = AccessThrottlingUnit()
    assert atu.compute(c_p=10, c_t=100, a=0) == (1, 0)


def test_step_validation():
    with pytest.raises(ValueError):
        AccessThrottlingUnit(wg_step=0)


def test_gate_is_additive_per_access():
    """Every access (N_G=1) pays the full W_G — the deep-queue regime
    the Fig. 6 arithmetic assumes."""
    atu = AccessThrottlingUnit()
    atu.compute(c_p=1000, c_t=2000, a=100)   # 40 ticks/access
    assert atu.next_issue_time(100) == 140
    assert atu.next_issue_time(150) == 190   # even when arriving late


def test_gate_ng_burst_allowance():
    atu = AccessThrottlingUnit()
    atu.compute(c_p=1000, c_t=2000, a=100)
    atu.ng = 3
    atu._tokens = 3
    assert atu.next_issue_time(10) == 10     # token 1
    assert atu.next_issue_time(11) == 11     # token 2
    assert atu.next_issue_time(12) == 12 + atu.wg_ticks  # burst exhausted
    assert atu.next_issue_time(13) == 13     # tokens refilled


def test_inactive_gate_is_transparent():
    atu = AccessThrottlingUnit()
    for t in (0, 5, 5, 7):
        assert atu.next_issue_time(t) == t


def test_reset_gate_clears_state():
    atu = AccessThrottlingUnit()
    atu.compute(c_p=100, c_t=1000, a=10)
    atu.next_issue_time(50)
    atu.reset_gate()
    assert atu.wg_ticks == 0
    assert atu.next_issue_time(51) == 51


def test_kind_is_ignored():
    """The ATU throttles the collective rate, not one pipeline unit."""
    atu = AccessThrottlingUnit()
    atu.compute(c_p=1000, c_t=2000, a=100)
    assert atu.next_issue_time(0, "texture") == atu.wg_ticks


@given(st.floats(1, 1e6), st.floats(1, 1e6), st.floats(1, 1e5))
def test_property_wg_never_exceeds_fig6_bound(c_p, c_t, a):
    """Floor quantisation: A * W_G <= C_T - C_P, so the throttle never
    pushes the GPU below the QoS target."""
    atu = AccessThrottlingUnit()
    ng, wg = atu.compute(c_p, c_t, a)
    assert ng == 1
    if c_p > c_t:
        assert wg == 0
    else:
        gap = c_t - c_p
        assert wg * a <= gap * (1 + 1e-9) + 1e-6
        # and it is within one quantisation step of the bound
        step_cycles = atu.wg_step / atu.gpu_cycle_ticks
        assert (wg + step_cycles) * a > gap * (1 - 1e-9) - 1e-6


@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
def test_property_gate_times_never_precede_request(times):
    atu = AccessThrottlingUnit()
    atu.compute(c_p=100, c_t=10_000, a=7)
    t = 0
    for dt in times:
        t += dt
        allowed = atu.next_issue_time(t)
        assert allowed >= t
        assert allowed - t <= atu.wg_ticks
