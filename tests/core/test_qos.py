"""Integration tests for the QoS controller on a small live system."""

import pytest

from repro.config import default_config
from repro.mixes import Mix, MIXES_M
from repro.policies.throttle import ThrottlePolicy
from repro.sim.system import HeterogeneousSystem


def run_m7(policy=None, scale="smoke", seed=1):
    cfg = default_config(scale=scale, n_cpus=4, seed=seed)
    return HeterogeneousSystem(cfg, MIXES_M["M7"], policy).run()


def test_throttle_engages_on_fast_gpu():
    pol = ThrottlePolicy(cpu_priority=False)
    s = run_m7(pol)
    qos = pol.qos
    assert qos.frpu.frames_learned >= 1
    assert qos.stats.get("throttle_activations") >= 1
    assert qos.atu.throttled_recomputes > 0


def test_throttled_fps_lands_near_target():
    base = run_m7()
    pol = ThrottlePolicy(cpu_priority=False)
    thr = run_m7(pol)
    target = thr.cfg.qos.target_fps
    assert base.gpu_fps() > target          # amenable mix
    assert thr.gpu_fps() < base.gpu_fps()   # throttled below baseline
    # "just around the target": generous band at smoke scale
    assert 0.8 * target < thr.gpu_fps() < 1.5 * target


def test_throttle_never_engages_on_slow_gpu():
    """M6 (Crysis, ~6 FPS) never meets the target: the proposal must
    stay disabled and deliver baseline behaviour."""
    pol = ThrottlePolicy(cpu_priority=True)
    cfg = default_config(scale="smoke", n_cpus=4)
    s = HeterogeneousSystem(cfg, MIXES_M["M6"], pol).run()
    assert pol.qos.atu.throttled_recomputes == 0
    assert not pol.qos.throttling


def test_cpu_priority_boost_follows_throttling():
    pol = ThrottlePolicy(cpu_priority=True)
    s = run_m7(pol)
    # after the run the gate state must be consistent with the boost
    for sched in pol._schedulers:
        assert sched.boost == pol.qos.throttling


def test_target_cycles_per_frame_math():
    pol = ThrottlePolicy(cpu_priority=False)
    s = run_m7(pol)
    qos = pol.qos
    w = s.gpu.workload
    expected = s.cfg.scale.gpu_frame_cycles * w.fps_nominal / 40.0
    assert qos.target_cycles_per_frame == pytest.approx(expected)


def test_custom_target_fps():
    pol = ThrottlePolicy(cpu_priority=False, target_fps=30.0)
    s = run_m7(pol)
    assert pol.qos.cfg.target_fps == 30.0


def test_estimate_only_policy_never_throttles():
    from repro.policies import make_policy
    pol = make_policy("estimate")
    s = run_m7(pol)
    assert pol.qos.atu.throttled_recomputes == 0
    assert pol.qos.frpu.frames_predicted >= 1
