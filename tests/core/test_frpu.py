"""Unit tests for the frame-rate predictor (learning/prediction phases,
Eqs. 1-3, cross-verification)."""

import pytest

from repro.core.frpu import FrameRatePredictor, Phase
from repro.gpu.pipeline import FrameRecord, RtpRecord


def frame(index, n_rtp=4, cycles_per_rtp=1000, updates=50, rtts=50,
          llc=2000, throttle=0):
    rtps = [RtpRecord(updates, cycles_per_rtp, rtts, llc, throttle)
            for _ in range(n_rtp)]
    return FrameRecord(index, cycles_per_rtp * n_rtp, llc * n_rtp, rtps,
                       throttle * n_rtp, end_time=0)


class StubPipeline:
    """Minimal stand-in exposing the FRPU observation surface."""

    def __init__(self, progress=0.5, records=None, elapsed=0.0,
                 throttle=0.0, frame_idx=10):
        self.frame_progress = progress
        self._records = records or []
        self._elapsed = elapsed
        self._throttle = throttle
        self._frame_idx = frame_idx

    def current_rtp_records(self):
        return self._records

    def current_frame_elapsed_cycles(self):
        return self._elapsed

    def current_frame_throttle_cycles(self):
        return self._throttle


def learn(frpu, **kw):
    frpu.on_frame_complete(frame(frpu.skip_frames, **kw))


def test_starts_learning_then_predicts():
    f = FrameRatePredictor()
    assert f.phase is Phase.LEARNING
    learn(f)
    assert f.phase is Phase.PREDICTION
    assert f.learned.n_rtp == 4
    assert f.learned.c_avg == 1000
    assert f.learned.llc_accesses == 8000


def test_cold_frames_skipped():
    f = FrameRatePredictor(skip_frames=2)
    f.on_frame_complete(frame(0, cycles_per_rtp=99_999))
    f.on_frame_complete(frame(1, cycles_per_rtp=99_999))
    assert f.phase is Phase.LEARNING   # both ignored
    f.on_frame_complete(frame(2))
    assert f.phase is Phase.PREDICTION
    assert f.learned.c_avg == 1000


def test_eq3_blends_inter_and_avg():
    f = FrameRatePredictor()
    learn(f)                            # c_avg=1000, n_rtp=4
    # current frame: 2 RTPs done at 2000 cycles each, lambda=0.5
    recs = [RtpRecord(50, 2000, 50, 2000, 0)] * 2
    pred = f.predict_frame_cycles(StubPipeline(0.5, recs))
    # c_rtp = 0.5*2000 + 0.5*1000 = 1500 -> F = 6000
    assert pred == pytest.approx(6000)


def test_prediction_without_completed_rtps_uses_elapsed():
    f = FrameRatePredictor()
    learn(f)
    p = StubPipeline(progress=0.25, records=[], elapsed=1500.0)
    pred = f.predict_frame_cycles(p)
    # c_inter = 1500/(0.25*4)=1500; c_rtp = 0.25*1500+0.75*1000 = 1125
    assert pred == pytest.approx(1125 * 4)


def test_no_prediction_while_learning():
    f = FrameRatePredictor()
    assert f.predict_frame_cycles(StubPipeline()) is None


def test_throttle_correction_subtracts_injected_stall():
    f = FrameRatePredictor(correct_throttle=True)
    learn(f)
    recs = [RtpRecord(50, 1500, 50, 2000, throttle_ticks=500)] * 2
    pred = f.predict_frame_cycles(StubPipeline(0.5, recs))
    # natural c_inter = (3000-1000)/2 = 1000 -> F = 4000
    assert pred == pytest.approx(4000)


def test_raw_mode_keeps_throttle_in_estimate():
    f = FrameRatePredictor(correct_throttle=False)
    learn(f)
    recs = [RtpRecord(50, 1500, 50, 2000, throttle_ticks=500)] * 2
    pred = f.predict_frame_cycles(StubPipeline(0.5, recs))
    assert pred == pytest.approx((0.5 * 1500 + 0.5 * 1000) * 4)


def test_verification_discards_on_workload_change():
    f = FrameRatePredictor(verify_threshold=0.25)
    learn(f)
    # a frame with 3x the work per RTP: learning must be discarded
    f.on_frame_complete(frame(2, updates=150, rtts=150, llc=6000))
    assert f.phase is Phase.LEARNING
    assert f.learned is None
    # and it re-learns from the next frame (point C of Fig. 4)
    f.on_frame_complete(frame(3))
    assert f.phase is Phase.PREDICTION


def test_verification_tolerates_cycle_changes():
    """Contention moves cycles, not work — learning must survive."""
    f = FrameRatePredictor()
    learn(f)
    f.on_frame_complete(frame(2, cycles_per_rtp=1800))
    assert f.phase is Phase.PREDICTION


def test_ewma_refresh_tracks_drift():
    f = FrameRatePredictor(ewma_alpha=0.5)
    learn(f)
    f.on_frame_complete(frame(2, cycles_per_rtp=2000))
    assert 1000 < f.learned.c_avg < 2000


def test_error_log_records_mid_frame_predictions():
    f = FrameRatePredictor()
    learn(f)
    recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
    f.predict_frame_cycles(StubPipeline(0.5, recs, frame_idx=2))
    f.on_frame_complete(frame(2))
    errs = f.percent_errors()
    assert len(errs) == 1
    assert errs[0] == pytest.approx(0.0, abs=1e-6)
    assert f.mean_abs_percent_error() == pytest.approx(0.0, abs=1e-6)


def test_refresh_survives_frame_with_no_rtps():
    """Regression: an empty frame must not divide by zero in _refresh."""
    f = FrameRatePredictor()
    learn(f)
    f._refresh(frame(2, n_rtp=0))        # no ZeroDivisionError
    assert f.learned.c_avg >= 0


def test_mid_frame_predictions_are_bounded():
    """Regression: abandoned mid-frame predictions must not accumulate."""
    f = FrameRatePredictor()
    learn(f)
    recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
    for idx in range(2, 100):
        f.predict_frame_cycles(StubPipeline(0.5, recs, frame_idx=idx))
    assert len(f._mid_frame_prediction) <= f.MID_FRAME_BOUND


def test_mid_frame_predictions_cleared_on_learning_reset():
    f = FrameRatePredictor()
    learn(f)
    recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
    f.predict_frame_cycles(StubPipeline(0.5, recs, frame_idx=2))
    assert f._mid_frame_prediction
    f.on_frame_complete(frame(2, updates=500))   # verify fails: reset
    assert f.phase is Phase.LEARNING
    assert not f._mid_frame_prediction


def test_stale_mid_frame_predictions_pruned_on_completion():
    """A prediction for a frame that never completed is dropped when a
    later frame does, and contributes nothing to the error log."""
    f = FrameRatePredictor()
    learn(f)
    recs = [RtpRecord(50, 1000, 50, 2000, 0)] * 2
    f.predict_frame_cycles(StubPipeline(0.5, recs, frame_idx=2))
    f.predict_frame_cycles(StubPipeline(0.5, recs, frame_idx=3))
    f.on_frame_complete(frame(3))
    assert not f._mid_frame_prediction   # 3 consumed, stale 2 pruned
    assert [i for i, _p, _a in f.error_log] == [3]


def test_phase_transitions_recorded():
    f = FrameRatePredictor()
    learn(f)
    f.on_frame_complete(frame(2, updates=500))   # discard
    f.on_frame_complete(frame(3))                # relearn
    phases = [p for _, p in f.phase_transitions]
    assert phases == [Phase.PREDICTION, Phase.LEARNING, Phase.PREDICTION]
