"""Unit tests for the SPEC CPU 2006 profile definitions."""

import pytest

from repro.cpu.spec import SPEC_PROFILES, SpecProfile, StreamSpec, \
    profile_for
from repro.mixes import MIXES_M, MIXES_W


def test_all_table3_ids_have_profiles():
    needed = set()
    for m in list(MIXES_M.values()) + list(MIXES_W.values()):
        needed.update(m.cpu_apps)
    assert needed <= set(SPEC_PROFILES)


def test_profile_weights_sum_to_one():
    for p in SPEC_PROFILES.values():
        assert sum(s.weight for s in p.streams) == pytest.approx(1.0,
                                                                 abs=1e-3)


def test_invalid_weights_rejected():
    with pytest.raises(ValueError):
        SpecProfile(999, "bad", 300, 0.3, 2.0, 4,
                    (StreamSpec("hot", 0.5, 1024),))


def test_profile_for_unknown_raises():
    with pytest.raises(KeyError):
        profile_for(12345)


def test_behaviour_classes_are_distinct():
    """The mixes need a spread of behaviours: pointer-chasers are
    low-MLP, streamers are high-MLP and bandwidth-heavy."""
    mcf = profile_for(429)
    lbq = profile_for(462)
    assert mcf.mlp < lbq.mlp
    assert any(s.kind == "pointer" for s in mcf.streams)
    stream_w = sum(s.weight for s in lbq.streams if s.kind == "stream")
    assert stream_w >= 0.3


def test_expected_llc_mpki_ordering():
    """The derived LLC-access MPKI proxy must preserve the published
    ordering: gcc lowest, streaming/pointer apps high."""
    def mpki(p: SpecProfile) -> float:
        acc = 0.0
        for s in p.streams:
            if s.kind in ("random", "pointer"):
                acc += s.weight
            elif s.kind == "stream":
                acc += s.weight / 8
        return p.mem_per_kinst * acc

    vals = {sid: mpki(p) for sid, p in SPEC_PROFILES.items()}
    assert vals[403] == min(vals.values())       # gcc
    assert vals[462] > vals[403] * 4             # libquantum >> gcc
    assert vals[429] > vals[481]                 # mcf > wrf
