"""Unit tests for the interval core model, against a fake LLC."""

import pytest

from repro.config import CpuCoreConfig
from repro.cpu.core import CpuCore
from repro.cpu.spec import profile_for
from repro.cpu.trace import TraceGenerator
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


class FakeLLC:
    """Responds to every request after a fixed latency."""

    def __init__(self, sim, latency=50):
        self.sim = sim
        self.latency = latency
        self.requests: list[MemRequest] = []

    def send(self, req: MemRequest) -> None:
        self.requests.append(req)
        if req.on_done is not None:
            self.sim.after(self.latency, req.complete)


def build(spec_id=403, target=20_000, warmup=0, latency=50, seed=5,
          stop_at_target=True):
    sim = Simulator()
    llc = FakeLLC(sim, latency)
    trace = TraceGenerator(profile_for(spec_id), seed, 1 << 34,
                           mem_scale=4)
    core = CpuCore(sim, CpuCoreConfig(), 0, trace, llc.send,
                   target_instructions=target,
                   warmup_instructions=warmup)
    if stop_at_target:
        # unit tests end at the target; the continue-running behaviour
        # has its own dedicated test below
        core.on_target_reached = lambda cid: sim.stop()
    return sim, llc, core


def test_core_reaches_target_and_reports_ipc():
    sim, llc, core = build()
    core.start()
    sim.run(until=50_000_000)
    assert core.done
    assert core.finish_time is not None
    assert 0.05 < core.ipc_achieved() < 4.0
    assert core.instructions >= 20_000


def test_completion_callback_fires_once():
    calls = []
    sim2, llc2, core = build(stop_at_target=False)
    core.on_target_reached = lambda cid: (calls.append(cid),
                                          sim2.stop())
    core.start()
    sim2.run(until=50_000_000)
    assert calls == [0]


def test_warmup_separates_measurement():
    sim, llc, core = build(target=10_000, warmup=10_000)
    core.start()
    sim.run(until=50_000_000)
    assert core.warm_time is not None
    assert core.warm_time < core.finish_time
    assert core.measured_instructions == 10_000
    ipc = core.ipc_achieved()
    assert ipc == pytest.approx(
        10_000 / (core.finish_time - core.warm_time), rel=1e-6)


def test_latency_sensitivity():
    """Higher memory latency must lower IPC (the contention coupling)."""
    _, _, fast = build(spec_id=429, latency=50)
    sim_f = fast.sim
    fast.start()
    sim_f.run(until=100_000_000)
    _, _, slow = build(spec_id=429, latency=500)
    sim_s = slow.sim
    slow.start()
    sim_s.run(until=200_000_000)
    assert fast.done and slow.done
    assert fast.ipc_achieved() > slow.ipc_achieved() * 1.3


def test_no_duplicate_llc_requests_for_inflight_lines():
    sim, llc, core = build(spec_id=462)
    core.start()
    sim.run(until=50_000_000)
    loads = [r.addr for r in llc.requests if r.kind in ("load", "store")]
    # merges guarantee each line has at most a handful of fetches
    # (re-fetch after eviction is legal; duplicates in flight are not)
    assert len(loads) > 0


def test_prefetcher_fires_on_streams():
    sim, llc, core = build(spec_id=462)   # libquantum: heavy streaming
    core.start()
    sim.run(until=50_000_000)
    assert core.stats.get("llc_prefetches") > 50
    kinds = {r.kind for r in llc.requests}
    assert "prefetch" in kinds


def test_prefetcher_quiet_on_pointer_chasers():
    sim, llc, core = build(spec_id=403)   # gcc: cache-resident
    core.start()
    sim.run(until=50_000_000)
    assert core.stats.get("llc_prefetches") < \
        core.stats.get("llc_loads") + 100


def test_back_invalidate_drops_private_copies_and_reports_dirty():
    sim, llc, core = build()
    core.l2.allocate(0x1000, write=True, owner="cpu0")
    core.l1d.allocate(0x1000, write=False, owner="cpu0")
    assert core.back_invalidate(0x1000) is True
    assert core.l2.probe(0x1000) is None
    assert core.l1d.probe(0x1000) is None
    assert core.back_invalidate(0x2000) is False


def test_core_continues_after_target():
    """Early finishers keep running (Section V-B)."""
    sim, llc, core = build(target=5_000, stop_at_target=False)
    core.start()
    sim.run(until=100_000)
    insts_at_done = core.instructions
    assert core.done
    sim.run(until=200_000)
    assert core.instructions > insts_at_done
