"""Unit + property tests for the synthetic trace generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import LINE_BYTES
from repro.cpu.spec import SPEC_PROFILES, profile_for
from repro.cpu.trace import TraceGenerator


def gen(spec_id=462, seed=3, base=1 << 34, mem_scale=1):
    return TraceGenerator(profile_for(spec_id), seed, base,
                          mem_scale=mem_scale)


def test_deterministic_from_seed():
    a = gen(seed=11).next_batch(500)
    b = gen(seed=11).next_batch(500)
    assert np.array_equal(a.addrs, b.addrs)
    assert np.array_equal(a.gaps, b.gaps)
    c = gen(seed=12).next_batch(500)
    assert not np.array_equal(a.addrs, c.addrs)


def test_addresses_line_aligned_and_in_region():
    tg = gen()
    b = tg.next_batch(2000)
    assert np.all(b.addrs % LINE_BYTES == 0)
    assert np.all(b.addrs >= tg.base_addr)
    assert np.all(b.addrs < tg.end_addr)


def test_mean_gap_matches_mem_per_kinst():
    tg = gen(spec_id=429)     # 390 memops / kinst
    gaps = np.concatenate([tg.next_batch(4000).gaps for _ in range(4)])
    insts_per_memop = gaps.mean() + 1
    assert insts_per_memop == pytest.approx(1000 / 390, rel=0.05)


def test_stream_walks_lines_every_eighth_access():
    tg = gen(spec_id=462)
    b = tg.next_batch(8000)
    lines = np.unique(b.addrs // LINE_BYTES)
    # stream weight 0.35/8 + hot uniques: far fewer lines than accesses
    assert len(lines) < len(b.addrs) * 0.2


def test_pointer_accesses_marked_serial_and_loads():
    tg = gen(spec_id=429)
    b = tg.next_batch(8000)
    assert b.serial.any()
    assert not b.writes[b.serial].any()


def test_store_fraction_matches_profile():
    tg = gen(spec_id=470)     # lbm: 0.45 stores
    b = tg.next_batch(20000)
    frac = b.writes.mean()
    assert frac == pytest.approx(0.45, abs=0.05)


def test_mem_scale_shrinks_footprint():
    big = gen(mem_scale=1)
    small = gen(mem_scale=4)
    assert small.footprint_bytes() < big.footprint_bytes()
    assert small.footprint_bytes() >= big.footprint_bytes() // 8


def test_ifetch_addresses_in_code_region():
    tg = gen()
    f = tg.ifetch_addresses(1000)
    assert np.all(f >= tg.code_base)
    assert np.all(f < tg.end_addr)
    assert np.all(f % LINE_BYTES == 0)


def test_ifetch_locality_is_high():
    tg = gen()
    f = tg.ifetch_addresses(4000)
    # a hot loop: few distinct lines dominate
    _, counts = np.unique(f, return_counts=True)
    top16 = np.sort(counts)[-16:].sum()
    assert top16 / len(f) > 0.7


@settings(max_examples=20)
@given(st.sampled_from(sorted(SPEC_PROFILES)), st.integers(0, 999))
def test_property_any_profile_generates_valid_batches(spec_id, seed):
    tg = gen(spec_id=spec_id, seed=seed, mem_scale=4)
    b = tg.next_batch(512)
    assert b.n == 512
    assert np.all(b.gaps >= 0)
    assert np.all(b.addrs >= tg.base_addr)
    assert np.all(b.addrs < tg.end_addr)
    assert len(b.writes) == len(b.serial) == 512
