"""Tests for the branch misprediction model."""

import pytest

from repro.cpu.branch import (BranchModel, DEFAULT_MPKI, FLUSH_CYCLES,
                              MISPREDICT_MPKI)


def test_all_profiles_covered():
    from repro.cpu.spec import SPEC_PROFILES
    assert set(SPEC_PROFILES) <= set(MISPREDICT_MPKI)


def test_charge_is_exact_in_aggregate():
    bm = BranchModel(429)              # 9 MPKI
    total = 0.0
    for _ in range(100):
        total += bm.charge(1000)
    # 100k instructions * 9 MPKI = 900 mispredicts
    assert bm.mispredicts == pytest.approx(900, abs=1)
    assert total == pytest.approx(900 * FLUSH_CYCLES, rel=0.01)


def test_fractional_accumulation_deterministic():
    a = BranchModel(470)               # 0.4 MPKI: mostly fractional
    b = BranchModel(470)
    seq_a = [a.charge(77) for _ in range(200)]
    seq_b = [b.charge(77) for _ in range(200)]
    assert seq_a == seq_b
    assert a.mispredicts == b.mispredicts > 0


def test_branchy_vs_streaming_ordering():
    mcf = BranchModel(429)
    lbm = BranchModel(470)
    mcf.charge(100_000)
    lbm.charge(100_000)
    assert mcf.mispredicts > 10 * lbm.mispredicts


def test_unknown_profile_uses_default():
    bm = BranchModel(999)
    bm.charge(100_000)
    assert bm.mispredicts == pytest.approx(100 * DEFAULT_MPKI, abs=1)


def test_core_accounts_branch_penalty():
    """A core running a branchy profile must be slower than the same
    profile with mispredictions zeroed out."""
    from repro.config import CpuCoreConfig
    from repro.cpu.core import CpuCore
    from repro.cpu.spec import profile_for
    from repro.cpu.trace import TraceGenerator
    from repro.mem.request import MemRequest
    from repro.sim.engine import Simulator

    def run(zero_bp):
        sim = Simulator()

        def send(req: MemRequest):
            if req.on_done:
                sim.after(50, req.complete)
        tr = TraceGenerator(profile_for(403), 3, 1 << 34, mem_scale=4)
        core = CpuCore(sim, CpuCoreConfig(), 0, tr, send,
                       target_instructions=30_000,
                       on_target_reached=lambda cid: sim.stop())
        if zero_bp:
            core.branches.penalty_per_inst = 0.0
        core.start()
        sim.run(until=100_000_000)
        return core.ipc_achieved()

    assert run(zero_bp=True) > run(zero_bp=False)
