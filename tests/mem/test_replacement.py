"""Unit + property tests for replacement policies."""

import pytest
from hypothesis import given, strategies as st

from repro.mem.cache import Line
from repro.mem.replacement import (LruPolicy, RandomPolicy, SrripPolicy,
                                   make_policy)


def lines(n):
    return [Line(tag, "cpu0") for tag in range(n)]


def test_registry():
    assert isinstance(make_policy("lru"), LruPolicy)
    assert isinstance(make_policy("srrip"), SrripPolicy)
    assert isinstance(make_policy("random"), RandomPolicy)
    with pytest.raises(KeyError):
        make_policy("belady")


def test_lru_victim_is_least_recent():
    pol = LruPolicy()
    ls = lines(4)
    for ln in ls:
        pol.on_fill(ln)
    pol.on_hit(ls[0])          # 0 becomes most recent
    assert pol.victim(ls) is ls[1]


def test_lru_fill_counts_as_use():
    pol = LruPolicy()
    ls = lines(3)
    pol.on_fill(ls[0])
    pol.on_fill(ls[1])
    pol.on_fill(ls[2])
    assert pol.victim(ls) is ls[0]


def test_srrip_insert_at_long_rereference():
    pol = SrripPolicy(bits=2)
    ln = Line(1, "gpu")
    pol.on_fill(ln)
    assert ln.repl == 2        # max(3) - 1


def test_srrip_hit_promotes_to_zero():
    pol = SrripPolicy(bits=2)
    ln = Line(1, "gpu")
    pol.on_fill(ln)
    pol.on_hit(ln)
    assert ln.repl == 0


def test_srrip_victim_prefers_max_rrpv_and_ages():
    pol = SrripPolicy(bits=2)
    ls = lines(4)
    for ln in ls:
        pol.on_fill(ln)        # all at 2
    ls[3].repl = 3
    assert pol.victim(ls) is ls[3]
    # now none at 3: aging until one reaches it
    ls[3].repl = 0
    v = pol.victim(ls)
    assert v in ls[:3]
    assert v.repl == 3         # aged up to max


def test_srrip_needs_at_least_one_bit():
    with pytest.raises(ValueError):
        SrripPolicy(bits=0)


def test_random_is_seeded_deterministic():
    a = RandomPolicy(seed=42)
    b = RandomPolicy(seed=42)
    ls = lines(8)
    assert [a.victim(ls).tag for _ in range(20)] == \
        [b.victim(ls).tag for _ in range(20)]


@given(st.lists(st.integers(0, 15), min_size=1, max_size=200))
def test_property_lru_victim_matches_reference(ops):
    """LRU victim always equals the oldest-touched line of the set."""
    pol = LruPolicy()
    ls = {t: Line(t, "cpu0") for t in range(16)}
    order = []
    for t in ls:
        pol.on_fill(ls[t])
        order.append(t)
    for t in ops:
        pol.on_hit(ls[t])
        order.remove(t)
        order.append(t)
    assert pol.victim(list(ls.values())).tag == order[0]


@given(st.integers(1, 4))
def test_property_srrip_rrpv_always_in_range(bits):
    pol = SrripPolicy(bits=bits)
    ls = lines(8)
    for ln in ls:
        pol.on_fill(ln)
        assert 0 <= ln.repl <= pol.max_rrpv
    for _ in range(5):
        v = pol.victim(ls)
        assert v.repl == pol.max_rrpv
        pol.on_hit(v)
        for ln in ls:
            assert 0 <= ln.repl <= pol.max_rrpv
