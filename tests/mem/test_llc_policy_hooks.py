"""Tests for the LLC policy hooks: insertion override, eviction
observer, and their interplay with bypass."""

from repro.config import LlcConfig
from repro.mem.llc import SharedLLC
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


class FakeDram:
    def __init__(self, sim):
        self.sim = sim
        self.reads = []

    def send(self, req):
        if not req.is_write:
            self.reads.append(req.addr)
            self.sim.after(50, req.complete)


def make(sim, size=16 * 64):
    dram = FakeDram(sim)
    llc = SharedLLC(sim, LlcConfig(size_bytes=size), dram_send=dram.send)
    return llc, dram


def read(addr, src="gpu", kind="texture"):
    return MemRequest(addr, False, src, kind, on_done=lambda r: None)


def test_fill_rrpv_override_applied():
    sim = Simulator()
    llc, _ = make(sim)
    llc.fill_rrpv_fn = lambda req: 3 if req.is_gpu else None
    llc.access(read(0x100, src="gpu"))
    llc.access(read(0x2000, src="cpu0", kind="load"))
    sim.run()
    assert llc.cache.probe(0x100).repl == 3       # overridden
    assert llc.cache.probe(0x2000).repl == 2      # SRRIP default (max-1)


def test_override_none_keeps_default():
    sim = Simulator()
    llc, _ = make(sim)
    llc.fill_rrpv_fn = lambda req: None
    llc.access(read(0x40))
    sim.run()
    assert llc.cache.probe(0x40).repl == 2


def test_demoted_lines_evicted_first():
    sim = Simulator()
    llc, _ = make(sim)                 # 1 set x 16 ways
    llc.fill_rrpv_fn = lambda req: 3 if req.kind == "texture" else None
    # fill 8 texture (demoted) + 8 depth (default) lines
    for i in range(8):
        llc.access(read(i * 64, kind="texture"))
    for i in range(8, 16):
        llc.access(read(i * 64, kind="depth"))
    sim.run()
    evicted = []
    llc.eviction_observer = lambda o, k, r: evicted.append(k)
    for i in range(16, 22):
        llc.access(read(i * 64, kind="depth"))
    sim.run()
    assert evicted
    assert set(evicted[:4]) == {"texture"}        # demoted go first


def test_eviction_observer_sees_reuse_flag():
    sim = Simulator()
    llc, _ = make(sim)
    seen = {}
    llc.eviction_observer = lambda o, k, r: seen.setdefault(k, r)
    llc.access(read(0, kind="color"))
    sim.run()
    llc.access(read(0, kind="color"))             # reuse line 0
    sim.run()
    for i in range(1, 17):
        llc.access(read(i * 64, kind="vertex"))
    sim.run()
    # line 0 (reused) eventually evicts with reused=True; some vertex
    # line evicts dead
    assert seen.get("color") is True or "vertex" in seen


def test_bypass_beats_override():
    """A bypassed fill never allocates, so the override is moot."""
    sim = Simulator()
    llc, dram = make(sim)
    llc.bypass_fn = lambda req: True
    calls = []
    llc.fill_rrpv_fn = lambda req: calls.append(req) or 0
    llc.access(read(0x40))
    sim.run()
    assert llc.cache.probe(0x40) is None
    assert not calls                   # override not consulted
