"""Unit tests for the shared LLC: hit/miss flow, MSHR merging, bypass,
inclusion back-invalidation, and writeback paths."""

import pytest

from repro.config import LlcConfig
from repro.mem.llc import SharedLLC
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator


DRAM_LAT = 100


class FakeDram:
    """Completes every read after a fixed delay; records traffic."""

    def __init__(self, sim, latency=DRAM_LAT):
        self.sim = sim
        self.latency = latency
        self.reads = []
        self.writes = []

    def send(self, req):
        if req.is_write:
            self.writes.append(req.addr)
        else:
            self.reads.append(req.addr)
            self.sim.after(self.latency, req.complete)


def make_llc(sim, size=64 * 1024, mshr=4):
    dram = FakeDram(sim)
    cfg = LlcConfig(size_bytes=size, mshr_entries=mshr)
    llc = SharedLLC(sim, cfg, dram_send=dram.send)
    return llc, dram


def read(addr, done, src="cpu0", kind="load"):
    return MemRequest(addr, False, src, kind,
                      on_done=lambda r: done.append((addr, r)))


def test_read_miss_goes_to_dram_then_hits():
    sim = Simulator()
    llc, dram = make_llc(sim)
    done = []
    llc.access(read(0x1000, done))
    sim.run()
    assert len(done) == 1
    assert dram.reads == [0x1000]
    done2 = []
    llc.access(read(0x1000, done2))
    sim.run()
    assert len(done2) == 1
    assert dram.reads == [0x1000]      # second access hit
    assert llc.stats.get("cpu_hits") == 1
    assert llc.stats.get("cpu_misses") == 1


def test_secondary_miss_merges():
    sim = Simulator()
    llc, dram = make_llc(sim)
    done = []
    llc.access(read(0x2000, done))
    llc.access(read(0x2000, done))     # while fill in flight
    sim.run()
    assert len(done) == 2
    assert dram.reads == [0x2000]      # one fill only


def test_mshr_full_queues_and_drains():
    sim = Simulator()
    llc, dram = make_llc(sim, mshr=2)
    done = []
    for i in range(5):
        llc.access(read(0x4000 + i * 64, done))
    sim.run()
    assert len(done) == 5
    assert len(dram.reads) == 5
    assert llc.mshr.stats.get("full_stalls") >= 1


def test_write_hit_marks_dirty():
    sim = Simulator()
    llc, dram = make_llc(sim)
    done = []
    llc.access(read(0, done, src="gpu", kind="color"))
    sim.run()
    assert not llc.cache.probe(0).dirty
    llc.access(MemRequest(0, True, "gpu", "color"))
    sim.run()
    assert llc.cache.probe(0).dirty


def test_dirty_eviction_writes_back_to_dram():
    sim = Simulator()
    # tiny LLC: 1 set x 16 ways; 17 dirty GPU lines -> one eviction
    llc, dram = make_llc(sim, size=16 * 64)
    for i in range(17):
        llc.access(MemRequest(i * 64, True, "gpu", "color"))
    sim.run()
    assert len(dram.writes) == 1
    assert llc.stats.get("writebacks_to_dram") == 1
    assert llc.cache.occupancy() == 16


def test_write_miss_allocates_without_fetch():
    """Full-line writebacks (e.g. GPU ROP flushes) allocate dirty with
    no DRAM read (paper footnote 6)."""
    sim = Simulator()
    llc, dram = make_llc(sim)
    llc.access(MemRequest(0x8000, True, "gpu", "color"))
    sim.run()
    assert dram.reads == []
    assert llc.cache.probe(0x8000).dirty


def test_back_invalidation_on_cpu_eviction():
    sim = Simulator()
    llc, dram = make_llc(sim, size=16 * 64)
    invalidated = []
    llc.back_invalidate = lambda owner, addr: (
        invalidated.append((owner, addr)), False)[1]
    done = []
    llc.access(read(0, done, src="cpu2"))
    sim.run()
    for i in range(1, 17):
        llc.access(read(i * 64, done, src="gpu", kind="texture"))
        sim.run()
    assert ("cpu2", 0) in invalidated
    assert llc.stats.get("back_invalidations") >= 1


def test_back_invalidation_dirty_core_copy_reaches_dram():
    sim = Simulator()
    llc, dram = make_llc(sim, size=16 * 64)
    llc.back_invalidate = lambda owner, addr: True   # core copy dirty
    done = []
    llc.access(read(0, done, src="cpu0"))
    sim.run()
    for i in range(1, 17):
        llc.access(read(i * 64, done, src="gpu", kind="texture"))
        sim.run()
    assert 0 in dram.writes


def test_gpu_eviction_does_not_back_invalidate():
    sim = Simulator()
    llc, dram = make_llc(sim, size=16 * 64)
    calls = []
    llc.back_invalidate = lambda owner, addr: (calls.append(owner), False)[1]
    done = []
    for i in range(17):
        llc.access(read(i * 64, done, src="gpu", kind="depth"))
        sim.run()
    assert calls == []                 # non-inclusive for GPU lines


def test_bypass_fn_skips_allocation_for_gpu_reads():
    sim = Simulator()
    llc, dram = make_llc(sim)
    llc.bypass_fn = lambda req: True
    done = []
    llc.access(read(0x9000, done, src="gpu", kind="texture"))
    sim.run()
    assert len(done) == 1
    assert llc.cache.probe(0x9000) is None
    assert llc.stats.get("gpu_bypassed_fills") == 1
    # and a repeat is a miss again (no reuse)
    llc.access(read(0x9000, done, src="gpu", kind="texture"))
    sim.run()
    assert len(dram.reads) == 2


def test_bypass_fn_never_applies_to_cpu():
    sim = Simulator()
    llc, dram = make_llc(sim)
    llc.bypass_fn = lambda req: True
    done = []
    llc.access(read(0xa000, done, src="cpu1"))
    sim.run()
    assert llc.cache.probe(0xa000) is not None


def test_per_kind_gpu_stats():
    sim = Simulator()
    llc, dram = make_llc(sim)
    done = []
    llc.access(read(0, done, src="gpu", kind="texture"))
    llc.access(read(64, done, src="gpu", kind="depth"))
    llc.access(read(128, done, src="gpu", kind="texture"))
    sim.run()
    assert llc.stats.get("gpu_texture_accesses") == 2
    assert llc.stats.get("gpu_depth_accesses") == 1


def test_response_delay_applied():
    sim = Simulator()
    dram = FakeDram(sim)
    cfg = LlcConfig(size_bytes=64 * 1024)
    llc = SharedLLC(sim, cfg, dram_send=dram.send,
                    response_delay=lambda r: 7)
    done = []
    llc.access(read(0, done))
    sim.run()
    t_first = sim.now
    # hit path: latency + response delay
    llc.access(read(0, done))
    start = sim.now
    sim.run()
    assert sim.now - start == cfg.latency + 7
