"""Unit + property tests for the functional set-associative cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig
from repro.mem.cache import Cache


def small_cache(sets=4, ways=2, line=64, policy="lru"):
    return Cache(CacheConfig("t", sets * ways * line, ways,
                             line_bytes=line, policy=policy))


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheConfig("bad", 1000, 3, line_bytes=64).sets
    with pytest.raises(ValueError):
        Cache(CacheConfig("bad2", 3 * 64 * 3, 3, line_bytes=64))


def test_miss_then_hit():
    c = small_cache()
    assert c.lookup(0x1000) is None
    c.allocate(0x1000, owner="cpu0")
    assert c.lookup(0x1000) is not None
    assert c.hits == 1 and c.misses == 1


def test_same_line_aliases():
    c = small_cache()
    c.allocate(0x1000, owner="cpu0")
    assert c.lookup(0x1000 + 63) is not None   # same 64B line
    assert c.lookup(0x1000 + 64) is None       # next line


def test_eviction_on_full_set():
    c = small_cache(sets=1, ways=2)
    c.allocate(0 * 64, owner="cpu0")
    c.allocate(1 * 64, owner="cpu0")
    ev = c.allocate(2 * 64, owner="cpu0")
    assert ev is not None
    assert ev.addr == 0                        # LRU victim
    assert c.occupancy() == 2


def test_dirty_eviction_reports_dirty():
    c = small_cache(sets=1, ways=1)
    c.allocate(0, write=True, owner="cpu0")
    ev = c.allocate(64, owner="cpu0")
    assert ev.dirty
    assert ev.owner == "cpu0"


def test_write_lookup_sets_dirty():
    c = small_cache()
    c.allocate(0x40, owner="gpu")
    line = c.lookup(0x40, write=True)
    assert line.dirty


def test_allocate_existing_line_touches_not_evicts():
    c = small_cache(sets=1, ways=2)
    c.allocate(0, owner="cpu0")
    c.allocate(64, owner="cpu0")
    assert c.allocate(0, owner="cpu0") is None
    # 0 is now MRU; allocating a third line evicts 64
    ev = c.allocate(128, owner="cpu0")
    assert ev.addr == 64


def test_invalidate():
    c = small_cache()
    c.allocate(0x80, write=True, owner="cpu1")
    line = c.invalidate(0x80)
    assert line is not None and line.dirty
    assert c.probe(0x80) is None
    assert c.invalidate(0x80) is None


def test_probe_does_not_update_lru():
    c = small_cache(sets=1, ways=2)
    c.allocate(0, owner="cpu0")
    c.allocate(64, owner="cpu0")
    c.probe(0)                 # must NOT refresh line 0
    ev = c.allocate(128, owner="cpu0")
    assert ev.addr == 0


def test_occupancy_by_owner_and_flush():
    c = small_cache(sets=4, ways=2)
    c.allocate(0, owner="gpu")
    c.allocate(64, owner="gpu")
    c.allocate(128, owner="cpu0")
    occ = c.occupancy_by_owner()
    assert occ == {"gpu": 2, "cpu0": 1}
    assert c.flush_owner("gpu") == 2
    assert c.occupancy() == 1


def test_set_index_uses_low_line_bits():
    c = small_cache(sets=4, ways=2)
    assert c.set_index(0) == 0
    assert c.set_index(64) == 1
    assert c.set_index(4 * 64) == 0


@settings(max_examples=50)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=300),
       st.sampled_from(["lru", "srrip"]))
def test_property_occupancy_never_exceeds_capacity(ops, policy):
    c = small_cache(sets=2, ways=4, policy=policy)
    present = set()
    for line_idx, write in ops:
        addr = line_idx * 64
        if c.lookup(addr, write=write) is None:
            ev = c.allocate(addr, write=write, owner="cpu0")
            present.add(addr)
            if ev is not None:
                assert ev.addr in present
                present.discard(ev.addr)
        # invariants
        assert c.occupancy() == len(present)
        assert c.occupancy() <= 8
        for s in c._sets:
            assert len(s) <= 4


@settings(max_examples=30)
@given(st.lists(st.integers(0, 31), min_size=1, max_size=200))
def test_property_present_line_always_hits(ops):
    c = small_cache(sets=2, ways=4)
    for line_idx in ops:
        addr = line_idx * 64
        probed = c.probe(addr)
        hit = c.lookup(addr)
        assert (probed is None) == (hit is None)
        if hit is None:
            c.allocate(addr, owner="cpu0")
        assert c.probe(addr) is not None
