"""Unit tests for the MSHR file."""

import pytest

from repro.mem.mshr import MshrFile
from repro.mem.request import MemRequest


def req(addr, src="cpu0"):
    return MemRequest(addr, False, src)


def test_primary_then_merge():
    m = MshrFile(4)
    assert m.allocate(0x100, req(0x100), now=0) is not None
    assert m.allocate(0x100, req(0x100), now=1) is None
    assert len(m) == 1
    waiters = m.complete(0x100)
    assert len(waiters) == 2
    assert len(m) == 0


def test_full_and_note():
    m = MshrFile(2)
    m.allocate(0, req(0), 0)
    m.allocate(64, req(64), 0)
    assert m.full
    with pytest.raises(RuntimeError):
        m.allocate(128, req(128), 0)
    m.note_full()
    assert m.stats.get("full_stalls") == 1
    # merging onto existing entries is still allowed when full
    assert m.allocate(0, req(0), 1) is None


def test_complete_unknown_raises():
    m = MshrFile(2)
    with pytest.raises(KeyError):
        m.complete(0xdead)


def test_capacity_validation():
    with pytest.raises(ValueError):
        MshrFile(0)


def test_outstanding_listing_and_stats():
    m = MshrFile(8)
    m.allocate(0, req(0), 0)
    m.allocate(64, req(64), 0)
    m.allocate(64, req(64), 0)
    assert sorted(m.outstanding()) == [0, 64]
    assert m.stats.get("primary_misses") == 2
    assert m.stats.get("secondary_merges") == 1
