#!/usr/bin/env python
"""End-to-end smoke test for the simulation service (CI gate).

Boots a real ``python -m repro serve`` daemon as a subprocess, then
drives it the way CI needs it proven:

1. two *concurrent* clients submit overlapping spec batches over the
   Unix socket — every outcome must be bit-identical to a direct
   ``run_many`` on the same specs, and the daemon must have executed
   each distinct spec exactly once (cross-client coalescing);
2. a repeat submission must be served entirely from the cache — zero
   new executions — and the streaming path must deliver the full
   ``queued``/``started``/``done`` lifecycle;
3. SIGTERM must drain gracefully: the process exits 0 on its own,
   removes its socket, and persists cache counters for
   ``python -m repro cache stats``.

Exits non-zero on the first violated property.  Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.exec import ResultCache, run_many, standalone_cpu_spec  # noqa: E402
from repro.exec.specs import mix_spec  # noqa: E402
from repro.service import ServiceClient, service_available  # noqa: E402

SERVE_BOOT_TIMEOUT = 30.0
DRAIN_TIMEOUT = 30.0


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    work = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    sock = str(work / "svc.sock")
    cache_dir = str(work / "cache")
    env = dict(os.environ, PYTHONPATH=str(
        Path(__file__).resolve().parent.parent / "src"),
        REPRO_CACHE_DIR=cache_dir)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--workers", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        deadline = time.monotonic() + SERVE_BOOT_TIMEOUT
        while not service_available(sock):
            if proc.poll() is not None or time.monotonic() > deadline:
                print(proc.stdout.read() if proc.stdout else "")
                fail("daemon did not come up")
            time.sleep(0.2)
        print(f"daemon up (pid {proc.pid}) at {sock}")

        # -- 1. two concurrent clients, overlapping specs ----------------
        shared = [standalone_cpu_spec(b, scale="smoke")
                  for b in (403, 429)]
        batch_a = shared + [mix_spec("W8", "baseline", "smoke")]
        batch_b = shared + [standalone_cpu_spec(470, scale="smoke")]
        results: dict[str, list] = {}

        def client(name: str, specs) -> None:
            results[name] = ServiceClient(sock, client_id=name) \
                .submit(specs)

        threads = [threading.Thread(target=client, args=("a", batch_a)),
                   threading.Thread(target=client, args=("b", batch_b))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for name, specs in (("a", batch_a), ("b", batch_b)):
            if len(results.get(name, [])) != len(specs):
                fail(f"client {name} got a misaligned batch")
            if not all(o.ok for o in results[name]):
                fail(f"client {name} saw failures: "
                     f"{[o.error for o in results[name] if not o.ok]}")

        status = ServiceClient(sock, client_id="probe").status()
        jobs = status["jobs"]
        distinct = len({s.key(status_salt(sock)) for s in batch_a + batch_b})
        if jobs["executed"] != distinct:
            fail(f"expected exactly {distinct} executions for "
             f"{distinct} distinct specs, daemon ran {jobs['executed']}")
        print(f"concurrent clients: {jobs['executed']} executions for "
              f"{distinct} distinct specs (coalesced "
              f"{jobs['coalesced']}, attached {jobs['attached']})")

        # -- bit-identity vs direct run_many -----------------------------
        direct = run_many(batch_a + [batch_b[-1]],
                          cache=ResultCache(root=str(work / "direct")))
        served = results["a"] + [results["b"][-1]]
        for d, s in zip(direct, served):
            if asdict(d.result) != asdict(s.result):
                fail(f"daemon result differs from direct run_many "
                     f"for {d.spec.label}")
        print(f"bit-identity: {len(direct)} outcomes equal direct "
              "run_many")

        # -- 2. cached repeat with streaming -----------------------------
        events: list[dict] = []
        repeat = ServiceClient(sock, client_id="a").submit(
            batch_a, on_event=events.append)
        after = ServiceClient(sock, client_id="probe").status()["jobs"]
        if after["executed"] != jobs["executed"]:
            fail("repeat submission re-executed cached specs")
        if not all(o.source in ("memory", "disk") for o in repeat):
            fail(f"repeat not served from cache: "
                 f"{[o.source for o in repeat]}")
        kinds = {e["event"] for e in events}
        if "done" not in kinds:
            fail(f"stream delivered no done events: {kinds}")
        print(f"cached repeat: 0 new executions, sources "
              f"{[o.source for o in repeat]}, {len(events)} stream "
              "events")

        # -- 3. graceful SIGTERM drain -----------------------------------
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=DRAIN_TIMEOUT)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit after SIGTERM")
        if rc != 0:
            print(proc.stdout.read() if proc.stdout else "")
            fail(f"daemon exited {rc} after SIGTERM")
        if os.path.exists(sock):
            fail("daemon left its socket behind")
        stats = ResultCache(root=cache_dir).persisted_stats()
        if stats["stores"] <= 0:
            fail("drain did not persist cache counters")
        print(f"graceful drain: exit 0, socket removed, persisted "
              f"stats stores={stats['stores']} "
              f"hits={stats['memory_hits'] + stats['disk_hits']}")
        print("service smoke: all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def status_salt(sock: str) -> str:
    """The daemon's cache-key salt (keys must match its accounting)."""
    return ServiceClient(sock, client_id="probe").ping()["salt"]


if __name__ == "__main__":
    raise SystemExit(main())
