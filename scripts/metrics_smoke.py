#!/usr/bin/env python
"""End-to-end observability smoke test (CI gate).

Boots a real ``python -m repro serve --log-file`` daemon as a
subprocess, drives it with two clients, and proves the observability
contract:

1. ``GET /metrics`` serves valid Prometheus text over the Unix socket
   (the daemon sniffs HTTP, so no TCP listener is needed) and the
   counters obey the accounting identities — submissions, queued,
   ``started + cache_served == done``, worker jobs, cache hit/miss
   arithmetic — including the second client's repeat batch landing
   entirely on the cache side of the ledger;
2. ``GET /healthz`` reports a live pool and zero queue depth at rest;
3. ``python -m repro top --once`` renders a dashboard frame against
   the live daemon;
4. every submitted spec's trace ID runs end to end through the oplog
   (``submit`` → ``queued`` → ``started`` → ``run_start`` →
   ``run_done`` → ``done``, crossing the worker process boundary), and
   the SIGTERM drain appends a ``drain_summary`` record.

Exits non-zero on the first violated property.  Usage::

    PYTHONPATH=src python scripts/metrics_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.oplog import OpLogView  # noqa: E402
from repro.exec import standalone_cpu_spec  # noqa: E402
from repro.metrics import configure as configure_oplog  # noqa: E402
from repro.metrics.top import (fetch, hist_quantile,  # noqa: E402
                               parse_prometheus, sample_value)
from repro.service import ServiceClient, service_available  # noqa: E402

SERVE_BOOT_TIMEOUT = 30.0
DRAIN_TIMEOUT = 30.0


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def scrape(sock: str) -> dict:
    status, body = fetch(sock, "/metrics")
    if status != 200:
        fail(f"/metrics returned HTTP {status}")
    text = body.decode("utf-8")
    if "# TYPE" not in text:
        fail("/metrics body does not look like Prometheus text")
    return parse_prometheus(text)


def main() -> int:
    work = Path(tempfile.mkdtemp(prefix="metrics-smoke-"))
    sock = str(work / "svc.sock")
    oplog_path = str(work / "ops.jsonl")
    # the client-side `submit` records and the daemon's records land in
    # the same JSONL file — append-mode line writes keep them whole, and
    # the trace join below proves correlation across the two processes
    configure_oplog(path=oplog_path, level="debug")
    env = dict(os.environ, PYTHONPATH=str(
        Path(__file__).resolve().parent.parent / "src"),
        REPRO_CACHE_DIR=str(work / "cache"))

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", sock,
         "--workers", "2", "--log-file", oplog_path,
         "--log-level", "debug"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        deadline = time.monotonic() + SERVE_BOOT_TIMEOUT
        while not service_available(sock):
            if proc.poll() is not None or time.monotonic() > deadline:
                print(proc.stdout.read() if proc.stdout else "")
                fail("daemon did not come up")
            time.sleep(0.2)
        print(f"daemon up (pid {proc.pid}) at {sock}")

        # -- 1. two clients, then counter arithmetic ---------------------
        specs = [standalone_cpu_spec(b, scale="smoke")
                 for b in (403, 429)]
        first = ServiceClient(sock, client_id="smoke-a")
        out_a = first.submit(specs)
        traces = list(first.last_traces)
        out_b = ServiceClient(sock, client_id="smoke-b").submit(specs)
        if not all(o.ok for o in out_a + out_b):
            fail("a submission failed")
        if len(traces) != len(specs):
            fail(f"client minted {len(traces)} trace IDs for "
                 f"{len(specs)} specs")

        fam = scrape(sock)

        def v(name: str, **labels) -> int:
            return int(sample_value(fam, name, **labels))

        submissions = v("repro_submissions_total")
        queued = v("repro_jobs_queued_total")
        started = v("repro_jobs_started_total")
        served = v("repro_jobs_cache_served_total")
        done = v("repro_jobs_done_total")
        worker_jobs = v("repro_worker_jobs_total")
        if submissions != 2 * len(specs):
            fail(f"expected {2 * len(specs)} submissions, "
                 f"metrics say {submissions}")
        if started != len(specs):
            fail(f"expected {len(specs)} started jobs, got {started}")
        if started + served != done or done != queued:
            fail(f"accounting identity broken: queued={queued} "
                 f"started={started} cache_served={served} done={done}")
        if worker_jobs != len(specs):
            fail(f"worker-side delta shipping lost jobs: "
                 f"{worker_jobs} != {len(specs)}")
        hits = (v("repro_cache_hits_total", layer="memory")
                + v("repro_cache_hits_total", layer="disk"))
        if hits < len(specs):
            fail(f"repeat batch missed the cache: {hits} hits")
        if hist_quantile(fam, "repro_request_ns", 0.5,
                         transport="socket") is None:
            fail("request latency histogram has no socket samples")
        print(f"counter arithmetic: {submissions} submissions, "
              f"{started} executions + {served} cache-served = {done} "
              f"done, {worker_jobs} worker jobs, {hits} cache hits")

        # -- 2. healthz --------------------------------------------------
        status, body = fetch(sock, "/healthz")
        health = json.loads(body.decode("utf-8"))
        if status != 200 or not health.get("ok"):
            fail(f"/healthz not ok: {health}")
        if health["pool"]["alive"] != health["pool"]["size"]:
            fail(f"pool degraded: {health['pool']}")
        if health["queue_depth"] != 0:
            fail(f"queue not drained: {health}")
        print(f"healthz: ok, pool {health['pool']['alive']}/"
              f"{health['pool']['size']}, uptime "
              f"{health['uptime']:.1f}s")

        # -- 3. the live top view ----------------------------------------
        top = subprocess.run(
            [sys.executable, "-m", "repro", "top", sock, "--once"],
            env=env, capture_output=True, text=True, timeout=60)
        if top.returncode != 0:
            fail(f"repro top --once exited {top.returncode}: "
                 f"{top.stderr}")
        if "repro service" not in top.stdout:
            fail(f"top frame missing header: {top.stdout!r}")
        print("top --once frame:")
        print("\n".join("  | " + ln
                        for ln in top.stdout.strip().splitlines()))

        # -- 4. drain, then trace IDs end to end -------------------------
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=DRAIN_TIMEOUT)
        except subprocess.TimeoutExpired:
            fail("daemon did not exit after SIGTERM")
        if rc != 0:
            print(proc.stdout.read() if proc.stdout else "")
            fail(f"daemon exited {rc} after SIGTERM")

        view = OpLogView.load(oplog_path)
        lifecycle = ("submit", "queued", "started", "run_start",
                     "run_done", "done")
        for trace in traces:
            events = [r["event"] for r in view.trace(trace)]
            missing = [ev for ev in lifecycle if ev not in events]
            if missing:
                fail(f"trace {trace} missing {missing}: {events}")
        if not any(r.get("event") == "drain_summary"
                   for r in view.records):
            fail("no drain_summary record in the oplog")
        print(f"oplog: {len(view.records)} records, "
              f"{len(view.trace_ids())} traces; every submitted trace "
              f"ran {' > '.join(lifecycle)}; drain_summary present")
        print("metrics smoke: all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
