#!/usr/bin/env python
"""Fold benchmarks/results.txt into EXPERIMENTS.md.

Replaces everything between the ``<!-- BENCH-RESULTS -->`` marker and
the next ``##`` heading with the latest recorded series.

    python scripts/update_experiments.py
"""

from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
MARKER = "<!-- BENCH-RESULTS -->"


def main() -> None:
    results = (ROOT / "benchmarks" / "results.txt")
    exps = ROOT / "EXPERIMENTS.md"
    if not results.exists():
        raise SystemExit("no benchmarks/results.txt — run "
                         "`pytest benchmarks/ --benchmark-only` first")
    series = results.read_text().strip()
    text = exps.read_text()
    if MARKER not in text:
        raise SystemExit(f"{MARKER} marker missing from EXPERIMENTS.md")
    head, rest = text.split(MARKER, 1)
    # keep whatever follows the next second-level heading
    tail_idx = rest.find("\n## ")
    tail = rest[tail_idx:] if tail_idx != -1 else ""
    block = f"{MARKER}\n\n```\n{series}\n```\n"
    exps.write_text(head + block + tail)
    print(f"EXPERIMENTS.md updated with "
          f"{series.count('=====') // 2} recorded series")


if __name__ == "__main__":
    main()
