#!/usr/bin/env python
"""CI gate for the frame-time predictor suite (docs/predictors.md).

Runs the test-scale head-to-head on one mix and asserts the properties
the seam promises:

1. every registered predictor completes the run and reports *finite*
   prediction errors (MAE and bias are real numbers, the prediction
   log is non-empty for every predictor that reached its ready state);
2. the reference ``rtp`` row of the comparison is bit-identical to a
   fresh, uncached ``run_system`` of the same configuration — the
   comparison harness (and its caching) adds no drift on top of the
   simulation itself;
3. the registry, ``config.PREDICTORS`` and the comparison's row set
   all agree.

Exits non-zero on the first violated property.  Usage::

    PYTHONPATH=src python scripts/predictors_smoke.py [--scale test]
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from dataclasses import asdict
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.predictors import compare_predictors  # noqa: E402
from repro.config import PREDICTORS, default_config  # noqa: E402
from repro.mixes import mix  # noqa: E402
from repro.predict import PREDICTOR_NAMES  # noqa: E402
from repro.sim.runner import run_system  # noqa: E402

MIX = "M7"


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", default="test",
                    choices=["smoke", "test", "bench", "paper"])
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()
    t0 = time.time()

    if tuple(PREDICTOR_NAMES) != tuple(PREDICTORS):
        fail(f"registry {PREDICTOR_NAMES} != config.PREDICTORS "
             f"{PREDICTORS}")

    cmp = compare_predictors(mixes=(MIX,), predictors=PREDICTORS,
                             scale=args.scale, seed=args.seed)
    print(cmp.format())

    rows = cmp.rows_for(MIX)
    if [r.predictor for r in rows] != list(PREDICTORS):
        fail(f"comparison rows {[r.predictor for r in rows]} do not "
             f"cover the registry {PREDICTORS}")
    for r in rows:
        if r.result.predictor != r.predictor:
            fail(f"{r.predictor}: RunResult tagged {r.result.predictor!r}")
        if not r.result.prediction_log:
            fail(f"{r.predictor}: empty prediction log at "
                 f"{args.scale} scale")
        for v in (r.overall.mae_pct, r.overall.bias_pct, r.fps,
                  r.cpu_ws, r.fps_vs_baseline, r.ws_vs_baseline):
            if not math.isfinite(v):
                fail(f"{r.predictor}: non-finite metric {v!r}")
        for f, p, a in r.result.prediction_log:
            if not (math.isfinite(p) and math.isfinite(a) and a > 0):
                fail(f"{r.predictor}: bad prediction sample "
                     f"({f}, {p}, {a})")
    print(f"finite-error check: {len(rows)} predictor(s) OK")

    # property 2: the harness's reference row vs a fresh direct run.
    # (The rtp spec shares its cache key with the plain default-config
    # run, so only an *uncached* execution makes this a real check.)
    m = mix(MIX)
    cfg = default_config(scale=args.scale, n_cpus=m.n_cpus,
                         seed=args.seed)
    fresh = asdict(run_system(cfg, m, "throtcpuprio"))
    via_harness = asdict(cmp.row(MIX, "rtp").result)
    if fresh != via_harness:
        diff = [k for k in fresh if fresh[k] != via_harness.get(k)]
        fail(f"reference rtp row differs from a fresh run_system "
             f"in field(s): {diff}")
    print("golden check: rtp row bit-identical to a fresh run_system")

    print(f"predictors smoke OK in {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
