#!/usr/bin/env python
"""Event-kernel microbenchmark: calendar queue vs the old heap kernel.

Measures the event loop itself — callbacks do a counter bump and schedule
their successor, so per-event cost is dominated by queue operations, the
thing this PR optimises.  Two traffic shapes bracket the simulator's
regimes:

* ``hetero_dense`` — thousands of concurrent event chains advancing by
  the small constant deltas real components use (ring hops, LLC lookup,
  DRAM command cycles).  Most schedules land on an existing tick bucket.
* ``standalone_sparse`` — few chains, wide delta spread; ticks are
  mostly distinct, stressing the heap of bucket times.

Also measured, with methodology recorded in the JSON:

* closure vs closure-free scheduling on the new kernel;
* macro full-system runs (new vs reference kernel) — honest end-to-end
  numbers where callback work, not the kernel, dominates;
* profiling overhead (the opt-in layer must cost nothing when off —
  the fast path IS the default benchmarked path — and its enabled cost
  is reported);
* span-tracing overhead (``spans_off``) — the dormant stamp hooks
  (``req.span is None`` guards through core/LLC/ring/DRAM) must not
  slow the spans-off full-system path.  The gate normalises wall time
  by the same invocation's micro ns/event, so it compares machine-
  independent "equivalent kernel events" against the committed
  baseline; ``--check`` fails on >5% regression.
* operational-metrics overhead (``metrics_off``) — the simulation fast
  path carries no metrics hooks at all, so the metrics-off full-system
  run is gated the same way; per-instrument costs (counter increment,
  suppressed oplog emit) are recorded for honesty.

Usage::

    PYTHONPATH=src python scripts/bench_kernel.py            # full run
    PYTHONPATH=src python scripts/bench_kernel.py --quick    # fewer reps
    PYTHONPATH=src python scripts/bench_kernel.py --check    # CI gate:
        # re-measure (quick) and fail if the headline micro speedup
        # regressed >30%, or the spans-off full-system path slowed
        # >5%, vs the committed BENCH_kernel.json

The headline number (``micro_speedup_geomean``) is the geometric mean of
the per-scenario old/new ns-per-event ratios; acceptance is >= 1.5x.
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.engine import ReferenceSimulator, Simulator  # noqa: E402

BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: delta pools mirror the simulated machine's delay constants
SCENARIOS = {
    # ring hops (1-10), LLC lookup (10), DRAM command cycles (4)
    "hetero_dense": dict(chains=2048, deltas=(1, 2, 3, 4, 4, 7, 10, 10, 40)),
    # one app alone: fewer requests in flight, wider tick spread
    "standalone_sparse": dict(chains=48, deltas=(1, 4, 10, 63, 247, 1009)),
}


def _drive(sim, n_events: int, chains: int, deltas, seed: int,
           closure: bool = False) -> float:
    """Run ``n_events`` through ``sim``; returns elapsed seconds.

    ``chains`` self-sustaining event chains each reschedule themselves
    with pre-generated deltas, so both kernels replay the identical
    schedule and callbacks stay minimal.
    """
    rng = random.Random(seed)
    pre = [rng.choice(deltas) for _ in range(4096)]
    npre = len(pre)
    state = [0]

    if closure:
        def step() -> None:
            k = state[0]
            if k < n_events:
                state[0] = k + 1
                sim.after(pre[k % npre], step)
        for _ in range(chains):
            sim.after(pre[state[0] % npre], step)
    else:
        def step(_arg) -> None:
            k = state[0]
            if k < n_events:
                state[0] = k + 1
                sim.after_call(pre[k % npre], step, _arg)
        for c in range(chains):
            sim.after_call(pre[c % npre], step, c)

    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    assert state[0] >= n_events
    return elapsed


def _best_ns_per_event(make_sim, n_events: int, reps: int, **kw) -> float:
    best = min(_drive(make_sim(), n_events, seed=1, **kw)
               for _ in range(reps))
    return best * 1e9 / n_events


def bench_micro(n_events: int, reps: int) -> dict:
    out = {}
    for name, sc in SCENARIOS.items():
        old = _best_ns_per_event(ReferenceSimulator, n_events, reps,
                                 chains=sc["chains"], deltas=sc["deltas"])
        new = _best_ns_per_event(Simulator, n_events, reps,
                                 chains=sc["chains"], deltas=sc["deltas"])
        out[name] = {
            "old_ns_per_event": round(old, 1),
            "new_ns_per_event": round(new, 1),
            "speedup": round(old / new, 2),
        }
        print(f"  {name:18s} old {old:7.1f} ns/ev   new {new:7.1f} ns/ev"
              f"   speedup {old / new:.2f}x")
    return out


def bench_closures(n_events: int, reps: int) -> dict:
    sc = SCENARIOS["hetero_dense"]
    closure = _best_ns_per_event(Simulator, n_events, reps, closure=True,
                                 chains=sc["chains"], deltas=sc["deltas"])
    free = _best_ns_per_event(Simulator, n_events, reps, closure=False,
                              chains=sc["chains"], deltas=sc["deltas"])
    print(f"  closure {closure:7.1f} ns/ev   closure-free {free:7.1f} "
          f"ns/ev   speedup {closure / free:.2f}x")
    return {"closure_ns_per_event": round(closure, 1),
            "closure_free_ns_per_event": round(free, 1),
            "speedup": round(closure / free, 2)}


def bench_profiling(n_events: int, reps: int) -> dict:
    sc = SCENARIOS["hetero_dense"]
    off = _best_ns_per_event(Simulator, n_events, reps,
                             chains=sc["chains"], deltas=sc["deltas"])

    def profiled():
        sim = Simulator()
        sim.enable_profiling()
        return sim
    on = _best_ns_per_event(profiled, n_events, reps,
                            chains=sc["chains"], deltas=sc["deltas"])
    print(f"  profiling off {off:7.1f} ns/ev   on {on:7.1f} ns/ev   "
          f"enabled overhead {on / off:.2f}x")
    return {"off_ns_per_event": round(off, 1),
            "on_ns_per_event": round(on, 1),
            "enabled_overhead": round(on / off, 2)}


def bench_macro(mixes, reps: int) -> dict:
    """Full-system wall time, new vs reference kernel (smoke scale).

    Callbacks (cache lookups, pipeline models) dominate here, so the
    macro speedup is far below the micro one — recorded for honesty.
    """
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.sim.system import HeterogeneousSystem

    def once(mix_name, sim):
        m = mix_by_name(mix_name)
        cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
        system = HeterogeneousSystem(cfg, m, sim=sim)
        t0 = time.perf_counter()
        system.run()
        return time.perf_counter() - t0

    out = {}
    for mix_name in mixes:
        old = min(once(mix_name, ReferenceSimulator()) for _ in range(reps))
        new = min(once(mix_name, Simulator()) for _ in range(reps))
        out[mix_name] = {"old_seconds": round(old, 3),
                         "new_seconds": round(new, 3),
                         "speedup": round(old / new, 2)}
        print(f"  {mix_name:4s} smoke   old {old:6.3f}s   new {new:6.3f}s"
              f"   speedup {old / new:.2f}x")
    return out


def bench_spans(micro_new_ns: float, reps: int) -> dict:
    """Span-tracing overhead on the full system (smoke scale, W8).

    ``off`` is the default path: every stamp site is a dormant
    ``req.span is None`` guard, and the gate requires it to stay within
    5% of the committed baseline.  Raw wall time is machine-dependent,
    so the recorded gate value is the run expressed in *equivalent
    kernel events* — off seconds divided by the same invocation's micro
    ``hetero_dense`` ns/event — which cancels host speed.  The enabled
    cost (1-in-64 sampling) is reported for honesty, not gated.
    """
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.sim.system import HeterogeneousSystem
    from repro.spans import SpanTracer

    def once(tracer=None):
        m = mix_by_name("W8")
        cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
        system = HeterogeneousSystem(cfg, m, tracer=tracer)
        t0 = time.perf_counter()
        system.run()
        elapsed = time.perf_counter() - t0
        if tracer is not None:
            tracer.close()
        return elapsed

    off = min(once() for _ in range(reps))
    on = min(once(SpanTracer(sample_every=64)) for _ in range(reps))
    norm = off * 1e9 / micro_new_ns
    print(f"  spans off {off:6.3f}s  on(1/64) {on:6.3f}s   enabled "
          f"overhead {on / off:.2f}x   off = {norm:,.0f} equiv events")
    return {"off_seconds": round(off, 3),
            "on_seconds": round(on, 3),
            "enabled_overhead": round(on / off, 2),
            "off_equivalent_events": round(norm)}


def bench_metrics(micro_new_ns: float, reps: int) -> dict:
    """Operational-metrics overhead on the full system (smoke, W8).

    ``off`` is the default path: the simulation loop carries no metrics
    hooks at all — the registry exists but nothing in the hot path
    touches it, and the unconfigured oplog is a disabled sentinel.  The
    gate pins that claim the same way ``spans_off`` does: off wall time
    is normalised by the same invocation's micro ns/event into
    machine-independent equivalent kernel events, and ``--check`` fails
    on >5% regression vs the committed baseline.  Also reported (not
    gated): the cost of one counter increment and of one suppressed
    oplog emit, so instrument costs stay visible as the stack grows.
    """
    from repro import metrics
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.sim.system import HeterogeneousSystem

    def once():
        m = mix_by_name("W8")
        cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
        system = HeterogeneousSystem(cfg, m)
        t0 = time.perf_counter()
        system.run()
        return time.perf_counter() - t0

    off = min(once() for _ in range(reps))
    norm = off * 1e9 / micro_new_ns

    n = 200_000
    reg = metrics.MetricsRegistry()
    child = reg.counter("bench_total").labels()
    t0 = time.perf_counter()
    for _ in range(n):
        child.inc()
    inc_ns = (time.perf_counter() - t0) * 1e9 / n
    sink = metrics.oplog()              # the disabled sentinel
    t0 = time.perf_counter()
    for _ in range(n):
        sink.emit("bench")
    emit_ns = (time.perf_counter() - t0) * 1e9 / n

    print(f"  metrics off {off:6.3f}s = {norm:,.0f} equiv events   "
          f"counter.inc {inc_ns:.0f} ns   disabled emit {emit_ns:.0f} ns")
    return {"off_seconds": round(off, 3),
            "off_equivalent_events": round(norm),
            "counter_inc_ns": round(inc_ns, 1),
            "disabled_emit_ns": round(emit_ns, 1)}


def bench_macro_components(micro_new_ns: float, reps: int) -> dict:
    """Per-component macro breakdown of an M7 full-system run.

    Two measurements of the same workload (M7, smoke scale, seed 1):

    * an *unprofiled* best-of-N wall time, normalised by the same
      invocation's micro ns/event into machine-independent "equivalent
      kernel events" — the macro-speed gate value (smaller is faster);
    * a *profiled* run whose per-owner callback times fold into
      component shares (dram/llc/core/gpu/ring/mem + engine overhead)
      via :meth:`repro.prof.KernelProfile.component_shares` — shares
      are relative, so they are host-speed-independent and gate which
      layer regressed, not just that something did.
    """
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.prof import profile_mix
    from repro.sim.system import HeterogeneousSystem

    def once():
        m = mix_by_name("M7")
        cfg = default_config(scale="smoke", n_cpus=m.n_cpus, seed=1)
        system = HeterogeneousSystem(cfg, m)
        t0 = time.perf_counter()
        system.run()
        return time.perf_counter() - t0

    wall = min(once() for _ in range(reps))
    equiv = wall * 1e9 / micro_new_ns
    _result, prof = profile_mix("M7", scale="smoke")
    shares = prof.component_shares()
    print(f"  M7 smoke  wall {wall:6.3f}s = {equiv:,.0f} equiv events "
          f"({prof.events:,} real events profiled)")
    print(f"  {'component':10s} {'share':>7s}")
    for comp, share in shares.items():
        print(f"  {comp:10s} {100 * share:6.1f}%")
    return {"mix": "M7", "scale": "smoke",
            "wall_seconds": round(wall, 3),
            "equivalent_events": round(equiv),
            "profiled_events": prof.events,
            "shares": shares}


def bench_service(reps: int) -> dict:
    """Cold ``run_many`` invocation vs warm daemon submission.

    The serving claim: once a daemon holds a spec's result, submitting
    that spec again costs a socket round-trip plus a cache lookup — no
    interpreter start, no worker spawn, no simulation.  ``cold`` times a
    fresh ``run_many`` call against an empty store (each rep gets a new
    store, so every rep truly simulates); ``warm`` times client
    submissions of the same specs against a daemon whose cache already
    holds them.  The gate asserts warm is >= 10x faster *and* that the
    daemon executed zero simulations across the repeated submissions
    (its cache-hit counter accounts for every job).
    """
    import tempfile

    from repro.exec import ResultCache, run_many, standalone_cpu_spec
    from repro.service import ServiceClient, start_daemon_thread

    specs = [standalone_cpu_spec(b, scale="smoke") for b in (403, 429)]

    def cold_once() -> float:
        store = ResultCache(root=tempfile.mkdtemp(prefix="bench-cold-"))
        t0 = time.perf_counter()
        run_many(specs, cache=store, progress=lambda *a: None)
        return time.perf_counter() - t0

    cold = min(cold_once() for _ in range(reps))

    sock = str(Path(tempfile.mkdtemp(prefix="bench-svc-")) / "svc.sock")
    cache = ResultCache(root=tempfile.mkdtemp(prefix="bench-warm-"))
    with start_daemon_thread(socket_path=sock, workers=2,
                             cache=cache) as handle:
        client = ServiceClient(sock, client_id="bench")
        client.submit(specs)                      # populate the store
        executed_before = handle.daemon.jobs_executed
        warm = min(min(_timed(client.submit, specs) for _ in range(5))
                   for _ in range(reps))
        repeat_executed = handle.daemon.jobs_executed - executed_before
        hits = handle.daemon.status()["jobs"]["cache_hits"]

    speedup = cold / warm
    print(f"  cold run_many {cold:6.3f}s   warm submit {warm * 1e3:7.2f}ms"
          f"   speedup {speedup:.0f}x   repeat sims {repeat_executed} "
          f"(cache hits {hits})")
    return {"specs": [s.label for s in specs],
            "cold_run_many_seconds": round(cold, 4),
            "warm_submit_seconds": round(warm, 5),
            "speedup": round(speedup, 1),
            "repeat_executed": repeat_executed,
            "cache_hits": hits}


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def _baseline_macro_equiv(baseline: dict) -> float | None:
    """The committed baseline's M7 macro cost in equivalent events.

    Older baselines predate the ``macro_components`` section; for those
    the M7 cost is derived from the recorded macro wall time and micro
    ns/event — the same normalisation, so the comparison stays
    machine-independent.
    """
    mc = baseline.get("macro_components")
    if mc:
        return mc["equivalent_events"]
    macro = baseline.get("macro_full_system", {}).get("M7")
    micro = baseline.get("micro", {}).get("hetero_dense")
    if macro and micro:
        return macro["new_seconds"] * 1e9 / micro["new_ns_per_event"]
    return None


def check_macro_components(result: dict, baseline: dict) -> bool:
    """CI gates for the macro component section.

    * total M7 macro cost (equivalent events) must stay within 1.10x of
      the committed baseline — the top-level "did macro runs get
      slower" gate;
    * no component's share may grow by more than 30% relative (plus a
      2-point absolute floor so a 1% component jittering to 1.4%
      doesn't fail the build) — the "which layer regressed" gate.
    """
    ok = True
    now = result["macro_components"]
    base_equiv = _baseline_macro_equiv(baseline)
    if base_equiv:
        ceiling = 1.10 * base_equiv
        macro_ok = now["equivalent_events"] <= ceiling
        ok = ok and macro_ok
        speedup = base_equiv / now["equivalent_events"]
        print(f"check[macro]: M7 {now['equivalent_events']:,} equiv "
              f"events vs baseline {base_equiv:,.0f} (ceiling "
              f"{ceiling:,.0f}) -> {speedup:.2f}x vs baseline -> "
              f"{'OK' if macro_ok else 'REGRESSION'}")

    base_shares = (baseline.get("macro_components") or {}).get("shares")
    if base_shares:
        print(f"check[components]: {'component':10s} {'base':>7s} "
              f"{'now':>7s}")
        for comp, base_share in base_shares.items():
            now_share = now["shares"].get(comp, 0.0)
            limit = base_share * 1.30 + 0.02
            comp_ok = now_share <= limit
            ok = ok and comp_ok
            print(f"check[components]: {comp:10s} {100 * base_share:6.1f}% "
                  f"{100 * now_share:6.1f}% (limit {100 * limit:.1f}%) -> "
                  f"{'OK' if comp_ok else 'REGRESSION'}")
    return ok


def run_bench(quick: bool) -> dict:
    n_events = 100_000 if quick else 400_000
    reps = 2 if quick else 3
    print(f"event-kernel bench: {n_events:,} events/scenario, "
          f"best of {reps}")
    print("micro (kernel-dominated event chains):")
    micro = bench_micro(n_events, reps)
    print("closure vs closure-free scheduling (new kernel):")
    closures = bench_closures(n_events, reps)
    print("opt-in profiling:")
    prof = bench_profiling(n_events, reps)
    print("macro (full system, callback-dominated):")
    macro = bench_macro(["W8"] if quick else ["W8", "M7"],
                        1 if quick else 2)
    # wall-time sections are gated at tight (5-10%) ceilings against
    # the committed baseline, and best-of-N is the estimator of the
    # uncontended floor — so they get more reps than the micro loops,
    # whose per-event times are far more stable
    print("span tracing (full system, W8 smoke):")
    spans = bench_spans(micro["hetero_dense"]["new_ns_per_event"],
                        max(reps, 5))
    print("operational metrics (full system, W8 smoke, metrics off):")
    metrics_off = bench_metrics(
        micro["hetero_dense"]["new_ns_per_event"], max(reps, 5))
    print("macro per-component breakdown (M7 smoke):")
    components = bench_macro_components(
        micro["hetero_dense"]["new_ns_per_event"], 3)
    print("service submission (cold run_many vs warm daemon, cached):")
    service = bench_service(1 if quick else 2)
    geomean = round(math.exp(statistics.fmean(
        math.log(s["speedup"]) for s in micro.values())), 2)
    print(f"headline micro speedup (geomean): {geomean}x")
    return {
        "benchmark": "event-kernel calendar queue vs reference heap",
        "methodology": (
            "Self-sustaining event chains reschedule themselves with "
            "pre-generated deltas drawn from the simulator's real delay "
            "constants; callbacks are a bounds check + counter bump, so "
            "ns/event isolates queue operations. best-of-N wall time, "
            f"{n_events} events per scenario, N={reps}. Macro rows run "
            "the full system at smoke scale, where component callbacks "
            "dominate and the kernel is ~15-20% of wall time."),
        "machine": {"python": platform.python_version(),
                    "platform": platform.platform()},
        "events_per_scenario": n_events,
        "reps": reps,
        "micro": micro,
        "micro_speedup_geomean": geomean,
        "closure_vs_closure_free": closures,
        "profiling": prof,
        "macro_full_system": macro,
        "macro_components": components,
        "spans_off": spans,
        "metrics_off": metrics_off,
        "service_submission": service,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="fewer events/reps (CI-friendly)")
    ap.add_argument("--check", action="store_true",
                    help="fail if headline speedup regressed >30%% vs "
                         "the committed BENCH_kernel.json")
    ap.add_argument("--out", default=None, metavar="PATH",
                    help=f"write results JSON (default: {BASELINE.name} "
                         "at the repo root; --check never overwrites)")
    args = ap.parse_args(argv)

    result = run_bench(quick=args.quick or args.check)

    if args.check:
        if not BASELINE.exists():
            print(f"no committed baseline at {BASELINE}", file=sys.stderr)
            return 2
        baseline = json.loads(BASELINE.read_text())
        ok = True

        base = baseline["micro_speedup_geomean"]
        now = result["micro_speedup_geomean"]
        floor = 0.7 * base
        micro_ok = now >= floor
        ok = ok and micro_ok
        print(f"check[micro]: measured {now}x vs baseline {base}x "
              f"(floor {floor:.2f}x) -> "
              f"{'OK' if micro_ok else 'REGRESSION'}")

        base_spans = baseline.get("spans_off")
        if base_spans:
            base_ev = base_spans["off_equivalent_events"]
            now_ev = result["spans_off"]["off_equivalent_events"]
            ceiling = 1.05 * base_ev
            spans_ok = now_ev <= ceiling
            ok = ok and spans_ok
            print(f"check[spans_off]: measured {now_ev:,} equiv events "
                  f"vs baseline {base_ev:,} (ceiling {ceiling:,.0f}) -> "
                  f"{'OK' if spans_ok else 'REGRESSION'}")

        base_metrics = baseline.get("metrics_off")
        if base_metrics:
            base_ev = base_metrics["off_equivalent_events"]
            now_ev = result["metrics_off"]["off_equivalent_events"]
            ceiling = 1.05 * base_ev
            metrics_ok = now_ev <= ceiling
            ok = ok and metrics_ok
            print(f"check[metrics_off]: measured {now_ev:,} equiv events "
                  f"vs baseline {base_ev:,} (ceiling {ceiling:,.0f}) -> "
                  f"{'OK' if metrics_ok else 'REGRESSION'}")

        ok = check_macro_components(result, baseline) and ok

        # the serving gate is self-contained (cold and warm measured in
        # the same invocation), so no baseline entry is needed
        svc = result["service_submission"]
        svc_ok = svc["speedup"] >= 10.0 and svc["repeat_executed"] == 0
        ok = ok and svc_ok
        print(f"check[service]: warm submit {svc['speedup']}x faster "
              f"than cold run_many (floor 10x), {svc['repeat_executed']} "
              f"sims on repeat (must be 0) -> "
              f"{'OK' if svc_ok else 'REGRESSION'}")

        out = Path(args.out) if args.out else None
        if out:
            out.write_text(json.dumps(result, indent=2) + "\n")
        return 0 if ok else 1

    # regenerating the baseline: record the macro speedup against the
    # file being replaced, so the committed JSON carries the evidence
    # of the hot-path change even after the old numbers are gone
    if BASELINE.exists():
        prior = _baseline_macro_equiv(json.loads(BASELINE.read_text()))
        if prior:
            now_ev = result["macro_components"]["equivalent_events"]
            speedup = round(prior / now_ev, 2)
            result["macro_components"]["speedup_vs_prior_baseline"] = \
                speedup
            print(f"M7 macro speedup vs prior baseline: {speedup}x")
    out = Path(args.out) if args.out else BASELINE
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
