#!/usr/bin/env python
"""Docs CI gate: links must resolve, examples must run.

Two checks over the documentation set (README.md, DESIGN.md,
EXPERIMENTS.md, ROADMAP.md, docs/*.md):

1. **Links** — every relative markdown link must point at an existing
   file, and every anchor (``#fragment``, same-file or cross-file) must
   match a heading in the target, using GitHub's slug rules.  External
   (``http(s)://``) links are not fetched.
2. **Snippets** — every fenced ```python block is executed in a fresh
   interpreter with ``PYTHONPATH=src``, a temporary working directory,
   and a temporary result cache, so the examples in the docs cannot
   rot.  Blocks in other languages (```bash```, bare fences) are not
   run; a python block that must not run has no reason to claim to be
   python.

Exit status 0 iff everything passes.  ``--no-run`` checks links only.

Usage::

    PYTHONPATH=src python scripts/check_docs.py
    PYTHONPATH=src python scripts/check_docs.py --no-run README.md
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DEFAULT_FILES = ["README.md", "DESIGN.md", "EXPERIMENTS.md",
                 "ROADMAP.md", "docs/api.md", "docs/architecture.md",
                 "docs/calibration.md", "docs/latency.md",
                 "docs/observability.md", "docs/policies.md",
                 "docs/predictors.md", "docs/robustness.md",
                 "docs/service.md", "docs/telemetry.md"]

LINK_RE = re.compile(r"(?<!\!)\[[^][]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE_RE = re.compile(r"^```(\S*)\s*$")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip code spans and punctuation,
    lowercase, spaces to hyphens."""
    text = re.sub(r"`([^`]*)`", r"\1", heading).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fences(lines: list[str]) -> list[str]:
    """Lines outside fenced code blocks (links/headings inside fences
    are literal text, not markdown)."""
    out, in_fence = [], False
    for line in lines:
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return out


def anchors_of(path: str) -> set[str]:
    with open(path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for line in strip_fences(lines):
        m = HEADING_RE.match(line)
        if not m:
            continue
        base = github_slug(m.group(2))
        n = counts.get(base, 0)
        counts[base] = n + 1
        slugs.add(base if n == 0 else f"{base}-{n}")
    return slugs


def check_links(md_path: str) -> list[str]:
    errors: list[str] = []
    with open(md_path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    in_fence = False
    for lineno, line in enumerate(lines, 1):
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(md_path), path_part))
                if not os.path.exists(dest):
                    errors.append(f"{md_path}:{lineno}: broken link "
                                  f"{target!r} (no such file)")
                    continue
            else:
                dest = md_path
            if fragment and dest.endswith(".md"):
                if fragment not in anchors_of(dest):
                    errors.append(f"{md_path}:{lineno}: broken anchor "
                                  f"{target!r} (no heading "
                                  f"#{fragment} in {os.path.relpath(dest, REPO)})")
    return errors


def python_snippets(md_path: str) -> list[tuple[int, str]]:
    """(first_line_number, source) of every fenced ```python block."""
    snippets: list[tuple[int, str]] = []
    with open(md_path, encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    block: list[str] | None = None
    start = 0
    for lineno, line in enumerate(lines, 1):
        m = FENCE_RE.match(line)
        if m and block is None and m.group(1) == "python":
            block, start = [], lineno + 1
        elif m and block is not None:
            snippets.append((start, "\n".join(block)))
            block = None
        elif block is not None:
            block.append(line)
    return snippets


def run_snippet(md_path: str, lineno: int, source: str,
                timeout: int = 600) -> str | None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["MPLBACKEND"] = "Agg"
    with tempfile.TemporaryDirectory(prefix="docs-snippet-") as tmp:
        env["REPRO_CACHE_DIR"] = os.path.join(tmp, "cache")
        proc = subprocess.run([sys.executable, "-"], input=source,
                              text=True, capture_output=True, cwd=tmp,
                              env=env, timeout=timeout)
    if proc.returncode != 0:
        tail = (proc.stderr or proc.stdout).strip().splitlines()[-12:]
        return (f"{md_path}:{lineno}: snippet failed "
                f"(exit {proc.returncode}):\n    " + "\n    ".join(tail))
    return None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*", default=None,
                    help="markdown files to check (default: the doc set)")
    ap.add_argument("--no-run", action="store_true",
                    help="check links only, skip snippet execution")
    args = ap.parse_args(argv)

    files = args.files or DEFAULT_FILES
    paths = [p if os.path.isabs(p) else os.path.join(REPO, p)
             for p in files]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        for p in missing:
            print(f"no such file: {p}", file=sys.stderr)
        return 2

    errors: list[str] = []
    n_links = n_snips = 0
    for path in paths:
        rel = os.path.relpath(path, REPO)
        link_errors = check_links(path)
        errors.extend(link_errors)
        with open(path, encoding="utf-8") as fh:
            body = fh.read()
        n_links += sum(1 for line in strip_fences(body.splitlines())
                       for _ in LINK_RE.finditer(line))
        snips = python_snippets(path)
        if args.no_run:
            continue
        for lineno, source in snips:
            n_snips += 1
            print(f"  running {rel}:{lineno} "
                  f"({len(source.splitlines())} lines)", flush=True)
            err = run_snippet(path, lineno, source)
            if err:
                errors.append(err)

    for e in errors:
        print(e, file=sys.stderr)
    status = "FAIL" if errors else "OK"
    print(f"docs check: {len(paths)} file(s), {n_links} link(s), "
          f"{n_snips} snippet(s) run -> {status}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
