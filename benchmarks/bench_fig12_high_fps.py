"""Fig. 12: all policies on the high-FPS mixes.

Paper means (CPU weighted speedup vs baseline): SMS-0.9 +4%, SMS-0 +4%,
DynPrio +10%, HeLM +3%, proposal +18%; every policy keeps the GPU above
the 40 FPS target."""

from conftest import once, report, subset

from repro.analysis import experiments
from repro.mixes import HIGH_FPS_MIXES, MIXES_M


def test_fig12_policy_comparison_high_fps(benchmark, scale, full):
    names = subset(HIGH_FPS_MIXES, full, k=2)
    data = once(benchmark, experiments.fig12, scale=scale, mixes=names)
    pols = experiments.COMPARED_POLICIES
    lines = ["FPS per policy [" + " ".join(f"{p:>9s}" for p in pols) + "]"]
    for n in names:
        g = MIXES_M[n].gpu_app
        row = " ".join(f"{data['fps'][p][g]:9.1f}" for p in pols)
        lines.append(f"  {g:10s} {row}")
    lines.append("CPU weighted speedup vs baseline (gmean):")
    for p in pols:
        lines.append(f"  {p:13s} {data['gmean_ws'][p]:.3f}")
    report(f"Fig. 12 (scale={scale})", "\n".join(lines))

    ws = data["gmean_ws"]
    # shape assertions, straight from the paper's ordering:
    # the proposal wins the CPU comparison ...
    for p in ("sms-0.9", "sms-0", "helm"):
        assert ws["throtcpuprio"] >= ws[p] - 0.02, (p, ws)
    # ... and actually improves on the baseline
    assert ws["throtcpuprio"] > 1.0
    # every policy keeps the GPU at a usable rate on these mixes
    for p in pols:
        for n in names:
            g = MIXES_M[n].gpu_app
            assert data["fps"][p][g] > 25.0, (p, g)
    # the proposal deliberately gives up FPS it does not need
    for n in names:
        g = MIXES_M[n].gpu_app
        assert data["fps"]["throtcpuprio"][g] <= \
            data["fps"]["baseline"][g]
