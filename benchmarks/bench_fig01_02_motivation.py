"""Figs. 1-2: heterogeneous vs standalone performance, and GPU FPS
against the 30 FPS satisfaction line (the Section II motivation)."""

from conftest import once, report, subset

from repro.analysis import experiments
from repro.mixes import MIXES_W


def _w_names(full):
    return subset(sorted(MIXES_W, key=lambda n: int(n[1:])), full, k=4)


def test_fig1_mutual_degradation(benchmark, scale, full):
    names = _w_names(full)
    data = once(benchmark, experiments.fig1, scale=scale, mixes=names)
    lines = [f"{'mix':5s} {'CPU norm':>9s} {'GPU norm':>9s}"]
    for n in names:
        lines.append(f"{n:5s} {data['cpu'][n]:9.2f} {data['gpu'][n]:9.2f}")
    lines.append(f"GMEAN  cpu={data['gmean_cpu']:.2f} "
                 f"gpu={data['gmean_gpu']:.2f}  (paper: ~0.78 both)")
    report(f"Fig. 1 (scale={scale})", "\n".join(lines))
    # shape: both sides lose on average in heterogeneous execution
    assert data["gmean_cpu"] < 0.95
    assert data["gmean_gpu"] < 0.99
    # and neither side collapses entirely
    assert data["gmean_cpu"] > 0.2
    assert data["gmean_gpu"] > 0.5


def test_fig2_fps_standalone_vs_heterogeneous(benchmark, scale, full):
    names = _w_names(full)
    data = once(benchmark, experiments.fig2, scale=scale, mixes=names)
    lines = [f"{'mix':5s} {'game':14s} {'alone':>7s} {'hetero':>7s}"]
    above_30 = 0
    for n in names:
        g = data["games"][n]
        alone = data["standalone"][n]
        het = data["heterogeneous"][n]
        lines.append(f"{n:5s} {g:14s} {alone:7.1f} {het:7.1f}")
        assert het <= alone * 1.15        # hetero never speeds the GPU up
        if het > data["reference_fps"]:
            above_30 += 1
    report(f"Fig. 2 (scale={scale}; 30 FPS reference)", "\n".join(lines))
    # paper: several GPU applications stay comfortably above 30 FPS
    # even in heterogeneous mode — the throttling opportunity
    assert above_30 >= 1
