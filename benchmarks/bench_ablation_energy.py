"""Energy ablation: what does throttling do to energy?

The paper motivates heterogeneous CMPs with energy-efficient computing;
this bench prices the baseline and the proposal on one amenable mix
with the event-energy model.  Expected shape: the throttled GPU spends
less energy per second (fewer LLC accesses and DRAM activates), and
because a frame's *work* is unchanged, energy per frame stays in the
same ballpark while the memory system's share drops."""

from conftest import once, report

from repro.analysis import experiments
from repro.analysis.energy import price_run

MIX = "M12"                           # COR: far above target


def test_ablation_energy_of_throttling(benchmark, ablation_scale):
    def sweep():
        out = {}
        for pol in ("baseline", "throtcpuprio"):
            r = experiments.hetero(MIX, pol, ablation_scale)
            out[pol] = (r, price_run(r))
        return out
    res = once(benchmark, sweep)
    lines = []
    for pol, (r, rep) in res.items():
        lines.append(
            f"  {pol:13s} fps {r.fps:6.1f} | total {rep.total*1e3:7.3f} mJ"
            f" | memory {rep.memory_system*1e3:7.3f} mJ"
            f" | {rep.energy_per_frame(r.frames_rendered)*1e3:6.3f} "
            f"mJ/frame")
    report(f"Ablation: energy of throttling on {MIX} (scale={ablation_scale})",
           "\n".join(lines))

    base_r, base_e = res["baseline"]
    prop_r, prop_e = res["throtcpuprio"]
    # the throttled GPU renders fewer frames per second: the *power*
    # (energy/second) of the memory system drops
    base_mem_w = base_e.memory_system / base_e.run_seconds
    prop_mem_w = prop_e.memory_system / prop_e.run_seconds
    assert prop_mem_w < base_mem_w * 1.05
    # and per-frame energy stays within a sane band (same work/frame)
    base_pf = base_e.energy_per_frame(base_r.frames_rendered)
    prop_pf = prop_e.energy_per_frame(prop_r.frames_rendered)
    assert 0.5 * base_pf < prop_pf < 2.0 * base_pf
