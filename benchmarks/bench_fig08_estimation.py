"""Fig. 8: accuracy of the dynamic frame-rate estimation."""

from conftest import once, report, subset

from repro.analysis import experiments
from repro.mixes import MIXES_M


def test_fig8_frame_rate_estimation_error(benchmark, scale, full):
    names = subset(sorted(MIXES_M, key=lambda n: int(n[1:])), full, k=4)
    data = once(benchmark, experiments.fig8, scale=scale, mixes=names)
    lines = []
    for game, err in data["mean_error_pct"].items():
        lines.append(f"{game:14s} mean error {err:+6.2f}%  "
                     f"|err| {data['mean_abs_error_pct'][game]:5.2f}%")
    lines.append(f"average |error| = {data['average_abs_error_pct']:.2f}%"
                 f"  (paper: <1% avg, max +6/-4 on 450M-instruction "
                 f"warmed frames; scaled frames carry more jitter)")
    report(f"Fig. 8 (scale={scale})", "\n".join(lines))
    # shape: estimation is useful — single-digit-to-low-teens error,
    # nowhere near the 2x misestimates naive extrapolation gives
    assert data["average_abs_error_pct"] < 20.0
    for game, err in data["mean_error_pct"].items():
        assert abs(err) < 30.0, (game, err)
