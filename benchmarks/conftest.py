"""Shared fixtures for the table/figure regeneration benches.

Scale selection: ``REPRO_BENCH_SCALE`` (default ``test``; ``smoke`` for
a fast-but-noisy pass, ``bench``/``paper`` for higher fidelity).  Mix
subsetting: ``REPRO_BENCH_FULL=1`` runs every mix a figure uses; the
default covers a representative subset per figure.

Heterogeneous and standalone runs are cached through :mod:`repro.exec`
(memory + persistent ``.repro_cache/`` disk layers), so benches that
share runs (Figs. 9-11, 12-14) do not repeat them, and a re-run of the
same bench session is served from disk.  Each figure prefetches its run
set through ``run_many``; ``REPRO_JOBS`` (defaulted here to the core
count) fans the cache misses across worker processes — set
``REPRO_JOBS=1`` to force the serial path.
"""

import os

import pytest

os.environ.setdefault("REPRO_JOBS", str(os.cpu_count() or 1))


@pytest.fixture(scope="session")
def scale() -> str:
    # "test" reproduces the paper's shapes reliably; REPRO_BENCH_SCALE=
    # smoke gives a fast-but-noisy pass, bench/paper higher fidelity
    return os.environ.get("REPRO_BENCH_SCALE", "test")


@pytest.fixture(scope="session")
def full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def ablation_scale() -> str:
    """The ablation benches sweep many configurations; they run at a
    lighter default scale (their comparisons are config-vs-config at
    identical scale, so the smaller preset suffices).  Override with
    REPRO_BENCH_ABLATION_SCALE."""
    return os.environ.get("REPRO_BENCH_ABLATION_SCALE", "smoke")


def subset(names: list[str], full: bool, k: int = 3) -> list[str]:
    """A deterministic representative subset of a figure's mixes."""
    if full or len(names) <= k:
        return list(names)
    step = max(len(names) // k, 1)
    return names[::step][:k]


def once(benchmark, fn, *args, **kwargs):
    """pytest-benchmark wrapper for long experiment functions: measure a
    single round (these are minutes-long simulations, not microbenches)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


_RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    # one results.txt per bench session
    open(_RESULTS_PATH, "w", encoding="utf-8").close()
    yield


def report(title: str, text: str) -> None:
    """Record a regenerated series: prints (visible with ``-s`` / on
    failure) and appends to ``benchmarks/results.txt`` so the series
    survive pytest's output capture."""
    block = f"\n===== {title} =====\n{text}\n"
    print(block)
    with open(_RESULTS_PATH, "a", encoding="utf-8") as fh:
        fh.write(block)
