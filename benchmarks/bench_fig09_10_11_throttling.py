"""Figs. 9-11: the proposal on the six throttle-amenable mixes.

Fig. 9 — FPS lands just around the 40 FPS target; CPU weighted speedup
improves (paper: +11% throttle-only, +18% with the CPU priority boost).
Fig. 10 — GPU LLC misses rise (faster aging), CPU LLC misses fall.
Fig. 11 — GPU DRAM bandwidth demand falls substantially.

The three figures share the same three runs per mix (memoised)."""

from conftest import once, report, subset

from repro.analysis import experiments
from repro.mixes import HIGH_FPS_MIXES, MIXES_M


def _names(full):
    if full:
        return list(HIGH_FPS_MIXES)
    # representative subset: the three games with the most slack above
    # the 40 FPS target (DOOM3 81, COR 111, UT2004 131 nominal) — the
    # regime Figs. 9-11 are about.  NFS (62) and HL2 (76) sit closer to
    # the target and throttle only lightly; REPRO_BENCH_FULL=1 includes
    # them.
    return ["M7", "M12", "M13"]


def test_fig9_fps_and_weighted_speedup(benchmark, scale, full):
    names = _names(full)
    data = once(benchmark, experiments.fig9, scale=scale, mixes=names)
    lines = [f"{'game':10s} {'base':>7s} {'throt':>7s} {'+prio':>7s}"]
    for n in names:
        g = MIXES_M[n].gpu_app
        b = data["fps"]["baseline"][g]
        t = data["fps"]["throttle"][g]
        p = data["fps"]["throtcpuprio"][g]
        lines.append(f"{g:10s} {b:7.1f} {t:7.1f} {p:7.1f}")
        # shape: baseline at/above the target; throttling pulls any
        # comfortable slack down toward it but never below the visual
        # floor.  A baseline already sitting at ~target has no slack,
        # so equality is legitimate there.
        assert b > 35.0
        assert 30.0 < t <= b * 1.05
        assert 30.0 < p <= b * 1.05
        if b > 48.0:                  # comfortable slack: must be used
            assert t < b * 0.95
    ws_t = data["gmean_ws"]["throttle"]
    ws_p = data["gmean_ws"]["throtcpuprio"]
    lines.append(f"CPU weighted speedup: throttle {ws_t:.3f}, "
                 f"+CPU priority {ws_p:.3f}  (paper: 1.11 / 1.18)")
    report(f"Fig. 9 (scale={scale})", "\n".join(lines))
    # throttling frees CPU performance on average (allow a whisker of
    # noise on the subset)
    assert ws_t > 0.99
    assert ws_p > 0.99
    assert ws_p >= ws_t * 0.95        # the boost should not hurt


def test_fig10_llc_miss_shift(benchmark, scale, full):
    names = _names(full)
    data = once(benchmark, experiments.fig10, scale=scale, mixes=names)
    g_t = data["mean_gpu"]["throttle"]
    g_p = data["mean_gpu"]["throtcpuprio"]
    c_t = data["mean_cpu"]["throttle"]
    c_p = data["mean_cpu"]["throtcpuprio"]
    report(f"Fig. 10 (scale={scale})",
           f"GPU LLC misses/frame vs baseline: throttle {g_t:.2f}, "
           f"+prio {g_p:.2f}  (paper: 1.39 / 1.42)\n"
           f"CPU LLC misses vs baseline:       throttle {c_t:.2f}, "
           f"+prio {c_p:.2f}  (paper: 0.96 / 0.955)")
    # shape: throttling ages GPU lines faster -> GPU misses up (mixes
    # with little slack may barely throttle, hence the whisker);
    # the freed capacity turns into CPU misses down (or at worst flat)
    assert g_t > 0.98
    assert c_t < 1.08
    assert c_p < 1.08


def test_fig11_gpu_dram_bandwidth(benchmark, scale, full):
    names = _names(full)
    data = once(benchmark, experiments.fig11, scale=scale, mixes=names)
    lines = []
    for n in names:
        g = MIXES_M[n].gpu_app
        d = data["bandwidth"]["throttle"][g]
        lines.append(
            f"{g:10s} read {d['baseline_read']:.2f}->{d['read']:.2f} "
            f"write {d['baseline_write']:.2f}->{d['write']:.2f} "
            f"total {d['total']:.2f}")
    m_t = data["mean_total_norm"]["throttle"]
    m_p = data["mean_total_norm"]["throtcpuprio"]
    lines.append(f"mean GPU bandwidth vs baseline: throttle {m_t:.2f}, "
                 f"+prio {m_p:.2f}  (paper: 0.65 / 0.63)")
    report(f"Fig. 11 (scale={scale})", "\n".join(lines))
    # shape: throttling sheds a meaningful share of GPU DRAM demand
    assert m_t < 0.95
    assert m_p < 0.95
