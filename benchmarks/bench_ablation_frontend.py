"""Front-end ablation: procedural tile budgets vs triangle geometry.

The default front end synthesises tile work from calibrated budgets;
the geometry front end derives the same work from an explicit drifting
triangle scene (vertex fetch -> raster coverage -> hier-Z -> fragments).
If the reproduction's conclusions depended on the procedural shortcut,
this bench would expose it: both front ends must tell the same story
(similar FPS, throttle lands near the target on both)."""

from dataclasses import replace

from conftest import once, report

from repro.config import default_config
from repro.mixes import MIXES_M
from repro.policies import make_policy
from repro.sim.system import HeterogeneousSystem

MIX = "M7"


def test_ablation_gpu_frontend(benchmark, ablation_scale):
    def sweep():
        out = {}
        for frontend in ("procedural", "geometry"):
            for pol_name in ("baseline", "throtcpuprio"):
                cfg = replace(default_config(scale=ablation_scale, n_cpus=4),
                              gpu_frontend=frontend)
                s = HeterogeneousSystem(cfg, MIXES_M[MIX],
                                        make_policy(pol_name)).run()
                out[(frontend, pol_name)] = s.gpu_fps()
        return out
    res = once(benchmark, sweep)
    lines = [f"  {fe:10s} {pol:13s} -> {fps:6.1f} FPS"
             for (fe, pol), fps in res.items()]
    report(f"Ablation: GPU front end on {MIX} (scale={ablation_scale})",
           "\n".join(lines))
    # both front ends: baseline above target, throttled below baseline
    for fe in ("procedural", "geometry"):
        base = res[(fe, "baseline")]
        thr = res[(fe, "throtcpuprio")]
        assert thr < base, fe
        assert thr > 28.0, fe          # still above the visual floor
    # the two front ends agree on the baseline within a loose band
    pb = res[("procedural", "baseline")]
    gb = res[("geometry", "baseline")]
    assert 0.5 * pb < gb < 2.0 * pb
