"""Figs. 13-14: the policies on the mixes whose GPU misses the target.

The proposal must stay disabled (= baseline).  SMS trades large GPU FPS
losses for small CPU gains; DynPrio tracks baseline; HeLM loses GPU FPS
to bypass-induced DRAM pressure.  Fig. 14 folds both sides into an
equal-weight combined metric where the proposal and DynPrio sit at
baseline and SMS clearly loses."""

from conftest import once, report, subset

from repro.analysis import experiments
from repro.mixes import LOW_FPS_MIXES


def _names(full):
    if full:
        return list(LOW_FPS_MIXES)
    # representative subset: L4D (32.5 FPS) and UT3 (26.8) — below the
    # target like all eight, but with frame times short enough for the
    # bench to sweep six policies in reasonable wall time; the
    # heavyweight 6-FPS titles are included with REPRO_BENCH_FULL=1
    return ["M9", "M14"]


def test_fig13_policy_comparison_low_fps(benchmark, scale, full):
    names = _names(full)
    data = once(benchmark, experiments.fig13, scale=scale, mixes=names)
    pols = experiments.COMPARED_POLICIES
    lines = ["normalised FPS / CPU weighted speedup (gmean):"]
    for p in pols:
        lines.append(f"  {p:13s} fps {data['gmean_fps'][p]:.3f}  "
                     f"ws {data['gmean_ws'][p]:.3f}")
    report(f"Fig. 13 (scale={scale})", "\n".join(lines))

    f = data["gmean_fps"]
    ws = data["gmean_ws"]
    # the proposal never engages below target: ~= baseline on both axes
    assert abs(f["throtcpuprio"] - 1.0) < 0.15
    assert abs(ws["throtcpuprio"] - 1.0) < 0.15
    # SMS pays GPU FPS (the paper's "large losses")
    assert f["sms-0.9"] < 0.9
    # and the proposal keeps more GPU FPS than SMS here
    assert f["throtcpuprio"] > f["sms-0.9"]


def test_fig14_combined_performance(benchmark, scale, full):
    names = _names(full)
    data = once(benchmark, experiments.fig14, scale=scale, mixes=names)
    pols = experiments.COMPARED_POLICIES
    lines = [f"  {p:13s} combined {data['gmean'][p]:.3f}" for p in pols]
    report(f"Fig. 14 (scale={scale})", "\n".join(lines))
    g = data["gmean"]
    # paper: proposal ~ baseline (1.0), SMS suffers large losses
    assert abs(g["throtcpuprio"] - 1.0) < 0.15
    assert g["sms-0.9"] < g["throtcpuprio"]
    assert g["sms-0"] < 1.0
