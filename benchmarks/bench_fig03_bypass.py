"""Fig. 3: forcing ALL GPU read misses to bypass the LLC.

The paper's point: bypass alone is not a win — the freed LLC capacity
is paid for with extra GPU DRAM traffic, so on average the CPU barely
moves (-2% in the paper) and individual mixes swing both ways."""

from conftest import once, report, subset

from repro.analysis import experiments
from repro.mixes import MIXES_W


def test_fig3_bypass_all_gpu_read_misses(benchmark, scale, full):
    names = subset(sorted(MIXES_W, key=lambda n: int(n[1:])), full, k=4)
    data = once(benchmark, experiments.fig3, scale=scale, mixes=names)
    lines = [f"{n:5s} CPU speedup under bypass-all: "
             f"{data['speedup'][n]:.3f}" for n in names]
    lines.append(f"GMEAN {data['gmean']:.3f}  (paper: 0.98 — bypass "
                 f"alone is not a reliable win)")
    report(f"Fig. 3 (scale={scale})", "\n".join(lines))
    # shape: the mean effect is small — far from the proposal's +18%
    assert 0.7 < data["gmean"] < 1.15
