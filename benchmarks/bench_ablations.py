"""Ablation benches for the design choices DESIGN.md calls out.

* QoS target sweep (30/40/50 FPS): lower targets free more CPU.
* RTP table size (the paper's 64 entries vs tiny tables).
* W_G step size: coarser steps quantise the throttle harder.
* Throttle-correction in the FRPU (our stabilisation) vs raw Fig. 6.
* CM-BAL: why shader-core throttling cannot control frame rate
  (Section IV's three reasons).
"""

from conftest import once, report

from repro.config import default_config
from repro.mixes import MIXES_M
from repro.policies.throttle import ThrottlePolicy
from repro.analysis import experiments
from repro.sim.system import HeterogeneousSystem

MIX = "M7"                            # DOOM3: comfortably above target


def _run(policy, scale, **cfg_kw):
    cfg = default_config(scale=scale, n_cpus=4, **cfg_kw)
    system = HeterogeneousSystem(cfg, MIXES_M[MIX], policy)
    system.run()
    return system


def test_ablation_qos_target_sweep(benchmark, ablation_scale):
    def sweep():
        out = {}
        for target in (30.0, 40.0, 50.0):
            pol = ThrottlePolicy(cpu_priority=True, target_fps=target)
            s = _run(pol, ablation_scale)
            out[target] = s.gpu_fps()
        return out
    fps = once(benchmark, sweep)
    report(f"Ablation: QoS target sweep (scale={ablation_scale})", "\n".join(
        f"  target {t:4.0f} FPS -> delivered {f:6.1f}"
        for t, f in fps.items()))
    # a lower target must throttle at least as hard
    assert fps[30.0] <= fps[50.0] + 3.0


def test_ablation_rtp_table_size(benchmark, ablation_scale):
    def sweep():
        out = {}
        for entries in (4, 64):
            cfg = default_config(scale=ablation_scale, n_cpus=4) \
                .with_qos(rtp_table_entries=entries)
            pol = ThrottlePolicy(cpu_priority=True)
            s = HeterogeneousSystem(cfg, MIXES_M[MIX], pol)
            s.run()
            out[entries] = (s.gpu_fps(), pol.qos.frpu.frames_predicted)
        return out
    res = once(benchmark, sweep)
    report(f"Ablation: RTP table size (scale={ablation_scale})", "\n".join(
        f"  {e:3d}-entry RTP table -> {fps:6.1f} FPS, {n} frames "
        f"predicted" for e, (fps, n) in res.items()))
    # even a tiny table keeps the mechanism functional (overflow entry
    # accumulates), as the paper's design intends
    for entries, (fps, predicted) in res.items():
        assert predicted >= 1
        assert fps > 20.0


def test_ablation_wg_step(benchmark, ablation_scale):
    def sweep():
        out = {}
        for step in (2, 16):
            cfg = default_config(scale=ablation_scale, n_cpus=4) \
                .with_qos(wg_step=step)
            pol = ThrottlePolicy(cpu_priority=True)
            s = HeterogeneousSystem(cfg, MIXES_M[MIX], pol)
            s.run()
            out[step] = s.gpu_fps()
        return out
    fps = once(benchmark, sweep)
    report(f"Ablation: W_G step (scale={ablation_scale})", "\n".join(
        f"  W_G step {st:2d} ticks -> {f:6.1f} FPS"
        for st, f in fps.items()))
    # coarser quantisation floors harder -> throttles no harder than
    # fine steps by more than the quantisation allows
    assert fps[16] >= fps[2] - 5.0


def test_ablation_throttle_correction(benchmark, ablation_scale):
    def sweep():
        out = {}
        for corrected in (True, False):
            pol = ThrottlePolicy(cpu_priority=True,
                                 correct_throttle=corrected)
            s = _run(pol, ablation_scale)
            out[corrected] = (s.gpu_fps(),
                              pol.qos.stats.get("throttle_deactivations"))
        return out
    res = once(benchmark, sweep)
    report(f"Ablation: throttle correction (scale={ablation_scale})", "\n".join(
        f"  {('natural-CP (ours)' if c else 'raw Fig. 6'):18s} -> "
        f"{fps:6.1f} FPS, {d} throttle deactivations"
        for c, (fps, d) in res.items()))
    # raw mode oscillates (throttle keeps switching off when the
    # throttled estimate crosses the target); the corrected mode is
    # steadier — at least as few deactivations
    assert res[True][1] <= res[False][1] + 2


def test_ablation_cmbal_vs_atu(benchmark, ablation_scale):
    """Section IV: CM-BAL gates only texture traffic (~25% of GPU LLC
    accesses) and only a fraction of it, so it cannot pull the frame
    rate down to target the way the collective ATU gate can."""
    def sweep():
        base = experiments.hetero(MIX, "baseline", ablation_scale)
        cm = experiments.hetero(MIX, "cm-bal", ablation_scale)
        atu = experiments.hetero(MIX, "throtcpuprio", ablation_scale)
        return base.fps, cm.fps, atu.fps
    base, cm, atu = once(benchmark, sweep)
    report(f"Ablation: CM-BAL vs ATU (scale={ablation_scale})",
           f"  baseline {base:6.1f} FPS | CM-BAL {cm:6.1f} | "
           f"ATU (proposal) {atu:6.1f}")
    # CM-BAL moves the FPS far less than the ATU does
    assert abs(cm - base) < abs(atu - base) + 3.0
    assert atu < base
