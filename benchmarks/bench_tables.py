"""Regenerate Tables I-III (machine config, frame details, mixes)."""

from conftest import once, report

from repro.analysis import tables
from repro.gpu.workloads import GAME_ORDER, HIGH_FPS_GAMES


def test_table1_configuration(benchmark, scale):
    cfg = once(benchmark, tables.table1, scale)
    assert cfg["llc"]["ways"] == 16
    assert cfg["dram"]["channels"] == 2
    assert cfg["qos"]["target_fps"] == 40.0
    lines = [f"[{sec}] " + ", ".join(f"{k}={v}" for k, v in vals.items()
                                     if not isinstance(v, dict))
             for sec, vals in cfg.items()]
    report(f"Table I (scale={scale})", "\n".join(lines))


def test_table2_graphics_frame_details(benchmark, scale):
    rows = once(benchmark, tables.table2, scale)
    assert len(rows) == 14
    lines = [f"{'application':14s} {'API':4s} {'frames':9s} {'res':4s} "
             f"{'FPS paper':>9s} {'FPS ours':>9s}"]
    for r in rows:
        lines.append(
            f"{r['application']:14s} {r['api']:4s} {r['frames']:9s} "
            f"{r['resolution']:4s} {r['fps_paper']:9.1f} "
            f"{r['fps_measured']:9.1f}")
    report(f"Table II (scale={scale})", "\n".join(lines))
    # shape: measured FPS preserves the paper's 40 FPS classification
    for r in rows:
        assert (r["fps_paper"] > 40) == (r["fps_measured"] > 40), r
    # and preserves gross ordering: the fastest paper game is in our
    # top three, the slowest in our bottom three
    ours = {r["application"]: r["fps_measured"] for r in rows}
    ranked = sorted(GAME_ORDER, key=lambda g: ours[g])
    assert "UT2004" in ranked[-3:]
    assert "3DMark06GT1" in ranked[:3]


def test_table3_mixes(benchmark):
    rows = once(benchmark, tables.table3)
    assert len(rows) == 14
    games = [r["gpu_application"] for r in rows]
    assert games == GAME_ORDER
    assert sum(1 for g in games if g in HIGH_FPS_GAMES) == 6
    report("Table III", "\n".join(
        f"{r['gpu_application']:14s} {r['m_mix']:32s} {r['w_mix']}"
        for r in rows))
