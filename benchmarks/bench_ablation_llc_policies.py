"""Extension ablation: LLC-management alternatives the paper discusses.

Section IV positions three LLC-policy families against the proposal:
HeLM (bypass), TAP (TLP-aware insertion) and the dynamic
reuse-probability policy (DRP, the authors' own ICS'16 work).  The
paper's argument: *any* LLC-only scheme leaves DRAM bandwidth on the
table, which is why access throttling wins.  This bench puts our
TAP-lite and DRP-lite implementations next to HeLM and the proposal on
one amenable mix, plus an LLC replacement-policy sanity sweep
(SRRIP vs LRU baseline)."""

from conftest import once, report

from repro.analysis import experiments
from repro.sim import runner


MIX = "M11"                          # Quake4: above-target GPU


def test_ablation_llc_management_policies(benchmark, ablation_scale):
    def sweep():
        out = {}
        for pol in ("baseline", "helm", "tap", "drp", "throtcpuprio"):
            r = experiments.hetero(MIX, pol, ablation_scale)
            ws = runner.weighted_speedup_for(r, ablation_scale)
            out[pol] = (r.fps, ws)
        return out
    res = once(benchmark, sweep)
    base_ws = res["baseline"][1]
    lines = [f"  {p:13s} fps {fps:6.1f}  CPU ws {ws/base_ws:.3f}x"
             for p, (fps, ws) in res.items()]
    report(f"Ablation: LLC-management policies on {MIX} "
           f"(scale={ablation_scale})", "\n".join(lines))
    # the paper's claim: LLC-only schemes trail the throttling proposal
    for pol in ("helm", "tap", "drp"):
        assert res["throtcpuprio"][1] >= res[pol][1] - 0.05 * base_ws, \
            (pol, res)
    # and none of them controls the frame rate the way the ATU does:
    # the proposal lands near the 40 FPS target, the LLC schemes do not
    # move the GPU anywhere near it
    assert res["throtcpuprio"][0] < res["baseline"][0]
    for pol in ("helm", "tap", "drp"):
        assert res[pol][0] > 0.8 * res["baseline"][0], (pol, res)


def test_ablation_llc_replacement_policy(benchmark, ablation_scale):
    """SRRIP (Table I) vs plain LRU at the shared LLC."""
    from dataclasses import replace
    from repro.config import default_config
    from repro.mixes import MIXES_M
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    def sweep():
        out = {}
        for policy in ("srrip", "lru"):
            cfg = default_config(scale=ablation_scale, n_cpus=4)
            cfg = replace(cfg, llc=replace(cfg.llc, policy=policy))
            s = HeterogeneousSystem(cfg, MIXES_M[MIX]).run()
            r = collect(s)
            out[policy] = (r.fps, r.cpu_llc_misses, r.gpu_llc_misses)
        return out
    res = once(benchmark, sweep)
    lines = [f"  {p:6s} fps {fps:6.1f}  cpu misses {cm:,}  "
             f"gpu misses {gm:,}" for p, (fps, cm, gm) in res.items()]
    report(f"Ablation: LLC replacement policy (scale={ablation_scale})",
           "\n".join(lines))
    # both complete and produce comparable behaviour (SRRIP is a
    # scan-resistance refinement, not a different regime)
    for p, (fps, cm, gm) in res.items():
        assert fps > 0 and cm > 0 and gm > 0
