#!/usr/bin/env python
"""Quickstart: one heterogeneous mix, baseline vs the paper's proposal.

Runs mix M7 (DOOM3 + four SPEC CPU applications) twice on the Table I
machine and prints the story of the paper in four numbers: the GPU's
frame rate before/after throttling and the CPU mixes' weighted speedup.

    python examples/quickstart.py [--scale smoke|test|bench|paper]
"""

import argparse
import time

from repro import mix, run_mix, weighted_speedup_for


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    ap.add_argument("--mix", default="M7")
    args = ap.parse_args()

    m = mix(args.mix)
    print(f"Mix {m.name}: GPU renders {m.gpu_app}, CPUs run SPEC "
          f"{m.cpu_label()}  (scale={args.scale})")
    print("-" * 64)

    t0 = time.time()
    base = run_mix(args.mix, "baseline", scale=args.scale)
    ws_base = weighted_speedup_for(base, args.scale)
    print(f"baseline      GPU {base.fps:6.1f} FPS | CPU weighted "
          f"speedup {ws_base:.3f} | {time.time()-t0:.1f}s")

    t0 = time.time()
    prop = run_mix(args.mix, "throtcpuprio", scale=args.scale)
    ws_prop = weighted_speedup_for(prop, args.scale)
    print(f"proposal      GPU {prop.fps:6.1f} FPS | CPU weighted "
          f"speedup {ws_prop:.3f} | {time.time()-t0:.1f}s")

    print("-" * 64)
    if base.fps > 40:
        print(f"The GPU ran {base.fps:.0f} FPS — far above the 40 FPS "
              f"QoS target, wasting memory-system resources.")
        print(f"Dynamic access throttling trades that slack "
              f"({base.fps:.0f} -> {prop.fps:.0f} FPS, still above the "
              f"30 FPS visual floor) for "
              f"{100 * (ws_prop / ws_base - 1):+.1f}% CPU performance.")
    else:
        print(f"This GPU application misses the 40 FPS target, so the "
              f"proposal stays disabled (CPU change: "
              f"{100 * (ws_prop / ws_base - 1):+.1f}%).")


if __name__ == "__main__":
    main()
