#!/usr/bin/env python
"""The paper's gaming motivation scenario (Section I / V-B).

"When the GPU renders the current frame of an animation sequence, some
of the CPU cores are busy computing the physics and AI of the next
frame ... completely unrelated jobs can get scheduled on the rest of
the cores."

We cast that as: the GPU renders UT2004 frames (a 130 FPS engine — way
past visual satisfaction) while two cores run latency-sensitive
pointer-chasing work (the physics/AI stand-ins: mcf, omnetpp) and two
run unrelated batch jobs (gcc, bzip2).  The question the paper asks:
how much CPU performance is recovered by capping the GPU at 40 FPS?

    python examples/game_physics.py [--scale smoke]
"""

import argparse

from repro import Mix, default_config, run_system, alone_ipcs
from repro.policies import make_policy

PHYSICS_AI = (429, 471)               # mcf, omnetpp: latency-bound
BATCH = (403, 401)                    # gcc, bzip2: unrelated jobs


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    ap.add_argument("--game", default="UT2004")
    args = ap.parse_args()

    apps = PHYSICS_AI + BATCH
    mix = Mix("game-physics", args.game, apps)
    cfg = default_config(scale=args.scale, n_cpus=4)
    alone = alone_ipcs(apps, args.scale)

    print(f"Game scenario: {args.game} rendering + physics/AI on "
          f"{PHYSICS_AI}, batch jobs on {BATCH} (scale={args.scale})")
    header = (f"{'policy':13s} {'GPU FPS':>8s} "
              + " ".join(f"{sid:>7d}" for sid in apps))
    print(header)
    print("-" * len(header))
    for pol_name in ("baseline", "throttle", "throtcpuprio"):
        r = run_system(cfg, mix, make_policy(pol_name))
        per_app = " ".join(
            f"{r.cpu_ipcs[i] / alone[sid]:7.2f}"
            for i, sid in enumerate(apps))
        print(f"{pol_name:13s} {r.fps:8.1f} {per_app}")
    print("-" * len(header))
    print("Columns: per-application performance normalised to running "
          "alone.  The physics/AI pointer-chasers benefit most from "
          "the DRAM priority boost — exactly the latency-bound work "
          "the paper's Section III-C targets.")


if __name__ == "__main__":
    main()
