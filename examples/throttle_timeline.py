#!/usr/bin/env python
"""Watch the throttle work: time series of the proposal in action.

Attaches a diagnostics probe to an M7 run under the proposal and prints
ASCII timelines of the ATU's W_G value, the LLC occupancy split, and
the DRAM queue depth — the feedback loop of Section III made visible.

    python examples/throttle_timeline.py [--scale smoke]
"""

import argparse

from repro.analysis.diagnostics import Probe
from repro.config import default_config
from repro.mixes import MIXES_M
from repro.policies import make_policy
from repro.sim.system import HeterogeneousSystem


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mix", default="M7")
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    args = ap.parse_args()

    pol = make_policy("throtcpuprio")
    cfg = default_config(scale=args.scale, n_cpus=4)
    system = HeterogeneousSystem(cfg, MIXES_M[args.mix], pol)
    probe = Probe(system, interval_ticks=2048)
    system.run()

    print(f"{args.mix} under the proposal "
          f"(GPU {system.gpu_fps():.1f} FPS, target 40)")
    print()
    for series in ("wg_ticks", "gpu_occupancy", "cpu_occupancy",
                   "dram_queue", "gpu_progress"):
        print(probe.ascii_timeline(series))
        print()
    qos = pol.qos
    print(f"throttle recomputes: {qos.atu.recomputes}, of which "
          f"{qos.atu.throttled_recomputes} engaged the gate")
    print(f"FRPU: {qos.frpu.frames_learned} learned, "
          f"{qos.frpu.frames_predicted} predicted, mean |error| "
          f"{qos.frpu.mean_abs_percent_error():.2f}%")


if __name__ == "__main__":
    main()
