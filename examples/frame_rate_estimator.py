#!/usr/bin/env python
"""The FRPU in action: learning, predicting, and re-learning (Fig. 4).

Renders a GPU-only workload whose scene complexity changes abruptly
mid-sequence (we switch the frame generator's jitter and tile budget),
and logs the predictor's phase transitions and per-frame estimation
error — the behaviour sketched in the paper's Fig. 4 and measured in
its Fig. 8.

    python examples/frame_rate_estimator.py [--game Quake4]
"""

import argparse

from repro.config import default_config
from repro.core.frpu import Phase
from repro.mixes import Mix
from repro.policies import make_policy
from repro.sim.system import HeterogeneousSystem


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--game", default="Quake4")
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    args = ap.parse_args()

    cfg = default_config(scale=args.scale, n_cpus=0)
    pol = make_policy("estimate")      # FRPU active, ATU never engages
    system = HeterogeneousSystem(cfg, Mix("demo", args.game, ()), pol)

    # inject a scene change: halfway through the sequence the frames
    # suddenly carry ~50% more tiles (a heavier scene)
    gen = system.gpu.frames
    orig = gen.next_frame
    cut = cfg.scale.max_frames // 2

    def next_frame(index):
        if index == cut:
            gen.tiles_per_rtp = int(gen.tiles_per_rtp * 1.5)
        return orig(index)
    gen.next_frame = next_frame

    system.run()
    frpu = pol.qos.frpu

    print(f"{args.game}: {system.gpu.frames_completed} frames rendered, "
          f"scene change injected at frame {cut}")
    print(f"frames learned:   {frpu.frames_learned}")
    print(f"frames predicted: {frpu.frames_predicted}")
    print("phase transitions (frame -> phase):")
    for idx, phase in frpu.phase_transitions:
        marker = "  <- re-learning after the scene change" \
            if phase is Phase.LEARNING else ""
        print(f"  frame {idx:3d}: {phase.value}{marker}")
    errs = frpu.percent_errors()
    if errs:
        print("per-frame estimation error (%):",
              ", ".join(f"{e:+.2f}" for e in errs))
        print(f"mean |error| = {frpu.mean_abs_percent_error():.2f}%  "
              f"(paper: < 1% on warmed steady scenes)")


if __name__ == "__main__":
    main()
