#!/usr/bin/env python
"""All competing memory-system policies on one mix (Fig. 12 in miniature).

Runs one high-FPS mix under baseline, SMS-0.9, SMS-0, DynPrio, HeLM and
the paper's proposal, printing the GPU frame rate and the CPU mixes'
weighted speedup (normalised to baseline) for each.

    python examples/scheduler_shootout.py [--mix M7] [--scale smoke]
"""

import argparse
import time

from repro import mix, run_mix, weighted_speedup_for

POLICIES = ["baseline", "sms-0.9", "sms-0", "dynprio", "helm",
            "throtcpuprio"]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mix", default="M7")
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    args = ap.parse_args()

    m = mix(args.mix)
    print(f"Mix {m.name}: {m.gpu_app} + SPEC {m.cpu_label()} "
          f"(scale={args.scale})")
    print(f"{'policy':14s} {'GPU FPS':>8s} {'CPU WS':>8s} "
          f"{'CPU vs base':>12s}  time")
    print("-" * 56)

    ws_base = None
    for pol in POLICIES:
        t0 = time.time()
        r = run_mix(args.mix, pol, scale=args.scale)
        ws = weighted_speedup_for(r, args.scale)
        if pol == "baseline":
            ws_base = ws
        rel = ws / ws_base if ws_base else 1.0
        print(f"{pol:14s} {r.fps:8.1f} {ws:8.3f} {100*(rel-1):+11.1f}%"
              f"  {time.time()-t0:5.1f}s")

    print("-" * 56)
    print("Paper's shape: SMS trades GPU FPS for modest CPU gains, "
          "DynPrio pins the GPU at the deadline, HeLM's bypass adds "
          "DRAM pressure, and the proposal frees the most CPU "
          "performance while keeping the GPU at the QoS target.")


if __name__ == "__main__":
    main()
