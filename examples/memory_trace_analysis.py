#!/usr/bin/env python
"""Record, analyse, and replay a heterogeneous run's LLC traffic.

Demonstrates the trace workflow (the in-library analogue of the paper's
API-trace methodology) and the event-energy model:

1. run a mix with a :class:`~repro.tracing.TraceRecorder` attached;
2. summarise who produced the LLC traffic and price the run's energy;
3. replay only the *GPU's* recorded stream against a fresh LLC+DRAM to
   measure its isolated bandwidth footprint at two replay speeds.

    python examples/memory_trace_analysis.py [--mix M12]
"""

import argparse

from repro.analysis.energy import price_run
from repro.config import LlcConfig, default_config
from repro.mem.llc import SharedLLC
from repro.mixes import MIXES_M
from repro.sim.engine import Simulator
from repro.sim.metrics import collect
from repro.sim.system import HeterogeneousSystem
from repro.tracing import TraceRecorder, TraceReplayer


def replay_gpu(trace, time_scale: float) -> dict:
    """Replay the GPU stream open-loop against a fresh LLC + fake DRAM."""
    sim = Simulator()
    served = {"reads": 0}

    def dram(req):
        if not req.is_write:
            served["reads"] += 1
            sim.after(80, req.complete)
    llc = SharedLLC(sim, LlcConfig(size_bytes=1024 * 1024),
                    dram_send=dram)
    rep = TraceReplayer(sim, trace, llc.access, time_scale=time_scale)
    rep.start()
    sim.run()
    return {"span_ticks": sim.now, "dram_reads": served["reads"],
            "llc_hit_rate": 1 - (llc.stats.get("gpu_misses") /
                                 max(llc.stats.get("gpu_accesses"), 1))}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mix", default="M12")
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    args = ap.parse_args()

    cfg = default_config(scale=args.scale, n_cpus=4)
    system = HeterogeneousSystem(cfg, MIXES_M[args.mix])
    rec = TraceRecorder.attach(system)
    system.run()
    trace = rec.trace()

    print(f"{args.mix}: recorded {len(trace):,} LLC requests")
    for k, v in trace.summary().items():
        print(f"  {k}: {v}")

    report = price_run(collect(system))
    print(f"energy: total {report.total*1e3:.2f} mJ, memory system "
          f"{report.memory_system*1e3:.2f} mJ "
          f"({report.memory_system/report.total:.0%})")

    gpu = trace.filter_source("gpu")
    print(f"\nreplaying the GPU's {len(gpu):,} requests in isolation:")
    for scale_f in (1.0, 2.0):
        r = replay_gpu(gpu, scale_f)
        label = "recorded pace" if scale_f == 1.0 else \
            f"{scale_f:g}x slower (throttled pace)"
        print(f"  {label:28s} span {r['span_ticks']:>10,} ticks, "
              f"DRAM reads {r['dram_reads']:,}, LLC hit rate "
              f"{r['llc_hit_rate']:.0%}")
    print("\nSlowing the same stream stretches it over more time — the "
          "per-tick DRAM demand falls, which is exactly the bandwidth "
          "the paper's throttle hands back to the CPUs.")


if __name__ == "__main__":
    main()
