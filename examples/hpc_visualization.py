#!/usr/bin/env python
"""The paper's HPC motivation scenario (Section I / V-B).

"In a high-performance computing facility, while the CPU cores do the
heavy-lifting of scientific simulation of a certain time step, the GPU
can be engaged in rendering the output of the last few time steps for
visualization purpose."

We cast that as: four bandwidth-hungry scientific codes (bwaves, milc,
leslie3d, lbm — the closest SPEC CPU 2006 stand-ins for stencil/CFD
kernels) sharing the die with a GPU rendering a visualization at a
comfortable frame rate (Quake4's engine as the renderer stand-in).  The
visualization only needs 40 FPS; every frame beyond that steals DRAM
bandwidth from the simulation.

    python examples/hpc_visualization.py [--scale smoke]
"""

import argparse

from repro import Mix, default_config, run_system, alone_ipcs, \
    weighted_speedup
from repro.policies import make_policy

SCIENCE_APPS = (410, 433, 437, 470)    # bwaves, milc, leslie3d, lbm


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", default="smoke",
                    choices=["smoke", "test", "bench", "paper"])
    ap.add_argument("--viz-game", default="Quake4")
    args = ap.parse_args()

    mix = Mix("hpc-viz", args.viz_game, SCIENCE_APPS)
    cfg = default_config(scale=args.scale, n_cpus=4)
    alone = alone_ipcs(SCIENCE_APPS, args.scale)

    print(f"HPC scenario: simulation={SCIENCE_APPS} + "
          f"visualization={args.viz_game} @ {args.scale}")
    print("-" * 64)
    rows = []
    for pol_name in ("baseline", "throtcpuprio"):
        r = run_system(cfg, mix, make_policy(pol_name))
        ws = weighted_speedup(r, alone)
        rows.append((pol_name, r.fps, ws))
        print(f"{pol_name:13s} viz {r.fps:6.1f} FPS | "
              f"simulation weighted speedup {ws:.3f}")
    print("-" * 64)
    (bn, bfps, bws), (pn, pfps, pws) = rows
    print(f"Throttling the visualization from {bfps:.0f} to "
          f"{pfps:.0f} FPS (target 40) returns "
          f"{100 * (pws / bws - 1):+.1f}% of simulation throughput.")


if __name__ == "__main__":
    main()
