import time, sys
from repro.gpu.workloads import GAME_ORDER
from repro.sim import runner

for game in GAME_ORDER:
    t0 = time.time()
    r = runner.standalone_gpu(game, scale='test')
    from repro.gpu.workloads import workload_for
    w = workload_for(game)
    ratio = r.fps / w.fps_nominal
    acc = r.llc["gpu_accesses"]/r.ticks
    miss = r.llc["gpu_misses"]/r.ticks
    print(f'{game:14s} fps={r.fps:7.1f} nom={w.fps_nominal:6.1f} ratio={ratio:5.2f} '
          f'acc/t={acc:.3f} miss/t={miss:.3f} stalls={r.gpu_stats["mshr_stalls"]:6d} '
          f'tex={r.gpu_texture_share:.2f} dt={time.time()-t0:4.1f}s')
