"""Resilient synchronous client for the simulation service.

:class:`ServiceClient` speaks the newline-JSON socket protocol
(``docs/service.md``): ``submit`` routes a spec batch through a running
daemon and returns ordinary :class:`~repro.exec.executor.RunOutcome`
objects, ``stream`` additionally delivers live job lifecycle events,
``wait`` attaches to in-flight or cached work without creating any.
:func:`remote_run_many` is the drop-in ``run_many`` replacement the
CLI's ``--remote`` flag uses.

The rendezvous is a Unix socket path (default ``.repro_service.sock``
in the working directory) or a ``host:port`` string for the TCP/HTTP
listener — or a **comma-separated list** of either, tried in order.
The ``REPRO_SERVICE`` environment variable supplies the default, so
benches and figure scripts route through a daemon (or an ordered set
of daemons) without any code change.

Failure handling is explicit and safe:

* separate **connect** and **read** timeouts (a dead daemon is
  detected in seconds; a long simulation may still take minutes);
* **retry with exponential backoff + jitter** for idempotent
  operations — safe because specs are content-addressed and the daemon
  coalesces duplicates, so a resubmission is exactly-once at the
  execution layer (``shutdown`` is the lone non-retried verb);
* **ordered failover** across the address list, sticky to the last
  address that answered;
* structured ``overloaded`` refusals are honoured: the client sleeps
  the daemon's ``retry_after`` hint before retrying, and ``draining``
  daemons are skipped in favour of the next address.
"""

from __future__ import annotations

import os
import random
import socket
import time
import uuid
from typing import Callable, Iterable, List, Optional, Sequence, Union

from repro import metrics as _metrics
from repro.exec.executor import RunOutcome
from repro.exec.specs import RunSpec
from repro.service import protocol
from repro.service.server import DEFAULT_SOCKET

__all__ = ["ServiceClient", "ServiceError", "SOCKET_ENV", "FALLBACK_ENV",
           "default_address", "parse_addresses", "remote_run_many",
           "service_available"]

#: environment variable naming the daemon rendezvous — a socket path,
#: ``host:port``, or a comma-separated failover list of either; the
#: CLI's ``--remote`` flag falls back to it
SOCKET_ENV = "REPRO_SERVICE"

#: environment variable selecting what ``remote_run_many`` does when
#: every daemon is unreachable: ``local`` (default — warn and run
#: in-process) or ``error`` (raise); the CLI's ``--remote-fallback``
#: flag overrides it
FALLBACK_ENV = "REPRO_REMOTE_FALLBACK"


class ServiceError(RuntimeError):
    """The daemon refused or failed a request (error travels as data)."""


def default_address() -> str:
    return os.environ.get(SOCKET_ENV, "").strip() or DEFAULT_SOCKET


def _parse_one(address: str):
    """``host:port`` -> TCP tuple, anything else -> unix socket path."""
    if ":" in address:
        host, _, port = address.rpartition(":")
        if port.isdigit():
            return (host or "127.0.0.1", int(port))
    return address


def parse_addresses(address: Union[str, Sequence[str], None]) -> List[str]:
    """Normalise an address argument into an ordered failover list.

    Accepts ``None`` (use :func:`default_address`), one string
    (possibly comma-separated), or a sequence of strings.
    """
    if address is None:
        address = default_address()
    if isinstance(address, str):
        parts = [p.strip() for p in address.split(",")]
    else:
        parts = [str(p).strip() for p in address]
    out = [p for p in parts if p]
    if not out:
        raise ValueError("no service address given")
    return out


class ServiceClient:
    """One logical client (an admission-fairness lane) of the daemon.

    Each request opens a fresh connection — the daemon is the stateful
    side — so a client object is cheap, picklable-free, and safe to
    share across threads.  ``address`` may be a comma-separated
    failover list; requests stick to the last address that answered
    and fail over in order when it stops.
    """

    def __init__(self, address: Union[str, Sequence[str], None] = None,
                 client_id: Optional[str] = None,
                 timeout: Optional[float] = 600.0,
                 connect_timeout: float = 5.0,
                 retries: int = 2,
                 backoff: float = 0.25,
                 backoff_max: float = 5.0):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if backoff <= 0 or backoff_max <= 0:
            raise ValueError("backoff and backoff_max must be positive")
        self.addresses = parse_addresses(address)
        self._parsed = [_parse_one(a) for a in self.addresses]
        self._preferred = 0            # index of the last-good address
        self.client_id = client_id or f"cli-{uuid.uuid4().hex[:8]}"
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_max = backoff_max
        #: trace IDs minted for the most recent :meth:`submit`, aligned
        #: with its specs — join them against the daemon's oplog
        self.last_traces: List[str] = []

    @property
    def address(self):
        """The currently-preferred (last known good) parsed address."""
        return self._parsed[self._preferred]

    # -- plumbing ------------------------------------------------------------

    def _connect(self, addr) -> socket.socket:
        """Open one connection: the *connect* timeout detects a dead
        daemon fast, then the socket switches to the *read* timeout."""
        sock = None
        try:
            if isinstance(addr, tuple):
                sock = socket.create_connection(
                    addr, timeout=self.connect_timeout)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.connect_timeout)
                sock.connect(addr)
        except OSError as e:
            if sock is not None:
                sock.close()
            raise ServiceError(
                f"no daemon at {addr!r}: {e} "
                "(start one with `python -m repro serve`)") from None
        sock.settimeout(self.timeout)
        return sock

    def _request_once(self, addr, req: dict,
                      on_line: Optional[Callable[[dict], bool]]) -> dict:
        """One request against one address; connection-level trouble
        (refused, reset, read timeout, truncated reply) raises
        :class:`ServiceError` so the retry loop can take over."""
        sock = self._connect(addr)
        try:
            try:
                sock.sendall(protocol.dump_line(req))
                with sock.makefile("rb") as fh:
                    while True:
                        line = fh.readline()
                        if not line:
                            raise ServiceError(
                                f"connection to {addr!r} closed "
                                "mid-response")
                        obj = protocol.load_line(line)
                        if on_line is not None and on_line(obj):
                            continue
                        return obj
            except socket.timeout:
                raise ServiceError(
                    f"daemon at {addr!r} did not answer within "
                    f"{self.timeout:g}s") from None
            except OSError as e:
                raise ServiceError(
                    f"connection to {addr!r} failed: {e}") from None
        finally:
            sock.close()

    def _rotation(self) -> List[int]:
        n = len(self._parsed)
        return [(self._preferred + i) % n for i in range(n)]

    def _sleep(self, attempt: int, hint: Optional[float]) -> None:
        """Exponential backoff with jitter, or the daemon's own
        retry-after hint when it gave one."""
        if hint is not None and hint > 0:
            delay = hint
        else:
            delay = self.backoff * (2 ** attempt)
            delay *= random.uniform(0.5, 1.5)
        time.sleep(min(delay, self.backoff_max))

    def _request(self, req: dict,
                 on_line: Optional[Callable[[dict], bool]] = None,
                 idempotent: bool = True,
                 failover: bool = True) -> dict:
        """Send one request with retry + failover; return the final
        response object.

        ``on_line`` sees every intermediate line (streaming events) and
        returns True while it wants more; the first line it declines —
        or any line when it is None — is the final response.  A retried
        streaming request may replay events ``on_line`` already saw.
        """
        attempts = (self.retries + 1) if idempotent else 1
        order = self._rotation() if failover else [self._preferred]
        last_err: Optional[ServiceError] = None
        for attempt in range(attempts):
            hint: Optional[float] = None
            for idx in order:
                try:
                    resp = self._request_once(
                        self._parsed[idx], req, on_line)
                except ServiceError as e:
                    last_err = e
                    continue
                code = resp.get("code")
                if (code == protocol.CODE_DRAINING
                        and len(order) > 1):
                    # a draining daemon will never take this work —
                    # treat like an unreachable address and move on
                    last_err = ServiceError(
                        resp.get("error") or "daemon draining")
                    continue
                if (code == protocol.CODE_OVERLOADED
                        and idempotent and attempt + 1 < attempts):
                    # honour the shed: wait the daemon's own hint, stay
                    # with this (alive) daemon for the retry
                    try:
                        hint = float(resp.get("retry_after") or 0)
                    except (TypeError, ValueError):
                        hint = None
                    last_err = ServiceError(
                        resp.get("error") or "daemon overloaded")
                    self._preferred = idx
                    break
                self._preferred = idx
                return resp
            else:
                hint = None            # pure connection failures
            if attempt + 1 >= attempts:
                break
            self._sleep(attempt, hint)
        raise last_err or ServiceError("request failed")

    @staticmethod
    def _checked(resp: dict) -> dict:
        if not resp.get("ok"):
            raise ServiceError(resp.get("error") or "daemon error")
        return resp

    # -- the verbs -----------------------------------------------------------

    def ping(self) -> dict:
        return self._checked(self._request({"op": "ping"}))

    def status(self) -> dict:
        return self._checked(self._request({"op": "status"}))["status"]

    def cache_stats(self) -> dict:
        return self._checked(self._request({"op": "cache-stats"}))

    def shutdown(self) -> dict:
        """Ask the *preferred* daemon to drain and exit.  Never retried
        or failed over — a shutdown aimed at one daemon must not land
        on its stand-in."""
        return self._checked(self._request(
            {"op": "shutdown"}, idempotent=False, failover=False))

    def submit(self, specs: Iterable[RunSpec], wait: bool = True,
               on_event: Optional[Callable[[dict], None]] = None,
               encoding: str = "pickle",
               deadline: Optional[float] = None) -> List[RunOutcome]:
        """Route a spec batch through the daemon.

        With ``wait`` (default) blocks until every job settles and
        returns outcomes aligned with the input order, exactly like
        :func:`repro.exec.run_many`.  ``on_event`` turns on streaming:
        it receives every job lifecycle event (``queued`` / ``started``
        / ``done``) live, before the final outcome list arrives (a
        retried submission may replay events).  With ``wait=False``
        returns immediately (an empty list); a later :meth:`wait_for`
        with the same specs collects the results.  ``deadline`` (in
        seconds) tells the daemon to drop the jobs unstarted once
        nobody could still be waiting for them.

        Retry-safe: specs are content-addressed and the daemon
        coalesces duplicates, so resubmitting after a connection error
        is exactly-once at the execution layer.
        """
        specs = list(specs)
        # one fresh trace ID per spec: the correlation key that follows
        # the submission through daemon, pool worker, and outcome
        # (docs/observability.md)
        traces = [_metrics.mint_trace_id() for _ in specs]
        self.last_traces = list(traces)
        for s, t in zip(specs, traces):
            _metrics.oplog().emit("submit", trace_id=t, label=s.label,
                                  client=self.client_id)
        req = {"op": "submit", "client": self.client_id,
               "specs": [protocol.spec_to_wire(s) for s in specs],
               "traces": traces,
               "wait": wait, "stream": on_event is not None,
               "encoding": encoding}
        if deadline is not None:
            req["deadline"] = float(deadline)

        def on_line(obj: dict) -> bool:
            if "event" not in obj:
                return False          # the final response
            if obj["event"] != "batch-done" and on_event is not None:
                on_event(obj)
            return True

        resp = self._checked(self._request(req, on_line=on_line))
        if not wait:
            return []
        return self._decode_outcomes(resp, specs)

    def wait_for(self, specs: Iterable[RunSpec],
                 encoding: str = "pickle") -> List[RunOutcome]:
        """Attach to in-flight or cached results without creating work;
        unknown specs come back as failed outcomes."""
        specs = list(specs)
        req = {"op": "wait", "client": self.client_id,
               "specs": [protocol.spec_to_wire(s) for s in specs],
               "wait": True, "encoding": encoding}
        resp = self._checked(self._request(req))
        return self._decode_outcomes(resp, specs)

    @staticmethod
    def _decode_outcomes(resp: dict,
                         specs: List[RunSpec]) -> List[RunOutcome]:
        wires = resp.get("outcomes")
        if wires is None or len(wires) != len(specs):
            raise ServiceError("daemon returned a misaligned batch")
        return [protocol.outcome_from_wire(w, spec)
                for w, spec in zip(wires, specs)]


def service_available(address: Union[str, Sequence[str], None] = None
                      ) -> bool:
    """True iff some daemon answers a ping at ``address`` (which may be
    a failover list; no exceptions escape)."""
    try:
        ServiceClient(address, timeout=5.0, retries=0).ping()
        return True
    except (ServiceError, protocol.ProtocolError, ValueError):
        return False


def remote_run_many(specs: Iterable[RunSpec],
                    address: Union[str, Sequence[str], None] = None,
                    progress=None,
                    client_id: Optional[str] = None,
                    strict: bool = False,
                    fallback: Optional[str] = None) -> List[RunOutcome]:
    """Drop-in ``run_many`` that routes through a running daemon.

    Outcomes are bit-identical to local execution — the daemon runs the
    same ``spec.run()`` in its warm workers and results cross the wire
    as lossless pickles.  ``progress`` matches ``run_many``'s callback
    signature; it fires per streamed ``done`` event.

    When every daemon in the (possibly comma-separated) address list is
    unreachable after retries, ``fallback`` decides: ``"local"`` (the
    default, also via ``$REPRO_REMOTE_FALLBACK``) warns loudly and runs
    the batch in-process — same results, no daemon required — while
    ``"error"`` re-raises the :class:`ServiceError`.
    """
    import sys

    fallback = (fallback or os.environ.get(FALLBACK_ENV, "")
                or "local").strip().lower()
    if fallback not in ("local", "error"):
        raise ValueError(
            f"fallback must be 'local' or 'error', got {fallback!r}")
    specs = list(specs)
    client = ServiceClient(address, client_id=client_id)
    on_event = None
    if progress is not None:
        by_label = {s.label: (i, s) for i, s in enumerate(specs)}

        def on_event(ev: dict) -> None:
            if ev.get("event") != "done":
                return
            hit = by_label.get(ev.get("label"))
            if hit is None:
                return
            i, spec = hit
            progress(RunOutcome(spec, None, error=ev.get("error"),
                                elapsed=ev.get("elapsed") or 0.0,
                                source=ev.get("source") or "run",
                                attempts=ev.get("attempts") or 1),
                     i, len(specs))

    try:
        outcomes = client.submit(specs, wait=True, on_event=on_event)
    except ServiceError as e:
        if fallback != "local":
            raise
        print(f"warning: {e}; falling back to local execution "
              f"(--remote-fallback=error to refuse)", file=sys.stderr)
        _metrics.oplog().emit("remote_fallback", level="warning",
                              error=str(e), specs=len(specs),
                              addresses=client.addresses)
        _metrics.counter("repro_remote_fallbacks_total",
                         "remote_run_many batches that fell back to "
                         "local execution").inc()
        from repro.exec.executor import run_many
        outcomes = run_many(specs, progress=progress)
    if strict and any(not o.ok for o in outcomes):
        from repro.exec.executor import BatchError
        raise BatchError(outcomes)
    return outcomes
