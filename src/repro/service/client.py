"""Thin synchronous client for the simulation service.

:class:`ServiceClient` speaks the newline-JSON socket protocol
(``docs/service.md``): ``submit`` routes a spec batch through a running
daemon and returns ordinary :class:`~repro.exec.executor.RunOutcome`
objects, ``stream`` additionally delivers live job lifecycle events,
``wait`` attaches to in-flight or cached work without creating any.
:func:`remote_run_many` is the drop-in ``run_many`` replacement the
CLI's ``--remote`` flag uses.

The rendezvous is a Unix socket path (default ``.repro_service.sock``
in the working directory) or a ``host:port`` string for the TCP/HTTP
listener; the ``REPRO_SERVICE`` environment variable supplies the
default so benches and figure scripts route through a daemon without
any code change.
"""

from __future__ import annotations

import os
import socket
import uuid
from typing import Callable, Iterable, List, Optional

from repro import metrics as _metrics
from repro.exec.executor import RunOutcome
from repro.exec.specs import RunSpec
from repro.service import protocol
from repro.service.server import DEFAULT_SOCKET

__all__ = ["ServiceClient", "ServiceError", "SOCKET_ENV",
           "default_address", "remote_run_many", "service_available"]

#: environment variable naming the daemon rendezvous (socket path or
#: ``host:port``); the CLI's ``--remote`` flag falls back to it
SOCKET_ENV = "REPRO_SERVICE"


class ServiceError(RuntimeError):
    """The daemon refused or failed a request (error travels as data)."""


def default_address() -> str:
    return os.environ.get(SOCKET_ENV, "").strip() or DEFAULT_SOCKET


def _parse_address(address: str):
    """``host:port`` -> TCP tuple, anything else -> unix socket path."""
    if ":" in address:
        host, _, port = address.rpartition(":")
        if port.isdigit():
            return (host or "127.0.0.1", int(port))
    return address


class ServiceClient:
    """One logical client (an admission-fairness lane) of the daemon.

    Each request opens a fresh connection — the daemon is the stateful
    side — so a client object is cheap, picklable-free, and safe to
    share across threads.
    """

    def __init__(self, address: Optional[str] = None,
                 client_id: Optional[str] = None,
                 timeout: Optional[float] = 600.0):
        self.address = _parse_address(address or default_address())
        self.client_id = client_id or f"cli-{uuid.uuid4().hex[:8]}"
        self.timeout = timeout
        #: trace IDs minted for the most recent :meth:`submit`, aligned
        #: with its specs — join them against the daemon's oplog
        self.last_traces: List[str] = []

    # -- plumbing ------------------------------------------------------------

    def _connect(self) -> socket.socket:
        sock = None
        try:
            if isinstance(self.address, tuple):
                sock = socket.create_connection(self.address,
                                                timeout=self.timeout)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.address)
        except OSError as e:
            if sock is not None:
                sock.close()
            raise ServiceError(
                f"no daemon at {self.address!r}: {e} "
                "(start one with `python -m repro serve`)") from None
        return sock

    def _request(self, req: dict,
                 on_line: Optional[Callable[[dict], bool]] = None) -> dict:
        """Send one request; return the final response object.

        ``on_line`` sees every intermediate line (streaming events) and
        returns True while it wants more; the first line it declines —
        or any line when it is None — is the final response.
        """
        sock = self._connect()
        try:
            sock.sendall(protocol.dump_line(req))
            with sock.makefile("rb") as fh:
                while True:
                    line = fh.readline()
                    if not line:
                        raise ServiceError(
                            "connection closed mid-response")
                    obj = protocol.load_line(line)
                    if on_line is not None and on_line(obj):
                        continue
                    return obj
        finally:
            sock.close()

    @staticmethod
    def _checked(resp: dict) -> dict:
        if not resp.get("ok"):
            raise ServiceError(resp.get("error") or "daemon error")
        return resp

    # -- the verbs -----------------------------------------------------------

    def ping(self) -> dict:
        return self._checked(self._request({"op": "ping"}))

    def status(self) -> dict:
        return self._checked(self._request({"op": "status"}))["status"]

    def cache_stats(self) -> dict:
        return self._checked(self._request({"op": "cache-stats"}))

    def shutdown(self) -> dict:
        """Ask the daemon to drain and exit (graceful)."""
        return self._checked(self._request({"op": "shutdown"}))

    def submit(self, specs: Iterable[RunSpec], wait: bool = True,
               on_event: Optional[Callable[[dict], None]] = None,
               encoding: str = "pickle") -> List[RunOutcome]:
        """Route a spec batch through the daemon.

        With ``wait`` (default) blocks until every job settles and
        returns outcomes aligned with the input order, exactly like
        :func:`repro.exec.run_many`.  ``on_event`` turns on streaming:
        it receives every job lifecycle event (``queued`` / ``started``
        / ``done``) live, before the final outcome list arrives.  With
        ``wait=False`` returns immediately (an empty list); a later
        :meth:`wait_for` with the same specs collects the results.
        """
        specs = list(specs)
        # one fresh trace ID per spec: the correlation key that follows
        # the submission through daemon, pool worker, and outcome
        # (docs/observability.md)
        traces = [_metrics.mint_trace_id() for _ in specs]
        self.last_traces = list(traces)
        for s, t in zip(specs, traces):
            _metrics.oplog().emit("submit", trace_id=t, label=s.label,
                                  client=self.client_id)
        req = {"op": "submit", "client": self.client_id,
               "specs": [protocol.spec_to_wire(s) for s in specs],
               "traces": traces,
               "wait": wait, "stream": on_event is not None,
               "encoding": encoding}

        def on_line(obj: dict) -> bool:
            if "event" not in obj:
                return False          # the final response
            if obj["event"] != "batch-done" and on_event is not None:
                on_event(obj)
            return True

        resp = self._checked(self._request(req, on_line=on_line))
        if not wait:
            return []
        return self._decode_outcomes(resp, specs)

    def wait_for(self, specs: Iterable[RunSpec],
                 encoding: str = "pickle") -> List[RunOutcome]:
        """Attach to in-flight or cached results without creating work;
        unknown specs come back as failed outcomes."""
        specs = list(specs)
        req = {"op": "wait", "client": self.client_id,
               "specs": [protocol.spec_to_wire(s) for s in specs],
               "wait": True, "encoding": encoding}
        resp = self._checked(self._request(req))
        return self._decode_outcomes(resp, specs)

    @staticmethod
    def _decode_outcomes(resp: dict,
                         specs: List[RunSpec]) -> List[RunOutcome]:
        wires = resp.get("outcomes")
        if wires is None or len(wires) != len(specs):
            raise ServiceError("daemon returned a misaligned batch")
        return [protocol.outcome_from_wire(w, spec)
                for w, spec in zip(wires, specs)]


def service_available(address: Optional[str] = None) -> bool:
    """True iff a daemon answers a ping at ``address`` (no exceptions)."""
    try:
        ServiceClient(address, timeout=5.0).ping()
        return True
    except (ServiceError, protocol.ProtocolError):
        return False


def remote_run_many(specs: Iterable[RunSpec],
                    address: Optional[str] = None,
                    progress=None,
                    client_id: Optional[str] = None,
                    strict: bool = False) -> List[RunOutcome]:
    """Drop-in ``run_many`` that routes through a running daemon.

    Outcomes are bit-identical to local execution — the daemon runs the
    same ``spec.run()`` in its warm workers and results cross the wire
    as lossless pickles.  ``progress`` matches ``run_many``'s callback
    signature; it fires per streamed ``done`` event.
    """
    specs = list(specs)
    client = ServiceClient(address, client_id=client_id)
    on_event = None
    if progress is not None:
        by_label = {s.label: (i, s) for i, s in enumerate(specs)}

        def on_event(ev: dict) -> None:
            if ev.get("event") != "done":
                return
            hit = by_label.get(ev.get("label"))
            if hit is None:
                return
            i, spec = hit
            progress(RunOutcome(spec, None, error=ev.get("error"),
                                elapsed=ev.get("elapsed") or 0.0,
                                source=ev.get("source") or "run",
                                attempts=ev.get("attempts") or 1),
                     i, len(specs))

    outcomes = client.submit(specs, wait=True, on_event=on_event)
    if strict and any(not o.ok for o in outcomes):
        from repro.exec.executor import BatchError
        raise BatchError(outcomes)
    return outcomes
