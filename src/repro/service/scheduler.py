"""Admission control: the paper's ATU, lifted to the service level.

The simulator's :class:`~repro.core.atu.AccessThrottlingUnit` gates GPU
LLC accesses with two registers — a burst allowance ``N_G`` and a port
off-time ``W_G`` — recomputed from measured load at a fixed interval.
The daemon applies the identical shape to *client submissions*:

* every client gets a :class:`ClientGate` with a burst allowance
  ``n_g`` (submissions admitted back-to-back) and a wait ``w_g``
  (seconds the client's lane stays closed once the burst is spent);
* a :class:`AdmissionController` recompute, driven by the measured
  backlog (queued + running jobs), grows ``w_g`` in fixed steps while
  the backlog exceeds its target and collapses it to zero when the
  daemon catches up — the Fig. 6 flow with queue depth standing in for
  predicted frame time.

The result is the paper's fairness property at the service level: a
client hammering the daemon accumulates per-lane wait while a new
client's first ``n_g`` submissions admit immediately, and when the
system is keeping up nobody waits at all.

Everything here is pure arithmetic on caller-supplied clocks — no
threads, no asyncio — so the semantics are unit-testable exactly like
the ATU itself.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["AdmissionController", "ClientGate"]


class ClientGate:
    """Per-client token gate, mirroring ``AccessThrottlingUnit``'s
    ``next_issue_time`` in the seconds domain.

    While ``w_g == 0`` (no throttling) every submission admits at
    ``now``.  Otherwise each spent burst of ``n_g`` submissions closes
    the lane for ``w_g`` seconds; submissions arriving early are
    admitted at the lane's next open instant, in arrival order.
    """

    __slots__ = ("n_g", "_tokens", "_gate_until", "admitted", "deferred")

    def __init__(self, n_g: int = 8):
        if n_g < 1:
            raise ValueError("n_g must be >= 1")
        self.n_g = n_g
        self._tokens = n_g
        self._gate_until = 0.0
        self.admitted = 0
        self.deferred = 0              # admissions that had to wait

    def next_admit_time(self, now: float, w_g: float) -> float:
        """Earliest time this client's next submission may enter the
        queue; monotonically non-decreasing per client."""
        t = max(now, self._gate_until)
        self.admitted += 1
        if t > now:
            self.deferred += 1
        if w_g <= 0:
            return t
        self._tokens -= 1
        if self._tokens > 0:
            return t                   # within the burst allowance
        self._tokens = self.n_g
        self._gate_until = t + w_g
        return t


class AdmissionController:
    """Queue-depth-driven recompute of the shared ``w_g``.

    Fig. 6 computes the per-access wait from how far the predicted
    frame time must stretch; here the "frame" is the daemon's backlog:

    * ``depth <= target_depth`` -> ``w_g = 0`` (no throttling, the
      service is keeping up);
    * else ``w_g`` is the largest multiple of ``w_g_step`` at or below
      ``w_g_step * (depth - target_depth)``, capped at ``w_g_max`` —
      wait grows with overload, in quantised steps, exactly like the
      ATU's downward-quantised growth loop.

    ``observe(depth)`` is the recompute hook (the daemon calls it on
    every enqueue/dequeue); ``admit(client, now)`` returns the absolute
    time the submission may enter the run queue.
    """

    def __init__(self, n_g: int = 8, w_g_step: float = 0.05,
                 w_g_max: float = 2.0, target_depth: int = 4):
        if w_g_step <= 0 or w_g_max < 0:
            raise ValueError("w_g_step must be > 0 and w_g_max >= 0")
        if target_depth < 0:
            raise ValueError("target_depth must be >= 0")
        self.n_g = n_g
        self.w_g_step = w_g_step
        self.w_g_max = w_g_max
        self.target_depth = target_depth
        self.w_g = 0.0
        self.recomputes = 0
        self.throttled_recomputes = 0
        self._gates: Dict[str, ClientGate] = {}

    # -- Fig. 6, backlog edition ---------------------------------------------

    def observe(self, depth: int) -> float:
        """Recompute ``w_g`` from the current backlog; returns it."""
        self.recomputes += 1
        if depth <= self.target_depth:
            self.w_g = 0.0
            return self.w_g
        over = depth - self.target_depth
        self.w_g = min(self.w_g_step * over, self.w_g_max)
        self.throttled_recomputes += 1
        return self.w_g

    @property
    def active(self) -> bool:
        return self.w_g > 0

    # -- per-client admission ------------------------------------------------

    def gate(self, client: str) -> ClientGate:
        g = self._gates.get(client)
        if g is None:
            g = self._gates[client] = ClientGate(self.n_g)
        return g

    def admit(self, client: str, now: float) -> float:
        """Absolute admit time for one submission from ``client``."""
        return self.gate(client).next_admit_time(now, self.w_g)

    # -- load shedding ---------------------------------------------------------

    def shed_hint(self, depth: int) -> float:
        """Retry-after hint (seconds) for an ``overloaded`` refusal.

        The same quantised-growth arithmetic as ``observe`` applied to
        how far *past* the shed point the backlog sits: one ``w_g_step``
        quantum per excess job, floored at a single quantum (an
        overloaded daemon never advertises "retry immediately") and
        capped at ``w_g_max``.  Pure arithmetic — no state is touched,
        so refused submissions are never charged admission either.
        """
        over = max(1, depth - self.target_depth)
        return round(min(max(self.w_g_step, self.w_g_step * over),
                         self.w_g_max), 6)

    def snapshot(self) -> dict:
        """Status-endpoint rendering (counters, current gate state)."""
        return {
            "w_g": round(self.w_g, 6),
            "n_g": self.n_g,
            "active": self.active,
            "recomputes": self.recomputes,
            "throttled_recomputes": self.throttled_recomputes,
            "clients": {
                name: {"admitted": g.admitted, "deferred": g.deferred}
                for name, g in sorted(self._gates.items())
            },
        }
