"""Simulation-as-a-service: daemon, admission control, client.

The serving layer over :mod:`repro.exec` (see ``docs/service.md``)::

    # terminal 1
    #   python -m repro serve --workers 4
    # terminal 2 (or any process)
    from repro.service import ServiceClient
    from repro.exec import mix_spec
    outs = ServiceClient().submit([mix_spec("M7", "throtcpuprio")])

* :mod:`repro.service.server` — the asyncio daemon: Unix-socket +
  minimal HTTP API, persistent warm worker pool, cross-client dedup,
  graceful drain.
* :mod:`repro.service.scheduler` — per-client admission control using
  the paper's ATU token idiom at the service level.
* :mod:`repro.service.client` — ``submit`` / ``wait`` / ``stream``,
  retry/failover, and the ``remote_run_many`` drop-in the CLI's
  ``--remote`` flag uses.
* :mod:`repro.service.journal` — the crash-safe job journal the daemon
  replays after an unclean death.
* :mod:`repro.service.protocol` — the newline-JSON wire vocabulary.
"""

from repro.service.client import (SOCKET_ENV, ServiceClient, ServiceError,
                                  default_address, parse_addresses,
                                  remote_run_many, service_available)
from repro.service.journal import (JobJournal, JournalIntegrityWarning,
                                   JournalReplay)
from repro.service.scheduler import AdmissionController, ClientGate
from repro.service.server import (DEFAULT_SOCKET, DaemonHandle,
                                  ServiceDaemon, start_daemon_thread)

__all__ = [
    "AdmissionController", "ClientGate", "DEFAULT_SOCKET",
    "DaemonHandle", "JobJournal", "JournalIntegrityWarning",
    "JournalReplay", "SOCKET_ENV", "ServiceClient", "ServiceDaemon",
    "ServiceError", "default_address", "parse_addresses",
    "remote_run_many", "service_available", "start_daemon_thread",
]
