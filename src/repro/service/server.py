"""The simulation service daemon.

``python -m repro serve`` turns the executor + cache + CLI stack into a
long-running service: an asyncio loop accepts run requests over a Unix
socket (newline-delimited JSON) and a minimal local HTTP adapter,
admits them through the :class:`~repro.service.scheduler
.AdmissionController` (per-client ATU-style gating), deduplicates them
against a cross-client :class:`~repro.exec.inflight.InFlightRegistry`,
and executes misses on one persistent, pre-imported
:class:`~repro.exec.pool.WorkerPool`.  ``.repro_cache/`` is the shared
content-addressed result store: identical specs from any number of
clients cost one simulation ever, and repeat queries are served from
memory in microseconds.

Execution happens on a dedicated *executor thread* so the event loop
never blocks: the thread pulls admitted jobs from a queue, resolves
cache hits instantly, dispatches misses to the pool, recycles wedged
workers on timeout, and posts completions back into the loop.

Shutdown (SIGTERM, SIGINT, or the ``shutdown`` op) drains: new
submissions are refused, queued-but-unstarted jobs are marked
``interrupted`` (the same salvage contract as
:class:`~repro.exec.executor.BatchInterrupted`), running jobs finish
and their results are persisted, then sockets, pool, and cache stats
are closed out and the original signal handlers restored.

Unclean death is survivable too: every job transition is journalled
(:mod:`repro.service.journal`) so a daemon restarted against the same
store replays the log, re-enqueues orphaned work, and serves already-
completed keys from the cache — SIGKILL loses no submitted spec.  The
frame reader is bounded (``--max-frame``), the submission queue sheds
load past ``--max-queue`` with a structured ``overloaded`` refusal,
per-request deadlines drop work nobody is waiting on, and stalled
readers are disconnected after ``--write-timeout`` seconds.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import queue
import signal
import threading
import time
from typing import Dict, List, Optional

from repro import metrics as _metrics
from repro.exec import counters as exec_counters
from repro.exec.cache import ResultCache
from repro.exec.inflight import InFlightRegistry
from repro.exec.pool import WorkerPool
from repro.service import protocol
from repro.service.journal import JobJournal
from repro.service.scheduler import AdmissionController

__all__ = ["DEFAULT_SOCKET", "ServiceDaemon", "DaemonHandle",
           "start_daemon_thread"]

#: default Unix-socket rendezvous, relative to the working directory
#: (overridden by ``--socket`` / the ``REPRO_SERVICE`` environment
#: variable on the client side)
DEFAULT_SOCKET = ".repro_service.sock"


class _Job:
    """One distinct (by cache key) unit of work inside the daemon."""

    __slots__ = ("id", "key", "spec", "client", "state", "ok", "result",
                 "error", "source", "elapsed", "attempts", "done",
                 "subscribers", "deadline", "created", "trace",
                 "waiter_traces", "expires")

    def __init__(self, job_id: int, key: str, spec, client: str,
                 trace: Optional[str] = None):
        self.id = job_id
        self.key = key
        self.spec = spec
        self.client = client
        #: trace ID of the submission that created (won) this job; the
        #: execution is logged under it
        self.trace = trace or _metrics.mint_trace_id()
        #: every trace that attached (winner first, then coalesced)
        self.waiter_traces: List[str] = [self.trace]
        self.state = "queued"         # queued|running|done|failed
        self.ok: Optional[bool] = None
        self.result = None
        self.error: Optional[str] = None
        self.source = "run"
        self.elapsed = 0.0
        self.attempts = 0
        self.done = asyncio.Event()   # created on the loop thread
        self.subscribers: List[asyncio.Queue] = []
        self.deadline: Optional[float] = None
        #: client-requested absolute give-up time (monotonic); expired
        #: jobs are dropped at dispatch instead of occupying a worker
        self.expires: Optional[float] = None
        self.created = time.monotonic()

    def event(self, kind: str) -> dict:
        ev = {"event": kind, "id": self.id, "label": self.spec.label,
              "key": self.key, "state": self.state, "trace": self.trace}
        if kind == "done":
            ev.update(ok=self.ok, source=self.source,
                      elapsed=self.elapsed, attempts=self.attempts,
                      error=self.error)
        return ev


class ServiceDaemon:
    """See the module docstring; construct, then :meth:`serve_forever`
    (blocking) or :func:`start_daemon_thread` (tests, benches, docs)."""

    def __init__(self, socket_path: str = DEFAULT_SOCKET,
                 http_port: Optional[int] = None,
                 http_host: str = "127.0.0.1",
                 workers: int = 2,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 admission: Optional[AdmissionController] = None,
                 journal_sync: str = "batch",
                 journal_path: Optional[str] = None,
                 max_queue: int = 256,
                 max_frame: int = protocol.MAX_LINE_BYTES,
                 write_timeout: float = 30.0):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive seconds (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if max_frame < 4096:
            raise ValueError("max_frame must be >= 4096 bytes")
        if write_timeout <= 0:
            raise ValueError("write_timeout must be positive seconds")
        self.socket_path = socket_path
        self.http_port = http_port
        self.http_host = http_host
        self.cache = cache or ResultCache()
        self.pool = WorkerPool(workers)
        self.registry = InFlightRegistry()
        self.admission = admission or AdmissionController()
        self.timeout = timeout
        self.retries = retries
        self.max_queue = max_queue
        self.max_frame = max_frame
        self.write_timeout = write_timeout
        #: crash-safe job journal in the store directory
        #: (``journal_sync="disabled"`` turns it off entirely)
        self.journal: Optional[JobJournal] = None
        if journal_sync != "disabled":
            self.journal = JobJournal(
                journal_path
                or os.path.join(self.cache.root, "service.journal"),
                sync=journal_sync)
        #: what the startup replay recovered (``status()["journal"]``)
        self.journal_recovery: dict = {
            "recovered": 0, "completed": 0, "corrupt": 0, "torn": 0}

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._work_q: "queue.Queue[_Job]" = queue.Queue()
        self._busy: Dict[int, _Job] = {}      # job id -> running job
        self._timers: Dict[int, tuple] = {}   # job id -> (handle, job)
        self._ids = itertools.count(1)
        self._draining = False
        self._drain_exec = threading.Event()
        self._stopped: Optional[asyncio.Event] = None
        self._ready = threading.Event()       # listening (for starters)
        self._exec_thread: Optional[threading.Thread] = None
        self._servers: list = []
        self._prev_handlers: dict = {}
        self._started_at = time.monotonic()
        #: summary of the last completed drain (``/healthz`` reports
        #: ``None`` until a drain has run)
        self.last_drain: Optional[dict] = None
        #: daemon-lifetime counters, surfaced by ``status``
        self.jobs_submitted = 0
        self.jobs_attached = 0        # dedup: joined an in-flight job
        self.jobs_executed = 0
        self.cache_hits = 0
        self.jobs_failed = 0
        self.jobs_interrupted = 0
        self.jobs_shed = 0            # refused: queue past max_queue
        self.jobs_expired = 0         # dropped: client deadline passed
        self.jobs_recovered = 0       # re-enqueued from the journal

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Run the daemon until drained; blocking.  Warm workers are
        spawned *before* the event loop starts, so forks never race
        loop internals."""
        self.pool.start()
        try:
            asyncio.run(self._main())
        finally:
            self.pool.close()
            self.cache.persist_stats()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        if not self.pool.started:
            self.pool.start()
        self._install_signal_handlers()
        try:
            # replay the crash journal before the first client can
            # connect: orphans of a killed predecessor re-enter the
            # queue ahead of any fresh submissions
            self._recover_journal()
            if os.path.exists(self.socket_path):
                os.unlink(self.socket_path)   # stale from a hard kill
            self._servers.append(await asyncio.start_unix_server(
                self._handle_conn, path=self.socket_path,
                limit=self.max_frame))
            if self.http_port is not None:
                self._servers.append(await asyncio.start_server(
                    self._handle_conn, host=self.http_host,
                    port=self.http_port, limit=self.max_frame))
            self._exec_thread = threading.Thread(
                target=self._exec_loop, name="repro-service-exec",
                daemon=True)
            self._exec_thread.start()
            self._ready.set()
            _metrics.oplog().emit(
                "daemon_started", socket=self.socket_path,
                http_port=self.http_port, workers=self.pool.size,
                recovered=self.jobs_recovered)
            await self._stopped.wait()
        finally:
            self._ready.set()                 # never leave starters hung
            await self._shutdown()

    def _install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT begin a graceful drain.  Only possible on the
        main thread; the originals are restored at shutdown."""
        try:
            for sig in (signal.SIGTERM, signal.SIGINT):
                prev = signal.getsignal(sig)
                self._loop.add_signal_handler(sig, self.begin_drain)
                self._prev_handlers[sig] = prev
        except (RuntimeError, ValueError, NotImplementedError):
            self._prev_handlers.clear()       # not main thread: skip

    def _restore_signal_handlers(self) -> None:
        for sig, prev in self._prev_handlers.items():
            try:
                self._loop.remove_signal_handler(sig)
                if prev is not None:
                    signal.signal(sig, prev)
            except (RuntimeError, ValueError, OSError):
                pass
        self._prev_handlers.clear()

    def _recover_journal(self) -> None:
        """Replay the crash journal left by a killed predecessor.

        Orphaned jobs (``submitted``/``started`` without a terminal
        record) are re-enqueued through the ordinary claim/enqueue
        path — already-completed keys among them are then served from
        the store by ``_start_job``'s cache check, so nothing finished
        is ever re-executed.  The log is compacted afterwards: the
        orphans' fresh ``submitted`` records are its only content.
        """
        if self.journal is None:
            return
        import warnings as _warnings
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            replay = self.journal.replay()
        for w in caught:
            _metrics.oplog().emit("journal_warning", level="warning",
                                  message=str(w.message))
        self.journal.reset()
        _metrics.counter(
            "repro_journal_replayed_records_total",
            "Valid journal records read at startup").inc(replay.records)
        _metrics.counter(
            "repro_journal_corrupt_records_total",
            "Checksum/decode-corrupt journal records skipped at "
            "replay").inc(replay.corrupt)
        _metrics.counter(
            "repro_journal_torn_tails_total",
            "Partial trailing records truncated at replay").inc(
            1 if replay.torn else 0)
        skipped = 0
        for record in replay.orphans:
            try:
                spec = protocol.spec_from_wire(record["spec"])
            except protocol.ProtocolError:
                skipped += 1
                _metrics.oplog().emit(
                    "journal_warning", level="warning",
                    message=f"unrecoverable orphan spec for key "
                            f"{record.get('key', '?')[:12]}")
                continue
            # recompute the key: a daemon built from edited sources
            # must not serve a stale entry under an old salt
            key = self.cache.key_for(spec)
            trace = record.get("trace")
            job, created = self.registry.claim(
                key, lambda: _Job(next(self._ids), key, spec,
                                  str(record.get("client") or "anon"),
                                  trace=trace))
            if not created:            # duplicate orphan records
                continue
            self.jobs_submitted += 1
            self.jobs_recovered += 1
            self.journal.append("submitted", key,
                                spec=protocol.spec_to_wire(spec),
                                client=job.client, trace=job.trace)
            self._enqueue(job)
        _metrics.counter(
            "repro_journal_recovered_jobs_total",
            "Orphaned jobs re-enqueued from the journal at "
            "startup").inc(self.jobs_recovered)
        self.journal_recovery = {
            "recovered": self.jobs_recovered,
            "completed": replay.completed,
            "corrupt": replay.corrupt + skipped,
            "torn": int(replay.torn),
        }
        if (replay.records or replay.corrupt or replay.torn):
            _metrics.oplog().emit("journal_recovered",
                                  **self.journal_recovery)

    def begin_drain(self) -> None:
        """Refuse new work, salvage the queue, finish what's running.
        Idempotent; callable from signal handlers and request ops."""
        if self._draining:
            return
        self._draining = True
        # deferred (admission-delayed) jobs never started: interrupt now
        for handle, job in self._timers.values():
            handle.cancel()
            self._interrupt_job(job)
        self._timers.clear()
        self._drain_exec.set()        # executor: drain queue, then exit

    def _interrupt_job(self, job: _Job) -> None:
        job.state = "failed"
        job.ok = False
        job.error = "interrupted"
        job.source = "error"
        self.jobs_interrupted += 1
        if self.journal is not None:
            self.journal.append("interrupted", job.key)
        _metrics.counter("repro_jobs_interrupted_total",
                         "Queued jobs salvaged as interrupted at "
                         "drain").inc()
        _metrics.oplog().emit("interrupted", level="warning",
                              trace_id=job.trace, job=job.id,
                              label=job.spec.label,
                              waiters=job.waiter_traces)
        self.registry.release(job.key)
        self._finalize_on_loop(job)

    async def _shutdown(self) -> None:
        self.begin_drain()
        if self._exec_thread is not None:
            # join off-loop so in-flight simulations can finish
            await self._loop.run_in_executor(
                None, self._exec_thread.join)
        if self.last_drain is None:   # idempotent: summarise once only
            self.last_drain = {
                "at": round(time.time(), 3),
                "uptime": round(time.monotonic() - self._started_at, 3),
                "submitted": self.jobs_submitted,
                "executed": self.jobs_executed,
                "cache_hits": self.cache_hits,
                "failed": self.jobs_failed,
                "interrupted": self.jobs_interrupted,
                "coalesced": self.registry.coalesced,
            }
            _metrics.oplog().emit("drain_summary", **self.last_drain)
        if self.journal is not None:
            # clean drain: every job is terminal and every result is in
            # the store, so the journal compacts to empty
            self.journal.reset()
            self.journal.close()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if os.path.exists(self.socket_path):
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._restore_signal_handlers()

    # -- the executor thread -------------------------------------------------

    def _exec_loop(self) -> None:
        while True:
            if self._drain_exec.is_set():
                # salvage contract: queued jobs -> "interrupted",
                # running jobs are allowed to finish below
                while True:
                    try:
                        self._interrupt_job(self._work_q.get_nowait())
                    except queue.Empty:
                        break
                if not self._busy:
                    break
            while (self.pool.idle_count() > 0
                    and not self._drain_exec.is_set()):
                try:
                    job = self._work_q.get_nowait()
                except queue.Empty:
                    break
                self._start_job(job)
            if self._busy:
                for ev in self.pool.wait(timeout=0.1):
                    self._on_pool_event(ev)
                self._check_deadlines()
            else:
                try:
                    job = self._work_q.get(timeout=0.1)
                except queue.Empty:
                    continue
                if self._drain_exec.is_set():
                    self._interrupt_job(job)
                else:
                    self._start_job(job)
        # running jobs finished; signal the loop that execution is over
        if self._loop is not None and self._stopped is not None:
            self._loop.call_soon_threadsafe(self._stopped.set)

    def _start_job(self, job: _Job) -> None:
        hit, source = self.cache.get(job.spec)
        if hit is not None:
            self.cache_hits += 1
            _metrics.counter("repro_jobs_cache_served_total",
                             "Jobs settled straight from the result "
                             "cache, no worker involved").inc()
            self._complete(job, True, hit, source=source)
            return
        if job.expires is not None and time.monotonic() > job.expires:
            # nobody is waiting for this any more: drop it instead of
            # occupying a worker (cache hits above are still served —
            # they cost nothing)
            self.jobs_expired += 1
            _metrics.counter("repro_jobs_expired_total",
                             "Jobs dropped at dispatch because their "
                             "client deadline had passed").inc()
            self._complete(job, False, None,
                           error="deadline exceeded before start")
            return
        job.attempts += 1
        job.state = "running"
        job.deadline = (time.monotonic() + self.timeout
                        if self.timeout is not None else None)
        self.jobs_executed += 1
        exec_counters["executed"] += 1
        if self.journal is not None and job.attempts == 1:
            self.journal.append("started", job.key)
        _metrics.counter("repro_jobs_started_total",
                         "Jobs dispatched to a pool worker (cache "
                         "hits never start)").inc()
        _metrics.oplog().emit("started", trace_id=job.trace, job=job.id,
                              label=job.spec.label,
                              attempt=job.attempts)
        self.pool.submit(job.id, job.spec, trace_id=job.trace)
        self._busy[job.id] = job
        self._notify_on_loop(job, "started")

    def _on_pool_event(self, ev) -> None:
        job = self._busy.pop(ev.tag, None)
        if job is None:               # pragma: no cover - stale reply
            return
        if ev.died:
            self._retry_or_fail(job, "worker died")
            return
        if ev.ok:
            self.cache.put(job.spec, ev.payload)
            self._complete(job, True, ev.payload, elapsed=ev.elapsed)
        else:
            self._complete(job, False, None, error=ev.payload,
                           elapsed=ev.elapsed)

    def _check_deadlines(self) -> None:
        if self.timeout is None:
            return
        now = time.monotonic()
        for job in [j for j in self._busy.values()
                    if j.deadline is not None and j.deadline <= now]:
            del self._busy[job.id]
            self.pool.recycle(job.id)
            self._retry_or_fail(
                job, f"timed out after {self.timeout:g}s wall clock")

    def _retry_or_fail(self, job: _Job, why: str) -> None:
        if job.attempts <= self.retries and not self._drain_exec.is_set():
            self._work_q.put(job)
        else:
            self._complete(job, False, None,
                           error=f"{why} (after {job.attempts} "
                                 "attempt(s))")

    def _complete(self, job: _Job, ok: bool, result,
                  error: Optional[str] = None, source: str = "run",
                  elapsed: float = 0.0) -> None:
        job.ok = ok
        job.result = result
        job.error = error
        job.source = source if ok else "error"
        job.elapsed = elapsed
        job.state = "done" if ok else "failed"
        if not ok:
            self.jobs_failed += 1
        if self.journal is not None:
            self.journal.append("done", job.key, ok=ok)
        _metrics.counter("repro_jobs_done_total",
                         "Jobs settled, by outcome",
                         ok=str(ok).lower()).inc()
        _metrics.oplog().emit(
            "done", trace_id=job.trace, job=job.id,
            label=job.spec.label, ok=ok, source=job.source,
            elapsed=round(elapsed, 6), error=error)
        self.registry.release(job.key)
        self._finalize_on_loop(job)

    # -- loop-side notification ----------------------------------------------

    def _finalize_on_loop(self, job: _Job) -> None:
        def fin():
            job.done.set()
            self._push_event(job, job.event("done"))
        self._call_on_loop(fin)

    def _notify_on_loop(self, job: _Job, kind: str) -> None:
        self._call_on_loop(lambda: self._push_event(job, job.event(kind)))

    def _call_on_loop(self, fn) -> None:
        if self._loop is not None and not self._loop.is_closed():
            try:
                self._loop.call_soon_threadsafe(fn)
            except RuntimeError:      # pragma: no cover - loop died
                pass

    @staticmethod
    def _push_event(job: _Job, ev: dict) -> None:
        for q in job.subscribers:
            q.put_nowait(ev)

    # -- request handling ----------------------------------------------------

    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        t0 = time.perf_counter()
        transport = "socket"
        try:
            try:
                first = await reader.readline()
            except ValueError:
                # the bounded stream reader overran max_frame: answer
                # with a structured refusal, then drop the connection
                await self._refuse_frame(
                    writer,
                    f"frame exceeds {self.max_frame} bytes")
                return
            if not first:
                return
            if first[:4] in (b"GET ", b"POST", b"HEAD"):
                transport = "http"
                await self._handle_http(first, reader, writer)
                return
            try:
                req = protocol.load_line(first)
                await self._dispatch(req, writer)
            except protocol.ProtocolError as e:
                writer.write(protocol.dump_line(
                    protocol.error_response(
                        str(e), code=protocol.CODE_PROTOCOL_ERROR)))
                await self._drain_writer(writer)
        except (ConnectionResetError, BrokenPipeError):
            pass                      # client went away mid-reply
        finally:
            _metrics.histogram(
                "repro_request_ns",
                "Connection-open to reply-complete latency",
                transport=transport).record(
                int((time.perf_counter() - t0) * 1e9))
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _refuse_frame(self, writer, why: str) -> None:
        """Oversized/unframeable input: one structured refusal line,
        then the connection is closed by the caller."""
        _metrics.counter("repro_frames_refused_total",
                         "Connections dropped for oversized or "
                         "unparseable frames").inc()
        _metrics.oplog().emit("frame_refused", level="warning", why=why)
        try:
            writer.write(protocol.dump_line(protocol.error_response(
                why, code=protocol.CODE_PROTOCOL_ERROR)))
            await self._drain_writer(writer)
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def _drain_writer(self, writer) -> None:
        """``writer.drain()`` with a patience limit: a reader stalled
        past ``write_timeout`` seconds is disconnected so its buffered
        reply can't grow without bound (the event loop itself never
        blocks either way — this bounds *memory*, not latency)."""
        try:
            await asyncio.wait_for(writer.drain(), self.write_timeout)
        except asyncio.TimeoutError:
            _metrics.counter(
                "repro_slow_clients_dropped_total",
                "Connections aborted because the client stopped "
                "reading").inc()
            _metrics.oplog().emit("slow_client_dropped",
                                  level="warning",
                                  timeout=self.write_timeout)
            transport = getattr(writer, "transport", None)
            if transport is not None:
                transport.abort()
            raise ConnectionResetError(
                f"client stopped reading for {self.write_timeout:g}s"
            ) from None

    async def _dispatch(self, req: dict,
                        writer: asyncio.StreamWriter) -> None:
        op = req.get("op")
        _metrics.counter("repro_requests_total",
                         "Protocol requests by op",
                         op=str(op)).inc()
        if op == "ping":
            resp = {"ok": True, "version": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid(), "salt": self.cache.salt}
        elif op == "status":
            resp = {"ok": True, "status": self.status()}
        elif op == "cache-stats":
            files, size = self.cache.disk_usage()
            resp = {"ok": True, "files": files, "bytes": size,
                    "stats": self.cache.persist_stats()}
        elif op == "shutdown":
            resp = {"ok": True, "draining": True}
            writer.write(protocol.dump_line(resp))
            await self._drain_writer(writer)
            self.begin_drain()
            return
        elif op == "submit":
            await self._op_submit(req, writer, admit=True)
            return
        elif op == "wait":
            await self._op_submit(req, writer, admit=False)
            return
        else:
            resp = protocol.error_response(f"unknown op {op!r}")
        writer.write(protocol.dump_line(resp))
        await self._drain_writer(writer)

    async def _op_submit(self, req: dict, writer: asyncio.StreamWriter,
                         admit: bool) -> None:
        """``submit`` queues work (and optionally streams/waits);
        ``wait`` only attaches to in-flight or cached results."""
        if self._draining:
            writer.write(protocol.dump_line(protocol.error_response(
                "draining: daemon is shutting down",
                code=protocol.CODE_DRAINING)))
            await self._drain_writer(writer)
            return
        encoding = req.get("encoding", "pickle")
        if encoding not in protocol.ENCODINGS:
            raise protocol.ProtocolError(f"unknown encoding {encoding!r}")
        client = str(req.get("client") or "anon")
        raw_specs = req.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise protocol.ProtocolError("submit needs a spec list")
        specs = [protocol.spec_from_wire(w) for w in raw_specs]
        if admit:
            depth = self.queue_depth()
            if depth >= self.max_queue:
                # explicit load shedding: refuse the whole batch with a
                # machine-readable code and a retry-after hint instead
                # of buffering without bound
                self.jobs_shed += len(specs)
                hint = self.admission.shed_hint(depth)
                _metrics.counter(
                    "repro_jobs_shed_total",
                    "Submissions refused because the queue was at "
                    "max_queue").inc(len(specs))
                _metrics.oplog().emit(
                    "overloaded", level="warning", client=str(
                        req.get("client") or "anon"),
                    depth=depth, specs=len(specs), retry_after=hint)
                writer.write(protocol.dump_line(protocol.error_response(
                    f"overloaded: queue depth {depth} >= "
                    f"{self.max_queue}", code=protocol.CODE_OVERLOADED,
                    retry_after=hint)))
                await self._drain_writer(writer)
                return
        deadline = req.get("deadline")
        expires: Optional[float] = None
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise protocol.ProtocolError(
                    f"bad deadline: {deadline!r}") from None
            if deadline <= 0:
                raise protocol.ProtocolError(
                    "deadline must be positive seconds")
            expires = time.monotonic() + deadline
        # per-spec trace IDs ride *beside* the specs (never inside —
        # cache keys are unperturbed); absent or misaligned, the daemon
        # mints its own so every execution is still traceable
        traces = req.get("traces")
        if not isinstance(traces, list) or len(traces) != len(specs):
            traces = [None] * len(specs)
        traces = [str(t) if t else _metrics.mint_trace_id()
                  for t in traces]
        stream = bool(req.get("stream"))
        wait = bool(req.get("wait", True)) or stream
        _metrics.counter("repro_submissions_total",
                         "Specs received over submit/wait requests",
                         op="submit" if admit else "wait"
                         ).inc(len(specs))

        jobs: List[_Job] = []         # aligned with the submitted specs
        sub_q: Optional[asyncio.Queue] = asyncio.Queue() if stream \
            else None
        now = self._loop.time()
        for spec, trace in zip(specs, traces):
            key = self.cache.key_for(spec)
            job, created = self.registry.claim(
                key, lambda: _Job(next(self._ids), key, spec, client,
                                  trace=trace))
            if created:
                self.jobs_submitted += 1
                if not admit:
                    # ``wait`` never creates work: serve from cache or
                    # report the miss
                    self.registry.release(key)
                    hit, source = self.cache.get(spec)
                    if hit is None:
                        job.ok = False
                        job.error = "unknown: not cached, not in flight"
                        job.source = "error"
                        job.state = "failed"
                    else:
                        self.cache_hits += 1
                        job.ok = True
                        job.result = hit
                        job.source = source
                        job.state = "done"
                    job.done.set()
                else:
                    job.expires = expires
                    if self.journal is not None:
                        self.journal.append(
                            "submitted", key,
                            spec=protocol.spec_to_wire(spec),
                            client=client, trace=job.trace)
                    at = self.admission.admit(client, now)
                    self.admission.observe(self.queue_depth())
                    self._gate_gauges(client)
                    if at <= now:
                        self._enqueue(job)
                    else:
                        _metrics.counter(
                            "repro_admission_deferred_total",
                            "Submissions delayed by the per-client "
                            "gate").inc()
                        _metrics.oplog().emit(
                            "deferred", trace_id=job.trace, job=job.id,
                            client=client, delay=round(at - now, 6))
                        handle = self._loop.call_later(
                            at - now, self._enqueue_deferred, job.id)
                        self._timers[job.id] = (handle, job)
            else:
                self.jobs_attached += 1
                job.waiter_traces.append(trace)
                _metrics.counter("repro_jobs_coalesced_total",
                                 "Submissions that attached to an "
                                 "already-in-flight execution").inc()
                _metrics.oplog().emit("coalesced", trace_id=trace,
                                      exec_trace_id=job.trace,
                                      job=job.id, client=client)
            if sub_q is not None and not job.done.is_set():
                job.subscribers.append(sub_q)
            jobs.append(job)

        if stream:
            await self._stream_events(jobs, sub_q, writer)
        if not wait:
            writer.write(protocol.dump_line(
                {"ok": True, "queued": len(jobs),
                 "keys": [j.key for j in jobs]}))
            await self._drain_writer(writer)
            return
        for job in {j.id: j for j in jobs}.values():
            await job.done.wait()
        outcomes = [self._job_outcome(i, job, encoding)
                    for i, job in enumerate(jobs)]
        writer.write(protocol.dump_line(
            {"ok": True, "outcomes": outcomes}))
        await self._drain_writer(writer)

    def _enqueue(self, job: _Job) -> None:
        _metrics.counter("repro_jobs_queued_total",
                         "Distinct jobs entered into the run "
                         "queue").inc()
        _metrics.oplog().emit("queued", trace_id=job.trace, job=job.id,
                              label=job.spec.label, client=job.client)
        self._notify_on_loop(job, "queued")
        self._work_q.put(job)
        _metrics.gauge("repro_queue_depth",
                       "Backlog: queued + deferred + running"
                       ).set(self.queue_depth())

    def _gate_gauges(self, client: str) -> None:
        """Refresh the admission-gate gauges after a recompute."""
        snap = self.admission.snapshot()
        _metrics.gauge("repro_gate_w_g_ms",
                       "Shared per-burst lane close time (the "
                       "service-level W_G)").set(
            int(snap["w_g"] * 1000))
        _metrics.gauge("repro_gate_n_g",
                       "Burst allowance per client (the service-level "
                       "N_G)").set(snap["n_g"])
        g = snap["clients"].get(client)
        if g is not None:
            _metrics.counter("repro_gate_admitted_total",
                             "Gate decisions per client",
                             client=client).value = g["admitted"]
            _metrics.counter("repro_gate_deferred_total",
                             "Deferred gate decisions per client",
                             client=client).value = g["deferred"]

    def _enqueue_deferred(self, job_id: int) -> None:
        entry = self._timers.pop(job_id, None)
        if entry is not None:
            self._enqueue(entry[1])

    async def _stream_events(self, jobs: List[_Job],
                             sub_q: asyncio.Queue,
                             writer: asyncio.StreamWriter) -> None:
        """Relay job lifecycle events until every subscribed job is
        done; completed-at-attach jobs emit a synthetic ``done``."""
        pending = set()
        for job in jobs:
            if job.id in pending:
                continue
            if job.done.is_set():
                writer.write(protocol.dump_line(job.event("done")))
            else:
                pending.add(job.id)
        await self._drain_writer(writer)
        while pending:
            ev = await sub_q.get()
            writer.write(protocol.dump_line(ev))
            await self._drain_writer(writer)
            if ev.get("event") == "done":
                pending.discard(ev.get("id"))
        writer.write(protocol.dump_line({"event": "batch-done"}))
        await self._drain_writer(writer)

    def _job_outcome(self, index: int, job: _Job,
                     encoding: str) -> dict:
        return {"index": index, "label": job.spec.label, "ok": job.ok,
                "source": job.source, "elapsed": job.elapsed,
                "attempts": max(job.attempts, 1), "error": job.error,
                "trace": job.trace,
                "result": protocol.encode_result(job.result, encoding)}

    # -- introspection -------------------------------------------------------

    def queue_depth(self) -> int:
        """Backlog the admission recompute observes: queued + deferred
        + running (cache hits never linger here)."""
        return self._work_q.qsize() + len(self._timers) + len(self._busy)

    def status(self) -> dict:
        files, size = self.cache.disk_usage()
        return {
            "version": protocol.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
            "workers": self.pool.size,
            "worker_pids": self.pool.pids(),
            "workers_recycled": self.pool.recycled,
            "queue_depth": self.queue_depth(),
            "max_queue": self.max_queue,
            "running": len(self._busy),
            "jobs": {
                "submitted": self.jobs_submitted,
                "attached": self.jobs_attached,
                "executed": self.jobs_executed,
                "cache_hits": self.cache_hits,
                "failed": self.jobs_failed,
                "interrupted": self.jobs_interrupted,
                "coalesced": self.registry.coalesced,
                "shed": self.jobs_shed,
                "expired": self.jobs_expired,
                "recovered": self.jobs_recovered,
            },
            "journal": dict(self.journal_recovery,
                            enabled=self.journal is not None,
                            sync=(self.journal.sync
                                  if self.journal is not None
                                  else "disabled"),
                            appended=(self.journal.appended
                                      if self.journal is not None
                                      else 0)),
            "admission": self.admission.snapshot(),
            "cache": {"root": os.path.abspath(self.cache.root),
                      "files": files, "bytes": size},
        }

    def healthz(self) -> dict:
        """The ``/healthz`` liveness digest: cheap, no disk walk."""
        alive = self.pool.alive_count()
        return {
            "ok": alive == self.pool.size and not self._draining,
            "pid": os.getpid(),
            "uptime": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
            "pool": {"size": self.pool.size, "alive": alive,
                     "busy": len(self._busy),
                     "recycled": self.pool.recycled},
            "queue_depth": self.queue_depth(),
            "journal": self.journal_recovery,
            "last_drain": self.last_drain,
        }

    def _scrape_gauges(self) -> None:
        """Refresh point-in-time gauges just before rendering
        ``/metrics``, so a scrape never reads stale liveness."""
        _metrics.gauge("repro_uptime_seconds",
                       "Seconds since the daemon started").set(
            int(time.monotonic() - self._started_at))
        _metrics.gauge("repro_queue_depth",
                       "Backlog: queued + deferred + running"
                       ).set(self.queue_depth())
        _metrics.gauge("repro_pool_alive_workers",
                       "Pool workers whose process is alive").set(
            self.pool.alive_count())
        _metrics.gauge("repro_draining",
                       "1 while the daemon is draining").set(
            1 if self._draining else 0)

    # -- the HTTP adapter ----------------------------------------------------

    async def _handle_http(self, first: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        """Minimal local HTTP/1.1: GET /ping|/status|/cache/stats|
        /metrics|/healthz, POST /submit (synchronous JSON in, JSON out;
        no streaming).  The same routes answer on the Unix socket —
        the daemon sniffs HTTP by the request line — so ``repro top``
        needs no TCP listener."""
        try:
            method, path, _version = first.decode("latin-1").split()[:3]
        except ValueError:
            return
        length = 0
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                _write_http(writer, "431 Request Header Fields Too Large",
                            json.dumps(protocol.error_response(
                                "oversized header line",
                                code=protocol.CODE_PROTOCOL_ERROR)
                            ).encode("utf-8"))
                await self._drain_writer(writer)
                return
            if not line or line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > self.max_frame:
            _write_http(writer, "413 Payload Too Large",
                        json.dumps(protocol.error_response(
                            f"body exceeds {self.max_frame} bytes",
                            code=protocol.CODE_PROTOCOL_ERROR)
                        ).encode("utf-8"))
            await self._drain_writer(writer)
            return
        body = await reader.readexactly(length) if length else b""

        status = "200 OK"
        if method == "GET" and path == "/metrics":
            self._scrape_gauges()
            _write_http(writer, status,
                        _metrics.registry().render().encode("utf-8"),
                        content_type="text/plain; version=0.0.4; "
                                     "charset=utf-8")
            await self._drain_writer(writer)
            return
        if method == "GET" and path == "/healthz":
            resp = self.healthz()
        elif method == "GET" and path == "/ping":
            resp = {"ok": True, "version": protocol.PROTOCOL_VERSION,
                    "pid": os.getpid()}
        elif method == "GET" and path == "/status":
            resp = {"ok": True, "status": self.status()}
        elif method == "GET" and path == "/cache/stats":
            files, size = self.cache.disk_usage()
            resp = {"ok": True, "files": files, "bytes": size,
                    "stats": self.cache.persist_stats()}
        elif method == "POST" and path == "/submit":
            # reuse the socket submit path against an in-memory stream
            try:
                req = protocol.load_line(body)
                req["op"] = "submit"
                req.pop("stream", None)       # HTTP replies once
                await self._dispatch(req, _HttpBodyWriter(writer))
                return
            except protocol.ProtocolError as e:
                status = "400 Bad Request"
                resp = protocol.error_response(str(e))
        else:
            status = "404 Not Found"
            resp = protocol.error_response(f"no route {method} {path}")
        _write_http(writer, status, json.dumps(resp).encode("utf-8"))
        await self._drain_writer(writer)


def _write_http(writer: asyncio.StreamWriter, status: str, body: bytes,
                content_type: str = "application/json") -> None:
    writer.write((f"HTTP/1.1 {status}\r\n"
                  f"Content-Type: {content_type}\r\n"
                  f"Content-Length: {len(body)}\r\n"
                  "Connection: close\r\n\r\n").encode("latin-1") + body)


class _HttpBodyWriter:
    """Adapter so the socket ``submit`` path can answer an HTTP POST:
    the single JSON response line becomes the HTTP body."""

    def __init__(self, writer: asyncio.StreamWriter):
        self._writer = writer

    @property
    def transport(self):
        return self._writer.transport

    def write(self, line: bytes) -> None:
        _write_http(self._writer, "200 OK", line.rstrip(b"\n"))

    async def drain(self) -> None:
        await self._writer.drain()


# -- in-process hosting (tests, benches, doc snippets) -----------------------

class DaemonHandle:
    """A daemon running on a background thread, with a blocking stop."""

    def __init__(self, daemon: ServiceDaemon, thread: threading.Thread):
        self.daemon = daemon
        self.thread = thread

    @property
    def socket_path(self) -> str:
        return self.daemon.socket_path

    def stop(self, timeout: float = 30.0) -> None:
        """Begin a graceful drain and join the daemon thread."""
        loop = self.daemon._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.daemon.begin_drain)
            except RuntimeError:
                pass
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def start_daemon_thread(timeout: float = 60.0,
                        **kwargs) -> DaemonHandle:
    """Start a :class:`ServiceDaemon` on a daemon thread and wait until
    it is accepting connections.  Signal handlers are not installed
    (not the main thread); use ``handle.stop()`` to drain."""
    daemon = ServiceDaemon(**kwargs)
    thread = threading.Thread(target=daemon.serve_forever,
                              name="repro-service", daemon=True)
    thread.start()
    if not daemon._ready.wait(timeout):
        raise TimeoutError("service daemon failed to start")
    if not thread.is_alive() and not os.path.exists(daemon.socket_path):
        raise RuntimeError("service daemon exited during startup")
    return DaemonHandle(daemon, thread)
