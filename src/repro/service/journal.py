"""Crash-safe job journal — the daemon's write-ahead record of work.

The daemon's result store is already crash-safe (atomic writes,
checksummed frames), but the *queue* never was: SIGKILL a daemon with
jobs queued or running and that work silently evaporated.  The journal
closes the gap with the same framing idiom the cache uses on disk —
magic, length, SHA-256 digest, payload — applied to an append-only log
of job lifecycle transitions:

``submitted``
    a job was accepted and enqueued; the record carries the full wire
    form of the spec so replay can reconstruct it without the client.
``started``
    the job was handed to a worker.
``done``
    the job reached a terminal state (``ok`` records success/failure);
    the result itself lives in the store, never in the journal.
``interrupted``
    the job was salvaged during a drain — terminal, nothing to redo.

On startup the daemon replays the journal: keys whose last transition
is non-terminal are *orphans* and get re-enqueued (already-completed
keys are naturally served from the store by the normal cache check, so
replay never re-executes finished work).  The log is then compacted to
empty — the orphans are re-journalled as fresh ``submitted`` records
by the daemon's ordinary enqueue path.

Torn tails (a partial record at EOF, the signature of a crash mid-
append) are detected and truncated; checksum-corrupt records mid-file
are skipped with a :class:`JournalIntegrityWarning`, mirroring the
cache's quarantine behaviour.  Durability is tunable::

    --journal-sync always    fsync after every append (crash = lose 0)
    --journal-sync batch     fsync every N appends + on close (default)
    --journal-sync off       flush to the OS only, never fsync
    --journal-sync disabled  no journal at all

The journal is daemon-side bookkeeping only — nothing on the
simulation hot path touches it.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import threading
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "JobJournal",
    "JournalIntegrityWarning",
    "JournalReplay",
    "SYNC_POLICIES",
    "TERMINAL_EVENTS",
]

_MAGIC = b"RPJ1\n"                     # journal sibling of the cache's RPRC
_LEN = struct.Struct(">I")
_DIGEST_LEN = 32                       # sha256
_HEADER_LEN = len(_MAGIC) + _LEN.size + _DIGEST_LEN
_MAX_RECORD = 16 * 2 ** 20             # sanity bound on one record

SYNC_POLICIES = ("always", "batch", "off")
EVENTS = ("submitted", "started", "done", "interrupted")
TERMINAL_EVENTS = frozenset({"done", "interrupted"})


class JournalIntegrityWarning(UserWarning):
    """A journal record failed validation and was skipped."""


@dataclass
class JournalReplay:
    """What :meth:`JobJournal.replay` recovered from disk."""

    records: int = 0                   # valid records read
    corrupt: int = 0                   # checksum/decode failures skipped
    torn: bool = False                 # partial record truncated at EOF
    valid_bytes: int = 0               # offset of the last good record end
    orphans: List[dict] = field(default_factory=list)
    completed: int = 0                 # keys whose last event was done
    interrupted: int = 0               # keys salvaged by a drain

    @property
    def recovered(self) -> int:
        return len(self.orphans)


def _frame(payload: bytes) -> bytes:
    return (_MAGIC + _LEN.pack(len(payload))
            + hashlib.sha256(payload).digest() + payload)


class JobJournal:
    """Append-only, checksummed journal of job lifecycle transitions.

    Thread-safe: the daemon appends from both the event loop and the
    executor thread.  Appends are framed exactly like cache entries
    (magic + length + SHA-256 + payload) so torn and corrupt records
    are detectable on replay.
    """

    def __init__(self, path: str, sync: str = "batch",
                 batch_every: int = 32):
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"journal sync must be one of {SYNC_POLICIES}, "
                f"got {sync!r}")
        self.path = os.fspath(path)
        self.sync = sync
        self.batch_every = max(1, int(batch_every))
        self.appended = 0
        self.fsyncs = 0
        self._lock = threading.Lock()
        self._fh: Optional[io.BufferedWriter] = None
        self._since_sync = 0

    # -- write side -----------------------------------------------------------

    def _ensure_open(self) -> io.BufferedWriter:
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, event: str, key: str, **fields) -> None:
        """Journal one transition; durability per the sync policy."""
        if event not in EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        record = {"event": event, "key": key}
        record.update(fields)
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")).encode("utf-8")
        with self._lock:
            fh = self._ensure_open()
            fh.write(_frame(payload))
            fh.flush()
            self.appended += 1
            self._since_sync += 1
            if self.sync == "always" or (
                    self.sync == "batch"
                    and self._since_sync >= self.batch_every):
                os.fsync(fh.fileno())
                self.fsyncs += 1
                self._since_sync = 0

    def reset(self) -> None:
        """Truncate the journal to empty (post-replay compaction, or a
        clean drain where the store already holds every result)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "wb"):
                pass
            self._since_sync = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is None:
                return
            self._fh.flush()
            if self.sync != "off":
                os.fsync(self._fh.fileno())
                self.fsyncs += 1
            self._fh.close()
            self._fh = None
            self._since_sync = 0

    # -- read side ------------------------------------------------------------

    def replay(self, truncate_torn: bool = True) -> JournalReplay:
        """Read the journal back; classify every key's final state.

        A torn tail (partial record at EOF — the signature of a crash
        mid-append) is truncated in place when ``truncate_torn`` so the
        next append lands on a clean frame boundary.  A mid-file record
        whose digest does not match its payload is skipped with a
        :class:`JournalIntegrityWarning` — the framing makes the *next*
        record recoverable, exactly like the cache quarantining one bad
        entry without poisoning the store.
        """
        out = JournalReplay()
        last: Dict[str, dict] = {}     # key -> last record seen
        first_submit: Dict[str, dict] = {}
        try:
            with open(self.path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            return out

        off = 0
        while off < len(blob):
            header = blob[off:off + _HEADER_LEN]
            if len(header) < _HEADER_LEN:
                out.torn = True
                break
            if not header.startswith(_MAGIC):
                # framing lost: nothing after this offset can be
                # trusted, treat the remainder as a torn tail
                out.torn = True
                break
            (length,) = _LEN.unpack(
                header[len(_MAGIC):len(_MAGIC) + _LEN.size])
            if length > _MAX_RECORD:
                out.torn = True
                break
            digest = header[len(_MAGIC) + _LEN.size:]
            payload = blob[off + _HEADER_LEN:off + _HEADER_LEN + length]
            if len(payload) < length:
                out.torn = True
                break
            next_off = off + _HEADER_LEN + length
            if hashlib.sha256(payload).digest() != digest:
                out.corrupt += 1
                warnings.warn(
                    f"journal record at offset {off} failed its "
                    f"checksum and was skipped ({self.path})",
                    JournalIntegrityWarning, stacklevel=2)
                off = next_off
                out.valid_bytes = next_off
                continue
            try:
                record = json.loads(payload.decode("utf-8"))
                key = record["key"]
                event = record["event"]
            except (ValueError, KeyError, UnicodeDecodeError):
                out.corrupt += 1
                warnings.warn(
                    f"journal record at offset {off} did not decode "
                    f"and was skipped ({self.path})",
                    JournalIntegrityWarning, stacklevel=2)
                off = next_off
                out.valid_bytes = next_off
                continue
            out.records += 1
            out.valid_bytes = next_off
            last[key] = record
            if event == "submitted" and key not in first_submit:
                first_submit[key] = record
            off = next_off

        if out.torn and truncate_torn:
            with self._lock:
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
                with open(self.path, "r+b") as fh:
                    fh.truncate(out.valid_bytes)

        for key, record in last.items():
            event = record["event"]
            if event == "done":
                out.completed += 1
            elif event == "interrupted":
                out.interrupted += 1
            else:                       # submitted / started: orphaned
                submit = first_submit.get(key)
                if submit is not None and "spec" in submit:
                    out.orphans.append(submit)
                else:
                    # a started record whose submitted record was lost
                    # to corruption: nothing to reconstruct from
                    out.corrupt += 1
                    warnings.warn(
                        f"orphaned job {key[:12]} has no intact "
                        f"submitted record; cannot recover it "
                        f"({self.path})",
                        JournalIntegrityWarning, stacklevel=2)
        return out
