"""Wire protocol for the simulation service.

Everything on the wire is **newline-delimited JSON**: a client sends
one request object per line; the daemon answers with one response line,
or — for streaming submissions — a sequence of event lines terminated
by a ``batch-done`` event.  The same JSON bodies ride over the minimal
HTTP adapter (``POST /submit`` etc.), so both transports share one
vocabulary.

Requests (``op`` selects the verb)::

    {"op": "ping"}
    {"op": "status"}
    {"op": "cache-stats"}
    {"op": "shutdown", "drain": true}
    {"op": "submit", "client": "bench-1", "specs": [SPEC, ...],
     "stream": false, "encoding": "pickle"}

Spec objects name what :class:`~repro.exec.specs.RunSpec` names: mix
(Table III name or explicit ``{name, gpu_app, cpu_apps}``), policy,
scale, seed, and an optional explicit config.  Configs and results are
arbitrary Python object trees (dataclasses holding numpy scalars), so
their lossless wire form is a base64 pickle — that is what makes
daemon-routed results *bit-identical* to local ``run_many`` output.
``encoding: "json"`` trades fidelity for a language-neutral rendering
(``dataclasses.asdict`` with tuples as lists), for non-Python clients
that only need the metric fields.

Outcome objects mirror :class:`~repro.exec.executor.RunOutcome` minus
the spec (the client already has it — outcomes align with submission
order)::

    {"index": 0, "label": "M7/throtcpuprio@test#1", "ok": true,
     "source": "disk", "elapsed": 0.0, "attempts": 1,
     "error": null, "result": {"pickle": "..."}}
"""

from __future__ import annotations

import base64
import json
import pickle
from typing import TYPE_CHECKING, Optional

from repro.exec.specs import RunSpec
from repro.mixes import Mix

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.executor import RunOutcome

#: protocol revision, echoed by ``ping``/``status`` so clients can
#: detect a daemon built from different source; v2 adds structured
#: refusal codes (``overloaded`` with ``retry_after``, ``draining``,
#: ``protocol_error``) and the per-request ``deadline`` field
PROTOCOL_VERSION = 2

#: a request/response line larger than this is refused with a
#: structured ``protocol_error`` reply and a closed connection — the
#: daemon's stream reader is bounded to this (``--max-frame``), so an
#: abusive frame can never buffer without limit (a paper-scale
#: RunResult pickles to well under a megabyte)
MAX_LINE_BYTES = 8 * 1024 * 1024

#: machine-readable refusal codes carried in error responses
CODE_PROTOCOL_ERROR = "protocol_error"
CODE_OVERLOADED = "overloaded"
CODE_DRAINING = "draining"

ENCODINGS = ("pickle", "json")


class ProtocolError(ValueError):
    """Malformed request/response: bad JSON, unknown op, bad spec."""


# -- framing -----------------------------------------------------------------

def dump_line(obj: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def load_line(line: bytes) -> dict:
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise ProtocolError(f"bad JSON line: {e}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("protocol line must be a JSON object")
    return obj


# -- opaque Python payloads (configs, results) -------------------------------

def _to_b64(obj) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _from_b64(s: str):
    return pickle.loads(base64.b64decode(s.encode("ascii")))


def _jsonable(obj):
    """Best-effort JSON rendering of a result tree (tuples -> lists,
    dict keys -> str); used by ``encoding: "json"`` only."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


# -- specs -------------------------------------------------------------------

def spec_to_wire(spec: RunSpec) -> dict:
    if isinstance(spec.mix, str):
        mix_wire = spec.mix
    else:
        mix_wire = {"name": spec.mix.name, "gpu_app": spec.mix.gpu_app,
                    "cpu_apps": list(spec.mix.cpu_apps)}
    wire = {"mix": mix_wire, "policy": spec.policy,
            "scale": spec.scale, "seed": spec.seed}
    if spec.cfg is not None:
        wire["cfg"] = {"pickle": _to_b64(spec.cfg)}
    return wire


def spec_from_wire(wire: dict) -> RunSpec:
    if not isinstance(wire, dict) or "mix" not in wire:
        raise ProtocolError(f"bad spec object: {wire!r}")
    raw_mix = wire["mix"]
    if isinstance(raw_mix, str):
        # RunSpec resolves names lazily; resolve eagerly here so a typo
        # is refused at the protocol boundary, not charged admission
        # and shipped to a worker
        from repro.mixes import mix as mix_by_name
        try:
            mix_by_name(raw_mix)
        except KeyError as e:
            raise ProtocolError(f"unknown mix: {e}") from None
        mix = raw_mix
    elif isinstance(raw_mix, dict):
        try:
            mix = Mix(raw_mix["name"], raw_mix.get("gpu_app"),
                      tuple(raw_mix.get("cpu_apps", ())))
        except (KeyError, TypeError, ValueError) as e:
            raise ProtocolError(f"bad mix object: {e}") from None
    else:
        raise ProtocolError(f"bad mix field: {raw_mix!r}")
    cfg = None
    if wire.get("cfg") is not None:
        try:
            cfg = _from_b64(wire["cfg"]["pickle"])
        except Exception as e:
            raise ProtocolError(f"bad cfg payload: {e}") from None
    try:
        return RunSpec(mix=mix, policy=wire.get("policy", "baseline"),
                       scale=wire.get("scale", "test"),
                       seed=int(wire.get("seed", 1)), cfg=cfg)
    except Exception as e:                  # unknown mix name, bad seed
        raise ProtocolError(f"bad spec: {e}") from None


# -- results / outcomes ------------------------------------------------------

def encode_result(result, encoding: str = "pickle") -> Optional[dict]:
    if result is None:
        return None
    if encoding == "pickle":
        return {"pickle": _to_b64(result)}
    if encoding == "json":
        from dataclasses import asdict
        return {"json": _jsonable(asdict(result))}
    raise ProtocolError(f"unknown encoding {encoding!r}")


def decode_result(wire: Optional[dict]):
    """Inverse of :func:`encode_result`; json-encoded results come back
    as plain dicts (fidelity was already traded away at encode time)."""
    if wire is None:
        return None
    if "pickle" in wire:
        return _from_b64(wire["pickle"])
    if "json" in wire:
        return wire["json"]
    raise ProtocolError(f"bad result payload: {list(wire)}")


def outcome_to_wire(index: int, outcome: "RunOutcome",
                    encoding: str = "pickle") -> dict:
    return {
        "index": index,
        "label": outcome.spec.label,
        "ok": outcome.ok,
        "source": outcome.source,
        "elapsed": outcome.elapsed,
        "attempts": outcome.attempts,
        "error": outcome.error,
        "result": encode_result(outcome.result, encoding),
    }


def outcome_from_wire(wire: dict, spec: RunSpec) -> "RunOutcome":
    from repro.exec.executor import RunOutcome
    return RunOutcome(spec=spec,
                      result=decode_result(wire.get("result")),
                      error=wire.get("error"),
                      elapsed=float(wire.get("elapsed", 0.0)),
                      source=wire.get("source", "run"),
                      attempts=int(wire.get("attempts", 1)))


def error_response(message: str, code: Optional[str] = None,
                   **extra) -> dict:
    """A refusal line.  ``code`` gives clients something machine-
    readable to branch on (``overloaded`` refusals additionally carry a
    ``retry_after`` hint in seconds)."""
    resp = {"ok": False, "error": message}
    if code is not None:
        resp["code"] = code
    resp.update(extra)
    return resp
