"""Metric primitives: counters, gauges, fixed-bucket log2 histograms.

These are the shared instruments behind both the span tracer
(:mod:`repro.spans`) and the process-wide operational registry
(:mod:`repro.metrics.registry`).  The :class:`Histogram` and
:class:`Gauge` were born in ``repro.spans.histogram`` (which still
re-exports them for back-compat); they moved here so the serving stack
can use the same primitives without importing the tracing layer.

A :class:`Histogram` is 64 power-of-two buckets plus a zero bucket:
value ``v`` lands in bucket ``v.bit_length()``, so bucket ``i`` (for
``i >= 1``) covers ``[2**(i-1), 2**i - 1]``.  Recording is two integer
operations — cheap enough to sit on the always-on LLC hot path (the
per-side round-trip aggregates in :class:`repro.mem.llc.SharedLLC`)
as well as behind the sampled span tracer.

Percentiles are *bucket upper bounds*: ``percentile(p)`` returns the
upper edge of the first bucket whose cumulative count reaches ``p`` %
of the samples (clamped to the observed max), so the reported
p50/p95/p99 are guaranteed upper bounds on the true order statistics
(never under-reports a tail).
Histograms merge by bucket-wise addition, which is associative and
commutative — shard per channel/worker/process, merge at harvest; the
``to_dict``/``from_dict`` pair gives every instrument a JSON-able wire
form so worker processes can ship deltas back over pipes.
"""

from __future__ import annotations

#: bucket count: bucket 0 holds zeros, bucket i holds bit_length == i;
#: 64 buckets cover every int64 tick delta the simulator can produce
N_BUCKETS = 65


class Counter:
    """A monotonically increasing count (jobs done, cache hits...).

    The fast path is one attribute add under the GIL — callers that
    care hold the child object and call :meth:`inc` directly, paying
    no registry lookup per increment.
    """

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> "Counter":
        self.value += other.value
        return self

    def to_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, data: dict) -> "Counter":
        out = cls()
        out.value = int(data.get("value", 0))
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self.value == other.value

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Histogram:
    """Log2-bucketed distribution of non-negative integer samples."""

    __slots__ = ("counts", "n", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * N_BUCKETS
        self.n = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self.counts[value.bit_length()] += 1
        self.n += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @staticmethod
    def bucket_upper(index: int) -> int:
        """Inclusive upper edge of bucket ``index``."""
        return 0 if index == 0 else (1 << index) - 1

    def percentile(self, p: float) -> int:
        """Upper bound on the ``p``-th percentile (``p`` in [0, 100]).

        The bucket upper edge, clamped to the observed min/max (still a
        valid upper bound, and the report never shows p95 > max).
        Edge cases are pinned by ``tests/spans/test_histogram.py``:
        ``percentile(0)`` is exactly the observed min (not the first
        bucket's upper edge, which can overshoot), ``percentile(100)``
        is exactly the observed max, an empty histogram returns 0 for
        every ``p`` (matching the 0 min/max that :meth:`summary`
        reports), and values outside [0, 100] raise ``ValueError``.
        Monotone in ``p``: ``percentile(a) <= percentile(b)`` whenever
        ``a <= b``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile p={p!r} outside [0, 100]")
        if self.n == 0:
            return 0
        if p == 0:
            # the 0th percentile is the minimum; the generic bucket walk
            # would return the first non-empty bucket's *upper* edge,
            # which overshoots whenever min is not a bucket boundary
            return self.min
        need = p / 100.0 * self.n
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            # need > 0 here (p > 0, n > 0), so cum >= need implies the
            # bucket walk has passed at least one sample
            if cum >= need:
                return min(self.bucket_upper(i), self.max)
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (bucket-wise add); returns self."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.n += other.n
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        out = Histogram()
        out.merge(self)
        return out

    def summary(self) -> dict[str, float]:
        """Scalar digest: n, mean, p50/p95/p99, min/max."""
        return {"n": self.n, "mean": self.mean,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99),
                "min": self.min if self.min is not None else 0,
                "max": self.max if self.max is not None else 0}

    def to_dict(self) -> dict:
        """JSON-able wire form; sparse (only non-empty buckets)."""
        return {"counts": {str(i): c for i, c in enumerate(self.counts)
                           if c},
                "n": self.n, "total": self.total,
                "min": self.min, "max": self.max}

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        out = cls()
        for i, c in (data.get("counts") or {}).items():
            out.counts[int(i)] = int(c)
        out.n = int(data.get("n", 0))
        out.total = int(data.get("total", 0))
        out.min = data.get("min")
        out.max = data.get("max")
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.counts == other.counts and self.n == other.n
                and self.total == other.total and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:
        return (f"Histogram(n={self.n}, mean={self.mean:.1f}, "
                f"p95={self.percentile(95)})")


class Gauge:
    """An occupancy level: last sampled value plus its distribution.

    Components call :meth:`record` with the *current* level (MSHR fill,
    a bank's queue depth, ring injection backlog, the daemon's run
    queue) whenever something touches them, so the distribution is
    request-weighted — what a request actually saw, the
    queueing-relevant view.
    """

    __slots__ = ("name", "last", "hist")

    def __init__(self, name: str = ""):
        self.name = name
        self.last = 0
        self.hist = Histogram()

    def record(self, value: int) -> None:
        self.last = value
        self.hist.record(value)

    def set(self, value: int) -> None:
        """Alias for :meth:`record` (registry/Prometheus idiom)."""
        self.record(value)

    def merge(self, other: "Gauge") -> "Gauge":
        """Fold ``other`` in: distributions add, ``last`` follows the
        merged-in side whenever it actually observed something."""
        self.hist.merge(other.hist)
        if other.hist.n:
            self.last = other.last
        return self

    def summary(self) -> dict[str, float]:
        out = self.hist.summary()
        out["last"] = self.last
        return out

    def to_dict(self) -> dict:
        return {"last": self.last, "hist": self.hist.to_dict()}

    @classmethod
    def from_dict(cls, data: dict, name: str = "") -> "Gauge":
        out = cls(name)
        out.last = data.get("last", 0)
        out.hist = Histogram.from_dict(data.get("hist") or {})
        return out

    def __repr__(self) -> str:
        return f"Gauge({self.name}: last={self.last}, {self.hist!r})"
