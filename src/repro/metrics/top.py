"""``python -m repro top`` — a live terminal view of a running daemon.

Polls ``GET /metrics`` (Prometheus text) and ``GET /healthz`` (JSON)
over whatever rendezvous the daemon listens on — the Unix socket works
because the daemon sniffs HTTP on every connection, so no TCP listener
is required — and renders a compact dashboard: liveness, job flow,
cache effectiveness, admission-gate state, and request latency
percentiles recovered from the histogram buckets.

``--once`` prints a single frame and exits (scripts, smoke tests);
otherwise the view refreshes every ``--interval`` seconds until
Ctrl-C.  The Prometheus parser here is also the reference parser the
metrics tests use — it understands exactly what
:meth:`repro.metrics.registry.MetricsRegistry.render` emits.
"""

from __future__ import annotations

import json
import socket
import sys
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["fetch", "hist_quantile", "parse_prometheus", "render_frame",
           "run_top", "sample_value"]


def _parse_address(address: str):
    """``host:port`` -> TCP tuple, anything else -> unix socket path
    (mirrors :mod:`repro.service.client`)."""
    if ":" in address:
        host, _, port = address.rpartition(":")
        if port.isdigit():
            return (host or "127.0.0.1", int(port))
    return address


def fetch(address: str, path: str,
          timeout: float = 5.0) -> Tuple[int, bytes]:
    """One ``GET path`` against the daemon; returns (status, body).

    Speaks just enough HTTP/1.1 for the daemon's adapter: the daemon
    always sends ``Connection: close``, so the body is read to EOF.
    """
    addr = _parse_address(address)
    if isinstance(addr, tuple):
        sock = socket.create_connection(addr, timeout=timeout)
    else:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(addr)
        except OSError:
            sock.close()
            raise
    try:
        sock.sendall((f"GET {path} HTTP/1.1\r\nHost: repro\r\n"
                      "Connection: close\r\n\r\n").encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    finally:
        sock.close()
    data = b"".join(chunks)
    head, _, body = data.partition(b"\r\n\r\n")
    try:
        status = int(head.split(None, 2)[1])
    except (IndexError, ValueError):
        raise OSError(f"bad HTTP response from {address!r}")
    return status, body


# -- Prometheus text parsing --------------------------------------------------

def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    for part in raw.split(","):
        if not part:
            continue
        name, _, value = part.partition("=")
        labels[name.strip()] = value.strip().strip('"')
    return labels


def parse_prometheus(text: str) -> Dict[str, dict]:
    """Parse exposition text into ``{family: {help, type, samples}}``.

    ``samples`` is a list of ``(sample_name, labels_dict, value)`` —
    histogram ``_bucket``/``_sum``/``_count`` series stay under their
    family name, exactly inverse to
    :meth:`~repro.metrics.registry.MetricsRegistry.render`.
    """
    families: Dict[str, dict] = {}

    def family(name: str) -> dict:
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                base = name[:-len(suffix)]
                break
        return families.setdefault(
            base, {"help": "", "type": "untyped", "samples": []})

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            family(name)["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            raw_labels, _, value = rest.rpartition("} ")
            labels = _parse_labels(raw_labels)
        else:
            name, _, value = line.rpartition(" ")
            labels = {}
        try:
            num = float(value)
        except ValueError:
            continue
        family(name)["samples"].append((name, labels, num))
    return families


def sample_value(families: Dict[str, dict], name: str,
                 default: float = 0.0, **labels) -> float:
    """Sum of a family's plain samples matching the given labels."""
    fam = families.get(name)
    if fam is None:
        return default
    total, seen = 0.0, False
    for sample, lab, value in fam["samples"]:
        if sample != name:
            continue                   # histogram series
        if all(lab.get(k) == v for k, v in labels.items()):
            total += value
            seen = True
    return total if seen else default


def hist_quantile(families: Dict[str, dict], name: str, q: float,
                  **labels) -> Optional[float]:
    """Quantile estimate from cumulative ``_bucket`` samples (the
    bucket upper edge at which the cumulative count crosses ``q``)."""
    fam = families.get(name)
    if fam is None:
        return None
    buckets: List[Tuple[float, float]] = []
    for sample, lab, value in fam["samples"]:
        if sample != name + "_bucket":
            continue
        if not all(lab.get(k) == v for k, v in labels.items()):
            continue
        le = lab.get("le", "+Inf")
        edge = float("inf") if le == "+Inf" else float(le)
        buckets.append((edge, value))
    if not buckets:
        return None
    buckets.sort()
    total = buckets[-1][1]
    if total <= 0:
        return None
    want = q * total
    for edge, cum in buckets:
        if cum >= want:
            return edge
    return buckets[-1][0]              # pragma: no cover


# -- rendering ----------------------------------------------------------------

def _fmt_ns(ns: Optional[float]) -> str:
    if ns is None:
        return "-"
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.1f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.1f}us"
    return f"{ns:.0f}ns"


def render_frame(families: Dict[str, dict], health: dict) -> str:
    """One dashboard frame from a /metrics parse and a /healthz body."""
    pool = health.get("pool") or {}
    state = "DRAINING" if health.get("draining") else (
        "ok" if health.get("ok") else "DEGRADED")
    lines = [
        f"repro service  pid {health.get('pid', '?')}  "
        f"uptime {health.get('uptime', 0):.0f}s  [{state}]",
        f"pool   {pool.get('alive', '?')}/{pool.get('size', '?')} alive"
        f"  {pool.get('busy', 0)} busy"
        f"  {pool.get('recycled', 0)} recycled"
        f"  queue {health.get('queue_depth', 0)}",
    ]

    def v(name: str, **labels) -> int:
        return int(sample_value(families, name, **labels))

    queued = v("repro_jobs_queued_total")
    done_ok = v("repro_jobs_done_total", ok="true")
    done_fail = v("repro_jobs_done_total", ok="false")
    lines.append(
        f"jobs   {queued} queued  {v('repro_jobs_started_total')} "
        f"started  {done_ok} done  {done_fail} failed  "
        f"{v('repro_jobs_coalesced_total')} coalesced  "
        f"{v('repro_jobs_interrupted_total')} interrupted")
    lines.append(
        f"cache  {v('repro_cache_hits_total', layer='memory')} mem + "
        f"{v('repro_cache_hits_total', layer='disk')} disk hits  "
        f"{v('repro_cache_misses_total')} misses  "
        f"{v('repro_cache_stores_total')} stores  "
        f"{v('repro_jobs_cache_served_total')} served-no-worker")
    w_g = sample_value(families, "repro_gate_w_g_ms")
    lines.append(
        f"gate   W_G {w_g:.0f}ms  N_G {v('repro_gate_n_g')}  "
        f"{v('repro_admission_deferred_total')} deferred")
    p50 = hist_quantile(families, "repro_request_ns", 0.5,
                        transport="socket")
    p99 = hist_quantile(families, "repro_request_ns", 0.99,
                        transport="socket")
    run50 = hist_quantile(families, "repro_worker_run_ns", 0.5)
    lines.append(
        f"lat    request p50 {_fmt_ns(p50)}  p99 {_fmt_ns(p99)}  "
        f"worker-run p50 {_fmt_ns(run50)}")
    drain = health.get("last_drain")
    if drain:
        lines.append(f"drain  last: {json.dumps(drain, sort_keys=True)}")
    return "\n".join(lines)


def run_top(address: Optional[str] = None, interval: float = 2.0,
            once: bool = False, out=None, fetch_fn=None) -> int:
    """The ``python -m repro top`` entry point.

    Degrades gracefully when the daemon disappears mid-scrape or
    between refreshes: the last-seen frame stays on screen under a
    ``STALE`` banner and the view keeps retrying every ``interval``
    until the daemon answers again (or Ctrl-C).  ``fetch_fn`` is an
    injection seam for tests (same signature as :func:`fetch`).
    """
    from repro.service.client import default_address
    address = address or default_address()
    out = out or sys.stdout
    fetch_fn = fetch_fn or fetch
    last_frame: Optional[str] = None
    last_seen = 0.0
    try:
        while True:
            try:
                _, metrics_body = fetch_fn(address, "/metrics")
                _, health_body = fetch_fn(address, "/healthz")
                health = json.loads(health_body.decode("utf-8"))
                frame = render_frame(
                    parse_prometheus(metrics_body.decode("utf-8")),
                    health)
                last_frame, last_seen = frame, time.time()
            except (OSError, ValueError) as e:
                if last_frame is None:
                    frame = f"no daemon at {address!r}: {e}"
                    if once:
                        print(frame, file=out)
                        return 1
                else:
                    age = max(0.0, time.time() - last_seen)
                    frame = (f"[STALE {age:.0f}s] daemon unreachable "
                             f"at {address!r}: {e} — retrying; "
                             f"last-seen data below\n{last_frame}")
            if once:
                print(frame, file=out)
                return 0
            out.write("\x1b[2J\x1b[H" + frame + "\n")
            out.flush()
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
