"""Structured operational log with trace-ID correlation.

Where :mod:`repro.telemetry` records what the *simulated machine* did,
the oplog records what the *serving stack* did: one JSONL record per
operational event (submission received, job queued/started/done,
coalesce attach, worker run, drain summary), every record stamped with
a wall-clock ``ts``, the emitting ``pid``, a severity ``level``, and —
wherever one exists — the ``trace_id`` minted at client submission.

Trace IDs are the federation debugging primitive: the client mints one
per spec (:func:`mint_trace_id`), the wire protocol carries it next to
(never inside) the ``RunSpec`` so cache keys are unperturbed, the
daemon attaches it to the job, the pool worker inherits it for the
``run_start``/``run_done`` records, and coalesced waiters log their own
IDs against the winning execution's.  ``repro.analysis.oplog`` joins
the stream back into per-trace lifecycles.

The global oplog is **disabled until configured** — ``oplog().emit``
on the disabled sentinel is a single attribute check, so library code
logs unconditionally and pays nothing in unconfigured processes.
``python -m repro serve`` configures it (stderr by default,
``--log-file``/``--log-level`` otherwise); worker processes forked
after configuration inherit the open sink, and append-mode line writes
keep concurrent records whole.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import uuid
from typing import Optional, TextIO

__all__ = ["LEVELS", "OpLog", "configure", "disable", "mint_trace_id",
           "oplog"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def mint_trace_id() -> str:
    """A fresh 16-hex-char trace ID (collision-safe per deployment)."""
    return uuid.uuid4().hex[:16]


class OpLog:
    """A JSONL sink with level filtering; see the module docstring."""

    def __init__(self, stream: Optional[TextIO] = None,
                 path: Optional[str] = None, level: str = "info"):
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r} "
                             f"(one of {sorted(LEVELS)})")
        self.level = level
        self._threshold = LEVELS[level]
        self._lock = threading.Lock()
        self._owns_stream = False
        self.path = path
        if path is not None:
            # append mode: forked workers inherit the handle and their
            # line writes land at the end without clobbering the parent
            self._stream = open(path, "a", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = stream if stream is not None else sys.stderr
        self.emitted = 0
        self.enabled = True

    def emit(self, event: str, level: str = "info",
             trace_id: Optional[str] = None, **fields) -> None:
        """Write one record; silently dropped below the level threshold."""
        if not self.enabled or LEVELS.get(level, 20) < self._threshold:
            return
        rec = {"ts": round(time.time(), 6), "level": level,
               "event": event, "pid": os.getpid()}
        if trace_id is not None:
            rec["trace_id"] = trace_id
        rec.update(fields)
        line = json.dumps(rec, separators=(",", ":"),
                          default=str) + "\n"
        with self._lock:
            try:
                self._stream.write(line)
                self._stream.flush()
            except (OSError, ValueError):
                return                # sink gone: drop, never raise
            self.emitted += 1

    def close(self) -> None:
        self.enabled = False
        if self._owns_stream:
            try:
                self._stream.close()
            except OSError:          # pragma: no cover
                pass


class _Disabled:
    """The unconfigured sentinel: every emit is a cheap no-op."""

    enabled = False
    path = None
    emitted = 0

    def emit(self, event: str, level: str = "info",
             trace_id: Optional[str] = None, **fields) -> None:
        return

    def close(self) -> None:
        return


_DISABLED = _Disabled()
_global: object = _DISABLED


def oplog():
    """The process-wide oplog (the disabled sentinel until
    :func:`configure` runs)."""
    return _global


def configure(path: Optional[str] = None,
              stream: Optional[TextIO] = None,
              level: str = "info") -> OpLog:
    """Install the process-wide oplog and return it.

    ``path`` wins over ``stream``; with neither, records go to stderr.
    Reconfiguring closes the previous instance.
    """
    global _global
    previous = _global
    log = OpLog(stream=stream, path=path, level=level)
    _global = log
    if previous is not _DISABLED:
        previous.close()
    return log


def disable() -> None:
    """Close and remove the process-wide oplog (back to the sentinel)."""
    global _global
    previous = _global
    _global = _DISABLED
    if previous is not _DISABLED:
        previous.close()
