"""repro.metrics — operational observability for the serving stack.

Three layers (see ``docs/observability.md``):

* :mod:`repro.metrics.instruments` — the primitives: :class:`Counter`,
  :class:`Gauge`, and the 65-bucket log2 :class:`Histogram` (promoted
  from ``repro.spans.histogram``, which now re-exports them).
* :mod:`repro.metrics.registry` — the process-wide
  :class:`MetricsRegistry` of labeled instrument families with atomic
  snapshot/merge (worker processes ship deltas over their duplex
  pipes) and Prometheus-text rendering; every layer of the
  serving/executor path — daemon, :class:`~repro.exec.pool.WorkerPool`,
  :func:`~repro.exec.run_many`, :class:`~repro.exec.cache.ResultCache`
  — records into :func:`registry`.
* :mod:`repro.metrics.oplog` — trace-ID-correlated structured JSONL
  operational log; :func:`mint_trace_id` at client submission,
  propagated client → protocol → scheduler → pool worker → execution.

The daemon exposes the registry as ``GET /metrics`` (Prometheus text)
and a liveness digest as ``GET /healthz``; ``python -m repro top``
(:mod:`repro.metrics.top`) renders both live in the terminal, and
:mod:`repro.analysis.oplog` joins operational logs back into per-trace
lifecycles.

Zero-cost when unused: the simulation fast path carries no metrics
hooks at all (the ``metrics_off`` gate in ``scripts/bench_kernel.py
--check`` pins this), the unconfigured oplog is a no-op sentinel, and
instrumented serving results stay bit-identical to local execution.
"""

from repro.metrics.instruments import Counter, Gauge, Histogram
from repro.metrics.oplog import (configure, disable, mint_trace_id,
                                 oplog)
from repro.metrics.registry import (MetricsRegistry, registry,
                                    set_registry, snapshot_delta)


def counter(name: str, help: str = "", **labels):
    """The counter child for ``name`` (+ label values) in the
    process-wide registry.  Resolves through :func:`registry` on every
    call, so it always talks to the *current* registry — callers on a
    hot-ish path should hold the returned child instead."""
    fam = registry().counter(name, help, labels=tuple(sorted(labels)))
    return fam.labels(**labels) if labels else fam


def gauge(name: str, help: str = "", **labels):
    """Like :func:`counter`, for gauges."""
    fam = registry().gauge(name, help, labels=tuple(sorted(labels)))
    return fam.labels(**labels) if labels else fam


def histogram(name: str, help: str = "", **labels):
    """Like :func:`counter`, for histograms."""
    fam = registry().histogram(name, help, labels=tuple(sorted(labels)))
    return fam.labels(**labels) if labels else fam


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "configure", "counter", "disable", "gauge", "histogram",
           "mint_trace_id", "oplog", "registry", "set_registry",
           "snapshot_delta"]
