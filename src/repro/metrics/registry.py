"""Process-wide metrics registry with Prometheus-text rendering.

One :class:`MetricsRegistry` holds named *families* of
:class:`~repro.metrics.instruments.Counter` /
:class:`~repro.metrics.instruments.Gauge` /
:class:`~repro.metrics.instruments.Histogram` instruments; a family
with label names hands out one child instrument per label-value tuple
(``registry.counter("repro_cache_hits_total", labels=("layer",))
.labels(layer="memory").inc()``).

Design constraints, in order:

* **lock-free single-threaded fast path** — callers cache the child
  object once (``self._hits = family.labels(...)``) and every
  increment afterwards is one attribute add under the GIL; the
  registry's own lock is only taken on family/child *creation* and on
  snapshot/render, never per increment;
* **atomic snapshot/merge** — :meth:`MetricsRegistry.snapshot` freezes
  the whole registry into a JSON-able dict under the lock;
  :func:`snapshot_delta` subtracts a previous snapshot (counters and
  histogram buckets are monotone) and :meth:`MetricsRegistry.merge`
  folds a snapshot (or delta) back in.  That is how
  :class:`~repro.exec.pool.WorkerPool` workers ship their metrics over
  the existing duplex pipes for daemon-side aggregation;
* **Prometheus text** — :meth:`MetricsRegistry.render` emits the
  ``text/plain; version=0.0.4`` exposition format the daemon's
  ``GET /metrics`` serves: counters and gauges as single samples,
  histograms as cumulative ``_bucket{le=...}`` series (log2 upper
  edges) plus ``_sum``/``_count``.

The process-wide default lives behind :func:`registry`; everything in
the serving/executor stack records into it so one scrape covers the
daemon, its pool, the executor, and the result cache.
"""

from __future__ import annotations

import json
import re
import threading
from typing import Dict, Iterable, Optional, Tuple

from repro.metrics.instruments import Counter, Gauge, Histogram

__all__ = ["MetricsRegistry", "registry", "set_registry",
           "snapshot_delta"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


def _child_key(values: Tuple[str, ...]) -> str:
    """Stable JSON key for one child's label values (snapshot form)."""
    return json.dumps(list(values), separators=(",", ":"))


class Family:
    """One named metric and its labeled children.

    ``labels(**kv)`` returns the child instrument for that label-value
    combination, creating it on first use; an unlabeled family has a
    single anonymous child reachable through the instrument-forwarding
    helpers (``inc``/``set``/``record``) or ``labels()`` with no
    arguments.
    """

    __slots__ = ("name", "kind", "help", "label_names", "_children",
                 "_lock")

    def __init__(self, name: str, kind: str, help: str = "",
                 label_names: Tuple[str, ...] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        if kind not in _KINDS:
            raise ValueError(f"bad metric kind {kind!r}")
        for ln in label_names:
            if not _LABEL_RE.match(ln):
                raise ValueError(f"bad label name {ln!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "gauge":
            return Gauge(self.name)
        return _KINDS[self.kind]()

    def labels(self, **kv) -> object:
        """The child instrument for these label values (created once).

        Callers on a hot-ish path should hold the returned object and
        talk to it directly — this lookup takes the family lock.
        """
        if set(kv) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(kv))}")
        values = tuple(str(kv[ln]) for ln in self.label_names)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = self._children[values] = self._make_child()
        return child

    # -- anonymous-child forwarding (unlabeled families) ---------------------

    def _solo(self):
        return self.labels()

    def inc(self, n: int = 1) -> None:
        self._solo().inc(n)

    def set(self, value: int) -> None:
        self._solo().set(value)

    def record(self, value: int) -> None:
        self._solo().record(value)

    @property
    def value(self):
        return self._solo().value

    def children(self) -> Dict[Tuple[str, ...], object]:
        with self._lock:
            return dict(self._children)


class MetricsRegistry:
    """A named collection of metric families; see the module docstring."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}

    # -- family accessors (idempotent get-or-create) -------------------------

    def _family(self, name: str, kind: str, help: str,
                labels: Iterable[str]) -> Family:
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = self._families[name] = Family(
                    name, kind, help, tuple(labels))
                return fam
        if fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, "
                f"not {kind}")
        if tuple(labels) and tuple(labels) != fam.label_names:
            raise ValueError(
                f"metric {name!r} already registered with labels "
                f"{fam.label_names}")
        return fam

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Family:
        return self._family(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Iterable[str] = ()) -> Family:
        return self._family(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = ()) -> Family:
        return self._family(name, "histogram", help, labels)

    def get(self, name: str) -> Optional[Family]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> Dict[str, Family]:
        with self._lock:
            return dict(self._families)

    def clear(self) -> None:
        """Drop every family (tests only — cached children go stale)."""
        with self._lock:
            self._families.clear()

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> dict:
        """Freeze the registry into a JSON-able dict.

        ``{name: {kind, help, labels, children: {key: state}}}`` where
        ``key`` is the JSON form of the child's label values and
        ``state`` the instrument's ``to_dict()``.  Taken under the
        registry lock, so the family set is consistent; individual
        int reads are atomic under the GIL.
        """
        out: dict = {}
        for name, fam in self.families().items():
            out[name] = {
                "kind": fam.kind,
                "help": fam.help,
                "labels": list(fam.label_names),
                "children": {
                    _child_key(values): child.to_dict()
                    for values, child in fam.children().items()
                },
            }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot (or a :func:`snapshot_delta`) into this
        registry: counters and histogram buckets add, gauge
        distributions add with ``last`` following the merged-in side.
        Unknown families are created on the fly, so a worker process
        can define instruments its parent never touched.
        """
        for name, fam_snap in snapshot.items():
            kind = fam_snap.get("kind", "counter")
            fam = self._family(name, kind, fam_snap.get("help", ""),
                               tuple(fam_snap.get("labels", ())))
            cls = _KINDS[kind]
            for key, state in (fam_snap.get("children") or {}).items():
                values = tuple(json.loads(key))
                child = fam.labels(**dict(zip(fam.label_names, values)))
                if kind == "gauge":
                    child.merge(Gauge.from_dict(state))
                else:
                    child.merge(cls.from_dict(state))

    # -- Prometheus text exposition ------------------------------------------

    def render(self) -> str:
        """The registry in Prometheus text format (version 0.0.4)."""
        lines: list[str] = []
        for name, fam in sorted(self.families().items()):
            if fam.help:
                lines.append(f"# HELP {name} {_escape_help(fam.help)}")
            ptype = "histogram" if fam.kind == "histogram" else fam.kind
            lines.append(f"# TYPE {name} {ptype}")
            for values, child in sorted(fam.children().items()):
                pairs = list(zip(fam.label_names, values))
                if fam.kind == "counter":
                    lines.append(f"{name}{_labels(pairs)} {child.value}")
                elif fam.kind == "gauge":
                    lines.append(f"{name}{_labels(pairs)} {child.last}")
                else:
                    lines.extend(_render_histogram(name, pairs, child))
        return "\n".join(lines) + ("\n" if lines else "")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(pairs)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _render_histogram(name: str, pairs, hist: Histogram) -> list:
    """Cumulative ``_bucket{le=...}`` series at the non-empty log2
    upper edges, plus the mandatory ``+Inf`` bucket, ``_sum`` and
    ``_count``."""
    lines = []
    cum = 0
    for i, c in enumerate(hist.counts):
        if not c:
            continue
        cum += c
        le = str(Histogram.bucket_upper(i))
        lines.append(f"{name}_bucket{_labels(pairs, ('le', le))} {cum}")
    lines.append(f"{name}_bucket{_labels(pairs, ('le', '+Inf'))} "
                 f"{hist.n}")
    lines.append(f"{name}_sum{_labels(pairs)} {hist.total}")
    lines.append(f"{name}_count{_labels(pairs)} {hist.n}")
    return lines


def snapshot_delta(current: dict, previous: dict) -> dict:
    """``current - previous`` for two :meth:`MetricsRegistry.snapshot`
    dicts taken from the same registry (counters and histogram buckets
    are monotone, so the subtraction is exact).  Children or families
    absent from ``previous`` pass through whole; gauges keep their
    ``last`` and subtract only the distribution.  Empty deltas are
    dropped, so a quiet interval ships almost no bytes over the pipe.
    """
    out: dict = {}
    for name, fam in current.items():
        prev_fam = previous.get(name)
        prev_children = (prev_fam or {}).get("children") or {}
        children = {}
        for key, state in (fam.get("children") or {}).items():
            prev = prev_children.get(key)
            if prev is None:
                if _non_empty(fam["kind"], state):
                    children[key] = state
                continue
            delta = _state_delta(fam["kind"], state, prev)
            if delta is not None:
                children[key] = delta
        if children:
            out[name] = {"kind": fam["kind"], "help": fam.get("help", ""),
                         "labels": fam.get("labels", []),
                         "children": children}
    return out


def _non_empty(kind: str, state: dict) -> bool:
    if kind == "counter":
        return bool(state.get("value"))
    if kind == "gauge":
        return bool((state.get("hist") or {}).get("n"))
    return bool(state.get("n"))


def _state_delta(kind: str, cur: dict, prev: dict) -> Optional[dict]:
    if kind == "counter":
        d = cur.get("value", 0) - prev.get("value", 0)
        return {"value": d} if d else None
    if kind == "gauge":
        hist = _hist_delta(cur.get("hist") or {}, prev.get("hist") or {})
        if hist is None:
            return None
        return {"last": cur.get("last", 0), "hist": hist}
    return _hist_delta(cur, prev)


def _hist_delta(cur: dict, prev: dict) -> Optional[dict]:
    dn = cur.get("n", 0) - prev.get("n", 0)
    if not dn:
        return None
    prev_counts = prev.get("counts") or {}
    counts = {}
    for i, c in (cur.get("counts") or {}).items():
        d = c - prev_counts.get(i, 0)
        if d:
            counts[i] = d
    return {"counts": counts, "n": dn,
            "total": cur.get("total", 0) - prev.get("total", 0),
            "min": cur.get("min"), "max": cur.get("max")}


# -- the process-wide default registry ----------------------------------------

_global = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry every instrumented layer records into."""
    return _global


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one.

    Layers that cached child instruments keep recording into the old
    registry — swap *before* exercising the instrumented code path.
    """
    global _global
    old = _global
    _global = reg
    return old
