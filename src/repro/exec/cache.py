"""Persistent result cache for simulation runs.

Two layers back :func:`repro.exec.run_cached` / :func:`repro.exec.run_many`:

* an in-process **memory** layer (a dict of pristine ``RunResult``s), and
* an on-disk **pickle** layer under ``.repro_cache/`` that survives
  between invocations, so a bench session only pays for runs no previous
  session has done.

Keys are ``RunSpec.key(salt)`` where the salt folds in a digest of the
package's own source tree (:func:`code_salt`): editing any ``repro``
module silently invalidates every persisted result, so a stale cache can
never masquerade as fresh simulation output.  Both layers hand out
defensive deep copies — callers may mutate what they get back without
corrupting another figure's normalisation baseline.

Disk integrity: every cache file is ``magic + sha256(payload) +
payload`` and writes are atomic (``mkstemp`` + ``os.replace``), so a
reader never sees a partial write, and a torn or bit-rotted file fails
its content checksum instead of half-loading.  A file that fails the
check is *quarantined* (renamed to ``*.corrupt``), a
:class:`CacheIntegrityWarning` is issued, and the lookup reports a miss
— the result is recomputed and re-stored.

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default ``.repro_cache``)
* ``REPRO_CACHE=0`` — disable the disk layer (memory layer stays)
* ``REPRO_CACHE_SALT`` — override the code-version salt (testing)
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import warnings
from contextlib import contextmanager
from copy import deepcopy
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

try:
    import fcntl
except ImportError:                    # pragma: no cover - non-POSIX
    fcntl = None

from repro import metrics as _metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.specs import RunSpec
    from repro.sim.metrics import RunResult

DEFAULT_DIR = ".repro_cache"
DIR_ENV = "REPRO_CACHE_DIR"
DISABLE_ENV = "REPRO_CACHE"
SALT_ENV = "REPRO_CACHE_SALT"

#: bump to invalidate every existing cache file regardless of source state
_FORMAT = 2

#: on-disk header: magic (format v2) + 32-byte SHA-256 of the payload
_MAGIC = b"RPRC\x02\n"
_DIGEST_LEN = 32

_OFF_VALUES = ("0", "off", "no", "false")


class CacheIntegrityWarning(UserWarning):
    """A persisted result failed its content checksum and was
    quarantined (renamed to ``*.corrupt``) instead of half-loaded."""


def _source_digest() -> str:
    """SHA-256 over the package's own source files (path + content)."""
    import repro
    root = os.path.dirname(os.path.abspath(repro.__file__))
    h = hashlib.sha256()
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            h.update(rel.encode("utf-8"))
            try:
                with open(os.path.join(dirpath, name), "rb") as fh:
                    h.update(fh.read())
            except OSError:
                continue
    return h.hexdigest()


_source_digest_memo: Optional[str] = None


def code_salt() -> str:
    """The code-version salt mixed into every cache key.

    ``REPRO_CACHE_SALT`` overrides it (used by tests to exercise
    invalidation); otherwise it is a digest of the installed source tree,
    computed once per process.
    """
    env = os.environ.get(SALT_ENV)
    if env:
        return env
    global _source_digest_memo
    if _source_digest_memo is None:
        _source_digest_memo = _source_digest()[:16]
    return f"v{_FORMAT}-{_source_digest_memo}"


@dataclass
class CacheStats:
    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0                  # files quarantined on checksum fail
    pruned: int = 0                   # files evicted by prune()


#: file at the store root that accumulates counters across processes —
#: every client of a shared ``.repro_cache/`` folds its deltas in via
#: ``persist_stats()``, so ``cache stats`` reports store-wide totals
STATS_FILE = "stats.json"


class ResultCache:
    """Memory + disk result cache, keyed by ``RunSpec.key(salt)``."""

    def __init__(self, root: Optional[str] = None,
                 salt: Optional[str] = None):
        if root is None:
            root = os.environ.get(DIR_ENV) or DEFAULT_DIR
        self.root = root
        self._salt = salt
        self._memory: dict = {}
        self.stats = CacheStats()
        #: counters already folded into the store's stats.json by a
        #: previous persist_stats() call (so deltas aren't double-counted)
        self._persisted = CacheStats()

    @property
    def salt(self) -> str:
        return self._salt if self._salt is not None else code_salt()

    def disk_enabled(self) -> bool:
        return os.environ.get(DISABLE_ENV, "1").lower() not in _OFF_VALUES

    def key_for(self, spec: "RunSpec") -> str:
        return spec.key(self.salt)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    # -- lookup / store -----------------------------------------------------

    def _quarantine(self, path: str, why: str) -> None:
        """Move a damaged cache file aside and warn — loudly, never
        silently: a half-loaded result would poison every figure that
        normalises against it."""
        self.stats.corrupt += 1
        _metrics.counter("repro_cache_corrupt_total",
                         "Cache files quarantined on checksum "
                         "failure").inc()
        try:
            os.replace(path, path + ".corrupt")
            moved = True
        except OSError:
            moved = False
        warnings.warn(
            f"cache file failed integrity check ({why}): {path}"
            + (" [quarantined as .corrupt]" if moved else ""),
            CacheIntegrityWarning, stacklevel=3)

    def _read_disk(self, path: str):
        """Load one checksummed cache file.

        Returns the unpickled result, or ``None`` (a miss) for a
        missing, stale, or quarantined file.  Torn / bit-rotted files —
        bad magic, short header, digest mismatch — are quarantined with
        a :class:`CacheIntegrityWarning`; checksum-valid files that no
        longer unpickle (schema drift under a pinned salt) are a plain
        miss.
        """
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            return None               # missing: plain miss
        head = len(_MAGIC) + _DIGEST_LEN
        if len(blob) < head or not blob.startswith(_MAGIC):
            self._quarantine(path, "bad header")
            return None
        payload = blob[head:]
        if hashlib.sha256(payload).digest() != blob[len(_MAGIC):head]:
            self._quarantine(path, "checksum mismatch")
            return None
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None               # stale schema: plain miss

    def get(self, spec: "RunSpec") -> Tuple[Optional["RunResult"], str]:
        """Return ``(copy_of_result, source)``; source is ``"memory"``,
        ``"disk"`` or ``"miss"`` (with a ``None`` result)."""
        key = self.key_for(spec)
        hit = self._memory.get(key)
        if hit is not None:
            self.stats.memory_hits += 1
            _metrics.counter("repro_cache_hits_total",
                             "Result-cache hits by layer",
                             layer="memory").inc()
            return deepcopy(hit), "memory"
        if self.disk_enabled():
            result = self._read_disk(self.path_for(key))
            if result is not None:
                self._memory[key] = result
                self.stats.disk_hits += 1
                _metrics.counter("repro_cache_hits_total",
                                 "Result-cache hits by layer",
                                 layer="disk").inc()
                return deepcopy(result), "disk"
        self.stats.misses += 1
        _metrics.counter("repro_cache_misses_total",
                         "Result-cache lookups that missed both "
                         "layers").inc()
        return None, "miss"

    def put(self, spec: "RunSpec", result: "RunResult") -> None:
        key = self.key_for(spec)
        self._memory[key] = deepcopy(result)
        self.stats.stores += 1
        _metrics.counter("repro_cache_stores_total",
                         "Results written into the cache").inc()
        if not self.disk_enabled():
            return
        path = self.path_for(key)
        try:
            payload = pickle.dumps(self._memory[key],
                                   protocol=pickle.HIGHEST_PROTOCOL)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                fh.write(_MAGIC)
                fh.write(hashlib.sha256(payload).digest())
                fh.write(payload)
            os.replace(tmp, path)     # atomic: readers never see partials
        except OSError:
            pass                      # best-effort persistence

    # -- maintenance ---------------------------------------------------------

    def clear_memory(self) -> None:
        self._memory.clear()

    def clear_disk(self) -> int:
        """Delete every cached result file; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith((".pkl", ".tmp", ".corrupt")):
                    try:
                        os.unlink(os.path.join(dirpath, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def disk_usage(self) -> Tuple[int, int]:
        """``(n_files, total_bytes)`` of the persisted layer."""
        files = size = 0
        if not os.path.isdir(self.root):
            return 0, 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".pkl"):
                    files += 1
                    try:
                        size += os.path.getsize(os.path.join(dirpath, name))
                    except OSError:
                        pass
        return files, size

    def entries(self) -> List[Tuple[str, int, float]]:
        """Every persisted result as ``(path, bytes, atime)``.

        ``atime`` is the last access (a disk hit re-reads the file, so
        recently-used entries have fresh atimes even on ``relatime``
        mounts once a day has passed; ``mtime`` is the fallback bound).
        """
        out: List[Tuple[str, int, float]] = []
        if not os.path.isdir(self.root):
            return out
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if not name.endswith(".pkl"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                out.append((path, st.st_size,
                            max(st.st_atime, st.st_mtime)))
        return out

    def prune(self, max_bytes: int) -> Tuple[int, int]:
        """LRU-by-atime eviction: delete least-recently-*used* results
        until the store fits in ``max_bytes``.

        Under many clients the shared store only grows — every distinct
        ``(spec, code-version)`` pair adds a file forever.  Pruning by
        access time keeps the hot set (what clients actually re-query)
        and drops results nobody has touched.  Returns
        ``(files_removed, bytes_removed)``.  Stale debris (``*.tmp``,
        ``*.corrupt``) is always removed first — it serves no lookup.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        removed = freed = 0
        if not os.path.isdir(self.root):
            return 0, 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith((".tmp", ".corrupt")):
                    path = os.path.join(dirpath, name)
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                    except OSError:
                        continue
                    removed += 1
                    freed += size
        entries = self.entries()
        total = sum(size for _p, size, _a in entries)
        entries.sort(key=lambda e: e[2])          # oldest access first
        for path, size, _atime in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
            freed += size
            self.stats.pruned += 1
            _metrics.counter("repro_cache_pruned_total",
                             "Result files evicted by prune()").inc()
        return removed, freed

    # -- store-wide persisted counters ---------------------------------------

    def _stats_path(self) -> str:
        return os.path.join(self.root, STATS_FILE)

    @contextmanager
    def _stats_lock(self):
        """Exclusive ``flock`` on ``stats.json.lock`` for the duration
        of a read-merge-write.

        ``flock`` serialises both across processes and across threads
        (each entry opens its own descriptor, and the lock binds to the
        open file description, not the pid).  Closing the descriptor
        releases the lock.  On platforms without :mod:`fcntl` this is a
        no-op and persist_stats degrades to the old last-writer-wins
        behaviour.
        """
        if fcntl is None:              # pragma: no cover - non-POSIX
            yield
            return
        fd = os.open(self._stats_path() + ".lock",
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            os.close(fd)

    def persisted_stats(self) -> dict:
        """Counters accumulated in the store's ``stats.json`` by every
        process that called :meth:`persist_stats` (zeroes if none)."""
        try:
            with open(self._stats_path(), encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return {k: 0 for k in asdict(CacheStats())}
        return {k: int(data.get(k, 0)) for k in asdict(CacheStats())}

    def persist_stats(self) -> dict:
        """Fold this process's counter deltas into ``stats.json``.

        Called by long-lived owners of a shared store (the service
        daemon on shutdown and periodically, the CLI after batch
        commands).  The read-merge-write runs under
        :meth:`_stats_lock`, so concurrent writers serialise instead of
        losing each other's deltas (pinned by the two-writer race test
        in ``tests/metrics/test_persist_stats.py``); the write itself
        stays atomic-replace, so a crashed writer can tear the lock
        window but never the file.  Returns the merged store-wide
        totals.
        """
        current = asdict(self.stats)
        last = asdict(self._persisted)
        delta = {k: current[k] - last[k] for k in current}
        try:
            os.makedirs(self.root, exist_ok=True)
            with self._stats_lock():
                merged = self.persisted_stats()
                for k, v in delta.items():
                    merged[k] = merged.get(k, 0) + v
                fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(merged, fh, indent=0, sort_keys=True)
                os.replace(tmp, self._stats_path())
            self._persisted = CacheStats(**current)
        except OSError:               # best-effort, like put()
            merged = self.persisted_stats()
            for k, v in delta.items():
                merged[k] = merged.get(k, 0) + v
        return merged
