"""Cross-client in-flight registry: one execution per distinct spec.

``run_many`` already deduplicates *within* one batch (identical specs
collapse onto one ``_Task``).  A long-running service needs the same
guarantee *across* concurrent clients: if client A and client B submit
the same ``RunSpec`` while it is still executing, the second submission
must attach to the first execution instead of launching a duplicate.

:class:`InFlightRegistry` is that map — cache key to an opaque entry
(the daemon stores its job record there) — with an atomic get-or-create
so the claim race between two clients has exactly one winner.  Entries
are removed when the execution completes (the result then lives in the
shared :class:`~repro.exec.cache.ResultCache`, where later submissions
find it as an ordinary hit), so the registry only ever holds work that
is genuinely in flight.

Thread-safe: the daemon touches it from the asyncio loop thread and
the executor thread.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["InFlightRegistry"]


class InFlightRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._entries: Dict[str, object] = {}
        #: submissions that attached to an existing in-flight execution
        #: instead of launching their own (the dedup win, for telemetry)
        self.coalesced = 0

    def claim(self, key: str,
              factory: Callable[[], object]) -> Tuple[object, bool]:
        """Atomic get-or-create: returns ``(entry, created)``.

        ``created=False`` means another client's identical spec is
        already executing — the caller should attach to that entry.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.coalesced += 1
                return entry, False
            entry = factory()
            self._entries[key] = entry
            return entry, True

    def get(self, key: str) -> Optional[object]:
        with self._lock:
            return self._entries.get(key)

    def release(self, key: str) -> Optional[object]:
        """Remove ``key`` (execution finished or abandoned); returns
        the entry, or ``None`` if it was never claimed."""
        with self._lock:
            return self._entries.pop(key, None)

    def keys(self) -> List[str]:
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
