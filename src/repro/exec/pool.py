"""Persistent warm worker pool: pay process spin-up and imports once.

:func:`repro.exec.run_many` historically launched one ``mp.Process``
per attempt: correct (a wedged worker can be killed without breaking
its siblings) but expensive — every batch pays fork/exec, interpreter
start, and a cold ``import repro`` per miss.  A :class:`WorkerPool`
keeps a fixed set of worker processes alive *across* batches:

* **warm start** — each worker imports the simulation stack
  (``repro.sim.runner`` and everything underneath) before reporting
  ready, so the first real job pays zero import cost;
* **per-worker kill** — each worker owns a private duplex pipe, so a
  hung or crashed worker can be terminated and *recycled* (respawned)
  without disturbing in-flight jobs on other workers — the property
  that ruled out ``ProcessPoolExecutor`` in the original executor;
* **constant size** — worker death is detected at ``wait()`` and the
  slot respawned immediately, so capacity never decays under faults.

The pool is the execution substrate of both ``run_many(pool=...)``
(warm batch submission) and the :mod:`repro.service` daemon (jobs
arrive continuously over the socket API).  It is intentionally dumb:
no cache, no retry policy, no ordering — callers own those, the pool
only moves ``(tag, spec)`` to an idle worker and ``(tag, outcome)``
back.

Lifecycle::

    with WorkerPool(2) as pool:          # spawn + warm handshake
        pool.submit("a", spec)           # -> an idle worker
        for ev in pool.wait(timeout=1.0):
            ...                          # PoolEvent(tag, ok, payload, ...)

Workers ignore SIGINT: a Ctrl-C aimed at the parent must not kill the
pool mid-drain — the parent decides (salvage, recycle, or close).
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import signal
import time
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import metrics as _metrics

__all__ = ["PoolEvent", "WorkerPool"]


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _pool_worker(conn) -> None:
    """Worker body: warm-import, handshake, then serve jobs until EOF.

    Every reply is ``("done", tag, (ok, payload, elapsed), delta)``
    where ``delta`` is the worker's metrics-registry change since its
    previous reply (``None`` when nothing moved) — the parent folds it
    into its own registry, so per-worker instruments surface in the
    daemon's ``/metrics`` without any side channel.  Errors travel as
    data (formatted tracebacks), never as a crashed worker — a
    genuinely dead worker is detected by the parent as EOF on the pipe.
    ``None`` is the shutdown sentinel; jobs arrive as ``(tag, spec)``
    or ``(tag, spec, trace_id)``, and the trace ID (when the parent
    configured an oplog before forking) stamps the worker's
    ``run_start``/``run_done`` records.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover
        pass
    # warm start: the whole simulation stack is imported before the
    # ready handshake, so the first job submitted to this worker pays
    # no import cost (this is the cold-start the pool exists to avoid)
    try:
        import repro.sim.runner          # noqa: F401
        import repro.analysis.sweep      # noqa: F401
    except Exception:                    # pragma: no cover
        pass
    try:
        conn.send(("ready", os.getpid()))
    except Exception:                    # pragma: no cover
        return
    jobs = _metrics.counter("repro_worker_jobs_total",
                            "Jobs executed by pool workers")
    run_ns = _metrics.histogram("repro_worker_run_ns",
                                "Per-job wall time inside the worker")
    prev = _metrics.registry().snapshot()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg is None:                  # orderly shutdown
            break
        if len(msg) == 3:
            tag, spec, trace_id = msg
        else:
            tag, spec = msg
            trace_id = None
        _metrics.oplog().emit("run_start", level="debug",
                              trace_id=trace_id, tag=str(tag))
        t0 = time.perf_counter()
        try:
            result = spec.run()
            payload = (True, result, time.perf_counter() - t0)
        except BaseException:
            payload = (False, traceback.format_exc(),
                       time.perf_counter() - t0)
        jobs.inc()
        run_ns.record(int(payload[2] * 1e9))
        _metrics.oplog().emit("run_done", trace_id=trace_id,
                              tag=str(tag), ok=payload[0],
                              elapsed=round(payload[2], 6))
        cur = _metrics.registry().snapshot()
        delta = _metrics.snapshot_delta(cur, prev) or None
        prev = cur
        try:
            conn.send(("done", tag, payload, delta))
        except Exception:
            # result not picklable (or pipe gone): report, don't die
            try:
                conn.send(("done", tag,
                           (False, traceback.format_exc(),
                            time.perf_counter() - t0), None))
            except Exception:            # pragma: no cover
                break
    try:
        conn.close()
    except Exception:                    # pragma: no cover
        pass


@dataclass
class PoolEvent:
    """One completion (or death) surfaced by :meth:`WorkerPool.wait`.

    ``ok=None`` means the worker running ``tag`` died (EOF on its pipe)
    before replying; the slot has already been respawned.
    """

    tag: object
    ok: Optional[bool]
    payload: object = None             # result on ok, traceback on fail
    elapsed: float = 0.0

    @property
    def died(self) -> bool:
        return self.ok is None


class _Worker:
    __slots__ = ("proc", "conn", "tag", "ready")

    def __init__(self):
        self.proc = None
        self.conn = None
        self.tag = None                # currently-running job tag
        self.ready = False


class WorkerPool:
    """A fixed-size pool of persistent, pre-imported worker processes."""

    def __init__(self, size: int = 2, mp_context=None):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._ctx = mp_context or _mp_context()
        self._workers: List[_Worker] = []
        self._started = False
        self._closed = False
        #: lifetime counters: jobs completed, workers spawned/recycled
        self.completed = 0
        self.spawned = 0
        self.recycled = 0

    # -- lifecycle -----------------------------------------------------------

    def _spawn(self, w: _Worker) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        w.conn = parent
        w.proc = self._ctx.Process(target=_pool_worker, args=(child,),
                                   daemon=True)
        w.proc.start()
        child.close()
        w.tag = None
        w.ready = False
        self.spawned += 1
        _metrics.counter("repro_pool_spawned_total",
                         "Worker processes spawned (initial + "
                         "respawns)").inc()

    def start(self, warm_timeout: float = 60.0) -> "WorkerPool":
        """Spawn all workers and wait for their warm-import handshake."""
        if self._started:
            return self
        t0 = time.perf_counter()
        self._workers = [_Worker() for _ in range(self.size)]
        for w in self._workers:
            self._spawn(w)
        self._started = True
        deadline = time.monotonic() + warm_timeout
        for w in self._workers:
            self._await_ready(w, deadline)
        _metrics.histogram(
            "repro_pool_warm_ns",
            "Spawn-to-all-ready warm handshake time per pool "
            "start").record(int((time.perf_counter() - t0) * 1e9))
        _metrics.gauge("repro_pool_size",
                       "Configured worker count").set(self.size)
        return self

    def _await_ready(self, w: _Worker, deadline: float) -> None:
        while not w.ready:
            remain = deadline - time.monotonic()
            if remain <= 0 or not w.conn.poll(max(remain, 0.01)):
                raise TimeoutError("worker failed its warm handshake")
            try:
                msg = w.conn.recv()
            except (EOFError, OSError):
                self._respawn(w)        # died during import: try again
                continue
            if msg and msg[0] == "ready":
                w.ready = True

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def started(self) -> bool:
        return self._started and not self._closed

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down (sentinel first, then terminate)."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                if w.conn is not None:
                    w.conn.send(None)
            except Exception:
                pass
        deadline = time.monotonic() + timeout
        for w in self._workers:
            if w.proc is None:
                continue
            w.proc.join(timeout=max(deadline - time.monotonic(), 0.1))
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=2)
                if w.proc.is_alive():  # pragma: no cover
                    w.proc.kill()
                    w.proc.join()
            if w.conn is not None:
                w.conn.close()
            w.proc = w.conn = None
        self._workers = []

    # -- dispatch ------------------------------------------------------------

    def _busy(self) -> List[_Worker]:
        return [w for w in self._workers if w.tag is not None]

    def idle_count(self) -> int:
        self._require_open()
        return sum(1 for w in self._workers if w.tag is None)

    def alive_count(self) -> int:
        """Workers whose process is currently alive (liveness probe
        for ``/healthz``; equals ``size`` in a healthy pool)."""
        return sum(1 for w in self._workers
                   if w.proc is not None and w.proc.is_alive())

    def _track_busy(self) -> None:
        _metrics.gauge("repro_pool_busy_workers",
                       "Workers currently running a job"
                       ).set(len(self._busy()))

    def busy_tags(self) -> List[object]:
        return [w.tag for w in self._workers if w.tag is not None]

    def pids(self) -> List[int]:
        return [w.proc.pid for w in self._workers if w.proc is not None]

    def _require_open(self) -> None:
        if not self._started or self._closed:
            raise RuntimeError("pool is not started (or already closed)")

    def submit(self, tag, spec, trace_id: Optional[str] = None) -> None:
        """Hand ``(tag, spec, trace_id)`` to an idle worker; the caller
        must have checked :meth:`idle_count` first.  ``trace_id`` rides
        beside the spec (never inside it — cache keys stay unperturbed)
        and stamps the worker's oplog records."""
        self._require_open()
        for w in self._workers:
            if w.tag is None:
                try:
                    w.conn.send((tag, spec, trace_id))
                except (OSError, BrokenPipeError):
                    # worker died idle: respawn once and re-dispatch
                    self._respawn(w, recycle=True)
                    self._await_ready(w, time.monotonic() + 60.0)
                    w.conn.send((tag, spec, trace_id))
                w.tag = tag
                self._track_busy()
                return
        raise RuntimeError("no idle worker (check idle_count first)")

    def wait(self, timeout: Optional[float] = None) -> List[PoolEvent]:
        """Block up to ``timeout`` for completions; may return empty.

        A worker whose pipe hits EOF without a reply is reported as a
        death event and its slot respawned immediately, so the pool
        keeps its size through faults.
        """
        self._require_open()
        busy = self._busy()
        if not busy:
            return []
        ready = multiprocessing.connection.wait(
            [w.conn for w in busy], timeout=timeout)
        events: List[PoolEvent] = []
        for conn in ready:
            w = next(x for x in busy if x.conn is conn)
            tag = w.tag
            try:
                msg = w.conn.recv()
            except (EOFError, OSError):
                self._respawn(w, recycle=True)
                _metrics.counter("repro_pool_deaths_total",
                                 "Workers that died mid-job (EOF "
                                 "before reply)").inc()
                events.append(PoolEvent(tag, None))
                self._track_busy()
                continue
            if not msg or msg[0] != "done":   # pragma: no cover
                continue                      # stray handshake replay
            # replies are ("done", tag, (ok, payload, elapsed)[, delta])
            _kind, msg_tag, (ok, payload, elapsed) = msg[:3]
            if len(msg) > 3 and msg[3]:
                _metrics.registry().merge(msg[3])
            if msg_tag != tag:                # pragma: no cover
                # a stale reply from before a recycle: drop it
                continue
            w.tag = None
            self.completed += 1
            _metrics.counter("repro_pool_completed_total",
                             "Job replies received from workers").inc()
            events.append(PoolEvent(tag, ok, payload, elapsed))
        self._track_busy()
        return events

    def recycle(self, tag) -> None:
        """Kill the worker running ``tag`` (timeout enforcement) and
        respawn its slot; the job is simply gone — no event fires."""
        self._require_open()
        for w in self._workers:
            if w.tag == tag:
                self._respawn(w, recycle=True)
                self._track_busy()
                return
        raise KeyError(f"no worker is running {tag!r}")

    def abandon_busy(self) -> List[object]:
        """Recycle every busy worker (interrupt salvage): stale replies
        can never leak into the next batch.  Returns abandoned tags."""
        tags = []
        for w in self._workers:
            if w.tag is not None:
                tags.append(w.tag)
                self._respawn(w, recycle=True)
        self._track_busy()
        return tags

    def _respawn(self, w: _Worker, recycle: bool = False) -> None:
        if w.proc is not None and w.proc.is_alive():
            w.proc.terminate()
            w.proc.join(timeout=2)
            if w.proc.is_alive():      # pragma: no cover
                w.proc.kill()
                w.proc.join()
        if w.conn is not None:
            w.conn.close()
        if recycle:
            self.recycled += 1
            _metrics.counter("repro_pool_recycled_total",
                             "Workers killed and respawned (timeouts, "
                             "interrupts, dead pipes)").inc()
        self._spawn(w)

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "started" if self._started else "cold")
        return (f"WorkerPool(size={self.size}, {state}, "
                f"busy={len(self._busy())}, completed={self.completed}, "
                f"recycled={self.recycled})")
