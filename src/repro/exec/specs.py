"""Run specifications: picklable, stably-hashable descriptions of one run.

A :class:`RunSpec` names everything that determines a simulation's
outcome — mix, policy, scaling preset, seed, and (optionally) an explicit
:class:`~repro.config.SystemConfig` — without holding any live simulation
state, so specs can cross process boundaries and serve as cache keys.

The cache key is a SHA-256 over a canonical rendering of the spec plus a
*salt* (see :func:`repro.exec.cache.code_salt`): the salt folds the
package's source tree into the key, so any code change invalidates every
persisted result automatically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from repro.config import SystemConfig, default_config
from repro.mixes import Mix, mix as mix_by_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import RunResult


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation: ``(mix, policy, scale, seed[, cfg])``.

    ``mix`` may be a Table III name (``"M7"``) or an explicit
    :class:`Mix` (standalone runs use ad-hoc single-app mixes).  When
    ``cfg`` is ``None`` the default Table I machine at ``scale`` is
    used, with ``n_cpus`` taken from the mix.
    """

    mix: Union[Mix, str]
    policy: str = "baseline"
    scale: str = "test"
    seed: int = 1
    cfg: Optional[SystemConfig] = None

    def resolved_mix(self) -> Mix:
        if isinstance(self.mix, str):
            return mix_by_name(self.mix)
        return self.mix

    def resolved_cfg(self) -> SystemConfig:
        if self.cfg is not None:
            return self.cfg
        return default_config(scale=self.scale,
                              n_cpus=self.resolved_mix().n_cpus,
                              seed=self.seed)

    @property
    def label(self) -> str:
        """Short human-readable name for progress reporting."""
        return (f"{self.resolved_mix().name}/{self.policy}"
                f"@{self.scale}#{self.seed}")

    def key(self, salt: str) -> str:
        """Stable content hash of everything that determines the result."""
        m = self.resolved_mix()
        cfg = self.resolved_cfg()
        canon = "\x1f".join([
            salt, m.name, repr(m.gpu_app), repr(m.cpu_apps),
            self.policy, self.scale, str(self.seed), repr(cfg),
        ])
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def run(self) -> "RunResult":
        """Execute the simulation in-process (no caching)."""
        from repro.sim.runner import run_system
        return run_system(self.resolved_cfg(), self.resolved_mix(),
                          self.policy)


# -- spec builders for the standard run shapes -------------------------------

def mix_spec(mix_name: str, policy: str = "baseline", scale: str = "test",
             seed: int = 1, predictor: str = None) -> RunSpec:
    """One Table III mix under one policy (the heterogeneous run).

    ``predictor`` overrides ``SystemConfig.qos.predictor`` (the FRPU
    seam, docs/predictors.md) via an explicit cfg; ``repr(cfg)`` feeds
    the cache key, so each predictor caches separately.
    """
    if predictor is None:
        return RunSpec(mix=mix_name, policy=policy, scale=scale,
                       seed=seed)
    cfg = default_config(scale=scale,
                         n_cpus=mix_by_name(mix_name).n_cpus,
                         seed=seed).with_qos(predictor=predictor)
    return RunSpec(mix=mix_name, policy=policy, scale=scale, seed=seed,
                   cfg=cfg)


def standalone_cpu_spec(spec_id: int, scale: str = "test",
                        seed: int = 1) -> RunSpec:
    """One CPU application alone on the machine (no GPU)."""
    m = Mix(f"alone-{spec_id}", None, (spec_id,))
    return RunSpec(mix=m, policy="baseline", scale=scale, seed=seed)


def standalone_gpu_spec(game: str, scale: str = "test",
                        seed: int = 1) -> RunSpec:
    """One GPU application alone on the machine (no CPU work)."""
    m = Mix(f"alone-{game}", game, ())
    return RunSpec(mix=m, policy="baseline", scale=scale, seed=seed)
