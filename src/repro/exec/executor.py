"""Batch execution: fan independent runs across cores, cache everything.

:func:`run_many` is the substrate the figure benches, the sweep utility
and the CLI route through.  Independent ``RunSpec``s are deduplicated,
looked up in the shared :class:`~repro.exec.cache.ResultCache`, and the
misses executed — serially, or across a process pool when ``jobs > 1``.
Results come back in input order regardless of completion order, and a
failed run reports its spec and traceback in its :class:`RunOutcome`
instead of poisoning the rest of the batch (a worker process that dies
outright is retried in-process).

``REPRO_JOBS`` sets the default fan-out (``0`` means one worker per
core); unset it defaults to 1, keeping unit tests and casual callers on
the bit-identical serial path.
"""

from __future__ import annotations

import concurrent.futures as cf
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.exec.cache import ResultCache
from repro.exec.specs import RunSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import RunResult

JOBS_ENV = "REPRO_JOBS"

#: simulations actually executed by this process (cache hits excluded);
#: tests assert on this to prove a batch was served entirely from cache
counters = {"executed": 0}


def reset_counters() -> None:
    counters["executed"] = 0


def default_jobs() -> int:
    """Fan-out from ``REPRO_JOBS``: unset -> 1 (serial), 0 -> one per core."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        return 1
    if n <= 0:
        return os.cpu_count() or 1
    return n


# -- the shared cache singleton ----------------------------------------------

_shared_cache: Optional[ResultCache] = None


def shared_cache() -> ResultCache:
    global _shared_cache
    if _shared_cache is None:
        _shared_cache = ResultCache()
    return _shared_cache


def set_shared_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Swap the process-wide cache (tests, CLI ``--cache-dir``);
    returns the previous one."""
    global _shared_cache
    old = _shared_cache
    _shared_cache = cache
    return old


def clear_caches(disk: bool = False) -> None:
    """Drop the memory layer; ``disk=True`` also wipes persisted results."""
    c = shared_cache()
    c.clear_memory()
    if disk:
        c.clear_disk()


# -- outcomes ----------------------------------------------------------------

@dataclass
class RunOutcome:
    """One batch slot: either a result or the failure that replaced it."""

    spec: RunSpec
    result: Optional["RunResult"]
    error: Optional[str] = None        # formatted traceback on failure
    elapsed: float = 0.0               # wall seconds (0 for cache hits)
    source: str = "run"                # "run" | "memory" | "disk" | "error"

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchError(RuntimeError):
    """Raised by ``run_many(strict=True)`` when any spec failed."""

    def __init__(self, outcomes: List[RunOutcome]):
        self.failures = [o for o in outcomes if not o.ok]
        labels = ", ".join(o.spec.label for o in self.failures)
        first = self.failures[0].error or ""
        super().__init__(
            f"{len(self.failures)} run(s) failed: {labels}\n{first}")


# -- execution ---------------------------------------------------------------

def _pool_worker(spec: RunSpec):
    """Top-level so it pickles; never raises (errors travel as data)."""
    t0 = time.perf_counter()
    try:
        return True, spec.run(), time.perf_counter() - t0
    except Exception:
        return False, traceback.format_exc(), time.perf_counter() - t0


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_cached(spec: RunSpec,
               cache: Optional[ResultCache] = None) -> "RunResult":
    """One spec through the cache; executes (and stores) on a miss.

    Always returns a defensive copy — mutating it cannot corrupt what
    later callers receive.
    """
    cache = cache or shared_cache()
    hit, _source = cache.get(spec)
    if hit is not None:
        return hit
    counters["executed"] += 1
    result = spec.run()
    cache.put(spec, result)           # put() stores its own deep copy
    return result


Progress = Callable[[RunOutcome, int, int], None]


def run_many(specs: Iterable[RunSpec], jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None,
             progress: Optional[Progress] = None,
             strict: bool = False) -> List[RunOutcome]:
    """Run a batch of independent specs; outcomes align with input order.

    Identical specs are executed once.  Cache hits (memory or disk) skip
    execution entirely.  ``jobs=None`` takes :func:`default_jobs`;
    ``jobs > 1`` fans misses across a process pool.  With
    ``strict=True`` a :class:`BatchError` is raised if any spec failed;
    otherwise failures are reported per-outcome.
    """
    specs = list(specs)
    cache = cache or shared_cache()
    jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    total = len(specs)
    outcomes: List[Optional[RunOutcome]] = [None] * total
    todo: dict = {}                    # unique key -> input indices
    order: List[tuple] = []            # (key, spec) in first-seen order

    def report(out: RunOutcome, i: int) -> None:
        if progress is not None:
            progress(out, i, total)

    for i, spec in enumerate(specs):
        hit, source = cache.get(spec)
        if hit is not None:
            outcomes[i] = RunOutcome(spec, hit, source=source)
            report(outcomes[i], i)
            continue
        key = cache.key_for(spec)
        if key not in todo:
            todo[key] = []
            order.append((key, spec))
        todo[key].append(i)

    def finish(key: str, spec: RunSpec, ok: bool, payload,
               elapsed: float) -> None:
        if ok:
            cache.put(spec, payload)
            indices = todo[key]
            for j, i in enumerate(indices):
                # first slot takes the freshly-computed object (already
                # independent of the cached copy); duplicates get copies
                res = payload if j == 0 else cache.get(spec)[0]
                outcomes[i] = RunOutcome(spec, res, elapsed=elapsed,
                                         source="run")
                report(outcomes[i], i)
        else:
            for i in todo[key]:
                outcomes[i] = RunOutcome(spec, None, error=payload,
                                         elapsed=elapsed, source="error")
                report(outcomes[i], i)

    def run_serial(key: str, spec: RunSpec) -> None:
        t0 = time.perf_counter()
        counters["executed"] += 1
        try:
            result = spec.run()
        except Exception:
            finish(key, spec, False, traceback.format_exc(),
                   time.perf_counter() - t0)
        else:
            finish(key, spec, True, result, time.perf_counter() - t0)

    if jobs <= 1 or len(order) <= 1:
        for key, spec in order:
            run_serial(key, spec)
    else:
        ctx = _mp_context()
        with cf.ProcessPoolExecutor(max_workers=min(jobs, len(order)),
                                    mp_context=ctx) as pool:
            futures = {}
            for key, spec in order:
                counters["executed"] += 1
                futures[pool.submit(_pool_worker, spec)] = (key, spec)
            for fut in cf.as_completed(futures):
                key, spec = futures[fut]
                if fut.exception() is not None:
                    # the worker process died (BrokenProcessPool etc.):
                    # retry in-process so one crash doesn't sink the batch
                    counters["executed"] -= 1
                    run_serial(key, spec)
                else:
                    ok, payload, elapsed = fut.result()
                    finish(key, spec, ok, payload, elapsed)

    done: List[RunOutcome] = [o for o in outcomes if o is not None]
    assert len(done) == total, "executor lost a batch slot"
    if strict and any(not o.ok for o in done):
        raise BatchError(done)
    return done
