"""Batch execution: fan independent runs across cores, cache everything.

:func:`run_many` is the substrate the figure benches, the sweep utility
and the CLI route through.  Independent ``RunSpec``s are deduplicated,
looked up in the shared :class:`~repro.exec.cache.ResultCache`, and the
misses executed — serially, or across worker processes when ``jobs > 1``.
Results come back in input order regardless of completion order, and a
failed run reports its spec and traceback in its :class:`RunOutcome`
instead of poisoning the rest of the batch.

Hardened execution semantics (see ``docs/robustness.md``):

* **Per-run timeouts** — ``timeout`` seconds of wall clock per attempt;
  a worker that exceeds it is terminated (then killed) and the slot
  reports a timeout error instead of wedging the batch.
* **Bounded retry with exponential backoff** — worker *death* (crash,
  OOM-kill, timeout) is retried up to ``retries`` times, waiting
  ``backoff * 2**(attempt-1)`` seconds between attempts.  Ordinary
  exceptions are deterministic and fail immediately.
* **Interrupt salvage** — SIGINT/SIGTERM mid-batch terminates the
  workers, keeps every completed (and cached) result, marks unfinished
  slots, and raises :class:`BatchInterrupted` carrying the partial
  outcome list; a re-run re-executes nothing that completed.

The serial path (``jobs <= 1`` with no timeout/retries) runs specs
in-process in input order, bit-identically to calling ``spec.run()``
yourself.

``REPRO_JOBS`` sets the default fan-out (``0`` means one worker per
core); unset it defaults to 1, keeping unit tests and casual callers on
the bit-identical serial path.
"""

from __future__ import annotations

import multiprocessing as mp
import multiprocessing.connection
import os
import signal
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, TYPE_CHECKING

from repro import metrics as _metrics
from repro.exec.cache import ResultCache
from repro.exec.specs import RunSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.pool import WorkerPool
    from repro.sim.metrics import RunResult

JOBS_ENV = "REPRO_JOBS"

#: simulations actually executed by this process (cache hits excluded);
#: tests assert on this to prove a batch was served entirely from cache
counters = {"executed": 0}


def reset_counters() -> None:
    counters["executed"] = 0


def _count_attempt() -> None:
    _metrics.counter("repro_exec_attempts_total",
                     "Simulation execution attempts launched (includes "
                     "retried and fallback attempts)").inc()


def _count_fault(why: str, retried: bool) -> None:
    kind = "death" if why == "worker died" else "timeout"
    _metrics.counter("repro_exec_faults_total",
                     "Attempts lost to worker death or wall-clock "
                     "timeout", kind=kind).inc()
    if retried:
        _metrics.counter("repro_exec_retries_total",
                         "Faulted attempts re-queued with backoff").inc()


def default_jobs() -> int:
    """Fan-out from ``REPRO_JOBS``: unset -> 1 (serial), 0 -> one per core."""
    raw = os.environ.get(JOBS_ENV, "").strip()
    if not raw:
        return 1
    try:
        n = int(raw)
    except ValueError:
        return 1
    if n <= 0:
        return os.cpu_count() or 1
    return n


# -- the shared cache singleton ----------------------------------------------

_shared_cache: Optional[ResultCache] = None


def shared_cache() -> ResultCache:
    global _shared_cache
    if _shared_cache is None:
        _shared_cache = ResultCache()
    return _shared_cache


def set_shared_cache(cache: Optional[ResultCache]) -> Optional[ResultCache]:
    """Swap the process-wide cache (tests, CLI ``--cache-dir``);
    returns the previous one."""
    global _shared_cache
    old = _shared_cache
    _shared_cache = cache
    return old


def clear_caches(disk: bool = False) -> None:
    """Drop the memory layer; ``disk=True`` also wipes persisted results."""
    c = shared_cache()
    c.clear_memory()
    if disk:
        c.clear_disk()


# -- outcomes ----------------------------------------------------------------

@dataclass
class RunOutcome:
    """One batch slot: either a result or the failure that replaced it."""

    spec: RunSpec
    result: Optional["RunResult"]
    error: Optional[str] = None        # formatted traceback on failure
    elapsed: float = 0.0               # wall seconds (0 for cache hits)
    source: str = "run"                # "run" | "memory" | "disk" | "error"
    attempts: int = 1                  # executions tried for this slot

    @property
    def ok(self) -> bool:
        return self.error is None


class BatchError(RuntimeError):
    """Raised by ``run_many(strict=True)`` when any spec failed."""

    def __init__(self, outcomes: List[RunOutcome]):
        self.failures = [o for o in outcomes if not o.ok]
        labels = ", ".join(o.spec.label for o in self.failures)
        first = self.failures[0].error or ""
        super().__init__(
            f"{len(self.failures)} run(s) failed: {labels}\n{first}")


class BatchInterrupted(RuntimeError):
    """SIGINT/SIGTERM cut the batch short; completed work is salvaged.

    ``outcomes`` aligns with the input specs: finished slots carry their
    results (already persisted to the cache), unfinished slots carry an
    ``"interrupted"`` error.  Re-running the same batch re-executes only
    the unfinished slots — the finished ones come back as cache hits.
    """

    def __init__(self, outcomes: List[RunOutcome]):
        self.outcomes = outcomes
        self.completed = sum(1 for o in outcomes if o.ok)
        super().__init__(
            f"batch interrupted: {self.completed}/{len(outcomes)} "
            "run(s) completed and salvaged")


# -- worker-side entry points ------------------------------------------------

def _task_worker(conn, spec) -> None:
    """Child-process body: run one spec, ship the outcome over the pipe.

    Never raises: errors travel as data.  A crash (SIGKILL, segfault)
    closes the pipe without a message — the parent reads EOF and treats
    it as worker death.
    """
    t0 = time.perf_counter()
    try:
        result = spec.run()
        payload = (True, result, time.perf_counter() - t0)
    except BaseException:
        payload = (False, traceback.format_exc(),
                   time.perf_counter() - t0)
    try:
        conn.send(payload)
    except Exception:
        # result not picklable (or pipe gone): report, don't crash
        try:
            conn.send((False, traceback.format_exc(),
                       time.perf_counter() - t0))
        except Exception:
            pass
    finally:
        conn.close()


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def run_cached(spec: RunSpec,
               cache: Optional[ResultCache] = None) -> "RunResult":
    """One spec through the cache; executes (and stores) on a miss.

    Always returns a defensive copy — mutating it cannot corrupt what
    later callers receive.
    """
    cache = cache or shared_cache()
    hit, _source = cache.get(spec)
    if hit is not None:
        return hit
    counters["executed"] += 1
    _count_attempt()
    result = spec.run()
    cache.put(spec, result)           # put() stores its own deep copy
    return result


Progress = Callable[[RunOutcome, int, int], None]


class _Task:
    """One unique spec moving through the process manager."""

    __slots__ = ("key", "spec", "attempts", "not_before", "proc",
                 "conn", "deadline")

    def __init__(self, key: str, spec):
        self.key = key
        self.spec = spec
        self.attempts = 0
        self.not_before = 0.0          # monotonic launch gate (backoff)
        self.proc = None
        self.conn = None
        self.deadline = None           # monotonic timeout for this attempt


def _sigterm_to_interrupt():
    """Install a SIGTERM->KeyboardInterrupt handler (main thread only).

    Returns a restore callable.  Off the main thread (or on platforms
    without SIGTERM) this is a no-op — the interrupt-salvage path then
    only covers SIGINT.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    try:
        prev = signal.getsignal(signal.SIGTERM)
        if prev is None:
            # a non-Python handler is installed (set by C code or an
            # embedding application): getsignal() cannot describe it, so
            # it cannot be restored — signal.signal(..., None) raises
            # TypeError, which would have fired from run_many's
            # ``finally`` and masked the batch outcome.  Leave the
            # foreign handler alone; salvage then only covers SIGINT.
            return lambda: None

        def handler(signum, frame):
            raise KeyboardInterrupt

        signal.signal(signal.SIGTERM, handler)
        return lambda: signal.signal(signal.SIGTERM, prev)
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return lambda: None


def run_many(specs: Iterable[RunSpec], jobs: Optional[int] = None,
             cache: Optional[ResultCache] = None,
             progress: Optional[Progress] = None,
             strict: bool = False,
             timeout: Optional[float] = None,
             retries: int = 0,
             backoff: float = 0.5,
             pool: Optional["WorkerPool"] = None) -> List[RunOutcome]:
    """Run a batch of independent specs; outcomes align with input order.

    Identical specs are executed once.  Cache hits (memory or disk) skip
    execution entirely.  ``jobs=None`` takes :func:`default_jobs`;
    ``jobs > 1`` fans misses across worker processes.  ``timeout`` caps
    each attempt's wall-clock seconds; worker death and timeouts are
    retried up to ``retries`` times with exponential backoff (base
    ``backoff`` seconds).  With ``strict=True`` a :class:`BatchError`
    is raised if any spec failed.  SIGINT/SIGTERM raises
    :class:`BatchInterrupted` after salvaging completed results.

    ``pool`` injects a started :class:`~repro.exec.pool.WorkerPool`:
    misses are executed on its persistent, pre-imported workers instead
    of per-attempt processes, skipping process spin-up and cold imports
    entirely (the pool's size is the fan-out; ``jobs`` is ignored).
    The pool stays alive across calls — the caller owns its lifecycle.
    """
    specs = list(specs)
    cache = cache or shared_cache()
    jobs = default_jobs() if jobs is None else max(int(jobs), 1)
    _metrics.counter("repro_batches_total",
                     "run_many batches started").inc()
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive seconds (or None)")
    if retries < 0 or backoff < 0:
        raise ValueError("retries and backoff must be >= 0")
    total = len(specs)
    outcomes: List[Optional[RunOutcome]] = [None] * total
    todo: dict = {}                    # unique key -> input indices
    order: List[tuple] = []            # (key, spec) in first-seen order

    def report(out: RunOutcome, i: int) -> None:
        if progress is not None:
            progress(out, i, total)

    for i, spec in enumerate(specs):
        hit, source = cache.get(spec)
        if hit is not None:
            outcomes[i] = RunOutcome(spec, hit, source=source)
            report(outcomes[i], i)
            continue
        key = cache.key_for(spec)
        if key not in todo:
            todo[key] = []
            order.append((key, spec))
        todo[key].append(i)

    def finish(key: str, spec, ok: bool, payload,
               elapsed: float, attempts: int = 1) -> None:
        if ok:
            cache.put(spec, payload)
            indices = todo[key]
            for j, i in enumerate(indices):
                # first slot takes the freshly-computed object (already
                # independent of the cached copy); duplicates get copies
                res = payload if j == 0 else cache.get(spec)[0]
                outcomes[i] = RunOutcome(spec, res, elapsed=elapsed,
                                         source="run", attempts=attempts)
                report(outcomes[i], i)
        else:
            for i in todo[key]:
                outcomes[i] = RunOutcome(spec, None, error=payload,
                                         elapsed=elapsed, source="error",
                                         attempts=attempts)
                report(outcomes[i], i)

    def salvage() -> None:
        """Mark every unfinished slot; completed ones are already in."""
        for i, spec in enumerate(specs):
            if outcomes[i] is None:
                outcomes[i] = RunOutcome(spec, None, error="interrupted",
                                         source="error")

    def run_serial(key: str, spec) -> None:
        t0 = time.perf_counter()
        counters["executed"] += 1
        _count_attempt()
        try:
            result = spec.run()
        except Exception:
            finish(key, spec, False, traceback.format_exc(),
                   time.perf_counter() - t0)
        else:
            finish(key, spec, True, result, time.perf_counter() - t0)

    restore = _sigterm_to_interrupt()
    try:
        if pool is not None and order:
            # warm path: persistent pre-imported workers; worker death
            # without hardening options falls back to in-process serial
            # execution, mirroring the managed path's legacy resilience
            fallback = run_serial \
                if timeout is None and retries == 0 else None
            _run_pooled(order, finish, pool, timeout, retries, backoff,
                        fallback)
        elif timeout is None and retries == 0 and \
                (jobs <= 1 or len(order) <= 1):
            for key, spec in order:
                run_serial(key, spec)
        else:
            # legacy resilience: with no explicit hardening options, a
            # worker that dies outright is retried in-process so one
            # crash doesn't sink the batch.  With timeout/retries set,
            # failures are reported as outcomes instead (an in-process
            # retry of a crashing or hanging spec would take the parent
            # down with it).
            fallback = run_serial \
                if timeout is None and retries == 0 else None
            _run_managed(order, finish, jobs, timeout, retries, backoff,
                         fallback)
    except KeyboardInterrupt:
        salvage()
        _metrics.counter("repro_exec_interrupted_total",
                         "Batches cut short by SIGINT/SIGTERM").inc()
        partial = [o for o in outcomes if o is not None]
        _metrics.oplog().emit(
            "batch_interrupted", level="warning",
            completed=sum(1 for o in partial if o.ok),
            total=len(partial))
        raise BatchInterrupted(partial) from None
    finally:
        restore()

    done: List[RunOutcome] = [o for o in outcomes if o is not None]
    assert len(done) == total, "executor lost a batch slot"
    for o in done:
        _metrics.counter("repro_runs_total",
                         "Batch slots resolved, by where the result "
                         "came from", source=o.source).inc()
    if strict and any(not o.ok for o in done):
        raise BatchError(done)
    return done


def _run_managed(order: List[tuple], finish, jobs: int,
                 timeout: Optional[float], retries: int,
                 backoff: float, fallback=None) -> None:
    """Process manager: one child per attempt, so a hung or crashed
    worker can be terminated without sinking its siblings.

    A ``ProcessPoolExecutor`` cannot kill one wedged worker (the pool
    breaks as a unit), so timeouts require owning the processes: each
    attempt gets a fresh ``mp.Process`` and a result pipe, and the
    parent multiplexes over the pipes with ``connection.wait``.
    """
    ctx = _mp_context()
    pending = [_Task(key, spec) for key, spec in order]
    running: List[_Task] = []

    def launch(task: _Task) -> None:
        task.attempts += 1
        counters["executed"] += 1
        _count_attempt()
        parent, child = ctx.Pipe(duplex=False)
        task.conn = parent
        task.proc = ctx.Process(target=_task_worker,
                                args=(child, task.spec), daemon=True)
        task.proc.start()
        child.close()                  # parent keeps only its end
        task.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        running.append(task)

    def reap(task: _Task) -> None:
        if task.proc is not None:
            task.proc.join(timeout=5)
            if task.proc.is_alive():   # pragma: no cover
                task.proc.kill()
                task.proc.join()
        if task.conn is not None:
            task.conn.close()
        task.proc = task.conn = task.deadline = None

    def kill(task: _Task) -> None:
        if task.proc is not None and task.proc.is_alive():
            task.proc.terminate()
            task.proc.join(timeout=2)
            if task.proc.is_alive():
                task.proc.kill()
        reap(task)

    def retry_or_fail(task: _Task, why: str) -> None:
        _count_fault(why, retried=task.attempts <= retries)
        if task.attempts <= retries:
            delay = backoff * (2 ** (task.attempts - 1))
            task.not_before = time.monotonic() + delay
            pending.append(task)
        elif fallback is not None and why == "worker died":
            counters["executed"] -= 1   # run_serial counts its own
            fallback(task.key, task.spec)
        else:
            finish(task.key, task.spec, False,
                   f"{why} (after {task.attempts} attempt(s))",
                   0.0, attempts=task.attempts)

    try:
        while pending or running:
            now = time.monotonic()
            # launch everything runnable up to the fan-out limit
            i = 0
            while i < len(pending) and len(running) < jobs:
                if pending[i].not_before <= now:
                    launch(pending.pop(i))
                else:
                    i += 1
            # pick the earliest wake-up: a result, a timeout, a backoff
            waits = [t.deadline for t in running
                     if t.deadline is not None]
            if pending and len(running) < jobs:
                waits.extend(t.not_before for t in pending)
            wait_for = max(min(min((w - now for w in waits),
                                   default=1.0), 1.0), 0.01)
            if running:
                ready = multiprocessing.connection.wait(
                    [t.conn for t in running], timeout=wait_for)
            else:
                time.sleep(wait_for)   # everything is backing off
                ready = []
            for conn in ready:
                task = next(t for t in running if t.conn is conn)
                running.remove(task)
                try:
                    ok, payload, elapsed = conn.recv()
                except (EOFError, OSError):
                    reap(task)
                    retry_or_fail(task, "worker died")
                    continue
                reap(task)
                finish(task.key, task.spec, ok, payload, elapsed,
                       attempts=task.attempts)
            if timeout is None:
                continue
            now = time.monotonic()
            for task in [t for t in running
                         if t.deadline is not None and t.deadline <= now]:
                running.remove(task)
                kill(task)
                retry_or_fail(
                    task, f"timed out after {timeout:g}s wall clock")
    except BaseException:
        # interrupt or internal error: reap every child before leaving
        for task in running:
            kill(task)
        raise


def _run_pooled(order: List[tuple], finish, pool: "WorkerPool",
                timeout: Optional[float], retries: int,
                backoff: float, fallback=None) -> None:
    """Dispatch loop over a persistent :class:`WorkerPool`.

    Same semantics as :func:`_run_managed` — per-attempt timeouts,
    bounded retry with exponential backoff, legacy in-process fallback
    on worker death — but jobs go to already-warm workers, so a
    cache-miss batch pays no process spin-up and no cold imports, and a
    cache-hit batch touches no process at all.  A timed-out worker is
    *recycled* (killed and respawned) so pool capacity survives faults.

    On interrupt every busy worker is recycled before re-raising: a
    stale completion can never leak into a later batch.
    """
    if not pool.started:
        pool.start()
    tasks = {key: _Task(key, spec) for key, spec in order}
    pending: List[_Task] = list(tasks.values())
    inflight: dict = {}                # key -> _Task currently on a worker

    def launch(task: _Task) -> None:
        task.attempts += 1
        counters["executed"] += 1
        _count_attempt()
        pool.submit(task.key, task.spec)
        task.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        inflight[task.key] = task

    def retry_or_fail(task: _Task, why: str) -> None:
        _count_fault(why, retried=task.attempts <= retries)
        if task.attempts <= retries:
            delay = backoff * (2 ** (task.attempts - 1))
            task.not_before = time.monotonic() + delay
            pending.append(task)
        elif fallback is not None and why == "worker died":
            counters["executed"] -= 1   # run_serial counts its own
            fallback(task.key, task.spec)
        else:
            finish(task.key, task.spec, False,
                   f"{why} (after {task.attempts} attempt(s))",
                   0.0, attempts=task.attempts)

    try:
        while pending or inflight:
            now = time.monotonic()
            i = 0
            while i < len(pending) and pool.idle_count() > 0:
                if pending[i].not_before <= now:
                    launch(pending.pop(i))
                else:
                    i += 1
            waits = [t.deadline for t in inflight.values()
                     if t.deadline is not None]
            if pending and pool.idle_count() > 0:
                waits.extend(t.not_before for t in pending)
            wait_for = max(min(min((w - now for w in waits),
                                   default=1.0), 1.0), 0.01)
            if inflight:
                events = pool.wait(timeout=wait_for)
            else:
                time.sleep(wait_for)   # everything is backing off
                events = []
            for ev in events:
                task = inflight.pop(ev.tag)
                if ev.died:
                    retry_or_fail(task, "worker died")
                    continue
                finish(task.key, task.spec, ev.ok, ev.payload,
                       ev.elapsed, attempts=task.attempts)
            if timeout is None:
                continue
            now = time.monotonic()
            for task in [t for t in inflight.values()
                         if t.deadline is not None and t.deadline <= now]:
                del inflight[task.key]
                pool.recycle(task.key)
                retry_or_fail(
                    task, f"timed out after {timeout:g}s wall clock")
    except BaseException:
        # interrupt or internal error: the pool survives, but every
        # busy worker is recycled so no stale reply outlives this batch
        pool.abandon_busy()
        raise
