"""Experiment execution: batch runner + persistent result cache.

Public surface::

    from repro.exec import RunSpec, mix_spec, run_cached, run_many

    outcomes = run_many([mix_spec("M7", p, "test") for p in policies],
                        jobs=8)
    for out in outcomes:
        assert out.ok, out.error

See :mod:`repro.exec.executor` and :mod:`repro.exec.cache` for the
execution and caching semantics, and ``docs/architecture.md`` for how
the analysis / benchmark layers route through this package.
"""

from repro.exec.cache import (CacheIntegrityWarning, CacheStats,
                              ResultCache, code_salt)
from repro.exec.executor import (BatchError, BatchInterrupted, RunOutcome,
                                 clear_caches, counters, default_jobs,
                                 reset_counters, run_cached, run_many,
                                 set_shared_cache, shared_cache)
from repro.exec.specs import (RunSpec, mix_spec, standalone_cpu_spec,
                              standalone_gpu_spec)

__all__ = [
    "BatchError", "BatchInterrupted", "CacheIntegrityWarning",
    "CacheStats", "ResultCache", "RunOutcome", "RunSpec",
    "clear_caches", "code_salt", "counters", "default_jobs", "mix_spec",
    "reset_counters", "run_cached", "run_many", "set_shared_cache",
    "shared_cache", "standalone_cpu_spec", "standalone_gpu_spec",
]
