"""Experiment execution: batch runner + persistent result cache.

Public surface::

    from repro.exec import RunSpec, mix_spec, run_cached, run_many

    outcomes = run_many([mix_spec("M7", p, "test") for p in policies],
                        jobs=8)
    for out in outcomes:
        assert out.ok, out.error

Warm submission reuses one pool of pre-imported workers across
batches (this is what the :mod:`repro.service` daemon runs on)::

    from repro.exec import WorkerPool
    with WorkerPool(4) as pool:
        first = run_many(specs, pool=pool)    # pays no spin-up
        again = run_many(specs, pool=pool)    # pure cache hits

See :mod:`repro.exec.executor` and :mod:`repro.exec.cache` for the
execution and caching semantics, and ``docs/architecture.md`` for how
the analysis / benchmark layers route through this package.
"""

from repro.exec.cache import (CacheIntegrityWarning, CacheStats,
                              ResultCache, code_salt)
from repro.exec.executor import (BatchError, BatchInterrupted, RunOutcome,
                                 clear_caches, counters, default_jobs,
                                 reset_counters, run_cached, run_many,
                                 set_shared_cache, shared_cache)
from repro.exec.inflight import InFlightRegistry
from repro.exec.pool import PoolEvent, WorkerPool
from repro.exec.specs import (RunSpec, mix_spec, standalone_cpu_spec,
                              standalone_gpu_spec)

__all__ = [
    "BatchError", "BatchInterrupted", "CacheIntegrityWarning",
    "CacheStats", "InFlightRegistry", "PoolEvent", "ResultCache",
    "RunOutcome", "RunSpec", "WorkerPool", "clear_caches", "code_salt",
    "counters", "default_jobs", "mix_spec", "reset_counters",
    "run_cached", "run_many", "set_shared_cache", "shared_cache",
    "standalone_cpu_spec", "standalone_gpu_spec",
]
