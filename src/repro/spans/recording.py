"""One-call traced runs (the ``--trace-spans PATH`` CLI path).

Traced runs bypass the result cache like ``--profile``/``--telemetry``
do: the span stream is a side effect a cache hit could not replay.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.spans.tracer import SpanTracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import RunResult


def trace_mix(mix_name: str, policy: str = "throtcpuprio",
              scale: str = "smoke", seed: int = 1,
              path: Optional[str] = None, sample_every: int = 64,
              tracer: Optional[SpanTracer] = None,
              telemetry=None, predictor: Optional[str] = None
              ) -> tuple["RunResult", SpanTracer]:
    """Run one mix with span tracing on.

    Pass ``path`` to stream spans/gauges to a JSONL file, or a
    pre-built ``tracer`` (custom sampling).  ``telemetry`` combines a
    control-loop recording with the same run.  ``predictor`` overrides
    the FRPU-seam predictor (docs/predictors.md).  Returns
    ``(result, tracer)``; the tracer is closed.
    """
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.policies import make_policy
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    if tracer is None:
        tracer = SpanTracer(sample_every=sample_every, path=path)
    m = mix_by_name(mix_name)
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    if predictor is not None:
        cfg = cfg.with_qos(predictor=predictor)
    system = HeterogeneousSystem(cfg, m, make_policy(policy),
                                 telemetry=telemetry, tracer=tracer)
    system.run()
    tracer.close()
    return collect(system), tracer


def trace_standalone(game: Optional[str] = None,
                     spec: Optional[int] = None, scale: str = "smoke",
                     seed: int = 1, path: Optional[str] = None,
                     sample_every: int = 64,
                     tracer: Optional[SpanTracer] = None,
                     telemetry=None) -> tuple["RunResult", SpanTracer]:
    """Traced standalone run (one GPU game or one SPEC application)."""
    from repro.config import default_config
    from repro.exec.specs import standalone_cpu_spec, standalone_gpu_spec
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    if (game is None) == (spec is None):
        raise ValueError("need exactly one of game/spec")
    if tracer is None:
        tracer = SpanTracer(sample_every=sample_every, path=path)
    spec_obj = standalone_gpu_spec(game, scale, seed) if game \
        else standalone_cpu_spec(spec, scale, seed)
    m = spec_obj.mix
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    system = HeterogeneousSystem(cfg, m, telemetry=telemetry,
                                 tracer=tracer)
    system.run()
    tracer.close()
    return collect(system), tracer
