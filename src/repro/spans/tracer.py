"""Request-path span tracing: where does a memory request spend cycles?

The paper's mechanism argument (Sections III-V) is about *queueing*:
gating GPU LLC ports drains GPU-induced backlog in the LLC input
queue, the ring, and the DRAM bank queues, and CPU requests get
through faster.  End metrics (IPC, FPS) show the effect; spans show
the mechanism.  A sampled :class:`~repro.mem.request.MemRequest`
carries a :class:`Span` that every pipeline stage stamps with the
current tick:

========== =================================================== =========
stage       stamped by                                          meaning
========== =================================================== =========
issue       ``CpuCore._send`` / ``GpuPipeline._issue_llc``      core/shader hands the request to the interconnect
llc_enter   ``SharedLLC.access``                                arrival at the LLC controller (ring paid)
llc_hit     ``SharedLLC.access``                                hit resolution
llc_miss    ``SharedLLC._read_miss``                            miss resolution
llc_queue   ``SharedLLC._read_miss``                            entered the MSHR-full input queue
mshr_alloc  ``SharedLLC._start_miss``                           primary miss: MSHR entry allocated
mshr_merge  ``SharedLLC._start_miss``                           secondary miss: merged onto an in-flight fill
dram_enqueue ``MemoryController.enqueue``                       fill entered a channel's read queue
dram_issue  ``MemoryController._service``                       the access scheduler selected it
bank_act    ``MemoryController._service``                       the command needed an ACTIVATE (row miss/conflict)
dram_data   ``MemoryController._service``                       data transfer starts on the shared bus
dram_done   ``MemoryController._service``                       data transfer complete at the controller
fill_return ``SharedLLC._fill_done``                            fill arrived back at the LLC (ring paid)
done        the tracer's completion hook                        data returned to the requester
========== =================================================== =========

Only reads are traced (CPU loads, stores-for-ownership, ifetches,
prefetches; GPU fills) — writes carry no completion to measure.  A
miss's DRAM stamps land on the *primary* span (the fill request shares
it); merged secondaries record their merge wait instead.

Strictly observational: stamps read ``sim.now`` and write span fields,
never schedule events, so a traced run's :class:`RunResult` is
bit-identical to an untraced one (``tests/sim/test_spans_golden.py``).
Cost when off is a single ``is None`` test at each emit site; cost
when on is bounded by 1-in-``sample_every`` request sampling.
"""

from __future__ import annotations

import json
from typing import Callable, Optional, TYPE_CHECKING

from repro.spans.histogram import Gauge, Histogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.request import MemRequest
    from repro.sim.system import HeterogeneousSystem

#: every stage a span may carry, in pipeline order (docs + validation)
STAGES = ("issue", "llc_enter", "llc_hit", "llc_miss", "llc_queue",
          "mshr_alloc", "mshr_merge", "dram_enqueue", "dram_issue",
          "bank_act", "dram_data", "dram_done", "fill_return", "done")

#: derived per-stage duration metrics, in report order
METRICS = ("total", "ring_fwd", "llc_service", "llc_wait", "to_dram",
           "dram_queue", "bank_service", "return_path", "merge_wait")


class Span:
    """Stage stamps of one sampled request, in stamping order."""

    __slots__ = ("sid", "source", "kind", "stages")

    def __init__(self, sid: int, source: str, kind: str):
        self.sid = sid
        self.source = source
        self.kind = kind
        self.stages: list[tuple[str, int]] = []

    def stamp(self, stage: str, tick: int) -> None:
        self.stages.append((stage, tick))

    def __repr__(self) -> str:
        return (f"Span(#{self.sid} {self.source}/{self.kind}: "
                + " ".join(f"{s}@{t}" for s, t in self.stages) + ")")


def stage_durations(stages) -> tuple[str, dict[str, int]]:
    """Classify a span and derive its per-stage durations (ticks).

    Returns ``(cls, durations)`` where ``cls`` is ``"hit"``, ``"miss"``
    (primary, went to DRAM), ``"merge"`` (secondary, rode an in-flight
    fill), ``"queued_hit"`` (waited in the MSHR-full queue, satisfied
    by another fill) or ``"open"`` (never completed).  Durations are
    keyed by the :data:`METRICS` names present for that class; for a
    miss they partition ``total``:
    ``ring_fwd + llc_wait + to_dram + dram_queue + bank_service +
    return_path == total``.
    """
    t = dict(stages)
    durs: dict[str, int] = {}
    done = t.get("done")
    issue = t.get("issue")
    enter = t.get("llc_enter")
    if done is not None and issue is not None:
        durs["total"] = done - issue
    if enter is not None and issue is not None:
        durs["ring_fwd"] = enter - issue
    if "llc_hit" in t:
        cls = "hit"
        if done is not None and enter is not None:
            durs["llc_service"] = done - enter
    elif "mshr_alloc" in t:
        cls = "miss"
        if enter is not None:
            durs["llc_wait"] = t["mshr_alloc"] - enter
        dq = t.get("dram_enqueue")
        if dq is not None:
            durs["to_dram"] = dq - t["mshr_alloc"]
            di = t.get("dram_issue")
            if di is not None:
                durs["dram_queue"] = di - dq
                dd = t.get("dram_done")
                if dd is not None:
                    durs["bank_service"] = dd - di
                    if done is not None:
                        durs["return_path"] = done - dd
    elif "mshr_merge" in t:
        cls = "merge"
        if enter is not None:
            durs["llc_wait"] = t["mshr_merge"] - enter
        if done is not None:
            durs["merge_wait"] = done - t["mshr_merge"]
    elif "llc_miss" in t:
        cls = "queued_hit"
        if done is not None and enter is not None:
            durs["llc_wait"] = done - enter
    else:
        cls = "open"
    return cls, durs


class SpanTracer:
    """Samples 1-in-N eligible requests, collects spans + occupancy.

    * per-(side, metric) latency :class:`Histogram` registry — the live
      p50/p95/p99 report (:meth:`format_report`);
    * named occupancy :class:`Gauge` s (MSHR fill, per-bank DRAM queue
      depth, ring injection backlog, per-core outstanding loads),
      recorded at the levels sampled requests actually observed;
    * an optional JSONL stream (``path``): one ``meta`` row, one row
      per finished span, one row per gauge observation — the input to
      :mod:`repro.analysis.latency`.

    Sampling is a deterministic modulo counter over *eligible* (read,
    completion-carrying) requests, so a fixed-seed run traces the same
    requests every time.
    """

    def __init__(self, sample_every: int = 64, path: Optional[str] = None,
                 now_fn: Optional[Callable[[], int]] = None):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.path = path
        self._fh = open(path, "w", encoding="utf-8") if path else None
        self.now_fn: Callable[[], int] = now_fn or (lambda: 0)
        self.meta: dict = {}
        self._eligible = 0
        self._next_sid = 0
        self.started = 0
        self.finished = 0
        #: (side, metric) -> Histogram of that stage duration
        self.hists: dict[tuple[str, str], Histogram] = {}
        self.gauges: dict[str, Gauge] = {}
        self._closed = False

    @classmethod
    def to_file(cls, path: str, sample_every: int = 64) -> "SpanTracer":
        return cls(sample_every=sample_every, path=path)

    # -- wiring ------------------------------------------------------------

    def bind(self, system: "HeterogeneousSystem") -> None:
        """Called by the system once built: clock access + meta row."""
        self.now_fn = lambda: system.sim.now
        self.meta = {"mix": system.mix.name,
                     "policy": system.policy.name,
                     "scale": system.cfg.scale.name,
                     "seed": system.cfg.seed}
        self._write({"t": "meta", "sample": self.sample_every,
                     **self.meta})

    # -- span lifecycle ----------------------------------------------------

    def maybe_start(self, req: "MemRequest", now: int) -> None:
        """Sample ``req`` 1-in-N; on selection attach a span and hook
        completion.  Writes and callback-less requests are ineligible
        (nothing to time)."""
        if req.is_write or req.on_done is None:
            return
        self._eligible += 1
        if (self._eligible - 1) % self.sample_every:
            return
        sp = Span(self._next_sid, req.source, req.kind)
        self._next_sid += 1
        self.started += 1
        sp.stamp("issue", now)
        req.span = sp
        orig = req.on_done

        def finish(r, _sp=sp, _orig=orig, _self=self):
            _self._record_done(_sp)
            _orig(r)
        req.on_done = finish

    def _record_done(self, sp: Span) -> None:
        sp.stamp("done", self.now_fn())
        self.finished += 1
        side = "gpu" if sp.source == "gpu" else "cpu"
        cls, durs = stage_durations(sp.stages)
        hists = self.hists
        for metric, val in durs.items():
            h = hists.get((side, metric))
            if h is None:
                h = hists[(side, metric)] = Histogram()
            h.record(val)
        self._write({"t": "span", "sid": sp.sid, "src": sp.source,
                     "kind": sp.kind, "cls": cls,
                     "stages": [[s, t] for s, t in sp.stages]})

    # -- gauges ------------------------------------------------------------

    def gauge_record(self, name: str, tick: int, value: int,
                     **extra) -> None:
        """Record an occupancy observation (and stream it, with any
        facet fields like ``ch``/``bank``, for the timeline views)."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        g.record(value)
        if self._fh is not None:
            row = {"t": "gauge", "tick": tick, "name": name, "v": value}
            row.update(extra)
            self._write(row)

    # -- output ------------------------------------------------------------

    def _write(self, row: dict) -> None:
        if self._fh is not None:
            self._fh.write(json.dumps(row, separators=(",", ":"),
                                      sort_keys=True))
            self._fh.write("\n")

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SpanTracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- live report -------------------------------------------------------

    def side_hists(self, side: str) -> dict[str, Histogram]:
        """Metric -> Histogram for one side, in :data:`METRICS` order."""
        out = {}
        for metric in METRICS:
            h = self.hists.get((side, metric))
            if h is not None:
                out[metric] = h
        return out

    def format_report(self) -> str:
        """Per-source stage breakdown from the in-memory registry."""
        lines = []
        head = "span latency report"
        if self.meta:
            head += (f" — mix={self.meta.get('mix')} "
                     f"policy={self.meta.get('policy')} "
                     f"scale={self.meta.get('scale')}")
        lines.append(head + f"  (1-in-{self.sample_every} sampling)")
        lines.append(f"  spans: {self.finished} finished, "
                     f"{self.started - self.finished} open at harvest")
        for side in ("cpu", "gpu"):
            hists = self.side_hists(side)
            if not hists:
                continue
            total = hists.get("total")
            denom = total.total if total is not None and total.total else 0
            lines.append(f"  {side}:")
            lines.append(f"    {'stage':12s} {'n':>8s} {'mean':>9s} "
                         f"{'p50':>7s} {'p95':>7s} {'p99':>7s} "
                         f"{'share':>6s}")
            for metric, h in hists.items():
                share = (f"{100.0 * h.total / denom:5.1f}%"
                         if denom and metric != "total" else "     -")
                lines.append(
                    f"    {metric:12s} {h.n:8d} {h.mean:9.1f} "
                    f"{h.percentile(50):7d} {h.percentile(95):7d} "
                    f"{h.percentile(99):7d} {share:>6s}")
        if self.gauges:
            lines.append("  occupancy (request-weighted):")
            for name in sorted(self.gauges):
                s = self.gauges[name].summary()
                lines.append(
                    f"    {name:16s} n {int(s['n']):7d}  mean "
                    f"{s['mean']:7.2f}  p95 {int(s['p95']):5d}  max "
                    f"{int(s['max']):5d}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"SpanTracer(1/{self.sample_every}, "
                f"{self.finished} finished, "
                f"{len(self.gauges)} gauge(s))")
