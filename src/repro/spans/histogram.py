"""Fixed-bucket log2 histograms for latency distributions.

A :class:`Histogram` is 64 power-of-two buckets plus a zero bucket:
value ``v`` lands in bucket ``v.bit_length()``, so bucket ``i`` (for
``i >= 1``) covers ``[2**(i-1), 2**i - 1]``.  Recording is two integer
operations — cheap enough to sit on the always-on LLC hot path (the
per-side round-trip aggregates in :class:`repro.mem.llc.SharedLLC`)
as well as behind the sampled span tracer.

Percentiles are *bucket upper bounds*: ``percentile(p)`` returns the
upper edge of the first bucket whose cumulative count reaches ``p`` %
of the samples (clamped to the observed max), so the reported
p50/p95/p99 are guaranteed upper bounds on the true order statistics
(never under-reports a tail).
Histograms merge by bucket-wise addition, which is associative and
commutative — shard per channel/worker, merge at harvest.
"""

from __future__ import annotations

#: bucket count: bucket 0 holds zeros, bucket i holds bit_length == i;
#: 64 buckets cover every int64 tick delta the simulator can produce
N_BUCKETS = 65


class Histogram:
    """Log2-bucketed distribution of non-negative integer samples."""

    __slots__ = ("counts", "n", "total", "min", "max")

    def __init__(self):
        self.counts = [0] * N_BUCKETS
        self.n = 0
        self.total = 0
        self.min: int | None = None
        self.max: int | None = None

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self.counts[value.bit_length()] += 1
        self.n += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    @staticmethod
    def bucket_upper(index: int) -> int:
        """Inclusive upper edge of bucket ``index``."""
        return 0 if index == 0 else (1 << index) - 1

    def percentile(self, p: float) -> int:
        """Upper bound on the ``p``-th percentile (``p`` in [0, 100]).

        The bucket upper edge, clamped to the observed min/max (still a
        valid upper bound, and the report never shows p95 > max).
        Edge cases are pinned by ``tests/spans/test_histogram.py``:
        ``percentile(0)`` is exactly the observed min (not the first
        bucket's upper edge, which can overshoot), ``percentile(100)``
        is exactly the observed max, an empty histogram returns 0 for
        every ``p`` (matching the 0 min/max that :meth:`summary`
        reports), and values outside [0, 100] raise ``ValueError``.
        Monotone in ``p``: ``percentile(a) <= percentile(b)`` whenever
        ``a <= b``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile p={p!r} outside [0, 100]")
        if self.n == 0:
            return 0
        if p == 0:
            # the 0th percentile is the minimum; the generic bucket walk
            # would return the first non-empty bucket's *upper* edge,
            # which overshoots whenever min is not a bucket boundary
            return self.min
        need = p / 100.0 * self.n
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            # need > 0 here (p > 0, n > 0), so cum >= need implies the
            # bucket walk has passed at least one sample
            if cum >= need:
                return min(self.bucket_upper(i), self.max)
        return self.max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into ``self`` (bucket-wise add); returns self."""
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.n += other.n
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    def copy(self) -> "Histogram":
        out = Histogram()
        out.merge(self)
        return out

    def summary(self) -> dict[str, float]:
        """Scalar digest: n, mean, p50/p95/p99, min/max."""
        return {"n": self.n, "mean": self.mean,
                "p50": self.percentile(50), "p95": self.percentile(95),
                "p99": self.percentile(99),
                "min": self.min if self.min is not None else 0,
                "max": self.max if self.max is not None else 0}

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (self.counts == other.counts and self.n == other.n
                and self.total == other.total and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:
        return (f"Histogram(n={self.n}, mean={self.mean:.1f}, "
                f"p95={self.percentile(95)})")


class Gauge:
    """An occupancy level: last sampled value plus its distribution.

    Components call :meth:`record` with the *current* level (MSHR fill,
    a bank's queue depth, ring injection backlog) whenever a sampled
    request touches them, so the distribution is request-weighted —
    what a request actually saw, the queueing-relevant view.
    """

    __slots__ = ("name", "last", "hist")

    def __init__(self, name: str):
        self.name = name
        self.last = 0
        self.hist = Histogram()

    def record(self, value: int) -> None:
        self.last = value
        self.hist.record(value)

    def summary(self) -> dict[str, float]:
        out = self.hist.summary()
        out["last"] = self.last
        return out

    def __repr__(self) -> str:
        return f"Gauge({self.name}: last={self.last}, {self.hist!r})"
