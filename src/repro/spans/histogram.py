"""Back-compat shim: the metric primitives moved to ``repro.metrics``.

:class:`Histogram` and :class:`Gauge` started life here, serving the
span tracer and the LLC's always-on round-trip aggregates.  The
operational-metrics registry (:mod:`repro.metrics.registry`) needs the
same primitives without dragging in the tracing layer, so the single
implementation now lives in :mod:`repro.metrics.instruments`; this
module re-exports it so every existing import path
(``from repro.spans.histogram import Histogram``,
``from repro.spans import Gauge``) keeps working, pinned by
``tests/metrics/test_shim.py``.
"""

from repro.metrics.instruments import N_BUCKETS, Gauge, Histogram

__all__ = ["N_BUCKETS", "Gauge", "Histogram"]
