"""repro.spans — request-path span tracing with latency percentiles.

Where :mod:`repro.telemetry` records the *control loop* (FRPU/ATU/QoS
decisions), spans record the *data path*: a sampled
:class:`~repro.mem.request.MemRequest` is stamped at every stage
boundary — core/shader issue, LLC entry, hit/miss resolution, MSHR
allocation, DRAM queue entry, bank activation, data return — and the
tracer aggregates per-source latency distributions (p50/p95/p99 via
fixed-bucket log2 histograms) plus request-weighted occupancy gauges
(MSHR fill, per-bank DRAM queue depth, ring backlog).

* :class:`SpanTracer` — 1-in-N sampler, histogram registry, JSONL sink.
* :class:`Histogram` / :class:`Gauge` — the metric primitives (the
  LLC's always-on round-trip aggregates use them too).
* :func:`trace_mix` / :func:`trace_standalone` — one-call traced runs
  (what ``python -m repro run --trace-spans PATH`` uses).
* :mod:`repro.analysis.latency` — turn a span stream back into a
  per-policy, per-source stage breakdown and queue-depth timelines.

Zero-cost when off: no component holds a default-on tracer; every
stamp site guards with one ``is None`` test, and a traced run is
bit-identical to an untraced one (``tests/sim/test_spans_golden.py``).
See docs/latency.md for the stage glossary and worked examples.
"""

from repro.spans.histogram import Gauge, Histogram
from repro.spans.recording import trace_mix, trace_standalone
from repro.spans.tracer import (METRICS, STAGES, Span, SpanTracer,
                                stage_durations)

__all__ = ["Gauge", "Histogram", "Span", "SpanTracer", "STAGES",
           "METRICS", "stage_durations", "trace_mix",
           "trace_standalone"]
