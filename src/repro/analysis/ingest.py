"""Hardened ingestion for recorded JSONL streams.

Telemetry and span files are written line-by-line; a run that crashes or
is interrupted mid-write legitimately leaves a truncated final line, and
a corrupted disk can mangle any line.  Analysis must not fall over on
one bad byte — nor silently pretend the file was complete.  So: skip
malformed lines, count them, and say so once per file with a
:class:`MalformedLineWarning`.
"""

from __future__ import annotations

import json
import warnings
from typing import Optional, Tuple


class MalformedLineWarning(UserWarning):
    """A recorded stream contained unparseable lines that were skipped
    (most often a truncated trailing line from an interrupted run)."""


def warn_skipped(path: str, skipped: int, first_line: Optional[int],
                 total: int) -> None:
    if not skipped:
        return
    where = f" (first at line {first_line})" if first_line else ""
    warnings.warn(
        f"{path}: skipped {skipped} malformed line(s){where}, "
        f"kept {total} — truncated or corrupted recording?",
        MalformedLineWarning, stacklevel=3)


def read_jsonl(path: str) -> Tuple[list, int]:
    """Read a JSONL file into row dicts, skipping malformed lines.

    Returns ``(rows, skipped)``.  A non-zero ``skipped`` has already
    been reported through a single :class:`MalformedLineWarning`.
    """
    rows: list = []
    skipped = 0
    first_bad: Optional[int] = None
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                row = None
            if not isinstance(row, dict):
                skipped += 1
                if first_bad is None:
                    first_bad = lineno
                continue
            rows.append(row)
    warn_skipped(path, skipped, first_bad, len(rows))
    return rows, skipped
