"""Generic parameter sweeps over system configurations.

The ablation benches each hand-roll a small sweep; this utility makes
custom ones one-liners for downstream users::

    from repro.analysis.sweep import sweep, vary_qos
    rows = sweep("M7", policy="throtcpuprio", scale="smoke",
                 variations=vary_qos(target_fps=[30, 40, 50]))
    for row in rows:
        print(row.label, row.result.fps)

A *variation* is ``(label, transform)`` where ``transform`` maps a
``SystemConfig`` to a modified ``SystemConfig``; helpers build the
common ones (QoS knobs, DRAM knobs, LLC policy, GPU front end).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterable, Sequence

from repro.config import SystemConfig, default_config
from repro.mixes import mix as mix_by_name
from repro.policies import make_policy
from repro.sim.metrics import RunResult

Transform = Callable[[SystemConfig], SystemConfig]


@dataclass(frozen=True)
class SweepRow:
    label: str
    result: RunResult


def vary_qos(**lists) -> list[tuple[str, Transform]]:
    """One variation per value per QoS field, e.g.
    ``vary_qos(target_fps=[30, 40])``."""
    out = []
    for field_name, values in lists.items():
        for v in values:
            out.append((f"{field_name}={v}",
                        lambda cfg, f=field_name, v=v:
                        cfg.with_qos(**{f: v})))
    return out


def vary_dram(**lists) -> list[tuple[str, Transform]]:
    out = []
    for field_name, values in lists.items():
        for v in values:
            out.append((f"dram.{field_name}={v}",
                        lambda cfg, f=field_name, v=v:
                        replace(cfg, dram=replace(cfg.dram, **{f: v}))))
    return out


def vary_llc_policy(policies: Iterable[str]) -> list[tuple[str,
                                                           Transform]]:
    return [(f"llc.policy={p}",
             lambda cfg, p=p: replace(cfg, llc=replace(cfg.llc,
                                                       policy=p)))
            for p in policies]


def vary_frontend(frontends: Iterable[str] = ("procedural", "geometry")
                  ) -> list[tuple[str, Transform]]:
    return [(f"gpu_frontend={fe}",
             lambda cfg, fe=fe: replace(cfg, gpu_frontend=fe))
            for fe in frontends]


def sweep(mix_name: str, policy: str = "baseline", scale: str = "smoke",
          seed: int = 1,
          variations: Sequence[tuple[str, Transform]] = (),
          runner: Callable[[SystemConfig, object, object], RunResult]
          = None, jobs: int | None = None,
          executor: Callable[[list], list] = None) -> list[SweepRow]:
    """Run ``mix_name`` under ``policy`` once per variation.

    The default path routes through :func:`repro.exec.run_many`, so
    variation runs are cached persistently and fan out across cores
    when ``jobs`` (or ``REPRO_JOBS``) asks for more than one worker.
    ``runner`` is injectable for testing; passing one bypasses the
    executor and runs serially, uncached.  ``executor`` swaps the batch
    engine itself — specs in, outcomes out — which is how the CLI's
    ``--remote`` flag routes sweeps through a running service daemon
    (:func:`repro.service.remote_run_many`); it must raise on failure
    or return failed outcomes, like ``run_many(strict=True)``.
    """
    m = mix_by_name(mix_name)
    base = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    todo = list(variations) or [("base", lambda cfg: cfg)]
    if runner is not None:
        return [SweepRow(label, runner(transform(base), m,
                                       make_policy(policy)))
                for label, transform in todo]
    from repro.exec import BatchError, RunSpec, run_many
    specs = [RunSpec(mix=m, policy=policy, scale=scale, seed=seed,
                     cfg=transform(base)) for _label, transform in todo]
    if executor is not None:
        outcomes = executor(specs)
        if any(not out.ok for out in outcomes):
            raise BatchError(outcomes)
    else:
        outcomes = run_many(specs, jobs=jobs, strict=True)
    return [SweepRow(label, out.result)
            for (label, _t), out in zip(todo, outcomes)]
