"""One entry point per figure of the paper's evaluation.

Every function returns a plain dict of series keyed the way the paper's
axes are labelled, so benches and the report renderer share the data.
Heterogeneous runs are cached per ``(mix, policy, scale, seed)`` through
:mod:`repro.exec` (memory + persistent disk layers) — Figs. 9, 10 and 11
share the same three runs per mix, and Figs. 12-14 share their policy
sweeps.  When ``REPRO_JOBS`` asks for more than one worker, each figure
first *prefetches* its full run set through
:func:`repro.exec.run_many`, fanning independent simulations across
cores; the figure code then reads everything back from the cache.
"""

from __future__ import annotations

from repro.exec import (default_jobs, mix_spec, run_cached, run_many,
                        standalone_cpu_spec, standalone_gpu_spec)
from repro.mixes import (HIGH_FPS_MIXES, LOW_FPS_MIXES, MIXES_M, MIXES_W,
                         mix as mix_by_name)
from repro.sim import runner
from repro.sim.metrics import RunResult, combined_performance, geomean

#: the policy line-up of Figs. 12-14, in the paper's legend order
COMPARED_POLICIES = ["baseline", "sms-0.9", "sms-0", "dynprio", "helm",
                     "throtcpuprio"]


def hetero(mix_name: str, policy: str, scale: str = "test",
           seed: int = 1) -> RunResult:
    return run_cached(mix_spec(mix_name, policy, scale, seed))


def prefetch(pairs, scale: str = "test", seed: int = 1,
             jobs: int | None = None, alone_cpu: bool = False,
             alone_gpu_games=()) -> None:
    """Warm the result cache for a figure's ``(mix, policy)`` pairs.

    A no-op on the serial path (``jobs`` resolves to 1): the figure code
    then runs each simulation on demand, exactly as before.  With more
    workers, all misses execute concurrently via :func:`run_many`;
    failures are deferred to the on-demand path so they surface with
    their natural traceback.
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 1:
        return
    specs = [mix_spec(name, pol, scale, seed) for name, pol in pairs]
    if alone_cpu:
        apps = sorted({sid for name, _pol in pairs
                       for sid in mix_by_name(name).cpu_apps})
        specs += [standalone_cpu_spec(sid, scale, seed) for sid in apps]
    specs += [standalone_gpu_spec(g, scale, seed)
              for g in dict.fromkeys(alone_gpu_games)]
    run_many(specs, jobs=jobs)


def _ws_norm(mix_name: str, policy: str, scale: str, seed: int) -> float:
    """Weighted CPU speedup of a policy run, normalised to baseline."""
    base = hetero(mix_name, "baseline", scale, seed)
    run = hetero(mix_name, policy, scale, seed)
    ws_base = runner.weighted_speedup_for(base, scale, seed)
    ws_run = runner.weighted_speedup_for(run, scale, seed)
    return ws_run / ws_base if ws_base > 0 else 0.0


# ---------------------------------------------------------------- Fig. 1

def fig1(scale: str = "test", seed: int = 1,
         mixes: list[str] | None = None) -> dict:
    """Normalised CPU and GPU performance, heterogeneous vs standalone,
    for the W mixes (1 CPU + 1 GPU).  Paper: both sides lose ~22% mean.
    """
    names = mixes or sorted(MIXES_W, key=lambda n: int(n[1:]))
    prefetch([(n, "baseline") for n in names], scale, seed,
             alone_cpu=True,
             alone_gpu_games=[MIXES_W[n].gpu_app for n in names])
    cpu, gpu = {}, {}
    for name in names:
        m = MIXES_W[name]
        het = hetero(name, "baseline", scale, seed)
        alone_c = runner.standalone_cpu(m.cpu_apps[0], scale, seed)
        alone_g = runner.standalone_gpu(m.gpu_app, scale, seed)
        cpu[name] = het.cpu_ipcs[0] / alone_c.cpu_ipcs[0]
        gpu[name] = het.fps / alone_g.fps
    return {"cpu": cpu, "gpu": gpu,
            "gmean_cpu": geomean(cpu.values()),
            "gmean_gpu": geomean(gpu.values())}


# ---------------------------------------------------------------- Fig. 2

def fig2(scale: str = "test", seed: int = 1,
         mixes: list[str] | None = None) -> dict:
    """GPU FPS, standalone vs heterogeneous, against the 30 FPS line."""
    names = mixes or sorted(MIXES_W, key=lambda n: int(n[1:]))
    prefetch([(n, "baseline") for n in names], scale, seed,
             alone_gpu_games=[MIXES_W[n].gpu_app for n in names])
    standalone, het_fps, games = {}, {}, {}
    for name in names:
        m = MIXES_W[name]
        games[name] = m.gpu_app
        standalone[name] = runner.standalone_gpu(m.gpu_app, scale, seed).fps
        het_fps[name] = hetero(name, "baseline", scale, seed).fps
    return {"games": games, "standalone": standalone,
            "heterogeneous": het_fps, "reference_fps": 30.0}


# ---------------------------------------------------------------- Fig. 3

def fig3(scale: str = "test", seed: int = 1,
         mixes: list[str] | None = None) -> dict:
    """CPU speedup when ALL GPU read-miss fills bypass the LLC.
    Paper: ~2% mean CPU *loss*; some mixes gain, some lose double digits.
    """
    names = mixes or sorted(MIXES_W, key=lambda n: int(n[1:]))
    prefetch([(n, pol) for n in names
              for pol in ("baseline", "bypass-all")], scale, seed)
    speedup = {}
    for name in names:
        base = hetero(name, "baseline", scale, seed)
        byp = hetero(name, "bypass-all", scale, seed)
        speedup[name] = (byp.cpu_ipcs[0] / base.cpu_ipcs[0]
                         if base.cpu_ipcs[0] > 0 else 0.0)
    return {"speedup": speedup, "gmean": geomean(speedup.values())}


# ---------------------------------------------------------------- Fig. 8

def fig8(scale: str = "test", seed: int = 1,
         mixes: list[str] | None = None) -> dict:
    """Percent error of the dynamic frame-rate estimate, per GPU app.
    Paper: average error < 1%, max +6% / -4%.
    """
    names = mixes or sorted(MIXES_M, key=lambda n: int(n[1:]))
    prefetch([(n, "estimate") for n in names], scale, seed)
    errors, mean_abs = {}, {}
    for name in names:
        r = hetero(name, "estimate", scale, seed)
        game = MIXES_M[name].gpu_app
        errs = r.frpu_errors
        errors[game] = sum(errs) / len(errs) if errs else 0.0
        mean_abs[game] = (sum(abs(e) for e in errs) / len(errs)
                          if errs else 0.0)
    overall = sum(mean_abs.values()) / len(mean_abs) if mean_abs else 0.0
    return {"mean_error_pct": errors, "mean_abs_error_pct": mean_abs,
            "average_abs_error_pct": overall}


# ------------------------------------------------------- Figs. 9, 10, 11

def fig9(scale: str = "test", seed: int = 1,
         mixes: list[str] | None = None) -> dict:
    """FPS of throttle-amenable GPU apps (baseline / throttled /
    throttled+CPUprio) and the weighted CPU speedup of their mixes.
    Paper: FPS lands just above 40; CPU +11% / +18% mean.
    """
    names = mixes or HIGH_FPS_MIXES
    prefetch([(n, pol) for n in names
              for pol in ("baseline", "throttle", "throtcpuprio")],
             scale, seed, alone_cpu=True)
    fps = {p: {} for p in ("baseline", "throttle", "throtcpuprio")}
    ws = {p: {} for p in ("throttle", "throtcpuprio")}
    for name in names:
        game = MIXES_M[name].gpu_app
        for pol in ("baseline", "throttle", "throtcpuprio"):
            fps[pol][game] = hetero(name, pol, scale, seed).fps
        for pol in ("throttle", "throtcpuprio"):
            ws[pol][name] = _ws_norm(name, pol, scale, seed)
    return {"fps": fps,
            "ws_norm": ws,
            "gmean_ws": {p: geomean(v.values()) for p, v in ws.items()},
            "target_fps": 40.0}


def fig10(scale: str = "test", seed: int = 1,
          mixes: list[str] | None = None) -> dict:
    """Normalised LLC miss counts under throttling.
    Paper: GPU misses +39%/+42%; CPU misses -4%/-4.5%.
    """
    names = mixes or HIGH_FPS_MIXES
    prefetch([(n, pol) for n in names
              for pol in ("baseline", "throttle", "throtcpuprio")],
             scale, seed)
    gpu = {p: {} for p in ("throttle", "throtcpuprio")}
    cpu = {p: {} for p in ("throttle", "throtcpuprio")}
    for name in names:
        game = MIXES_M[name].gpu_app
        base = hetero(name, "baseline", scale, seed)
        for pol in ("throttle", "throtcpuprio"):
            run = hetero(name, pol, scale, seed)
            # normalise per frame / per instruction so longer throttled
            # runs compare like-for-like
            g_base = base.gpu_llc_misses / max(base.frames_rendered, 1)
            g_run = run.gpu_llc_misses / max(run.frames_rendered, 1)
            gpu[pol][game] = g_run / g_base if g_base else 0.0
            cpu[pol][name] = (run.cpu_llc_misses / base.cpu_llc_misses
                              if base.cpu_llc_misses else 0.0)
    return {"gpu_miss_norm": gpu, "cpu_miss_norm": cpu,
            "mean_gpu": {p: geomean(v.values()) for p, v in gpu.items()},
            "mean_cpu": {p: geomean(v.values()) for p, v in cpu.items()}}


def fig11(scale: str = "test", seed: int = 1,
          mixes: list[str] | None = None) -> dict:
    """Normalised GPU DRAM bandwidth (read/write) under throttling.
    Paper: total GPU bandwidth demand falls 35%/37%.
    """
    names = mixes or HIGH_FPS_MIXES
    prefetch([(n, pol) for n in names
              for pol in ("baseline", "throttle", "throtcpuprio")],
             scale, seed)

    def active_ticks(run: RunResult) -> int:
        # bandwidth is normalised over the GPU's *rendering* time, not
        # the (CPU-determined) run length — Fig. 11 reports the GPU's
        # demand on the DRAM while it renders
        return max(sum(run.frame_cycles) * 4, 1)

    out = {p: {} for p in ("throttle", "throtcpuprio")}
    for name in names:
        game = MIXES_M[name].gpu_app
        base = hetero(name, "baseline", scale, seed)
        b_read = base.dram_gpu_read_bytes / active_ticks(base)
        b_write = base.dram_gpu_write_bytes / active_ticks(base)
        for pol in ("throttle", "throtcpuprio"):
            run = hetero(name, pol, scale, seed)
            r_read = run.dram_gpu_read_bytes / active_ticks(run)
            r_write = run.dram_gpu_write_bytes / active_ticks(run)
            denom = b_read + b_write
            out[pol][game] = {
                "read": r_read / denom if denom else 0.0,
                "write": r_write / denom if denom else 0.0,
                "baseline_read": b_read / denom if denom else 0.0,
                "baseline_write": b_write / denom if denom else 0.0,
                "total": (r_read + r_write) / denom if denom else 0.0,
            }
    mean_total = {p: geomean([v["total"] for v in d.values()])
                  for p, d in out.items()}
    return {"bandwidth": out, "mean_total_norm": mean_total}


# ------------------------------------------------------- Figs. 12, 13, 14

def fig12(scale: str = "test", seed: int = 1,
          mixes: list[str] | None = None,
          policies: list[str] | None = None) -> dict:
    """Policy comparison on the high-FPS mixes: FPS (top) and normalised
    weighted CPU speedup (bottom).
    Paper means: SMS-0.9 +4%, SMS-0 +4%, DynPrio +10%, HeLM +3%,
    proposal +18%; every policy keeps FPS above 40.
    """
    names = mixes or HIGH_FPS_MIXES
    pols = policies or COMPARED_POLICIES
    prefetch([(n, pol) for n in names for pol in pols], scale, seed,
             alone_cpu=True)
    fps = {p: {} for p in pols}
    ws = {p: {} for p in pols}
    for name in names:
        game = MIXES_M[name].gpu_app
        for pol in pols:
            fps[pol][game] = hetero(name, pol, scale, seed).fps
            ws[pol][name] = _ws_norm(name, pol, scale, seed)
    return {"fps": fps, "ws_norm": ws,
            "gmean_ws": {p: geomean(v.values()) for p, v in ws.items()},
            "target_fps": 40.0}


def fig13(scale: str = "test", seed: int = 1,
          mixes: list[str] | None = None,
          policies: list[str] | None = None) -> dict:
    """Policy comparison on the low-FPS mixes (proposal stays disabled):
    normalised FPS (top) and weighted CPU speedup (bottom).
    Paper: SMS large FPS losses; DynPrio ~= baseline; HeLM -7% FPS,
    +4% CPU; proposal ~= baseline.
    """
    names = mixes or LOW_FPS_MIXES
    pols = policies or COMPARED_POLICIES
    prefetch([(n, pol) for n in names for pol in pols], scale, seed,
             alone_cpu=True)
    fps_norm = {p: {} for p in pols}
    ws = {p: {} for p in pols}
    for name in names:
        game = MIXES_M[name].gpu_app
        base = hetero(name, "baseline", scale, seed)
        for pol in pols:
            run = hetero(name, pol, scale, seed)
            fps_norm[pol][game] = run.fps / base.fps if base.fps else 0.0
            ws[pol][name] = _ws_norm(name, pol, scale, seed)
    return {"fps_norm": fps_norm, "ws_norm": ws,
            "gmean_fps": {p: geomean(v.values())
                          for p, v in fps_norm.items()},
            "gmean_ws": {p: geomean(v.values()) for p, v in ws.items()}}


def fig14(scale: str = "test", seed: int = 1,
          mixes: list[str] | None = None,
          policies: list[str] | None = None) -> dict:
    """Equal-weight combined CPU+GPU performance on the low-FPS mixes.
    Paper: proposal and DynPrio ~= baseline, SMS large losses, HeLM -1%.
    """
    f13 = fig13(scale, seed, mixes, policies)
    names = mixes or LOW_FPS_MIXES
    pols = policies or COMPARED_POLICIES
    combined = {p: {} for p in pols}
    for name in names:
        game = MIXES_M[name].gpu_app
        for pol in pols:
            combined[pol][name] = combined_performance(
                f13["ws_norm"][pol][name], f13["fps_norm"][pol][game])
    return {"combined": combined,
            "gmean": {p: geomean(v.values()) for p, v in combined.items()}}


def clear_caches() -> None:
    """Drop the in-process result cache (the disk layer persists)."""
    runner.clear_caches()
