"""Head-to-head evaluation of frame-time predictors.

The FRPU seam (:mod:`repro.predict`, docs/predictors.md) makes the
frame-time estimator a pluggable component; this module answers the
question that creates: *which predictor should you run?*  For each mix
it runs the throttling policy once per predictor (plus the unthrottled
baseline policy for normalisation) and produces two tables:

* **accuracy** — per-prediction mean absolute percent error and signed
  bias, overall and split into the *early* window (the first
  ``EARLY_FRAMES`` frames, where history is thin and the reference
  extrapolator is still learning) and the *steady* remainder;
* **end-to-end** — what the predictor choice does to the paper's
  headline numbers: GPU FPS and CPU weighted speedup, each relative to
  the unthrottled baseline policy.

Runs route through :mod:`repro.exec`, so everything is cached
persistently and fans out across cores under ``REPRO_JOBS``.

    from repro.analysis.predictors import compare_predictors
    cmp = compare_predictors(mixes=("M7",), scale="smoke")
    print(cmp.format())

CLI: ``python -m repro compare-predictors --mixes M1,M7 --scale test``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.config import PREDICTORS, default_config
from repro.exec import RunSpec, run_many
from repro.exec.specs import mix_spec
from repro.sim.metrics import RunResult
from repro.sim.runner import weighted_speedup_for

#: frame-index boundary between the "early" accuracy window (cold
#: history: the reference extrapolator's first learning pass, the
#: learned predictors' min_history ramp) and "steady" state
EARLY_FRAMES = 4

#: the unthrottled policy every end-to-end delta normalises against
BASELINE_POLICY = "baseline"


@dataclass(frozen=True)
class Accuracy:
    """MAE/bias summary of one slice of a prediction log."""

    n: int
    mae_pct: float            # mean |100 * (pred - actual) / actual|
    bias_pct: float           # mean signed percent error

    def format(self) -> str:
        if self.n == 0:
            return "      -      -"
        return f"{self.mae_pct:6.2f} {self.bias_pct:+6.2f}"


def accuracy(log: Sequence[tuple[int, float, float]],
             lo: int = 0, hi: Optional[int] = None) -> Accuracy:
    """Summarise ``(frame, predicted, actual)`` samples with
    ``lo <= frame < hi`` (``hi=None`` = unbounded)."""
    errs = [100.0 * (p - a) / a for f, p, a in log
            if a > 0 and f >= lo and (hi is None or f < hi)]
    if not errs:
        return Accuracy(0, 0.0, 0.0)
    return Accuracy(len(errs),
                    sum(abs(e) for e in errs) / len(errs),
                    sum(errs) / len(errs))


@dataclass(frozen=True)
class PredictorRow:
    """One (mix, predictor) cell of the comparison."""

    mix: str
    predictor: str
    result: RunResult
    overall: Accuracy
    early: Accuracy
    steady: Accuracy
    cpu_ws: float             # weighted speedup vs standalone IPCs
    #: end-to-end deltas vs the unthrottled baseline policy
    fps_vs_baseline: float
    ws_vs_baseline: float

    @property
    def fps(self) -> float:
        return self.result.fps


@dataclass
class Comparison:
    """Everything ``compare-predictors`` produced, ready to render."""

    scale: str
    seed: int
    policy: str
    mixes: tuple[str, ...]
    predictors: tuple[str, ...]
    #: mix -> (baseline-policy FPS, baseline-policy CPU WS)
    baselines: dict[str, tuple[float, float]]
    rows: list[PredictorRow]

    def rows_for(self, mix_name: str) -> list[PredictorRow]:
        return [r for r in self.rows if r.mix == mix_name]

    def row(self, mix_name: str, predictor: str) -> PredictorRow:
        for r in self.rows:
            if r.mix == mix_name and r.predictor == predictor:
                return r
        raise KeyError((mix_name, predictor))

    # -- rendering ---------------------------------------------------------

    def format_accuracy(self) -> str:
        """Per-phase prediction accuracy, one block per mix."""
        lines = [f"prediction accuracy @ {self.scale} "
                 f"(MAE% / bias%; early = frames < {EARLY_FRAMES})"]
        header = (f"  {'predictor':12s} {'n':>4s} "
                  f"{'overall':>13s} {'early':>13s} {'steady':>13s}")
        for m in self.mixes:
            lines.append(f"{m}:")
            lines.append(header)
            for r in self.rows_for(m):
                lines.append(
                    f"  {r.predictor:12s} {r.overall.n:4d} "
                    f"{r.overall.format():>13s} {r.early.format():>13s} "
                    f"{r.steady.format():>13s}")
        return "\n".join(lines)

    def format_end_to_end(self) -> str:
        """FPS / CPU weighted-speedup deltas vs the baseline policy."""
        lines = [f"end-to-end impact @ {self.scale} "
                 f"({self.policy} vs {BASELINE_POLICY})"]
        for m in self.mixes:
            base_fps, base_ws = self.baselines[m]
            lines.append(f"{m}: baseline {base_fps:.1f} FPS, "
                         f"CPU WS {base_ws:.3f}")
            lines.append(f"  {'predictor':12s} {'GPU FPS':>8s} "
                         f"{'dFPS%':>7s} {'CPU WS':>7s} {'dWS%':>7s}")
            for r in self.rows_for(m):
                lines.append(
                    f"  {r.predictor:12s} {r.fps:8.1f} "
                    f"{100 * (r.fps_vs_baseline - 1):+7.1f} "
                    f"{r.cpu_ws:7.3f} "
                    f"{100 * (r.ws_vs_baseline - 1):+7.1f}")
        return "\n".join(lines)

    def format(self) -> str:
        return self.format_accuracy() + "\n\n" + self.format_end_to_end()


def predictor_spec(mix_name: str, predictor: str, scale: str = "test",
                   seed: int = 1,
                   policy: str = "throtcpuprio") -> RunSpec:
    """The RunSpec for one (mix, predictor) cell.

    The predictor rides in an explicit :class:`SystemConfig`, so the
    content-addressed cache keys each predictor's runs separately.
    """
    return mix_spec(mix_name, policy, scale, seed, predictor=predictor)


def compare_predictors(mixes: Sequence[str] = ("M1", "M7"),
                       predictors: Sequence[str] = PREDICTORS,
                       scale: str = "smoke", seed: int = 1,
                       policy: str = "throtcpuprio",
                       jobs: Optional[int] = None,
                       progress: Optional[Callable] = None,
                       executor: Optional[Callable[[list], list]] = None
                       ) -> Comparison:
    """Run the head-to-head: every mix x every predictor, plus one
    baseline-policy run per mix for the end-to-end deltas.

    ``executor`` swaps the batch engine (specs in, outcomes out), which
    is how ``--remote`` routes the suite through a service daemon;
    otherwise :func:`repro.exec.run_many` runs (and caches) locally.
    """
    mixes = tuple(mixes)
    predictors = tuple(predictors)
    for p in predictors:
        if p not in PREDICTORS:
            raise ValueError(f"unknown predictor {p!r}; "
                             f"choose from {'/'.join(PREDICTORS)}")
    specs = [mix_spec(m, BASELINE_POLICY, scale, seed) for m in mixes]
    specs += [predictor_spec(m, p, scale, seed, policy)
              for m in mixes for p in predictors]
    if executor is not None:
        outcomes = executor(specs)
        bad = [o for o in outcomes if not o.ok]
        if bad:
            raise RuntimeError(
                f"{len(bad)} predictor run(s) failed remotely: "
                f"{bad[0].spec.label}: {bad[0].error}")
    else:
        outcomes = run_many(specs, jobs=jobs, strict=True,
                            progress=progress)
    results = [o.result for o in outcomes]
    baselines: dict[str, tuple[float, float]] = {}
    for m, r in zip(mixes, results[:len(mixes)]):
        ws = weighted_speedup_for(r, scale, seed) if r.cpu_apps else 0.0
        baselines[m] = (r.fps, ws)
    rows: list[PredictorRow] = []
    it = iter(results[len(mixes):])
    for m in mixes:
        base_fps, base_ws = baselines[m]
        for p in predictors:
            r = next(it)
            ws = weighted_speedup_for(r, scale, seed) \
                if r.cpu_apps else 0.0
            log = r.prediction_log
            rows.append(PredictorRow(
                mix=m, predictor=p, result=r,
                overall=accuracy(log),
                early=accuracy(log, hi=EARLY_FRAMES),
                steady=accuracy(log, lo=EARLY_FRAMES),
                cpu_ws=ws,
                fps_vs_baseline=r.fps / base_fps if base_fps else
                math.inf,
                ws_vs_baseline=ws / base_ws if base_ws else math.inf))
    return Comparison(scale=scale, seed=seed, policy=policy,
                      mixes=mixes, predictors=predictors,
                      baselines=baselines, rows=rows)
