"""Timeline analysis of telemetry recordings.

Loads a ``--telemetry`` recording (JSONL or CSV, or the in-memory
record list of a live :class:`repro.telemetry.Telemetry`) back into
typed records and derives the control-loop views the paper plots:

* :meth:`Timeline.per_frame_table` — one row per frame joining the
  ``frame``, ``frpu_error`` and ``atu_update`` streams (frame time,
  prediction error, throttle stall, gate state).
* :meth:`Timeline.gating_duty_cycle` — fraction of the recorded span
  the ATU gate was open, reconstructed from ``gate`` edge events.
* :meth:`Timeline.summary` — scalar digest of the whole recording.
* :func:`plot_prediction_error` / :func:`plot_gating_vs_ipc` —
  matplotlib figures (FRPU error over frames, Fig. 8 flavour; gate
  spans against interval CPU IPC).  matplotlib is imported lazily and
  is **optional**: every tabular entry point works without it.

Usage::

    from repro.analysis.timeline import Timeline
    tl = Timeline.load("run.jsonl")
    for row in tl.per_frame_table():
        print(row)
    print(tl.summary())
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, Optional, Tuple

from repro.analysis.ingest import read_jsonl, warn_skipped
from repro.telemetry.events import SCHEMA

_CASTS = {"int": int, "float": float, "str": str}


def _coerce(record: dict) -> dict:
    """Cast a stringly CSV row back to the schema's field kinds."""
    etype = record.get("type", "")
    spec = SCHEMA.get(etype)
    if spec is None:
        return record
    out = {"type": etype}
    for f in spec.fields:
        raw = record.get(f.name)
        if raw is None or raw == "":
            continue
        out[f.name] = _CASTS[f.kind](raw)
    return out


def load_records(path: str) -> list[dict]:
    """Read a telemetry file (.jsonl/.json or .csv) into record dicts.

    Malformed lines (a truncated tail from an interrupted run, a row
    that no longer casts against the schema) are skipped with a counted
    :class:`~repro.analysis.ingest.MalformedLineWarning`.
    """
    return _load_records(path)[0]


def _load_records(path: str) -> Tuple[list, int]:
    ext = os.path.splitext(path)[1].lower()
    if ext != ".csv":
        return read_jsonl(path)
    records: list = []
    skipped = 0
    first_bad: Optional[int] = None
    with open(path, newline="", encoding="utf-8") as fh:
        # header is line 1; DictReader yields data rows from line 2
        for lineno, row in enumerate(csv.DictReader(fh), 2):
            try:
                records.append(_coerce(row))
            except (ValueError, TypeError):
                skipped += 1
                if first_bad is None:
                    first_bad = lineno
    warn_skipped(path, skipped, first_bad, len(records))
    return records, skipped


class Timeline:
    """A telemetry recording, indexed by event type for analysis."""

    def __init__(self, records: Iterable[dict]):
        self.records = list(records)
        #: malformed lines dropped by :meth:`load` (0 for in-memory use)
        self.skipped_lines: int = 0
        self.by_type: dict[str, list[dict]] = {}
        for r in self.records:
            self.by_type.setdefault(r.get("type", "?"), []).append(r)
        meta = self.by_type.get("run_meta")
        self.meta: dict = meta[0] if meta else {}

    @classmethod
    def load(cls, path: str) -> "Timeline":
        records, skipped = _load_records(path)
        tl = cls(records)
        tl.skipped_lines = skipped
        return tl

    @classmethod
    def from_telemetry(cls, telemetry) -> "Timeline":
        """Wrap a live Telemetry's in-memory buffer (``buffer=True``)."""
        return cls(telemetry.records)

    def __len__(self) -> int:
        return len(self.records)

    def events(self, etype: str) -> list[dict]:
        return self.by_type.get(etype, [])

    @property
    def span_ticks(self) -> int:
        ticks = [r["tick"] for r in self.records if "tick" in r]
        return max(ticks) - min(ticks) if ticks else 0

    # -- derived views ------------------------------------------------------

    def gate_spans(self) -> list[tuple[int, int]]:
        """(open_tick, close_tick) spans from the gate edge stream.

        A still-open gate at the end of the recording closes at the
        last recorded tick.
        """
        spans: list[tuple[int, int]] = []
        opened: Optional[int] = None
        for e in self.events("gate"):
            if e["state"] == "open" and opened is None:
                opened = e["tick"]
            elif e["state"] == "closed" and opened is not None:
                spans.append((opened, e["tick"]))
                opened = None
        if opened is not None:
            end = max((r["tick"] for r in self.records if "tick" in r),
                      default=opened)
            spans.append((opened, max(end, opened)))
        return spans

    def gating_duty_cycle(self) -> float:
        """Fraction of the recorded span the ATU gate was open."""
        span = self.span_ticks
        if not span:
            return 0.0
        open_ticks = sum(b - a for a, b in self.gate_spans())
        return open_ticks / span

    def per_frame_table(self) -> list[dict]:
        """One row per rendered frame, joining the per-frame streams.

        Columns: ``frame``, ``tick``, ``cycles``, ``llc_accesses``,
        ``throttle_cycles``, ``n_rtps`` (from ``frame`` events),
        ``predicted_cycles`` / ``error_pct`` (from ``frpu_error``,
        when the FRPU predicted that frame), ``phase`` (the FRPU phase
        entered at that frame, if any) and ``gated`` (1 if the ATU gate
        was open at any point during the frame).
        """
        errors = {e["frame"]: e for e in self.events("frpu_error")}
        phases = {e["frame"]: e["phase"] for e in self.events("frpu_phase")}
        spans = self.gate_spans()
        rows: list[dict] = []
        prev_end = 0
        for f in self.events("frame"):
            start, end = prev_end, f["tick"]
            prev_end = end
            gated = any(a < end and b > start for a, b in spans)
            row = {"frame": f["frame"], "tick": f["tick"],
                   "cycles": f["cycles"],
                   "llc_accesses": f["llc_accesses"],
                   "throttle_cycles": f["throttle_cycles"],
                   "n_rtps": f["n_rtps"],
                   "predicted_cycles": None, "error_pct": None,
                   "phase": phases.get(f["frame"], ""),
                   "gated": int(gated)}
            err = errors.get(f["frame"])
            if err is not None:
                row["predicted_cycles"] = err["predicted_cycles"]
                row["error_pct"] = err["error_pct"]
            rows.append(row)
        return rows

    def summary(self) -> dict:
        """Scalar digest of the recording."""
        frames = self.events("frame")
        errs = [abs(e["error_pct"]) for e in self.events("frpu_error")]
        updates = self.events("atu_update")
        out = {
            "records": len(self.records),
            "span_ticks": self.span_ticks,
            "frames": len(frames),
            "mean_frame_cycles": (sum(f["cycles"] for f in frames)
                                  / len(frames)) if frames else 0.0,
            "frpu_predictions": len(errs),
            "frpu_mean_abs_error_pct": (sum(errs) / len(errs)) if errs
            else 0.0,
            "atu_updates": len(updates),
            "gate_spans": len(self.gate_spans()),
            "gating_duty_cycle": self.gating_duty_cycle(),
            "dram_priority_flips": len(self.events("dram_priority")),
        }
        out.update({k: self.meta[k] for k in ("mix", "policy", "scale")
                    if k in self.meta})
        return out

    def format_table(self, max_rows: int = 40) -> str:
        """Human-readable per-frame table (for the CLI / notebooks)."""
        rows = self.per_frame_table()
        hdr = (f"{'frame':>5s} {'cycles':>10s} {'accesses':>9s} "
               f"{'stall':>8s} {'err%':>7s} {'phase':>10s} {'gated':>5s}")
        lines = [hdr]
        for row in rows[:max_rows]:
            err = f"{row['error_pct']:+7.2f}" if row["error_pct"] is not None \
                else "      -"
            lines.append(
                f"{row['frame']:5d} {row['cycles']:10,d} "
                f"{row['llc_accesses']:9,d} {row['throttle_cycles']:8,d} "
                f"{err} {row['phase'] or '-':>10s} {row['gated']:5d}")
        if len(rows) > max_rows:
            lines.append(f"  ... {len(rows) - max_rows} more frame(s)")
        return "\n".join(lines)


# -- plots (matplotlib optional) --------------------------------------------

def _pyplot():
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:          # matplotlib is an optional extra
        raise RuntimeError(
            "plotting needs matplotlib, which is not installed; the "
            "tabular Timeline API (per_frame_table/summary) works "
            "without it") from exc
    return plt


def plot_prediction_error(timeline: Timeline, out_path: str) -> str:
    """FRPU prediction error per frame (the paper's Fig. 8 flavour)."""
    plt = _pyplot()
    errs = timeline.events("frpu_error")
    fig, ax = plt.subplots(figsize=(8, 3))
    ax.axhline(0.0, color="0.7", lw=0.8)
    ax.plot([e["frame"] for e in errs], [e["error_pct"] for e in errs],
            marker=".", lw=0.8, label="prediction error")
    for f in timeline.events("frpu_phase"):
        if f["phase"] == "learning":
            ax.axvline(f["frame"], color="tab:red", lw=0.6, alpha=0.5)
    ax.set_xlabel("frame")
    ax.set_ylabel("error (%)")
    ax.set_title(f"FRPU prediction error — "
                 f"{timeline.meta.get('mix', '?')}/"
                 f"{timeline.meta.get('policy', '?')}")
    ax.legend(loc="best", fontsize=8)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    plt.close(fig)
    return out_path


def plot_gating_vs_ipc(timeline: Timeline, out_path: str) -> str:
    """Gate-open spans shaded under the interval CPU IPC curve."""
    plt = _pyplot()
    samples = timeline.events("cpu_interval")
    fig, ax = plt.subplots(figsize=(8, 3))
    ax.plot([s["tick"] for s in samples], [s["ipc"] for s in samples],
            lw=0.9, label="CPU IPC (interval)")
    for i, (a, b) in enumerate(timeline.gate_spans()):
        ax.axvspan(a, b, color="tab:orange", alpha=0.25,
                   label="gate open" if i == 0 else None)
    ax.set_xlabel("tick")
    ax.set_ylabel("IPC")
    duty = timeline.gating_duty_cycle()
    ax.set_title(f"GPU gating vs. CPU IPC — duty cycle {duty:.0%}")
    ax.legend(loc="best", fontsize=8)
    fig.tight_layout()
    fig.savefig(out_path, dpi=120)
    plt.close(fig)
    return out_path
