"""Offline analysis of span streams (``--trace-spans`` output).

Loads a JSONL span stream back into typed records and derives the
latency-attribution views the paper's mechanism story needs
(Sections III-V: *where* do CPU requests wait, and how does GPU
throttling change that):

* :meth:`SpanReport.stage_table` — per-source stage breakdown
  (n / mean / p50 / p95 / p99 / share of total cycles) rebuilt from the
  recorded spans with the same log2 histograms the live tracer uses.
* :meth:`SpanReport.class_mix` — hit / miss / merge / queued-hit span
  counts per source.
* :meth:`SpanReport.queue_timeline` — time-bucketed means of one
  occupancy gauge (MSHR fill, per-bank DRAM queue depth, ring backlog).
* :func:`compare` — side-by-side stage shares of two recordings
  (e.g. baseline vs. throttled), the worked example in docs/latency.md.

Usage::

    from repro.analysis.latency import SpanReport
    rep = SpanReport.load("spans.jsonl")
    print(rep.format_report())
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.ingest import read_jsonl
from repro.spans.histogram import Histogram
from repro.spans.tracer import METRICS, stage_durations


def load_rows(path: str) -> list[dict]:
    """Read a span-stream JSONL file into row dicts.

    Malformed or truncated lines (an interrupted run's torn tail) are
    skipped with a counted :class:`~repro.analysis.ingest.
    MalformedLineWarning` rather than aborting the analysis.
    """
    rows, _skipped = read_jsonl(path)
    return rows


class SpanReport:
    """A span recording, indexed for latency attribution."""

    def __init__(self, rows: Iterable[dict]):
        self.meta: dict = {}
        self.spans: list[dict] = []
        self.gauge_rows: list[dict] = []
        #: malformed lines dropped by :meth:`load` (0 for in-memory rows)
        self.skipped_lines: int = 0
        for r in rows:
            t = r.get("t")
            if t == "span":
                self.spans.append(r)
            elif t == "gauge":
                self.gauge_rows.append(r)
            elif t == "meta":
                self.meta = r
        #: (side, metric) -> Histogram, rebuilt from the recorded spans
        self.hists: dict[tuple[str, str], Histogram] = {}
        #: (side, cls) -> span count
        self.classes: dict[tuple[str, str], int] = {}
        for sp in self.spans:
            side = "gpu" if sp["src"] == "gpu" else "cpu"
            cls, durs = stage_durations([(s, t) for s, t in sp["stages"]])
            key = (side, cls)
            self.classes[key] = self.classes.get(key, 0) + 1
            for metric, val in durs.items():
                h = self.hists.get((side, metric))
                if h is None:
                    h = self.hists[(side, metric)] = Histogram()
                h.record(val)

    @classmethod
    def load(cls, path: str) -> "SpanReport":
        rows, skipped = read_jsonl(path)
        report = cls(rows)
        report.skipped_lines = skipped
        return report

    @classmethod
    def from_tracer(cls, tracer) -> "SpanReport":
        """Adopt a live tracer's registry (no file round-trip).

        Only the histogram/meta views are available — per-span rows are
        not retained in memory by the tracer.
        """
        rep = cls([])
        rep.meta = dict(tracer.meta)
        rep.hists = dict(tracer.hists)
        return rep

    def __len__(self) -> int:
        return len(self.spans)

    # -- stage attribution ---------------------------------------------------

    def stage_table(self, side: str) -> list[dict]:
        """One row per duration metric for one side, in METRICS order.

        ``share`` is the metric's summed cycles over the side's summed
        ``total`` cycles — for misses the stage metrics partition
        ``total``, so shares answer "where did the cycles go".
        """
        total = self.hists.get((side, "total"))
        denom = total.total if total is not None else 0
        rows: list[dict] = []
        for metric in METRICS:
            h = self.hists.get((side, metric))
            if h is None:
                continue
            rows.append({
                "metric": metric, "n": h.n, "mean": round(h.mean, 1),
                "p50": h.percentile(50), "p95": h.percentile(95),
                "p99": h.percentile(99),
                "share": (round(h.total / denom, 4)
                          if denom and metric != "total" else None)})
        return rows

    def class_mix(self, side: str) -> dict[str, int]:
        """Span counts by class (hit/miss/merge/queued_hit/open)."""
        return {cls: n for (s, cls), n in sorted(self.classes.items())
                if s == side}

    def stage_share(self, side: str, metric: str) -> float:
        """One metric's share of the side's total recorded cycles."""
        total = self.hists.get((side, "total"))
        h = self.hists.get((side, metric))
        if total is None or h is None or not total.total:
            return 0.0
        return h.total / total.total

    # -- occupancy timelines -------------------------------------------------

    def gauge_names(self) -> list[str]:
        return sorted({r["name"] for r in self.gauge_rows})

    def queue_timeline(self, name: str, buckets: int = 20,
                       facet: Optional[str] = None) -> list[dict]:
        """Time-bucketed means of one gauge's observations.

        Returns rows ``{"tick", "mean", "max", "n"}`` (bucket start
        tick); with ``facet`` (``"ch"`` or ``"bank"``) the rows carry
        the facet value and each facet is bucketed separately.
        """
        rows = [r for r in self.gauge_rows if r["name"] == name]
        if not rows:
            return []
        lo = min(r["tick"] for r in rows)
        hi = max(r["tick"] for r in rows)
        width = max((hi - lo) // buckets + 1, 1)
        acc: dict[tuple, list[int]] = {}
        for r in rows:
            b = (r["tick"] - lo) // width
            key = (r.get(facet), b) if facet else (None, b)
            acc.setdefault(key, []).append(r["v"])
        out: list[dict] = []
        for (fv, b), vals in sorted(acc.items(),
                                    key=lambda kv: (str(kv[0][0]),
                                                    kv[0][1])):
            row = {"tick": lo + b * width,
                   "mean": round(sum(vals) / len(vals), 2),
                   "max": max(vals), "n": len(vals)}
            if facet:
                row[facet] = fv
            out.append(row)
        return out

    # -- rendering -----------------------------------------------------------

    def format_report(self, max_timeline_rows: int = 12) -> str:
        """The CLI's per-source stage breakdown + occupancy digest."""
        lines = []
        head = "latency report"
        if self.meta:
            head += (f" — mix={self.meta.get('mix')} "
                     f"policy={self.meta.get('policy')} "
                     f"scale={self.meta.get('scale')} "
                     f"(1-in-{self.meta.get('sample')} sampling)")
        lines.append(head)
        lines.append(f"  spans: {len(self.spans)}")
        for side in ("cpu", "gpu"):
            table = self.stage_table(side)
            if not table:
                continue
            mix = self.class_mix(side)
            mix_str = " ".join(f"{c}={n}" for c, n in mix.items())
            lines.append(f"  {side} ({mix_str}):")
            lines.append(f"    {'stage':12s} {'n':>8s} {'mean':>9s} "
                         f"{'p50':>7s} {'p95':>7s} {'p99':>7s} "
                         f"{'share':>6s}")
            for row in table:
                share = (f"{100.0 * row['share']:5.1f}%"
                         if row["share"] is not None else "     -")
                lines.append(
                    f"    {row['metric']:12s} {row['n']:8d} "
                    f"{row['mean']:9.1f} {row['p50']:7d} {row['p95']:7d} "
                    f"{row['p99']:7d} {share:>6s}")
        names = self.gauge_names()
        if names:
            lines.append("  occupancy timelines (bucket means):")
            for name in names:
                tl = self.queue_timeline(name, buckets=max_timeline_rows)
                peak = max((r["max"] for r in tl), default=0)
                curve = " ".join(f"{r['mean']:.0f}" for r in tl)
                lines.append(f"    {name:16s} peak {peak:5d}  [{curve}]")
        return "\n".join(lines)


def compare(a: SpanReport, b: SpanReport,
            side: str = "cpu") -> list[dict]:
    """Stage-share deltas between two recordings (a -> b).

    The paper's claim in span terms: under GPU throttling the CPU's
    ``dram_queue`` share should fall versus baseline.  Rows:
    ``{"metric", "a_share", "b_share", "delta"}``.
    """
    rows: list[dict] = []
    for metric in METRICS:
        if metric == "total":
            continue
        sa = round(a.stage_share(side, metric), 4)
        sb = round(b.stage_share(side, metric), 4)
        if sa == 0.0 and sb == 0.0:
            continue
        rows.append({"metric": metric, "a_share": sa, "b_share": sb,
                     "delta": round(sb - sa, 4)})
    return rows


def format_comparison(a: SpanReport, b: SpanReport,
                      side: str = "cpu") -> str:
    """Render :func:`compare` with the recordings' policy names."""
    pa = a.meta.get("policy", "a")
    pb = b.meta.get("policy", "b")
    lines = [f"{side} stage shares: {pa} vs {pb}",
             f"  {'stage':12s} {pa:>12s} {pb:>12s} {'delta':>8s}"]
    for row in compare(a, b, side):
        lines.append(f"  {row['metric']:12s} "
                     f"{100 * row['a_share']:11.1f}% "
                     f"{100 * row['b_share']:11.1f}% "
                     f"{100 * row['delta']:+7.1f}%")
    return "\n".join(lines)
