"""Run diagnostics: time-series probes over a live system.

A :class:`Probe` samples the machine at a fixed tick interval and
collects time series (DRAM queue depths, bandwidth, LLC occupancy by
side, GPU progress, throttle state).  Attach before ``run()``::

    system = HeterogeneousSystem(cfg, mix, policy)
    probe = Probe(system, interval_ticks=5000)
    system.run()
    print(probe.ascii_timeline("gpu_occupancy"))

Used by the diagnostics example and handy when calibrating workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import HeterogeneousSystem


class Probe:
    SERIES = ("ticks", "gpu_frames", "gpu_progress", "gpu_occupancy",
              "cpu_occupancy", "dram_queue", "gpu_outstanding",
              "wg_ticks", "throttling", "cpu_instructions")

    def __init__(self, system: "HeterogeneousSystem",
                 interval_ticks: int = 4096):
        self.system = system
        self.interval = interval_ticks
        self.series: dict[str, list[float]] = {k: [] for k in self.SERIES}
        system.sim.after(interval_ticks, self._sample)

    def _sample(self) -> None:
        s = self.system
        out = self.series
        out["ticks"].append(s.sim.now)
        gpu = s.gpu
        out["gpu_frames"].append(gpu.frames_completed if gpu else 0)
        out["gpu_progress"].append(gpu.frame_progress if gpu else 0.0)
        out["gpu_outstanding"].append(gpu.outstanding if gpu else 0)
        out["gpu_occupancy"].append(s.llc.gpu_occupancy())
        out["cpu_occupancy"].append(s.llc.cpu_occupancy())
        out["dram_queue"].append(
            sum(c.queue_depth() for c in s.dram.controllers))
        out["cpu_instructions"].append(
            sum(c.instructions for c in s.cores))
        qos = getattr(s.policy, "qos", None)
        if qos is not None:
            out["wg_ticks"].append(qos.atu.wg_ticks)
            out["throttling"].append(1.0 if qos.throttling else 0.0)
        else:
            out["wg_ticks"].append(0)
            out["throttling"].append(0.0)
        if not (gpu is not None and gpu.stopped and not s.cores):
            s.sim.after(self.interval, self._sample)

    # -- rendering ----------------------------------------------------------

    def ascii_timeline(self, name: str, width: int = 60,
                       height: int = 8) -> str:
        """A quick terminal sparkline of one series."""
        data = self.series[name]
        if not data:
            return f"{name}: (no samples)"
        # downsample to width columns
        step = max(len(data) / width, 1e-9)
        cols = [data[min(int(i * step), len(data) - 1)]
                for i in range(min(width, len(data)))]
        lo, hi = min(cols), max(cols)
        span = (hi - lo) or 1.0
        rows = []
        for level in range(height, 0, -1):
            threshold = lo + span * (level - 0.5) / height
            rows.append("".join("#" if v >= threshold else " "
                                for v in cols))
        header = f"{name}  min={lo:g} max={hi:g} samples={len(data)}"
        return "\n".join([header] + rows)

    def summary(self) -> dict[str, float]:
        out = {}
        for k, vals in self.series.items():
            if vals and k != "ticks":
                out[f"{k}_mean"] = sum(vals) / len(vals)
                out[f"{k}_max"] = max(vals)
        return out
