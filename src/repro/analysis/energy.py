"""Event-based energy accounting.

The paper motivates heterogeneous processing with energy efficiency
(Section I); throttling a GPU that renders frames nobody can perceive
is also an energy story: the GPU spends fewer DRAM activates and LLC
accesses per second, at the cost of a longer CPU-visible runtime.  This
module prices a finished :class:`~repro.sim.metrics.RunResult` with an
event-energy model (CACTI-class constants, documented per field) so the
trade-off can be quantified — see ``bench_ablation_energy.py``.

All values are picojoules per event (or milliwatts for static power);
they are deliberately round, order-of-magnitude numbers — the *ratios*
between configurations are the meaningful output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.metrics import RunResult


@dataclass(frozen=True)
class EnergyParams:
    """Per-event energies (pJ) and static power (mW)."""

    # SRAM accesses by level (dynamic energy per access)
    llc_access_pj: float = 250.0        # multi-MB SRAM bank
    private_cache_pj: float = 25.0      # L1/L2 class
    gpu_internal_pj: float = 30.0
    # DRAM events
    dram_activate_pj: float = 900.0     # ACT+PRE pair, one row
    dram_rw_pj: float = 450.0           # one 64 B burst read/write
    dram_static_mw: float = 150.0
    # cores
    cpu_inst_pj: float = 70.0           # per retired instruction
    cpu_static_mw_per_core: float = 350.0
    gpu_cycle_pj: float = 400.0         # busy GPU cycle, whole shader array
    gpu_static_mw: float = 800.0
    #: base tick length in seconds (1 / 4 GHz)
    tick_seconds: float = 0.25e-9


@dataclass
class EnergyReport:
    """Joules by component, plus derived figures of merit."""

    cpu_dynamic: float
    cpu_static: float
    gpu_dynamic: float
    gpu_static: float
    llc: float
    dram_dynamic: float
    dram_static: float
    run_seconds: float
    breakdown: dict = field(default_factory=dict)

    @property
    def total(self) -> float:
        return (self.cpu_dynamic + self.cpu_static + self.gpu_dynamic +
                self.gpu_static + self.llc + self.dram_dynamic +
                self.dram_static)

    @property
    def memory_system(self) -> float:
        return self.llc + self.dram_dynamic + self.dram_static

    def energy_per_frame(self, frames: int) -> float:
        return self.total / frames if frames else 0.0


def price_run(result: RunResult, n_cpus: int | None = None,
              params: EnergyParams = EnergyParams()) -> EnergyReport:
    """Price a finished run with the event-energy model."""
    p = params
    seconds = result.ticks * p.tick_seconds
    n_cores = n_cpus if n_cpus is not None else len(result.cpu_apps)

    # retired instructions ~= sum of per-core IPC x run length (cores
    # keep running after their measured region, at roughly the same IPC)
    insts = int(sum(result.cpu_ipcs.values()) * result.ticks)

    llc_accesses = (result.llc.get("cpu_accesses", 0) +
                    result.llc.get("gpu_accesses", 0))
    dram_rw = (result.dram.get("cpu_reads", 0) +
               result.dram.get("cpu_writes", 0) +
               result.dram.get("gpu_reads", 0) +
               result.dram.get("gpu_writes", 0))
    # activates ~ (1 - row_hit_rate) of transactions
    activates = dram_rw * max(1.0 - result.dram_row_hit_rate, 0.0)
    gpu_internal = result.gpu_stats.get("internal_accesses", 0)
    gpu_busy_cycles = sum(result.frame_cycles)

    report = EnergyReport(
        cpu_dynamic=insts * p.cpu_inst_pj * 1e-12,
        cpu_static=n_cores * p.cpu_static_mw_per_core * 1e-3 * seconds,
        gpu_dynamic=(gpu_busy_cycles * p.gpu_cycle_pj +
                     gpu_internal * p.gpu_internal_pj) * 1e-12,
        gpu_static=(p.gpu_static_mw * 1e-3 * seconds
                    if result.gpu_app else 0.0),
        llc=llc_accesses * p.llc_access_pj * 1e-12,
        dram_dynamic=(dram_rw * p.dram_rw_pj +
                      activates * p.dram_activate_pj) * 1e-12,
        dram_static=p.dram_static_mw * 1e-3 * seconds,
        run_seconds=seconds,
    )
    report.breakdown = {
        "instructions": insts,
        "llc_accesses": llc_accesses,
        "dram_transactions": dram_rw,
        "dram_activates": int(activates),
        "gpu_busy_cycles": gpu_busy_cycles,
    }
    return report
