"""Multi-seed replication with confidence intervals.

Scaled runs are short, so single-seed numbers carry noise; any headline
claim should be replicated.  ``replicate`` runs a metric function over
several seeds and returns mean, standard deviation and a Student-t
confidence interval (scipy when available, a t-table fallback
otherwise, since scipy is an optional dependency of the core library).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

#: two-sided 95% t critical values by degrees of freedom (fallback)
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
        30: 2.042}


def _t_critical(df: int, confidence: float) -> float:
    try:
        from scipy import stats as sps
        return float(sps.t.ppf(0.5 + confidence / 2, df))
    except Exception:
        if confidence != 0.95:
            raise ValueError("fallback t-table only supports 95%")
        keys = sorted(_T95)
        for k in keys:
            if df <= k:
                return _T95[k]
        return 1.96


@dataclass(frozen=True)
class Replicated:
    """Summary of one metric over several seeds."""

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    def ci_halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2

    def __str__(self) -> str:
        return (f"{self.mean:.4g} ± {self.ci_halfwidth():.2g} "
                f"({int(self.confidence*100)}% CI, n={self.n})")


def summarize(values: Sequence[float],
              confidence: float = 0.95) -> Replicated:
    vals = tuple(float(v) for v in values)
    if not vals:
        raise ValueError("no values to summarise")
    n = len(vals)
    mean = sum(vals) / n
    if n == 1:
        return Replicated(vals, mean, 0.0, mean, mean, confidence)
    var = sum((v - mean) ** 2 for v in vals) / (n - 1)
    std = math.sqrt(var)
    half = _t_critical(n - 1, confidence) * std / math.sqrt(n)
    return Replicated(vals, mean, std, mean - half, mean + half,
                      confidence)


def replicate(metric_fn: Callable[[int], float],
              seeds: Iterable[int] = (1, 2, 3),
              confidence: float = 0.95) -> Replicated:
    """Run ``metric_fn(seed)`` for each seed and summarise."""
    return summarize([metric_fn(seed) for seed in seeds], confidence)
