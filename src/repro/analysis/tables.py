"""Tables I-III of the paper, regenerated from the live system."""

from __future__ import annotations

from dataclasses import asdict

from repro.config import default_config
from repro.cpu.spec import SPEC_PROFILES
from repro.gpu.workloads import GAME_ORDER, GAME_WORKLOADS
from repro.mixes import MIXES_M, MIXES_W
from repro.sim import runner


def table1(scale: str = "test") -> dict[str, dict]:
    """Table I: the simulated heterogeneous CMP configuration."""
    cfg = default_config(scale=scale)
    return {
        "cpu": {
            "cores": cfg.n_cpus,
            "clock_ghz": 4.0,
            "issue_width": cfg.cpu.issue_width,
            "l1i": asdict(cfg.cpu.l1i),
            "l1d": asdict(cfg.cpu.l1d),
            "l2": asdict(cfg.cpu.l2),
        },
        "gpu": {
            "clock_ghz": 1.0,
            "shader_cores": cfg.gpu.shader_cores,
            "thread_contexts": cfg.gpu.max_thread_contexts,
            "rops": cfg.gpu.rops,
            "mshr_entries": cfg.gpu.mshr_entries,
            "caches": asdict(cfg.gpu.caches),
        },
        "llc": {
            "paper_bytes": cfg.llc.size_bytes,
            "scaled_bytes": cfg.scale.llc_bytes,
            "ways": cfg.llc.ways,
            "latency_cycles": cfg.llc.latency,
            "policy": cfg.llc.policy,
            "inclusive_for": "cpu",
        },
        "dram": asdict(cfg.dram),
        "ring": asdict(cfg.ring),
        "qos": asdict(cfg.qos),
        "scale": asdict(cfg.scale),
    }


def table2(scale: str = "test", seed: int = 1) -> list[dict]:
    """Table II: the 14 graphics workloads with *measured* standalone FPS.

    Frames/resolution come from the workload models; the FPS column is a
    live measurement (the paper's own FPS column is their baseline
    measurement too).
    """
    rows = []
    for name in GAME_ORDER:
        w = GAME_WORKLOADS[name]
        r = runner.standalone_gpu(name, scale, seed)
        rows.append({
            "application": name,
            "api": w.api,
            "frames": f"{w.frames[0]}-{w.frames[1]}",
            "resolution": w.resolution,
            "fps_paper": w.fps_nominal,
            "fps_measured": round(r.fps, 1),
        })
    return rows


def table3() -> list[dict]:
    """Table III: the heterogeneous workload mixes."""
    rows = []
    for i, name in enumerate(sorted(MIXES_M, key=lambda n: int(n[1:]))):
        m = MIXES_M[name]
        w = MIXES_W[f"W{i+1}"]
        rows.append({
            "gpu_application": m.gpu_app,
            "m_mix": f"{name}: {m.cpu_label()}",
            "w_mix": f"W{i+1}: {w.cpu_label()}",
        })
    return rows


def latency_table(mix_names=None, policies=("baseline", "throtcpuprio"),
                  scale: str = "test", seed: int = 1) -> list[dict]:
    """LLC read round-trip latency per side, mix x policy.

    One row per (mix, policy) from the always-on
    :attr:`RunResult.llc_latency` aggregates (created_at -> data
    return, CPU ticks): mean and log2-bucket p95 for each side.  The
    paper's mechanism in one table — throttling policies should cut
    the CPU columns on memory-heavy mixes while the GPU columns rise.
    """
    from repro.exec import mix_spec, run_many
    if mix_names is None:
        mix_names = sorted(MIXES_W, key=lambda n: int(n[1:]))
    specs = [mix_spec(m, pol, scale, seed)
             for m in mix_names for pol in policies]
    rows = []
    for spec, out in zip(specs, run_many(specs)):
        lat = out.result.llc_latency if out.ok else {}
        rows.append({
            "mix": spec.resolved_mix().name, "policy": spec.policy,
            "cpu_mean": lat.get("cpu_mean", 0.0),
            "cpu_p95": lat.get("cpu_p95", 0.0),
            "gpu_mean": lat.get("gpu_mean", 0.0),
            "gpu_p95": lat.get("gpu_p95", 0.0),
        })
    return rows


def format_latency_table(rows) -> str:
    """Render :func:`latency_table` rows for the CLI/notebooks."""
    lines = [f"{'mix':6s} {'policy':14s} {'cpu mean':>9s} {'cpu p95':>8s} "
             f"{'gpu mean':>9s} {'gpu p95':>8s}"]
    for r in rows:
        lines.append(f"{r['mix']:6s} {r['policy']:14s} "
                     f"{r['cpu_mean']:9.1f} {r['cpu_p95']:8.0f} "
                     f"{r['gpu_mean']:9.1f} {r['gpu_p95']:8.0f}")
    return "\n".join(lines)


def spec_profile_table() -> list[dict]:
    """Companion table: the SPEC CPU 2006 profile parameters we use."""
    rows = []
    for sid in sorted(SPEC_PROFILES):
        p = SPEC_PROFILES[sid]
        rows.append({
            "id": sid, "name": p.name, "mem_per_kinst": p.mem_per_kinst,
            "store_frac": p.store_frac, "ipc_base": p.ipc_base,
            "mlp": p.mlp,
            "streams": "+".join(f"{s.kind}:{s.weight:g}"
                                for s in p.streams),
        })
    return rows
