"""Tables I-III of the paper, regenerated from the live system."""

from __future__ import annotations

from dataclasses import asdict

from repro.config import default_config
from repro.cpu.spec import SPEC_PROFILES
from repro.gpu.workloads import GAME_ORDER, GAME_WORKLOADS
from repro.mixes import MIXES_M, MIXES_W
from repro.sim import runner


def table1(scale: str = "test") -> dict[str, dict]:
    """Table I: the simulated heterogeneous CMP configuration."""
    cfg = default_config(scale=scale)
    return {
        "cpu": {
            "cores": cfg.n_cpus,
            "clock_ghz": 4.0,
            "issue_width": cfg.cpu.issue_width,
            "l1i": asdict(cfg.cpu.l1i),
            "l1d": asdict(cfg.cpu.l1d),
            "l2": asdict(cfg.cpu.l2),
        },
        "gpu": {
            "clock_ghz": 1.0,
            "shader_cores": cfg.gpu.shader_cores,
            "thread_contexts": cfg.gpu.max_thread_contexts,
            "rops": cfg.gpu.rops,
            "mshr_entries": cfg.gpu.mshr_entries,
            "caches": asdict(cfg.gpu.caches),
        },
        "llc": {
            "paper_bytes": cfg.llc.size_bytes,
            "scaled_bytes": cfg.scale.llc_bytes,
            "ways": cfg.llc.ways,
            "latency_cycles": cfg.llc.latency,
            "policy": cfg.llc.policy,
            "inclusive_for": "cpu",
        },
        "dram": asdict(cfg.dram),
        "ring": asdict(cfg.ring),
        "qos": asdict(cfg.qos),
        "scale": asdict(cfg.scale),
    }


def table2(scale: str = "test", seed: int = 1) -> list[dict]:
    """Table II: the 14 graphics workloads with *measured* standalone FPS.

    Frames/resolution come from the workload models; the FPS column is a
    live measurement (the paper's own FPS column is their baseline
    measurement too).
    """
    rows = []
    for name in GAME_ORDER:
        w = GAME_WORKLOADS[name]
        r = runner.standalone_gpu(name, scale, seed)
        rows.append({
            "application": name,
            "api": w.api,
            "frames": f"{w.frames[0]}-{w.frames[1]}",
            "resolution": w.resolution,
            "fps_paper": w.fps_nominal,
            "fps_measured": round(r.fps, 1),
        })
    return rows


def table3() -> list[dict]:
    """Table III: the heterogeneous workload mixes."""
    rows = []
    for i, name in enumerate(sorted(MIXES_M, key=lambda n: int(n[1:]))):
        m = MIXES_M[name]
        w = MIXES_W[f"W{i+1}"]
        rows.append({
            "gpu_application": m.gpu_app,
            "m_mix": f"{name}: {m.cpu_label()}",
            "w_mix": f"W{i+1}: {w.cpu_label()}",
        })
    return rows


def spec_profile_table() -> list[dict]:
    """Companion table: the SPEC CPU 2006 profile parameters we use."""
    rows = []
    for sid in sorted(SPEC_PROFILES):
        p = SPEC_PROFILES[sid]
        rows.append({
            "id": sid, "name": p.name, "mem_per_kinst": p.mem_per_kinst,
            "store_frac": p.store_frac, "ipc_base": p.ipc_base,
            "mlp": p.mlp,
            "streams": "+".join(f"{s.kind}:{s.weight:g}"
                                for s in p.streams),
        })
    return rows
