"""Regeneration of every table and figure in the paper's evaluation.

Import the submodules directly (``repro.analysis.experiments``,
``repro.analysis.tables``); ``repro.analysis.report`` is also a CLI:
``python -m repro.analysis.report --experiment fig9 --scale test``.
"""

from repro.analysis import experiments, tables

__all__ = ["experiments", "tables"]
