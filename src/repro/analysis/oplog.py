"""Join operational logs back into per-trace lifecycles.

The serving stack writes one JSONL record per operational event
(:mod:`repro.metrics.oplog`), every record carrying the ``trace_id``
minted at client submission.  :class:`OpLogView` loads such a file
(through the same forgiving :func:`~repro.analysis.ingest.read_jsonl`
the other analysis tools use) and answers the debugging questions the
flat stream can't: *what happened to this submission*, end to end —
when it was submitted, whether it coalesced onto another client's
execution, which worker ran it, how long it took, how it settled.

A ``coalesced`` record links its waiter ``trace_id`` to the winning
execution's ``exec_trace_id``; :meth:`OpLogView.trace` follows that
link, so a waiter's lifecycle includes the execution it rode on.

:meth:`OpLogView.join` correlates other per-run JSONL artifacts
(span traces, telemetry exports) against the oplog by a shared field —
the run ``label`` by default, since span/telemetry rows predate trace
IDs — giving one command-line path from "this submission was slow" to
the simulator-level evidence (``docs/observability.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.ingest import read_jsonl

__all__ = ["OpLogView"]


class OpLogView:
    """An in-memory oplog with per-trace indexing; see the module
    docstring."""

    def __init__(self, records: List[dict], skipped: int = 0):
        self.records = records
        self.skipped = skipped
        self._by_trace: Dict[str, List[dict]] = {}
        self._exec_of: Dict[str, str] = {}    # waiter -> exec trace
        for rec in records:
            tid = rec.get("trace_id")
            if tid:
                self._by_trace.setdefault(tid, []).append(rec)
            if rec.get("event") == "coalesced" and tid \
                    and rec.get("exec_trace_id"):
                self._exec_of[tid] = rec["exec_trace_id"]

    @classmethod
    def load(cls, path: str) -> "OpLogView":
        rows, skipped = read_jsonl(path)
        return cls(rows, skipped)

    # -- per-trace access -----------------------------------------------------

    def trace_ids(self) -> List[str]:
        """Every trace ID seen, in first-appearance order."""
        return list(self._by_trace)

    def trace(self, trace_id: str,
              follow: bool = True) -> List[dict]:
        """Every record for ``trace_id``, in file order.  With
        ``follow`` (default), a coalesced waiter's view also includes
        the winning execution's records."""
        records = list(self._by_trace.get(trace_id, ()))
        exec_id = self._exec_of.get(trace_id)
        if follow and exec_id and exec_id != trace_id:
            records.extend(self._by_trace.get(exec_id, ()))
            records.sort(key=lambda r: r.get("ts", 0.0))
        return records

    def lifecycle(self, trace_id: str) -> dict:
        """One summary row: how this submission moved through the
        stack and how it settled."""
        records = self.trace(trace_id)
        events = [r.get("event") for r in records]
        done = next((r for r in records if r.get("event") == "done"),
                    None)
        # label/client come from the trace's *own* records first: a
        # coalesced waiter keeps its own client even though the merged
        # view starts with the winner's submission
        own = self.trace(trace_id, follow=False) + records
        out = {
            "trace_id": trace_id,
            "events": events,
            "label": next((r["label"] for r in own
                           if r.get("label")), None),
            "client": next((r["client"] for r in own
                            if r.get("client")), None),
            "coalesced_onto": self._exec_of.get(trace_id),
            "interrupted": "interrupted" in events,
            "ok": done.get("ok") if done else None,
            "source": done.get("source") if done else None,
            "elapsed": done.get("elapsed") if done else None,
        }
        if records:
            out["t0"] = records[0].get("ts")
            out["t1"] = records[-1].get("ts")
        return out

    def table(self) -> List[dict]:
        """A lifecycle summary per trace, in first-appearance order."""
        return [self.lifecycle(tid) for tid in self._by_trace]

    # -- correlation with other artifacts -------------------------------------

    def join(self, rows: List[dict], field: str = "label",
             trace_id: Optional[str] = None) -> Dict[str, List[dict]]:
        """Correlate foreign JSONL rows (spans, telemetry) with traces.

        Returns ``{trace_id: [matching rows]}``: a foreign row matches
        a trace when its ``field`` value equals any value that trace's
        oplog records carry under the same field.  Restrict to one
        trace with ``trace_id``.
        """
        wanted = [trace_id] if trace_id else list(self._by_trace)
        out: Dict[str, List[dict]] = {}
        for tid in wanted:
            values = {r.get(field) for r in self.trace(tid)
                      if r.get(field) is not None}
            if not values:
                continue
            hits = [row for row in rows if row.get(field) in values]
            if hits:
                out[tid] = hits
        return out

    # -- rendering ------------------------------------------------------------

    def format(self, limit: Optional[int] = None) -> str:
        """A human-readable per-trace table (``repro top``'s offline
        sibling)."""
        lines = [f"{'trace':16}  {'client':12}  {'label':28}  "
                 f"{'outcome':11}  flow"]
        for row in self.table()[:limit]:
            if row["interrupted"]:
                outcome = "interrupted"
            elif row["ok"] is None:
                outcome = "in-flight"
            elif row["ok"]:
                outcome = f"ok/{row['source']}"
            else:
                outcome = "failed"
            flow = " > ".join(row["events"])
            if row["coalesced_onto"]:
                flow += f" [rode {row['coalesced_onto']}]"
            lines.append(f"{row['trace_id']:16}  "
                         f"{(row['client'] or '-'):12}  "
                         f"{(row['label'] or '-'):28}  "
                         f"{outcome:11}  {flow}")
        if self.skipped:
            lines.append(f"({self.skipped} malformed line(s) skipped)")
        return "\n".join(lines)
