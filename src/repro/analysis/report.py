"""ASCII rendering of every regenerated table and figure.

Run as a module::

    python -m repro.analysis.report --experiment fig9 --scale test
    python -m repro.analysis.report --experiment all --scale smoke
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments, tables


def _bar(value: float, unit: float = 1.0, width: int = 40) -> str:
    n = max(int(value / unit * width / 2), 0)
    return "#" * min(n, width)


def _fmt_series(title: str, series: dict[str, float],
                unit: float = 1.0) -> str:
    lines = [title]
    for k, v in series.items():
        lines.append(f"  {k:>16s} {v:8.3f} {_bar(v, unit)}")
    return "\n".join(lines)


def render_table1(scale: str) -> str:
    cfg = tables.table1(scale)
    out = ["Table I — simulated heterogeneous CMP", "=" * 50]
    for section, vals in cfg.items():
        out.append(f"[{section}]")
        for k, v in vals.items():
            out.append(f"  {k}: {v}")
    return "\n".join(out)


def render_table2(scale: str) -> str:
    rows = tables.table2(scale)
    out = ["Table II — graphics frame details", "=" * 66,
           f"{'application':14s} {'API':4s} {'frames':9s} {'res':4s} "
           f"{'FPS(paper)':>10s} {'FPS(ours)':>10s}"]
    for r in rows:
        out.append(f"{r['application']:14s} {r['api']:4s} "
                   f"{r['frames']:9s} {r['resolution']:4s} "
                   f"{r['fps_paper']:10.1f} {r['fps_measured']:10.1f}")
    return "\n".join(out)


def render_table3() -> str:
    rows = tables.table3()
    out = ["Table III — heterogeneous workload mixes", "=" * 72]
    for r in rows:
        out.append(f"{r['gpu_application']:14s} {r['m_mix']:30s} "
                   f"{r['w_mix']}")
    return "\n".join(out)


def render_fig(name: str, scale: str, seed: int = 1) -> str:
    fn = getattr(experiments, name)
    data = fn(scale=scale, seed=seed)
    out = [f"{name} @ scale={scale}", "=" * 50]

    def walk(prefix: str, obj) -> None:
        if isinstance(obj, dict):
            if obj and all(isinstance(v, (int, float)) for v in obj.values()):
                out.append(_fmt_series(prefix, obj))
            else:
                for k, v in obj.items():
                    walk(f"{prefix}.{k}" if prefix else str(k), v)
        else:
            out.append(f"{prefix}: {obj}")

    walk("", data)
    return "\n".join(out)


EXPERIMENTS = ["fig1", "fig2", "fig3", "fig8", "fig9", "fig10", "fig11",
               "fig12", "fig13", "fig14"]
TABLES = ["table1", "table2", "table3"]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--experiment", default="all",
                    help=f"one of {TABLES + EXPERIMENTS} or 'all'")
    ap.add_argument("--scale", default="test",
                    choices=["smoke", "test", "bench", "paper"])
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args(argv)

    targets = (TABLES + EXPERIMENTS if args.experiment == "all"
               else [args.experiment])
    for t in targets:
        if t == "table1":
            print(render_table1(args.scale))
        elif t == "table2":
            print(render_table2(args.scale))
        elif t == "table3":
            print(render_table3())
        elif t in EXPERIMENTS:
            print(render_fig(t, args.scale, args.seed))
        else:
            print(f"unknown experiment {t!r}", file=sys.stderr)
            return 2
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
