"""CM-BAL (Kayiran et al., MICRO'14): balanced GPU concurrency management.

Implemented as the extension/ablation the paper analyses in Section IV:
CM-BAL scales the number of ready shader threads up or down from memory
congestion feedback.  Fewer ready threads primarily slows the *texture*
access stream (samplers hang off the shader cores); the ROP's colour and
depth traffic — ~75% of the GPU's LLC accesses in these workloads — is
not gated, and only a fraction of texture accesses are affected at any
moment.  The paper's three reasons why this fails to control frame rate
fall out of this model, and the ablation bench quantifies them.
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS
from repro.gpu.shader import WarpOccupancyModel
from repro.policies.base import Policy


class CmBalGate:
    """Delays only texture-side issues according to the concurrency level.

    At concurrency level L (1..max), a texture access suffers an extra
    issue gap of ``(max/L - 1) * base_gap``, and only ``coverage`` of
    texture accesses are eligible (running warps keep issuing).
    """

    def __init__(self, base_gap: int, max_level: int = 8,
                 coverage: float = 0.6):
        self.base_gap = base_gap
        self.max_level = max_level
        self.level = max_level
        self.coverage = coverage
        self._phase = 0
        self.gated_accesses = 0

    @property
    def active(self) -> bool:
        return self.level < self.max_level

    def next_issue_time(self, t: int, kind: str = "") -> int:
        if kind != "texture" or self.level >= self.max_level:
            return t
        self._phase += 1
        # deterministic "coverage" fraction of texture accesses gated
        if (self._phase % 100) >= int(self.coverage * 100):
            return t
        self.gated_accesses += 1
        extra = int((self.max_level / self.level - 1.0) * self.base_gap)
        return t + extra


class CmBalPolicy(Policy):
    name = "cm-bal"

    def __init__(self, tick_gpu_cycles: int = 4096,
                 stall_hi: float = 0.10, stall_lo: float = 0.02):
        self.tick_gpu_cycles = tick_gpu_cycles
        self.stall_hi = stall_hi
        self.stall_lo = stall_lo
        self.warps = None              # WarpOccupancyModel after attach

    def attach(self, system) -> None:
        self._system = system
        if system.gpu is None:
            return
        gap = max(GPU_CYCLE_TICKS // system.cfg.gpu.issue_rate, 1)
        self.gate = CmBalGate(base_gap=gap)
        system.gpu.gate = self.gate
        self.warps = WarpOccupancyModel(system.gpu, system.cfg.gpu)
        interval = self.tick_gpu_cycles * GPU_CYCLE_TICKS
        system.sim.after_call(interval, self._tick, interval)

    def _tick(self, interval: int) -> None:
        gpu = self._system.gpu
        if gpu is None or gpu.stopped:
            return
        window = self.warps.sample_window()
        if window["reads"] > 0:
            rate = window["stall_rate"]
            level = self.gate.level
            if rate > self.stall_hi and self.gate.level > 1:
                self.gate.level -= 1       # congested: fewer ready warps
            elif rate < self.stall_lo and \
                    self.gate.level < self.gate.max_level:
                self.gate.level += 1       # idle headroom: more warps
            if self.gate.level != level:
                self.emit("policy", tick=self._system.sim.now,
                          policy=self.name, signal="concurrency_level",
                          value=float(self.gate.level))
        self._system.sim.after_call(interval, self._tick, interval)
