"""Policy interface.

A policy configures the machine in two places:

* :meth:`scheduler_factory` — which DRAM access scheduler each memory
  controller gets (called once per channel at build time);
* :meth:`attach` — installed after the system is built: LLC bypass
  hooks, QoS controllers, periodic controllers, GPU gates.

Policies must be stateless across systems — a fresh instance per run.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.dram.schedulers import FrFcfsScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import HeterogeneousSystem


class Policy:
    name = "base"

    def scheduler_factory(self) -> Callable[[int], object]:
        return lambda ch: FrFcfsScheduler()

    def attach(self, system: "HeterogeneousSystem") -> None:
        """Install hooks; the system is fully built at this point."""

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
