"""Policy interface.

A policy configures the machine in two places:

* :meth:`scheduler_factory` — which DRAM access scheduler each memory
  controller gets (called once per channel at build time);
* :meth:`attach` — installed after the system is built: LLC bypass
  hooks, QoS controllers, periodic controllers, GPU gates.

Policies must be stateless across systems — a fresh instance per run.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.dram.schedulers import FrFcfsScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import HeterogeneousSystem


class Policy:
    name = "base"

    #: set by policies that keep a system reference in :meth:`attach`;
    #: :meth:`emit` routes through it to the system's telemetry
    _system = None

    def scheduler_factory(self) -> Callable[[int], object]:
        return lambda ch: FrFcfsScheduler()

    def attach(self, system: "HeterogeneousSystem") -> None:
        """Install hooks; the system is fully built at this point."""

    def emit(self, etype: str, **fields) -> None:
        """Emit a telemetry record if the attached system records one.

        A no-op (one attribute test) when telemetry is off, so policies
        can emit decision events unconditionally from their periodic
        ticks.
        """
        system = self._system
        tel = system.telemetry if system is not None else None
        if tel is not None:
            tel.emit(etype, **fields)

    def describe(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
