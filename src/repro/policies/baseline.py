"""Baseline: plain FR-FCFS, SRRIP LLC, no throttling (Table I machine)."""

from __future__ import annotations

from repro.policies.base import Policy


class BaselinePolicy(Policy):
    name = "baseline"
