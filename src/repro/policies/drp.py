"""DRP-lite: dynamic reuse-probability-aware LLC management
(Rai & Chaudhuri, ICS'16 — the paper's reference [31]), simplified.

The original estimates, per GPU access class, the probability that a
cached block is reused before eviction, and steers insertion age (and
promotion) with it.  This reproduction learns exactly that signal from
the live LLC's eviction stream:

    reuse_prob(class) = reused_evictions / all_evictions   (per class)

where *reused* means the line hit at least once after its fill.
Classes above ``hi`` insert near-MRU (RRPV 0); classes below ``lo``
insert at distant RRPV (first eviction candidates); in between, the
baseline SRRIP insertion applies.  The books decay periodically so the
estimates track phase changes.
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS
from repro.policies.base import Policy


class ReuseBook:
    """Per-class eviction-outcome counters with periodic decay."""

    __slots__ = ("reused", "dead")

    def __init__(self):
        self.reused = 0
        self.dead = 0

    @property
    def total(self) -> int:
        return self.reused + self.dead

    def prob(self) -> float:
        return self.reused / self.total if self.total else 0.5

    def decay(self) -> None:
        self.reused //= 2
        self.dead //= 2


class DrpPolicy(Policy):
    name = "drp"

    def __init__(self, hi: float = 0.55, lo: float = 0.20,
                 min_samples: int = 32,
                 decay_interval_gpu_cycles: int = 16384):
        self.hi = hi
        self.lo = lo
        self.min_samples = min_samples
        self.decay_interval = decay_interval_gpu_cycles
        self.books: dict[str, ReuseBook] = {}

    def book(self, kind: str) -> ReuseBook:
        b = self.books.get(kind)
        if b is None:
            b = self.books[kind] = ReuseBook()
        return b

    def attach(self, system) -> None:
        self._system = system
        self._max_rrpv = (1 << system.cfg.llc.srrip_bits) - 1
        system.llc.fill_rrpv_fn = self._fill_rrpv
        system.llc.eviction_observer = self._on_eviction
        if system.gpu is not None:
            interval = self.decay_interval * GPU_CYCLE_TICKS
            system.sim.after_call(interval, self._decay, interval)

    # -- learning from the eviction stream ----------------------------------

    def _on_eviction(self, owner: str, kind: str, reused: bool) -> None:
        if owner != "gpu":
            return
        b = self.book(kind)
        if reused:
            b.reused += 1
        else:
            b.dead += 1

    # -- insertion steering ---------------------------------------------------

    def _fill_rrpv(self, req):
        if not req.is_gpu:
            return None
        b = self.book(req.kind)
        if b.total < self.min_samples:
            return None                    # not enough evidence yet
        p = b.prob()
        if p >= self.hi:
            return 0                       # near-MRU: high-reuse class
        if p <= self.lo:
            return self._max_rrpv          # distant: dead-on-arrival
        return None

    def _decay(self, interval: int) -> None:
        gpu = self._system.gpu
        if gpu is None or gpu.stopped:
            return
        now = self._system.sim.now
        for kind in sorted(self.books):
            b = self.books[kind]
            if b.total >= self.min_samples:
                self.emit("policy", tick=now, policy=self.name,
                          signal=f"reuse_prob.{kind}", value=b.prob())
            b.decay()
        self._system.sim.after_call(interval, self._decay, interval)
