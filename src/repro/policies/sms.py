"""Staged memory scheduling (Ausavarungnirun et al., ISCA'12).

``SMS-0.9`` uses shortest-batch-first with probability 0.9 (favouring the
latency-sensitive CPU jobs); ``SMS-0`` always round-robins (fairness for
the bandwidth-sensitive GPU).  Both pay the batch-formation delay, which
is what costs the GPU frame rate in Figs. 12-13.
"""

from __future__ import annotations

from repro.dram.schedulers import SmsScheduler
from repro.policies.base import Policy


class SmsPolicy(Policy):
    def __init__(self, p_sjf: float = 0.9, batch_cap: int = 16,
                 age_limit: int = 2000, seed: int = 11):
        self.p_sjf = p_sjf
        self.batch_cap = batch_cap
        self.age_limit = age_limit
        self.seed = seed
        self.name = f"sms-{p_sjf:g}"

    def scheduler_factory(self):
        return lambda ch: SmsScheduler(
            p_sjf=self.p_sjf, batch_cap=self.batch_cap,
            age_limit=self.age_limit, seed=self.seed + ch)
