"""TAP-lite: TLP-aware LLC management (Lee & Kim, HPCA'12), simplified.

TAP asks whether GPU caching actually helps the GPU: GPGPU/graphics
workloads with ample thread-level parallelism hide memory latency
anyway, so their lines should not displace CPU lines.  The original
uses core sampling and cache block lifetime normalisation; this
reproduction implements the policy's essence on the shared SRRIP LLC:

* sample the GPU's LLC hit rate and its MSHR-stall rate per interval;
* if the GPU is latency-tolerant *and* its hit rate is low, insert GPU
  fills at distant RRPV (immediate eviction candidates), shifting
  capacity to the CPU;
* otherwise leave the baseline SRRIP insertion.

The paper lists TAP among the LLC-management alternatives (Section IV);
it is implemented here as an extension for the LLC-policy ablation.
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS
from repro.policies.base import Policy


class TapPolicy(Policy):
    name = "tap"

    def __init__(self, sample_interval_gpu_cycles: int = 4096,
                 hit_rate_threshold: float = 0.45,
                 stall_tolerance: float = 0.05):
        self.sample_interval = sample_interval_gpu_cycles
        self.hit_rate_threshold = hit_rate_threshold
        self.stall_tolerance = stall_tolerance
        self.demote_gpu = False
        self._last = {"hits": 0, "acc": 0, "stalls": 0, "reads": 0}
        self.samples = 0

    def attach(self, system) -> None:
        self._system = system
        self._max_rrpv = (1 << system.cfg.llc.srrip_bits) - 1
        system.llc.fill_rrpv_fn = self._fill_rrpv
        if system.gpu is not None:
            interval = self.sample_interval * GPU_CYCLE_TICKS
            system.sim.after_call(interval, self._sample, interval)

    def _fill_rrpv(self, req):
        if req.is_gpu and self.demote_gpu:
            return self._max_rrpv          # distant: first eviction pick
        return None

    def _sample(self, interval: int) -> None:
        gpu = self._system.gpu
        if gpu is None or gpu.stopped:
            return
        llc = self._system.llc.stats
        cur = {"hits": llc.get("gpu_hits"), "acc": llc.get("gpu_accesses"),
               "stalls": gpu.stats.get("mshr_stalls"),
               "reads": gpu.stats.get("llc_reads")}
        d = {k: cur[k] - self._last[k] for k in cur}
        self._last = cur
        if d["acc"] > 0 and d["reads"] > 0:
            hit_rate = d["hits"] / d["acc"]
            tolerant = (d["stalls"] / d["reads"]) <= self.stall_tolerance
            was = self.demote_gpu
            self.demote_gpu = tolerant and \
                hit_rate < self.hit_rate_threshold
            if self.demote_gpu != was:
                self.emit("policy", tick=self._system.sim.now,
                          policy=self.name, signal="demote_gpu",
                          value=float(self.demote_gpu))
        self.samples += 1
        self._system.sim.after_call(interval, self._sample, interval)
