"""Memory-system management policies: the proposal and its competitors."""

from repro.policies.base import Policy
from repro.policies.baseline import BaselinePolicy
from repro.policies.bypass_all import BypassAllPolicy
from repro.policies.helm import HelmPolicy
from repro.policies.sms import SmsPolicy
from repro.policies.dynprio import DynPrioPolicy
from repro.policies.cmbal import CmBalPolicy
from repro.policies.tap import TapPolicy
from repro.policies.dash import DashPolicy
from repro.policies.drp import DrpPolicy
from repro.policies.throttle import ThrottlePolicy


def make_policy(name: str, **kwargs) -> Policy:
    """Policy registry: the names used across benches and figures."""
    name = name.lower()
    if name == "baseline":
        return BaselinePolicy()
    if name in ("bypass-all", "bypassall"):
        return BypassAllPolicy()
    if name == "helm":
        return HelmPolicy(**kwargs)
    if name in ("sms-0.9", "sms09"):
        return SmsPolicy(p_sjf=0.9)
    if name in ("sms-0", "sms0"):
        return SmsPolicy(p_sjf=0.0)
    if name == "sms":
        return SmsPolicy(**kwargs)
    if name == "dynprio":
        return DynPrioPolicy(**kwargs)
    if name in ("cm-bal", "cmbal"):
        return CmBalPolicy(**kwargs)
    if name == "tap":
        return TapPolicy(**kwargs)
    if name == "dash":
        return DashPolicy(**kwargs)
    if name == "drp":
        return DrpPolicy(**kwargs)
    if name in ("throttle", "throt"):
        return ThrottlePolicy(cpu_priority=False, **kwargs)
    if name in ("throtcpuprio", "throttle+cpuprio", "proposal"):
        return ThrottlePolicy(cpu_priority=True, **kwargs)
    if name in ("estimate", "frpu-only"):
        # FRPU runs and logs predictions, but the target is set so high
        # above any achievable rate that the ATU never engages — used to
        # measure estimation accuracy (Fig. 8)
        return ThrottlePolicy(cpu_priority=False, target_fps=1e6)
    raise KeyError(f"unknown policy {name!r}")


POLICY_NAMES = ["baseline", "sms-0.9", "sms-0", "dynprio", "dash",
                "helm", "cm-bal", "tap", "drp", "throttle",
                "throtcpuprio"]

__all__ = ["Policy", "BaselinePolicy", "BypassAllPolicy", "HelmPolicy",
           "SmsPolicy", "DynPrioPolicy", "DashPolicy", "CmBalPolicy", "TapPolicy",
           "DrpPolicy", "ThrottlePolicy", "make_policy", "POLICY_NAMES"]
