"""HeLM (Mekkat et al., PACT'13): selective LLC bypass of GPU read
misses from latency-tolerant shader cores.

HeLM samples the GPU's latency tolerance and, while the GPU is deemed
tolerant, bypasses its read-miss fills so the freed LLC capacity shifts
to the CPU.  We estimate tolerance the way HeLM's intuition prescribes:
a GPU whose front end rarely blocks on full MSHRs (plenty of thread-level
parallelism left) is tolerant.  Tolerance is re-sampled periodically from
the pipeline's MSHR-stall and issue counters.

Shader-side read streams (texture, vertex, shader instructions, z-hier)
bypass while tolerant; ROP (colour/depth) reads additionally bypass in
the *aggressive* mode the paper attributes to HeLM's behaviour on these
workloads.  The expected pathology (Sections II and VI): bypass kills
GPU LLC reuse, DRAM read traffic rises, and both CPU and GPU lose to
bandwidth pressure — CPU gains stay small (+3-4%) and GPU drops ~7% FPS
on low-FPS mixes.
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS
from repro.policies.base import Policy

SHADER_KINDS = frozenset({"texture", "vertex", "shader_i", "zhier"})


class HelmPolicy(Policy):
    name = "helm"

    def __init__(self, sample_interval_gpu_cycles: int = 4096,
                 stall_tolerance: float = 0.05, aggressive: bool = True):
        self.sample_interval = sample_interval_gpu_cycles
        self.stall_tolerance = stall_tolerance
        self.aggressive = aggressive
        self.tolerant = True          # optimistic start, like HeLM's sampler
        self._last_stalls = 0
        self._last_reads = 0
        self.samples = 0

    def attach(self, system) -> None:
        self._system = system
        system.llc.bypass_fn = self._bypass
        if system.gpu is not None:
            interval = self.sample_interval * GPU_CYCLE_TICKS
            system.sim.after_call(interval, self._sample, interval)

    def _bypass(self, req) -> bool:
        if not self.tolerant:
            return False
        if req.kind in SHADER_KINDS:
            return True
        return self.aggressive        # ROP reads too, in aggressive mode

    def _sample(self, interval: int) -> None:
        gpu = self._system.gpu
        if gpu is None or gpu.stopped:
            return
        stalls = gpu.stats.get("mshr_stalls")
        reads = gpu.stats.get("llc_reads")
        d_stalls = stalls - self._last_stalls
        d_reads = reads - self._last_reads
        self._last_stalls, self._last_reads = stalls, reads
        if d_reads > 0:
            was = self.tolerant
            self.tolerant = (d_stalls / d_reads) <= self.stall_tolerance
            if self.tolerant != was:
                self.emit("policy", tick=self._system.sim.now,
                          policy=self.name, signal="tolerant",
                          value=float(self.tolerant))
        self.samples += 1
        self._system.sim.after_call(interval, self._sample, interval)
