"""Force ALL GPU read-miss fills to bypass the LLC.

This is the Section II motivation experiment behind Fig. 3: it frees LLC
capacity for the CPU but inflates GPU DRAM traffic (every lost reuse
becomes a DRAM access), so CPU applications that cannot use the extra
capacity *lose* performance to the added bandwidth pressure — the
paper's argument for why bypass-only schemes (HeLM) are not enough.
"""

from __future__ import annotations

from repro.policies.base import Policy


class BypassAllPolicy(Policy):
    name = "bypass-all"

    def attach(self, system) -> None:
        system.llc.bypass_fn = lambda req: True
