"""DASH-lite: deadline-aware memory scheduling for accelerators
(Usui et al., TACO'16 — the paper's reference [40]), simplified.

DASH schedules heterogeneous agents by *urgency*: an accelerator whose
deadline is at risk becomes urgent and is prioritised over CPU cores;
a comfortably-on-track accelerator is deprioritised below them.  Unlike
DynPrio's three fixed modes, DASH uses the *fraction of the deadline
budget consumed relative to progress* as a continuous urgency signal
with hysteresis, and (in the original) per-application awareness of
CPU memory intensity.

The original estimates accelerator progress from profiled worst-case
execution times; the paper notes this reliance on prior profile
information as a drawback (Section IV).  Our substitute uses the same
live progress interface the FRPU exposes — consistent with how the
paper wired DynPrio.

Implemented as an extension policy (``make_policy("dash")``) and
compared in the LLC/scheduler ablations.
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS
from repro.dram.schedulers import DynPrioScheduler
from repro.policies.base import Policy


class DashPolicy(Policy):
    name = "dash"

    #: urgency hysteresis: become urgent above hi, relax below lo
    URGENT_HI = 1.10
    URGENT_LO = 0.95

    def __init__(self, target_fps: float = 40.0,
                 tick_gpu_cycles: int = 256):
        self.target_fps = target_fps
        self.tick_gpu_cycles = tick_gpu_cycles
        self._schedulers: list[DynPrioScheduler] = []
        self.urgent = False
        self.urgency_log: list[float] = []

    def scheduler_factory(self):
        def make(ch: int) -> DynPrioScheduler:
            s = DynPrioScheduler()
            s.mode = "cpu_high"        # non-urgent accelerators yield
            self._schedulers.append(s)
            return s
        return make

    def attach(self, system) -> None:
        self._system = system
        if system.gpu is None:
            return
        w = system.gpu.workload
        self._deadline = (system.cfg.scale.gpu_frame_cycles *
                          w.fps_nominal / self.target_fps)
        interval = self.tick_gpu_cycles * GPU_CYCLE_TICKS
        system.sim.after_call(interval, self._tick, interval)

    def _urgency(self) -> float:
        """>1: consuming budget faster than progress — deadline at risk."""
        gpu = self._system.gpu
        elapsed = gpu.current_frame_elapsed_cycles()
        progress = max(gpu.frame_progress, 1e-3)
        return (elapsed / self._deadline) / progress

    def _tick(self, interval: int) -> None:
        gpu = self._system.gpu
        if gpu is None or gpu.stopped:
            return
        u = self._urgency()
        self.urgency_log.append(u)
        was_urgent = self.urgent
        if not self.urgent and u >= self.URGENT_HI:
            self.urgent = True
        elif self.urgent and u <= self.URGENT_LO:
            self.urgent = False
        mode = "gpu_high" if self.urgent else "cpu_high"
        if self.urgent != was_urgent:
            now = self._system.sim.now
            self.emit("policy", tick=now, policy=self.name,
                      signal="urgent", value=float(self.urgent))
            self.emit("dram_priority", tick=now, mode=mode,
                      source=self.name)
        for s in self._schedulers:
            s.mode = mode
        self._system.sim.after_call(interval, self._tick, interval)
