"""DynPrio (Jeong et al., DAC'12): deadline-aware dynamic priority.

DynPrio tracks frame progress against the target frame time and sets the
DRAM scheduler's priority level:

* GPU ahead of schedule  -> CPU gets priority (``cpu_high``),
* GPU behind schedule    -> equal priority (plain FR-FCFS),
* last 10% of the frame's time budget -> GPU gets priority.

The original uses TBDR-specific progress estimation available only on
mobile GPUs; the paper (and we) substitute our FRPU-style progress — the
pipeline's RTP-walk fraction — as Section VI's evaluation does ("DynPrio
makes use of our frame rate estimation technique").
"""

from __future__ import annotations

from repro.config import GPU_CYCLE_TICKS
from repro.dram.schedulers import DynPrioScheduler
from repro.policies.base import Policy


class DynPrioPolicy(Policy):
    name = "dynprio"

    def __init__(self, target_fps: float = 40.0,
                 tick_gpu_cycles: int = 256):
        self.target_fps = target_fps
        self.tick_gpu_cycles = tick_gpu_cycles
        self._schedulers: list[DynPrioScheduler] = []
        self.mode_counts = {"cpu_high": 0, "equal": 0, "gpu_high": 0}

    def scheduler_factory(self):
        def make(ch: int) -> DynPrioScheduler:
            s = DynPrioScheduler()
            self._schedulers.append(s)
            return s
        return make

    def attach(self, system) -> None:
        self._system = system
        if system.gpu is None:
            return
        w = system.gpu.workload
        # frame deadline in GPU cycles, at this game's time scale
        self._deadline = (system.cfg.scale.gpu_frame_cycles *
                          w.fps_nominal / self.target_fps)
        interval = self.tick_gpu_cycles * GPU_CYCLE_TICKS
        system.sim.after_call(interval, self._tick, interval)

    def _tick(self, interval: int) -> None:
        gpu = self._system.gpu
        if gpu is None or gpu.stopped:
            return
        prev = self._schedulers[0].mode if self._schedulers else None
        elapsed = gpu.current_frame_elapsed_cycles()
        progress = gpu.frame_progress
        if elapsed >= self._deadline:
            # deadline already missed (a below-target GPU application):
            # the GPU "lags behind the target frame rendering time" and
            # gets equal priority — baseline FR-FCFS behaviour
            mode = "equal"
        elif elapsed >= 0.9 * self._deadline:
            mode = "gpu_high"        # last 10% of the time budget
        elif progress * self._deadline < elapsed:
            mode = "equal"           # lagging: GPU promoted to equal
        else:
            mode = "cpu_high"        # ahead of schedule: CPU first
        for s in self._schedulers:
            s.mode = mode
        if mode != prev:
            self.emit("dram_priority", tick=self._system.sim.now,
                      mode=mode, source=self.name)
        self.mode_counts[mode] += 1
        self._system.sim.after_call(interval, self._tick, interval)
