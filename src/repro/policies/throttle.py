"""The paper's proposal.

``ThrottlePolicy(cpu_priority=False)`` — "Throttled" in Fig. 9: FRPU +
ATU only; the DRAM scheduler stays baseline FR-FCFS.

``ThrottlePolicy(cpu_priority=True)`` — "Throttled+CPU priority" /
"ThrotCPUprio": additionally boosts CPU priority in the DRAM access
schedulers while throttling is active (Section III-C).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.qos import QoSController
from repro.dram.schedulers import CpuPriorityScheduler
from repro.policies.base import Policy


class ThrottlePolicy(Policy):
    def __init__(self, cpu_priority: bool = True, target_fps: float = None,
                 correct_throttle: bool = True, predictor: str = None):
        self.cpu_priority = cpu_priority
        self.target_fps = target_fps
        self.correct_throttle = correct_throttle
        #: frame-time predictor override; None defers to
        #: ``SystemConfig.qos.predictor`` (see docs/predictors.md)
        self.predictor = predictor
        self.name = "throtcpuprio" if cpu_priority else "throttle"
        self.qos: QoSController | None = None
        self._schedulers: list[CpuPriorityScheduler] = []

    def scheduler_factory(self):
        def make(ch: int) -> CpuPriorityScheduler:
            s = CpuPriorityScheduler()
            self._schedulers.append(s)
            return s
        return make

    def attach(self, system) -> None:
        self._system = system
        if system.gpu is None:
            return
        qos_cfg = system.cfg.qos
        if self.target_fps is not None:
            qos_cfg = replace(qos_cfg, target_fps=self.target_fps)
        if not self.cpu_priority:
            qos_cfg = replace(qos_cfg, cpu_priority_boost=False)
        if self.predictor is not None:
            qos_cfg = replace(qos_cfg, predictor=self.predictor)
        self.qos = QoSController(
            system.sim, qos_cfg, system.gpu,
            system.cfg.scale.gpu_frame_cycles,
            dram_schedulers=self._schedulers,
            correct_throttle=self.correct_throttle,
            seed=system.cfg.seed,
            telemetry=system.telemetry)
        self.qos.start()
