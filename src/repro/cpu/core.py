"""Trace-driven interval model of one out-of-order CPU core.

The core consumes a synthetic memory-operation trace.  Non-memory work
retires at ``ipc`` (min of the profile's IPC and the issue width);
private L1/L2 caches are functional with small hit penalties; LLC-bound
loads overlap up to the profile's MLP limit (the ROB/dependence proxy),
and *serial* (pointer-chase) loads block issue entirely.  Stores drain
through a finite write buffer.

This is the standard interval-style approximation: it reproduces the two
first-order couplings the paper's mechanism exploits — CPU performance
falls when (a) its LLC misses rise (capacity stolen) and (b) its DRAM
latency rises (bandwidth stolen).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import hotpath
from repro.config import CpuCoreConfig
from repro.cpu.branch import BranchModel
from repro.cpu.trace import TraceGenerator
from repro.mem.cache import Cache
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator
from repro.sim.stats import StatSet

#: memops processed per activation before yielding to the event loop
CHUNK = 256
#: max ticks the core may run ahead of global time before yielding
QUANTUM = 1024


class CpuCore:
    def __init__(self, sim: Simulator, cfg: CpuCoreConfig, core_id: int,
                 trace: TraceGenerator,
                 llc_send: Callable[[MemRequest], None],
                 target_instructions: int,
                 on_target_reached: Optional[Callable[[int], None]] = None,
                 warmup_instructions: int = 0):
        self.sim = sim
        self.cfg = cfg
        self.core_id = core_id
        self.name = f"cpu{core_id}"
        self.trace = trace
        self.llc_send = llc_send
        self.warmup_instructions = warmup_instructions
        self.target_instructions = warmup_instructions + target_instructions
        self.measured_instructions = target_instructions
        self.warm_time: Optional[int] = None
        self.on_target_reached = on_target_reached

        self.l1i = Cache(cfg.l1i)
        self.l1d = Cache(cfg.l1d)
        self.l2 = Cache(cfg.l2)
        self.ipc = min(cfg.issue_width, trace.profile.ipc_base)
        self.mlp = min(cfg.mlp_limit, trace.profile.mlp)
        self.branches = BranchModel(trace.profile.spec_id)

        self._time = 0.0              # local core time in ticks
        self._batch = None
        self._idx = 0
        self._ifetch = None
        self._ifetch_idx = 0
        self._fetch_debt = 0
        #: batched trace walk (see :mod:`repro.hotpath`): the NumPy
        #: batch arrays are converted to plain Python lists once per
        #: refill, so the per-memop loop indexes native ints/bools
        #: instead of materialising a NumPy scalar per field per memop.
        #: ``tolist()`` is exact for int64/bool, so both walks consume
        #: identical values (``tests/sim/test_hotpath_golden.py``).
        self._batched = hotpath.use_batching()
        self._gaps: Optional[list] = None
        self._addrs: Optional[list] = None
        self._writes: Optional[list] = None
        self._serial: Optional[list] = None
        self.outstanding = 0          # in-flight LLC loads
        self.wb_used = 0              # in-flight LLC stores
        #: line addresses with a fill in flight (L1-MSHR merge: repeat
        #: accesses to these lines must not issue duplicate LLC requests)
        self._inflight: set[int] = set()
        self._stall: Optional[str] = None
        self._running = False
        self.instructions = 0
        self.done = False
        self.finish_time: Optional[int] = None
        #: span tracer (None unless the system wires one) — samples
        #: this core's LLC-bound requests at the issue boundary
        self.tracer = None

        # next-line stream prefetcher state (L2 prefetcher): detects
        # ascending line streaks among L2 misses and runs ahead of them,
        # converting stream demand misses into L2 hits — streaming apps
        # are bandwidth-bound, not latency-bound, like real hardware
        self._pf_last_line = -2
        self._pf_streak = 0
        self._pf_depth = 4
        self._pf_outstanding = 0
        self._pf_max_outstanding = 8

        self.stats = StatSet(self.name)
        s = self.stats
        self._c_inst = s.counter("instructions")
        self._c_llc_loads = s.counter("llc_loads")
        self._c_llc_stores = s.counter("llc_stores")
        self._c_llc_ifetch = s.counter("llc_ifetch")
        self._c_prefetches = s.counter("llc_prefetches")
        self._stalls = {k: s.counter(f"stall_{k}")
                        for k in ("mlp", "serial", "wb", "ifetch")}

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        self._time = float(self.sim.now)
        self._schedule()

    def _schedule(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.at(max(int(self._time), self.sim.now), self._activate)

    def _activate(self) -> None:
        self._running = False
        if self._stall is not None:
            return
        self._time = max(self._time, float(self.sim.now))
        self._run_chunk()

    # -- the interval loop ----------------------------------------------------

    def _refill(self) -> None:
        b = self._batch = self.trace.next_batch(4096)
        self._idx = 0
        if self._batched:
            self._gaps = b.gaps.tolist()
            self._addrs = b.addrs.tolist()
            self._writes = b.writes.tolist()
            self._serial = b.serial.tolist()
        self._ifetch = self.trace.ifetch_addresses(4096)
        if self._batched:
            self._ifetch = self._ifetch.tolist()
        self._ifetch_idx = 0

    def _run_chunk(self) -> None:
        if self._batched:
            return self._run_chunk_batched()
        sim_now = self.sim.now
        deadline = sim_now + QUANTUM
        for _ in range(CHUNK):
            if self._stall is not None:
                return
            if self._batch is None or self._idx >= self._batch.n:
                self._refill()
            b = self._batch
            i = self._idx
            self._idx += 1
            gap = int(b.gaps[i])
            self._retire(gap + 1)
            self._time += (gap + 1) / self.ipc
            self._time += self.branches.charge(gap + 1)
            self._fetch_debt += gap + 1

            if self._fetch_debt >= 16:
                self._fetch_debt -= 16
                self._do_ifetch()
                if self._stall is not None:
                    return

            addr = int(b.addrs[i])
            write = bool(b.writes[i])
            serial = bool(b.serial[i])
            self._access_data(addr, write, serial)
            if self._stall is not None:
                return
            if self._time > deadline:
                break
        self._schedule_at_time()

    def _run_chunk_batched(self) -> None:
        """The default trace walk: identical op sequence to
        :meth:`_run_chunk`'s legacy loop, but indexing the plain-list
        copies of the batch arrays — native ints/bools, no NumPy scalar
        extraction per field per memop — with the loop-invariant method
        and field lookups hoisted out of the loop.  Every arithmetic
        operation (including the two separate float adds into
        ``_time``) is kept in the legacy order so both walks stay
        bit-identical."""
        deadline = self.sim.now + QUANTUM
        gaps = self._gaps
        addrs = self._addrs
        writes = self._writes
        serial = self._serial
        n_batch = 0 if self._batch is None else self._batch.n
        retire = self._retire
        charge = self.branches.charge
        access = self._access_data
        ipc = self.ipc
        for _ in range(CHUNK):
            if self._stall is not None:
                return
            i = self._idx
            if i >= n_batch:
                self._refill()
                gaps = self._gaps
                addrs = self._addrs
                writes = self._writes
                serial = self._serial
                n_batch = self._batch.n
                i = 0
            self._idx = i + 1
            g1 = gaps[i] + 1
            retire(g1)
            self._time += g1 / ipc
            self._time += charge(g1)
            debt = self._fetch_debt + g1

            if debt >= 16:
                self._fetch_debt = debt - 16
                self._do_ifetch()
                if self._stall is not None:
                    return
            else:
                self._fetch_debt = debt

            access(addrs[i], writes[i], serial[i])
            if self._stall is not None:
                return
            if self._time > deadline:
                break
        self._schedule_at_time()

    def _schedule_at_time(self) -> None:
        if not self._running:
            self._running = True
            self.sim.at(max(int(self._time), self.sim.now), self._activate)

    def _retire(self, n: int) -> None:
        self.instructions += n
        self._c_inst.inc(n)
        if self.warm_time is None and \
                self.instructions >= self.warmup_instructions:
            self.warm_time = int(self._time)
        if not self.done and self.instructions >= self.target_instructions:
            self.done = True
            self.finish_time = int(self._time)
            if self.on_target_reached is not None:
                self.on_target_reached(self.core_id)

    # -- private cache walk ------------------------------------------------

    def _do_ifetch(self) -> None:
        if self._ifetch is None or self._ifetch_idx >= len(self._ifetch):
            self._ifetch = self.trace.ifetch_addresses(4096)
            if self._batched:
                self._ifetch = self._ifetch.tolist()
            self._ifetch_idx = 0
        addr = int(self._ifetch[self._ifetch_idx])
        self._ifetch_idx += 1
        if self.l1i.lookup(addr) is not None:
            return
        if self.l2.lookup(addr) is not None:
            self._time += self.cfg.l2.latency
            self._fill(self.l1i, addr)
            return
        line_addr = addr & ~(self.l1i.line_bytes - 1)
        if line_addr in self._inflight:
            return                    # fill already on its way
        self._inflight.add(line_addr)
        addr = line_addr
        # ifetch LLC miss: front end stalls until the line returns
        self._c_llc_ifetch.inc()
        self._stall = "ifetch"
        self._stalls["ifetch"].inc()
        req = MemRequest(addr, False, self.name, "inst",
                         on_done=self._ifetch_done,
                         created_at=int(self._time))
        self._send(req)

    def _ifetch_done(self, req: MemRequest) -> None:
        self._inflight.discard(req.addr)
        self._fill(self.l2, req.addr)
        self._fill(self.l1i, req.addr)
        if self._stall == "ifetch":
            self._stall = None
            self._time = max(self._time, float(self.sim.now))
            self._schedule_at_time()

    def _access_data(self, addr: int, write: bool, serial: bool) -> None:
        if self.l1d.lookup(addr, write=write) is not None:
            return
        line = self.l2.lookup(addr, write=write)
        if line is not None:
            self._time += self.cfg.l2.latency
            self._fill(self.l1d, addr, dirty=write)
            return
        line_addr = addr & ~(self.l1d.line_bytes - 1)
        self._train_prefetcher(line_addr)
        if line_addr in self._inflight:
            return                    # merged onto the in-flight fill
        self._inflight.add(line_addr)
        if write:
            self._issue_store(line_addr)
        else:
            self._issue_load(line_addr, serial)

    def _train_prefetcher(self, line_addr: int) -> None:
        line = line_addr >> 6
        if line == self._pf_last_line + 1:
            self._pf_streak += 1
        elif line != self._pf_last_line:
            self._pf_streak = 0
        self._pf_last_line = line
        if self._pf_streak < 2:
            return
        for d in range(1, self._pf_depth + 1):
            if self._pf_outstanding >= self._pf_max_outstanding:
                return
            pf_addr = line_addr + d * 64
            if pf_addr in self._inflight:
                continue
            if self.l2.probe(pf_addr) is not None:
                continue
            self._inflight.add(pf_addr)
            self._pf_outstanding += 1
            self._c_prefetches.inc()
            req = MemRequest(pf_addr, False, self.name, "prefetch",
                             on_done=self._prefetch_done,
                             created_at=int(self._time))
            self._send(req)

    def _prefetch_done(self, req: MemRequest) -> None:
        self._pf_outstanding -= 1
        self._inflight.discard(req.addr)
        # prefetches fill the L2 only (no L1 pollution)
        self._fill(self.l2, req.addr)

    def _issue_load(self, addr: int, serial: bool) -> None:
        self._c_llc_loads.inc()
        self.outstanding += 1
        req = MemRequest(addr, False, self.name, "load",
                         on_done=self._load_done,
                         created_at=int(self._time))
        if serial:
            req.meta = {"serial": True}
            self._stall = "serial"
            self._stalls["serial"].inc()
        elif self.outstanding >= self.mlp:
            self._stall = "mlp"
            self._stalls["mlp"].inc()
        self._send(req)

    def _load_done(self, req: MemRequest) -> None:
        self.outstanding -= 1
        self._inflight.discard(req.addr)
        self._fill_both(req.addr, dirty=False)
        if self._stall == "serial" and req.meta and req.meta.get("serial"):
            self._resume()
        elif self._stall == "mlp" and self.outstanding < self.mlp:
            self._resume()

    def _issue_store(self, addr: int) -> None:
        self._c_llc_stores.inc()
        if self.wb_used >= self.cfg.write_buffer:
            self._stall = "wb"
            self._stalls["wb"].inc()
        self.wb_used += 1
        req = MemRequest(addr, False, self.name, "store",
                         on_done=self._store_done,
                         created_at=int(self._time))
        self._send(req)

    def _store_done(self, req: MemRequest) -> None:
        self.wb_used -= 1
        self._inflight.discard(req.addr)
        self._fill_both(req.addr, dirty=True)
        if self._stall == "wb" and self.wb_used < self.cfg.write_buffer:
            self._resume()

    def _resume(self) -> None:
        self._stall = None
        self._time = max(self._time, float(self.sim.now))
        self._schedule_at_time()

    def _send(self, req: MemRequest) -> None:
        when = max(int(self._time), self.sim.now)
        tr = self.tracer
        if tr is not None:
            tr.maybe_start(req, when)
            if req.span is not None:
                tr.gauge_record("cpu_outstanding", when, self.outstanding)
        self.sim.at_call(when, self.llc_send, req)

    # -- fills, evictions, inclusion ---------------------------------------

    def _fill(self, cache: Cache, addr: int, dirty: bool = False) -> None:
        ev = cache.allocate(addr, write=dirty, owner=self.name)
        if ev is None:
            return
        if cache is self.l2:
            # L2 is inclusive of L1s here: evicting L2 drops L1 copies
            l1_line = self.l1d.invalidate(ev.addr)
            dirty_out = ev.dirty or (l1_line is not None and l1_line.dirty)
            self.l1i.invalidate(ev.addr)
            if dirty_out:
                wb = MemRequest(ev.addr, True, self.name, "writeback",
                                created_at=self.sim.now)
                self._send(wb)
        elif cache is self.l1d and ev.dirty:
            self.l2.allocate(ev.addr, write=True, owner=self.name)

    def _fill_both(self, addr: int, dirty: bool) -> None:
        self._fill(self.l2, addr, dirty=dirty)
        self._fill(self.l1d, addr, dirty=dirty)

    def back_invalidate(self, addr: int) -> bool:
        """Inclusive-LLC back-invalidation of this core's private copies.

        Returns True if a private copy was dirty — the LLC merges that
        into the line it is writing back to DRAM.
        """
        l1 = self.l1d.invalidate(addr)
        l2 = self.l2.invalidate(addr)
        self.l1i.invalidate(addr)
        return (l1 is not None and l1.dirty) or (l2 is not None and l2.dirty)

    # -- metrics ---------------------------------------------------------------

    def guard_state(self) -> dict:
        """Occupancy/stall snapshot for the invariant monitor."""
        return {"outstanding": self.outstanding, "mlp": self.mlp,
                "wb_used": self.wb_used,
                "wb_cap": self.cfg.write_buffer,
                "prefetches": self._pf_outstanding,
                "inflight_lines": len(self._inflight),
                "stall": self._stall, "done": self.done}

    @property
    def cycles_to_target(self) -> Optional[int]:
        return self.finish_time

    def ipc_achieved(self) -> float:
        """IPC over the measured (post-warm-up) region."""
        if self.finish_time is None:
            return 0.0
        start = self.warm_time or 0
        cycles = self.finish_time - start
        if cycles <= 0:
            return 0.0
        return self.measured_instructions / cycles
