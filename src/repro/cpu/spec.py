"""Synthetic characterisations of the SPEC CPU 2006 applications the
paper mixes with the GPU workloads (Table III uses 13 distinct ids).

The paper ran 450M-instruction SimPoint regions on Multi2Sim; we have no
SPEC binaries or traces, so each id becomes a :class:`SpecProfile` — a
generative model of its memory behaviour built from the community's
well-known characterisations of these benchmarks (footprints, streaming
vs pointer-chasing nature, MPKI class, MLP).  What the throttling
mechanism cares about is the *distribution* of CPU memory behaviours:
some latency-bound, some bandwidth-bound, some LLC-capacity-sensitive.

Address streams are mixtures of four generators:

* ``stream``  — sequential unit-stride walk over a region (prefetch-like
  row-buffer-friendly traffic; bwaves/libquantum/lbm style)
* ``hot``     — uniform random over a small hot set (cache-resident)
* ``random``  — uniform random over the full footprint (capacity misses)
* ``pointer`` — random over the footprint with *serial dependence*
  (each such load blocks issue; mcf/omnetpp style latency-bound traffic)
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class StreamSpec:
    kind: str                  # stream | hot | random | pointer
    weight: float              # fraction of memory accesses
    region_bytes: int          # region this generator walks


@dataclass(frozen=True)
class SpecProfile:
    spec_id: int
    name: str
    #: memory operations per kilo-instruction (loads+stores reaching L1D)
    mem_per_kinst: int
    #: fraction of memory ops that are stores
    store_frac: float
    #: non-memory IPC ceiling (issue width permitting)
    ipc_base: float
    #: max overlapping LLC-bound loads the dependence structure allows
    mlp: int
    streams: tuple[StreamSpec, ...] = field(default_factory=tuple)
    #: instruction-fetch code footprint (L1I traffic)
    code_bytes: int = 64 * 1024

    def __post_init__(self) -> None:
        total = sum(s.weight for s in self.streams)
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"{self.name}: stream weights sum to {total}")


MB = 1024 * 1024
KB = 1024


def _p(spec_id, name, mem, store, ipc, mlp, streams, code_kb=64):
    return SpecProfile(spec_id, name, mem, store, ipc, mlp,
                       tuple(StreamSpec(k, w, r) for k, w, r in streams),
                       code_bytes=code_kb * KB)


#: The 13 SPEC ids appearing in Table III.
#:
#: Weights are derived from each benchmark's published L2-miss MPKI
#: class: LLC-access MPKI ~= mem_per_kinst * (w_random + w_pointer +
#: w_stream/8) since streams open a new line every 8th access while the
#: two hot sets stay L1-/L2-resident.  Footprints are sized relative to
#: the 16 MB LLC so capacity sensitivity matches (mcf/omnetpp/soplex
#: LLC-sensitive; libquantum/lbm/bwaves pure bandwidth; gcc/bzip2 mostly
#: cache-resident).
SPEC_PROFILES: dict[int, SpecProfile] = {p.spec_id: p for p in [
    # bzip2: decent locality, ~8 LLC-access MPKI
    _p(401, "bzip2", mem=280, store=0.30, ipc=2.4, mlp=6, streams=[
        ("hot", 0.73, 16 * KB), ("hot", 0.212, 96 * KB),
        ("stream", 0.05, 8 * MB), ("random", 0.008, 8 * MB)]),
    # gcc: low MPKI, mostly cache-resident
    _p(403, "gcc", mem=300, store=0.35, ipc=2.2, mlp=4, streams=[
        ("hot", 0.755, 16 * KB), ("hot", 0.24, 96 * KB),
        ("random", 0.003, 4 * MB), ("pointer", 0.002, 4 * MB)]),
    # bwaves: heavy streaming bandwidth, ~22 MPKI
    _p(410, "bwaves", mem=360, store=0.25, ipc=2.6, mlp=12, streams=[
        ("stream", 0.20, 48 * MB), ("hot", 0.60, 16 * KB),
        ("hot", 0.194, 96 * KB), ("random", 0.006, 48 * MB)]),
    # mcf: the classic latency-bound pointer chaser, huge footprint
    _p(429, "mcf", mem=390, store=0.20, ipc=1.4, mlp=3, streams=[
        ("pointer", 0.03, 64 * MB), ("random", 0.03, 64 * MB),
        ("hot", 0.61, 16 * KB), ("hot", 0.33, 96 * KB)]),
    # milc: streaming with large working set, ~25 MPKI
    _p(433, "milc", mem=340, store=0.30, ipc=2.2, mlp=10, streams=[
        ("stream", 0.20, 40 * MB), ("random", 0.012, 40 * MB),
        ("hot", 0.60, 16 * KB), ("hot", 0.188, 96 * KB)]),
    # zeusmp: mixed compute/stream, ~11 MPKI
    _p(434, "zeusmp", mem=300, store=0.30, ipc=2.6, mlp=8, streams=[
        ("stream", 0.12, 24 * MB), ("random", 0.004, 24 * MB),
        ("hot", 0.62, 16 * KB), ("hot", 0.256, 96 * KB)]),
    # leslie3d: streaming bandwidth-heavy, ~21 MPKI
    _p(437, "leslie3d", mem=350, store=0.30, ipc=2.4, mlp=12, streams=[
        ("stream", 0.20, 40 * MB), ("random", 0.005, 40 * MB),
        ("hot", 0.60, 16 * KB), ("hot", 0.195, 96 * KB)]),
    # soplex: large sparse working set, LLC-capacity sensitive, ~28 MPKI
    _p(450, "soplex", mem=370, store=0.25, ipc=1.8, mlp=6, streams=[
        ("random", 0.025, 20 * MB), ("pointer", 0.010, 20 * MB),
        ("stream", 0.025, 20 * MB), ("hot", 0.59, 16 * KB),
        ("hot", 0.35, 96 * KB)]),
    # libquantum: pure streaming, extremely bandwidth-bound, ~29 MPKI
    _p(462, "libquantum", mem=330, store=0.25, ipc=2.8, mlp=16, streams=[
        ("stream", 0.35, 64 * MB), ("hot", 0.65, 16 * KB)]),
    # lbm: streaming with heavy store traffic, ~29 MPKI
    _p(470, "lbm", mem=340, store=0.45, ipc=2.6, mlp=14, streams=[
        ("stream", 0.34, 64 * MB), ("random", 0.002, 64 * MB),
        ("hot", 0.658, 16 * KB)]),
    # omnetpp: pointer-heavy event simulator, LLC-sensitive, ~24 MPKI
    _p(471, "omnetpp", mem=360, store=0.30, ipc=1.6, mlp=4, streams=[
        ("pointer", 0.022, 24 * MB), ("random", 0.011, 24 * MB),
        ("hot", 0.63, 16 * KB), ("hot", 0.337, 96 * KB)]),
    # wrf: moderate streaming, decent locality, ~9 MPKI
    _p(481, "wrf", mem=310, store=0.30, ipc=2.4, mlp=8, streams=[
        ("stream", 0.10, 16 * MB), ("random", 0.002, 16 * MB),
        ("hot", 0.62, 16 * KB), ("hot", 0.278, 96 * KB)]),
    # sphinx3: medium footprint, LLC-capacity sensitive, ~13 MPKI
    _p(482, "sphinx3", mem=340, store=0.15, ipc=2.0, mlp=6, streams=[
        ("random", 0.012, 12 * MB), ("stream", 0.05, 12 * MB),
        ("pointer", 0.002, 12 * MB), ("hot", 0.65, 16 * KB),
        ("hot", 0.286, 96 * KB)]),
]}


def profile_for(spec_id: int) -> SpecProfile:
    try:
        return SPEC_PROFILES[spec_id]
    except KeyError:
        raise KeyError(f"no profile for SPEC id {spec_id}; known: "
                       f"{sorted(SPEC_PROFILES)}") from None
