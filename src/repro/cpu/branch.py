"""Branch misprediction model for the interval cores.

The interval model charges non-memory work at the profile's base IPC;
branch mispredictions add a deterministic penalty on top: each profile
carries a misprediction density (mispredicts per kilo-instruction,
derived from the benchmark's published branch behaviour class), and the
core charges ``pipeline_flush_cycles`` per expected misprediction using
a fractional accumulator — deterministic, no RNG, and exact in
aggregate.

A misprediction also redirects the front end: the next instruction
fetch is forced to look up the L1I again (modelled by the core's fetch
debt), which is how branchy codes couple to the icache.
"""

from __future__ import annotations

#: pipeline refill penalty on a mispredicted branch (cycles); the
#: Table I cores are deep OOO designs in the Haswell class
FLUSH_CYCLES = 14

#: mispredicts per kilo-instruction by SPEC CPU 2006 id — the published
#: qualitative classes: integer/pointer codes mispredict often (gcc,
#: bzip2, mcf, omnetpp, sphinx), floating-point streamers rarely
MISPREDICT_MPKI: dict[int, float] = {
    401: 8.0,     # bzip2: data-dependent branches
    403: 6.0,     # gcc
    410: 0.6,     # bwaves
    429: 9.0,     # mcf
    433: 0.8,     # milc
    434: 1.2,     # zeusmp
    437: 0.7,     # leslie3d
    450: 4.0,     # soplex
    462: 1.0,     # libquantum
    470: 0.4,     # lbm
    471: 7.0,     # omnetpp
    481: 1.5,     # wrf
    482: 5.0,     # sphinx3
}

DEFAULT_MPKI = 3.0


class BranchModel:
    """Deterministic misprediction accounting for one core."""

    __slots__ = ("penalty_per_inst", "flush_cycles", "_debt",
                 "mispredicts")

    def __init__(self, spec_id: int,
                 flush_cycles: int = FLUSH_CYCLES):
        mpki = MISPREDICT_MPKI.get(spec_id, DEFAULT_MPKI)
        self.flush_cycles = flush_cycles
        self.penalty_per_inst = mpki / 1000.0
        self._debt = 0.0
        self.mispredicts = 0

    def charge(self, instructions: int) -> float:
        """Cycles of flush penalty for retiring ``instructions``."""
        self._debt += instructions * self.penalty_per_inst
        n = int(self._debt)
        if n:
            self._debt -= n
            self.mispredicts += n
        return n * self.flush_cycles
