"""NumPy-batched synthetic address-trace generation.

Per the optimisation guides, the per-access Python cost dominates a
trace-driven simulator, so traces are generated in vectorised batches:
one call produces thousands of ``(gap, addr, is_write, serial)`` tuples
as parallel arrays, and the core model walks them with plain indexing.

Every generator is fully deterministic from ``(profile, seed)``.
"""

from __future__ import annotations

import numpy as np

from repro.config import LINE_BYTES
from repro.cpu.spec import SpecProfile


class _StreamState:
    """Cursor state for one generator in the mixture."""

    __slots__ = ("kind", "base", "size_lines", "cursor")

    def __init__(self, kind: str, base: int, region_bytes: int):
        self.kind = kind
        self.base = base
        self.size_lines = max(region_bytes // LINE_BYTES, 1)
        self.cursor = 0


class TraceBatch:
    """Parallel arrays describing a run of memory operations."""

    __slots__ = ("gaps", "addrs", "writes", "serial", "n")

    def __init__(self, gaps: np.ndarray, addrs: np.ndarray,
                 writes: np.ndarray, serial: np.ndarray):
        self.gaps = gaps          # int64: instructions before this memop
        self.addrs = addrs        # int64: byte addresses (line aligned)
        self.writes = writes      # bool
        self.serial = serial      # bool: load must complete before issue
        self.n = len(gaps)


class TraceGenerator:
    """Generates the memory-operation stream of one SPEC-like app.

    ``base_addr`` places the app in its own region of physical memory
    (the paper's apps do not share data); regions for the individual
    mixture streams are carved sequentially from it.
    """

    def __init__(self, profile: SpecProfile, seed: int, base_addr: int,
                 mem_scale: int = 1):
        self.profile = profile
        self.base_addr = base_addr
        self.mem_scale = max(mem_scale, 1)
        self._rng = np.random.default_rng(seed)
        self._streams: list[_StreamState] = []
        self._weights = np.array([s.weight for s in profile.streams])
        self._weights = self._weights / self._weights.sum()
        offset = base_addr
        for s in profile.streams:
            region = max(s.region_bytes // self.mem_scale, 4096)
            self._streams.append(_StreamState(s.kind, offset, region))
            offset += region
        self.code_base = offset
        self.code_bytes = max(profile.code_bytes // self.mem_scale, 4096)
        self.end_addr = offset + self.code_bytes
        # mean instruction gap between memops
        self._mean_gap = max(1000.0 / profile.mem_per_kinst - 1.0, 0.0)

    def footprint_bytes(self) -> int:
        return self.end_addr - self.base_addr

    def next_batch(self, n: int) -> TraceBatch:
        """Produce the next ``n`` memory operations."""
        rng = self._rng
        prof = self.profile
        # geometric-ish gaps with the right mean, clipped for stability
        gaps = rng.poisson(self._mean_gap, n).astype(np.int64)
        writes = rng.random(n) < prof.store_frac
        serial = np.zeros(n, dtype=bool)
        addrs = np.empty(n, dtype=np.int64)

        choice = rng.choice(len(self._streams), size=n, p=self._weights)
        for i, st in enumerate(self._streams):
            idx = np.nonzero(choice == i)[0]
            if idx.size == 0:
                continue
            if st.kind == "stream":
                # unit-stride word walk: 8 consecutive accesses share one
                # 64 B line, so only every 8th access opens a new line
                # (the L1 filters the rest; DRAM sees a clean stream)
                word = st.cursor + np.arange(idx.size, dtype=np.int64)
                lines = (word // 8) % st.size_lines
                st.cursor = int(st.cursor + idx.size)
            elif st.kind == "hot":
                lines = rng.integers(0, st.size_lines, idx.size)
            elif st.kind == "random":
                lines = rng.integers(0, st.size_lines, idx.size)
            elif st.kind == "pointer":
                lines = rng.integers(0, st.size_lines, idx.size)
                serial[idx] = True
                writes[idx] = False       # chasing loads
            else:  # pragma: no cover - profiles are validated
                raise ValueError(f"unknown stream kind {st.kind!r}")
            addrs[idx] = st.base + lines * LINE_BYTES
        return TraceBatch(gaps, addrs, writes, serial)

    def ifetch_addresses(self, n: int) -> np.ndarray:
        """Instruction-fetch line addresses: a hot loop walking the code
        region with strong locality (almost always L1I-resident)."""
        lines = self.code_bytes // LINE_BYTES
        # 95% within a 16-line loop body, 5% jumps elsewhere in the code
        rng = self._rng
        loop = rng.integers(0, max(lines // 16, 1)) * 16
        offs = np.where(rng.random(n) < 0.95,
                        rng.integers(0, 16, n),
                        rng.integers(0, lines, n))
        return self.code_base + ((loop + offs) % lines) * LINE_BYTES
