"""CPU substrate: SPEC-like workload profiles, trace generation, cores."""

from repro.cpu.spec import SpecProfile, SPEC_PROFILES, profile_for
from repro.cpu.trace import TraceGenerator
from repro.cpu.core import CpuCore

__all__ = ["SpecProfile", "SPEC_PROFILES", "profile_for",
           "TraceGenerator", "CpuCore"]
