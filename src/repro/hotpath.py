"""Process-wide switch for the batched component hot paths.

The DRAM controller and the CPU core each carry two implementations of
their per-tick inner loop: the *legacy* one (straight-line code, one
Python operation per queue entry) and a *batched* one that computes the
identical values with O(banks) scans, plain-list trace walks and
precomputed masks.  Both produce bit-identical schedules — proven by
``tests/sim/test_hotpath_golden.py``, which runs whole systems with the
switch on and off and compares every metric and telemetry record — so
the switch exists for exactly two reasons:

* the equivalence test itself needs a way to build the legacy system;
* ``REPRO_HOTPATH=legacy`` gives one escape hatch if a future component
  interacts badly with the batched paths.

Components sample :func:`use_batching` **at construction time** (the
choice is per-system, not per-call), so flipping the switch never
affects a system that is already running.  The switch deliberately
lives outside :class:`repro.config.SystemConfig`: it changes how fast
results are computed, never what they are, and must not perturb result
cache keys or spec hashes.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_ENV = "REPRO_HOTPATH"

#: values of ``REPRO_HOTPATH`` that select the legacy per-entry paths
_LEGACY_VALUES = ("legacy", "off", "0", "slow")

_enabled = os.environ.get(_ENV, "").strip().lower() not in _LEGACY_VALUES


def use_batching() -> bool:
    """True when newly built components should take the batched paths."""
    return _enabled


def set_batching(on: bool) -> bool:
    """Set the process-wide switch; returns the previous value."""
    global _enabled
    old = _enabled
    _enabled = bool(on)
    return old


@contextmanager
def batching(on: bool):
    """Scoped override: build systems with the switch forced ``on``."""
    old = set_batching(on)
    try:
        yield
    finally:
        set_batching(old)
