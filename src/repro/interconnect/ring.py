"""Bidirectional ring interconnect (Table I: single-cycle hop).

Stops are laid out as ``cpu0..cpuN-1, gpu, llc, mc0, mc1`` on a ring.
A message takes the shorter direction; base latency = hops * hop_ticks.

Two models, selected by ``RingConfig``/constructor:

* ``"latency"`` (default) — pure hop latency.  The paper's ring is
  never the first-order bottleneck (its contention story is LLC
  capacity + DRAM bandwidth), and this keeps the calibrated baseline.
* ``"contention"`` — each direction is a pipelined channel with a
  finite injection rate: a message occupies its direction's injection
  slot for ``slot_ticks``, so bursts queue behind each other and the
  returned delay includes the queueing.  Used by the NoC sensitivity
  tests and available to downstream experiments.
"""

from __future__ import annotations

from repro.config import RingConfig
from repro.sim.stats import StatSet


class RingInterconnect:
    def __init__(self, cfg: RingConfig, n_cpus: int,
                 model: str = "latency", slot_ticks: int = 1):
        if model not in ("latency", "contention"):
            raise ValueError(f"unknown ring model {model!r}")
        self.cfg = cfg
        self.model = model
        self.slot_ticks = slot_ticks
        self.stops: list[str] = (
            [f"cpu{i}" for i in range(n_cpus)] + ["gpu", "llc", "mc0",
                                                  "mc1"])
        self._index = {name: i for i, name in enumerate(self.stops)}
        self.n = len(self.stops)
        #: next free injection slot per direction (cw / ccw)
        self._free_at = {"cw": 0, "ccw": 0}
        #: queueing component of the most recent contention-model
        #: delay() — read by the span tracer's ring-occupancy gauge
        #: (always 0 under the latency model)
        self.last_queued = 0
        self._now_fn = lambda: 0      # wired by the system when needed
        self.stats = StatSet("ring")
        self._messages = self.stats.counter("messages")
        self._hop_total = self.stats.counter("hops")
        self._queued_ticks = self.stats.counter("queued_ticks")

    def wire_clock(self, now_fn) -> None:
        """Give the contention model access to simulated time."""
        self._now_fn = now_fn

    def hops(self, src: str, dst: str) -> int:
        a, b = self._index[src], self._index[dst]
        d = abs(a - b)
        return min(d, self.n - d)

    def direction(self, src: str, dst: str) -> str:
        a, b = self._index[src], self._index[dst]
        cw = (b - a) % self.n
        return "cw" if cw <= self.n - cw else "ccw"

    def delay(self, src: str, dst: str) -> int:
        """Latency in ticks for one message; updates traffic stats.

        Under the contention model the delay additionally includes the
        wait for the direction's injection slot.
        """
        h = self.hops(src, dst)
        self._messages.inc()
        self._hop_total.inc(h)
        base = h * self.cfg.hop_ticks
        if self.model == "latency":
            return base               # last_queued stays 0
        if h == 0:
            self.last_queued = 0
            return base
        now = self._now_fn()
        direction = self.direction(src, dst)
        start = max(now, self._free_at[direction])
        queued = start - now
        self._free_at[direction] = start + self.slot_ticks
        if queued:
            self._queued_ticks.inc(queued)
        self.last_queued = queued
        return base + queued

    def mean_hops(self) -> float:
        m = self._messages.value
        return self._hop_total.value / m if m else 0.0
