"""On-chip interconnect models."""

from repro.interconnect.ring import RingInterconnect

__all__ = ["RingInterconnect"]
