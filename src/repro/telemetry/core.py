"""The telemetry hub: components emit, the hub buffers and streams.

Zero-cost-when-off contract
---------------------------
No component holds a default-on telemetry object.  Every emitting site
keeps a reference that is ``None`` unless a recording was requested
(``HeterogeneousSystem(..., telemetry=...)`` or ``--telemetry PATH``)
and guards with ``if tel is not None`` — one attribute test on *rare*
control-loop events (frame boundaries, recomputes, priority flips),
never on the per-access hot paths.  With no telemetry attached the
simulation schedules exactly the same events and produces bit-identical
stats (``tests/sim/test_telemetry_golden.py``); the macro overhead gate
is ``scripts/bench_kernel.py --check``.

Usage::

    from repro.telemetry import Telemetry

    tel = Telemetry.to_file("run.jsonl")
    system = HeterogeneousSystem(cfg, mix, policy, telemetry=tel)
    system.run()
    tel.close()

or, one level up, :func:`repro.telemetry.record_mix` /
``python -m repro run --telemetry run.jsonl``.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.telemetry.events import SCHEMA, validate
from repro.telemetry.sinks import open_sink

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import HeterogeneousSystem


class Telemetry:
    """Buffers typed records in memory and streams them to sinks.

    ``validate=True`` (the default) checks every record against the
    :data:`repro.telemetry.events.SCHEMA`; the events are rare enough
    that validation costs nothing measurable, and it keeps the schema,
    the docs, and the emitters honest.
    """

    def __init__(self, *, sample_interval_ticks: int = 8192,
                 validate: bool = True, buffer: bool = True):
        self.sample_interval_ticks = sample_interval_ticks
        self.validate = validate
        self.buffer = buffer
        self.records: list[dict] = []
        self._sinks: list = []
        self._counts: dict[str, int] = {}
        self._sampler = None
        self._closed = False

    @classmethod
    def to_file(cls, path: str, **kwargs) -> "Telemetry":
        tel = cls(**kwargs)
        tel.add_sink(open_sink(path))
        return tel

    def add_sink(self, sink) -> "Telemetry":
        self._sinks.append(sink)
        return self

    # -- emission ----------------------------------------------------------

    def emit(self, etype: str, **fields) -> None:
        if self._closed:
            raise RuntimeError("telemetry already closed")
        if self.validate:
            validate(etype, fields)
        record = {"type": etype, **fields}
        self._counts[etype] = self._counts.get(etype, 0) + 1
        if self.buffer:
            self.records.append(record)
        for sink in self._sinks:
            sink.write(record)

    # -- wiring ------------------------------------------------------------

    def bind(self, system: "HeterogeneousSystem") -> None:
        """Called by the system once it is fully built: emit the run
        header and start the interval sampler."""
        cfg, mix = system.cfg, system.mix
        self.emit("run_meta", tick=0, mix=mix.name,
                  policy=system.policy.name, scale=cfg.scale.name,
                  seed=cfg.seed, n_cpus=mix.n_cpus,
                  gpu_app=mix.gpu_app or "")
        if self.sample_interval_ticks > 0:
            from repro.telemetry.sampler import IntervalSampler
            self._sampler = IntervalSampler(system, self,
                                            self.sample_interval_ticks)

    # -- introspection / lifecycle ----------------------------------------

    def count(self, etype: Optional[str] = None) -> int:
        if etype is None:
            return sum(self._counts.values())
        return self._counts.get(etype, 0)

    def counts(self) -> dict[str, int]:
        """Record counts per event type, in schema order."""
        return {t: self._counts[t] for t in SCHEMA if t in self._counts}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Telemetry({self.count()} records, "
                f"{len(self._sinks)} sink(s))")
