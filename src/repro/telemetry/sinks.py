"""Telemetry sinks: stream records to JSONL or CSV files.

A sink receives each record as it is emitted (``write(record)``) and is
flushed/closed by :meth:`repro.telemetry.Telemetry.close`.  Records are
flat dicts that already passed schema validation; sinks never mutate
them.

``open_sink(path)`` picks the format from the extension: ``.jsonl`` /
``.json`` -> one JSON object per line, ``.csv`` -> one row per record
over the stable column set of :func:`repro.telemetry.events.csv_columns`
(missing fields are empty cells).
"""

from __future__ import annotations

import csv
import json
import os

from repro.telemetry.events import csv_columns


class JsonlSink:
    """One compact JSON object per line, in emission order."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")

    def write(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":"),
                                  sort_keys=True))
        self._fh.write("\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class CsvSink:
    """Fixed-column CSV; the header is the schema-wide column union."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8", newline="")
        self._columns = csv_columns()
        self._writer = csv.DictWriter(self._fh, fieldnames=self._columns,
                                      restval="")
        self._writer.writeheader()

    def write(self, record: dict) -> None:
        self._writer.writerow(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ListSink:
    """In-memory sink (tests and ad-hoc probing)."""

    def __init__(self):
        self.records: list[dict] = []

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


def open_sink(path: str):
    """Sink for ``path``, chosen by extension (default JSONL)."""
    ext = os.path.splitext(path)[1].lower()
    if ext == ".csv":
        return CsvSink(path)
    return JsonlSink(path)
