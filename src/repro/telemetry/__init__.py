"""repro.telemetry — structured observability for the throttling loop.

The paper's mechanism is a closed control loop (FRPU prediction -> ATU
``(N_G, W_G)`` gate -> DRAM CPU-priority); this package records *why* a
run produced its FPS/IPC numbers as typed, schema-checked events:
frame boundaries, FRPU learning/prediction transitions with predicted
vs. actual cycles, ATU updates and gate-open/close spans, DRAM
priority-mode flips, and per-interval LLC/DRAM/CPU shares.

* :class:`Telemetry` — the hub components emit into; buffers in memory
  and streams to sinks.  Strictly opt-in: with none attached, every
  emitting site is a single ``is not None`` test on rare control events.
* :mod:`repro.telemetry.events` — the documented record schema
  (``SCHEMA``), enforced at emit time.
* :mod:`repro.telemetry.sinks` — JSONL / CSV / in-memory sinks.
* :func:`record_mix` / :func:`record_standalone` — one-call recorded
  runs (what ``python -m repro run --telemetry PATH`` uses).
* :mod:`repro.analysis.timeline` — turn a recording back into per-frame
  tables and plots.

See docs/telemetry.md for the full schema reference and a worked
example.
"""

from repro.telemetry.core import Telemetry
from repro.telemetry.events import SCHEMA, csv_columns, validate
from repro.telemetry.recording import record_mix, record_standalone
from repro.telemetry.sinks import CsvSink, JsonlSink, ListSink, open_sink

__all__ = ["Telemetry", "SCHEMA", "csv_columns", "validate",
           "record_mix", "record_standalone",
           "CsvSink", "JsonlSink", "ListSink", "open_sink"]
