"""The telemetry record schema.

Every record the telemetry layer emits is a flat dict with a ``type``
field naming one of the event types below plus the fields that type
declares.  The schema is the *contract*: sinks serialise it, the
timeline analyser relies on it, and ``docs/telemetry.md`` documents it
field by field.  Emitting an unknown type or an undeclared field raises
immediately (telemetry is an observability layer — silent schema drift
would defeat its purpose), so the schema here and the docs cannot
diverge from the code without a test noticing.

Units: ``tick`` is simulator ticks (1 tick = 1 CPU cycle at 4 GHz; one
GPU cycle is 4 ticks).  ``*_cycles`` fields are GPU cycles — the paper's
unit for frame times (Eqs. 1-3).  Byte fields are bytes over the
sampling interval.
"""

from __future__ import annotations

from typing import NamedTuple


class Field(NamedTuple):
    name: str
    kind: str           # "int" | "float" | "str"
    unit: str           # "" when dimensionless
    doc: str


class EventSpec(NamedTuple):
    etype: str
    site: str           # the emitting module/class
    doc: str
    fields: tuple[Field, ...]
    required: frozenset[str]


def _spec(etype: str, site: str, doc: str, fields: list[Field],
          optional: tuple[str, ...] = ()) -> EventSpec:
    required = frozenset(f.name for f in fields) - set(optional)
    return EventSpec(etype, site, doc, tuple(fields), required)


#: the full record schema, in documentation order
SCHEMA: dict[str, EventSpec] = {s.etype: s for s in [
    _spec(
        "run_meta", "sim.system.HeterogeneousSystem",
        "One per recording, at tick 0: what is being simulated.",
        [Field("tick", "int", "tick", "always 0"),
         Field("mix", "str", "", "Table III mix name"),
         Field("policy", "str", "", "policy registry name"),
         Field("scale", "str", "", "scaling preset (smoke/test/bench/paper)"),
         Field("seed", "int", "", "RNG seed of the run"),
         Field("n_cpus", "int", "", "number of CPU cores in the mix"),
         Field("gpu_app", "str", "", "Table II game, or '' for CPU-only")]),
    _spec(
        "frame", "sim.system.HeterogeneousSystem._frame_done",
        "A GPU frame finished rendering (ROP flush + fill drain done).",
        [Field("tick", "int", "tick", "frame completion time"),
         Field("frame", "int", "", "frame index (0-based)"),
         Field("cycles", "int", "GPU cycles", "wall cycles for the frame"),
         Field("llc_accesses", "int", "", "LLC accesses issued by the "
               "frame (the paper's per-frame A)"),
         Field("throttle_cycles", "int", "GPU cycles",
               "ATU-injected stall accounted to the frame"),
         Field("n_rtps", "int", "", "render-target planes in the frame")]),
    _spec(
        "frpu_phase", "predict.rtp.RtpExtrapolator",
        "The FRPU crossed a learning <-> prediction boundary (Fig. 4).",
        [Field("tick", "int", "tick", "completion time of the frame that "
               "triggered the transition"),
         Field("frame", "int", "", "triggering frame index"),
         Field("phase", "str", "", "'learning' or 'prediction' — the "
               "phase being *entered*"),
         Field("n_rtp", "int", "", "learned RTPs/frame (entering "
               "prediction only)"),
         Field("c_avg", "float", "GPU cycles", "learned cycles/RTP "
               "(entering prediction only)"),
         Field("actual_cycles", "int", "GPU cycles", "observed cycles of "
               "the triggering frame")],
        optional=("n_rtp", "c_avg")),
    _spec(
        "frpu_error", "predict.rtp.RtpExtrapolator._log_error",
        "Mid-frame prediction vs. the frame's actual cycles (Fig. 8).",
        [Field("tick", "int", "tick", "frame completion time"),
         Field("frame", "int", "", "frame index"),
         Field("predicted_cycles", "float", "GPU cycles",
               "Eq. 3 projection taken mid-frame (lambda in [0.25,0.75])"),
         Field("actual_cycles", "float", "GPU cycles",
               "observed natural frame time (throttle stall removed)"),
         Field("error_pct", "float", "%",
               "100 * (predicted - actual) / actual")]),
    _spec(
        "predictor_error", "predict.base.Predictor._emit_error",
        "Mid-frame prediction vs. actual cycles from a non-reference "
        "predictor behind the FRPU seam (see docs/predictors.md).  The "
        "reference 'rtp' extrapolator keeps emitting 'frpu_error' for "
        "byte-stream compatibility.",
        [Field("tick", "int", "tick", "frame completion time"),
         Field("frame", "int", "", "frame index"),
         Field("predictor", "str", "", "predictor registry name "
               "(rls, ewma-blend, last-frame, ...)"),
         Field("predicted_cycles", "float", "GPU cycles",
               "mid-frame frame-time projection"),
         Field("actual_cycles", "float", "GPU cycles",
               "observed natural frame time (throttle stall removed)"),
         Field("error_pct", "float", "%",
               "100 * (predicted - actual) / actual")]),
    _spec(
        "atu_update", "core.qos.QoSController.recompute",
        "A recompute ran the Fig. 6 flow and refreshed (N_G, W_G).",
        [Field("tick", "int", "tick", "recompute time"),
         Field("ng", "int", "accesses", "burst allowance N_G"),
         Field("wg_cycles", "float", "GPU cycles",
               "port-disable window W_G"),
         Field("c_p", "float", "GPU cycles", "predicted cycles/frame"),
         Field("c_t", "float", "GPU cycles", "target cycles/frame at the "
               "QoS rate"),
         Field("a", "int", "", "learned LLC accesses/frame"),
         Field("active", "int", "", "1 if the gate is installed after "
               "this update")]),
    _spec(
        "gate", "core.qos.QoSController._enable/_disable",
        "Throttle-gate edge: the ATU was installed on or removed from "
        "the GPU's GTT ports.  Consecutive open/close pairs are spans.",
        [Field("tick", "int", "tick", "edge time"),
         Field("state", "str", "", "'open' (throttling) or 'closed'"),
         Field("wg_cycles", "float", "GPU cycles",
               "W_G at the edge (0 when closing)")]),
    _spec(
        "dram_priority", "core.qos / policies.dynprio / policies.dash",
        "The DRAM access schedulers switched priority mode.",
        [Field("tick", "int", "tick", "flip time"),
         Field("mode", "str", "", "'cpu_boost'/'normal' (QoS boost, "
               "Section III-C) or 'cpu_high'/'equal'/'gpu_high' "
               "(DynPrio/DASH levels)"),
         Field("source", "str", "", "who flipped it (qos, dynprio, dash)")]),
    _spec(
        "llc_interval", "telemetry.sampler.IntervalSampler",
        "Periodic LLC state: occupancy split and per-side access/miss "
        "deltas over the interval.",
        [Field("tick", "int", "tick", "sample time"),
         Field("cpu_lines", "int", "lines", "LLC lines owned by CPUs"),
         Field("gpu_lines", "int", "lines", "LLC lines owned by the GPU"),
         Field("cpu_accesses", "int", "", "CPU LLC accesses this interval"),
         Field("gpu_accesses", "int", "", "GPU LLC accesses this interval"),
         Field("cpu_misses", "int", "", "CPU LLC misses this interval"),
         Field("gpu_misses", "int", "", "GPU LLC misses this interval")]),
    _spec(
        "dram_interval", "telemetry.sampler.IntervalSampler",
        "Periodic DRAM state: per-side bandwidth shares and queue depth.",
        [Field("tick", "int", "tick", "sample time"),
         Field("cpu_bytes", "int", "bytes", "CPU data served this interval"),
         Field("gpu_bytes", "int", "bytes", "GPU data served this interval"),
         Field("queue_depth", "int", "requests",
               "total pending requests across channels at the sample")]),
    _spec(
        "cpu_interval", "telemetry.sampler.IntervalSampler",
        "Periodic CPU progress: committed instructions and interval IPC.",
        [Field("tick", "int", "tick", "sample time"),
         Field("instructions", "int", "", "instructions committed across "
               "all cores this interval"),
         Field("ipc", "float", "instr/cycle",
               "interval IPC summed over cores (interval is in CPU "
               "cycles: 1 tick = 1 cycle)")]),
    _spec(
        "policy", "policies.* (helm, tap, dash, cm-bal, drp)",
        "A comparison policy changed an internal control signal.",
        [Field("tick", "int", "tick", "decision time"),
         Field("policy", "str", "", "policy name"),
         Field("signal", "str", "", "which knob (e.g. 'tolerant', "
               "'demote_gpu', 'urgent', 'concurrency_level', "
               "'reuse_prob.texture')"),
         Field("value", "float", "", "new value (booleans as 0/1)")]),
]}


#: stable CSV column order: 'type' plus every field, schema order,
#: de-duplicated
def csv_columns() -> list[str]:
    cols: list[str] = ["type"]
    seen = {"type"}
    for spec in SCHEMA.values():
        for f in spec.fields:
            if f.name not in seen:
                seen.add(f.name)
                cols.append(f.name)
    return cols


def validate(etype: str, fields: dict) -> None:
    """Raise ValueError on an unknown type or undeclared/missing field."""
    spec = SCHEMA.get(etype)
    if spec is None:
        raise ValueError(f"unknown telemetry event type {etype!r}")
    declared = {f.name for f in spec.fields}
    names = set(fields)
    unknown = names - declared
    if unknown:
        raise ValueError(
            f"{etype}: undeclared field(s) {sorted(unknown)}; "
            f"schema declares {sorted(declared)}")
    missing = spec.required - names
    if missing:
        raise ValueError(f"{etype}: missing required field(s) "
                         f"{sorted(missing)}")
