"""One-call recorded runs (the ``--telemetry PATH`` CLI path).

A recorded run bypasses the result cache the same way ``--profile``
does: the sink file is a side effect the cache could not replay.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.telemetry.core import Telemetry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.metrics import RunResult


def record_mix(mix_name: str, policy: str = "throtcpuprio",
               scale: str = "smoke", seed: int = 1,
               path: Optional[str] = None,
               telemetry: Optional[Telemetry] = None,
               predictor: Optional[str] = None
               ) -> tuple["RunResult", Telemetry]:
    """Run one mix with telemetry recording on.

    Pass ``path`` to stream to a JSONL/CSV file, or a pre-built
    ``telemetry`` (e.g. with custom sinks or sampling interval).
    ``predictor`` overrides the FRPU-seam predictor
    (docs/predictors.md).  Returns ``(result, telemetry)``; the
    telemetry is closed.
    """
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name
    from repro.policies import make_policy
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    if telemetry is None:
        telemetry = Telemetry.to_file(path) if path else Telemetry()
    m = mix_by_name(mix_name)
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    if predictor is not None:
        cfg = cfg.with_qos(predictor=predictor)
    system = HeterogeneousSystem(cfg, m, make_policy(policy),
                                 telemetry=telemetry)
    system.run()
    telemetry.close()
    return collect(system), telemetry


def record_standalone(game: Optional[str] = None,
                      spec: Optional[int] = None, scale: str = "smoke",
                      seed: int = 1, path: Optional[str] = None,
                      telemetry: Optional[Telemetry] = None
                      ) -> tuple["RunResult", Telemetry]:
    """Recorded standalone run (one GPU game or one SPEC application)."""
    from repro.config import default_config
    from repro.exec.specs import standalone_cpu_spec, standalone_gpu_spec
    from repro.sim.metrics import collect
    from repro.sim.system import HeterogeneousSystem

    if (game is None) == (spec is None):
        raise ValueError("need exactly one of game/spec")
    if telemetry is None:
        telemetry = Telemetry.to_file(path) if path else Telemetry()
    spec_obj = standalone_gpu_spec(game, scale, seed) if game \
        else standalone_cpu_spec(spec, scale, seed)
    m = spec_obj.mix
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    system = HeterogeneousSystem(cfg, m, telemetry=telemetry)
    system.run()
    telemetry.close()
    return collect(system), telemetry
