"""Interval sampling of shared-resource state for telemetry.

The sampler is only scheduled when a :class:`~repro.telemetry.Telemetry`
is bound to the system, so the default (telemetry-off) run's event
stream is untouched.  Each tick of the sampler emits three records —
``llc_interval``, ``dram_interval``, ``cpu_interval`` — carrying
*deltas* over the interval, so per-interval bandwidth shares and IPC
fall straight out of the file without post-hoc differencing.

Sampling reads counters the components already maintain
(:meth:`SharedLLC.interval_state`,
:meth:`DramSystem.interval_state`, per-core ``instructions``); it
mutates nothing, so a sampled run's stats are bit-identical to an
unsampled one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.system import HeterogeneousSystem
    from repro.telemetry.core import Telemetry


class IntervalSampler:
    def __init__(self, system: "HeterogeneousSystem", telemetry: "Telemetry",
                 interval_ticks: int):
        self.system = system
        self.telemetry = telemetry
        self.interval = interval_ticks
        self._last_llc = system.llc.interval_state()
        self._last_dram = system.dram.interval_state()
        self._last_instr = self._instructions()
        system.sim.after(interval_ticks, self._sample)

    def _instructions(self) -> int:
        return sum(c.instructions for c in self.system.cores)

    def _sample(self) -> None:
        s = self.system
        tel = self.telemetry
        now = s.sim.now

        llc = s.llc.interval_state()
        last = self._last_llc
        tel.emit("llc_interval", tick=now,
                 cpu_lines=llc["cpu_lines"], gpu_lines=llc["gpu_lines"],
                 cpu_accesses=llc["cpu_accesses"] - last["cpu_accesses"],
                 gpu_accesses=llc["gpu_accesses"] - last["gpu_accesses"],
                 cpu_misses=llc["cpu_misses"] - last["cpu_misses"],
                 gpu_misses=llc["gpu_misses"] - last["gpu_misses"])
        self._last_llc = llc

        dram = s.dram.interval_state()
        dlast = self._last_dram
        tel.emit("dram_interval", tick=now,
                 cpu_bytes=dram["cpu_bytes"] - dlast["cpu_bytes"],
                 gpu_bytes=dram["gpu_bytes"] - dlast["gpu_bytes"],
                 queue_depth=dram["queue_depth"])
        self._last_dram = dram

        instr = self._instructions()
        tel.emit("cpu_interval", tick=now,
                 instructions=instr - self._last_instr,
                 ipc=(instr - self._last_instr) / self.interval)
        self._last_instr = instr

        # keep sampling until the run stops; events scheduled past the
        # stop are simply never executed
        s.sim.after(self.interval, self._sample)
