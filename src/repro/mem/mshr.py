"""Miss-status holding registers with secondary-miss merging.

The LLC uses one :class:`MshrFile` to track outstanding DRAM fills.  A
second miss to an already-outstanding line merges onto the primary entry
(no extra DRAM traffic).  When the file is full, the caller must queue the
request — that queueing is the backpressure path the paper relies on when
the ATU gates GPU accesses ("held back inside the GPU and occupy GPU
resources such as request buffers and MSHRs").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mem.request import MemRequest
from repro.sim.stats import StatSet


class MshrEntry:
    __slots__ = ("addr", "waiters", "issued_at")

    def __init__(self, addr: int, issued_at: int):
        self.addr = addr
        self.waiters: list[MemRequest] = []
        self.issued_at = issued_at


class MshrFile:
    """Tracks outstanding line fills, keyed by line address."""

    def __init__(self, entries: int, name: str = "mshr"):
        if entries < 1:
            raise ValueError("MSHR file needs at least one entry")
        self.capacity = entries
        self._entries: dict[int, MshrEntry] = {}
        self.stats = StatSet(name)
        self._primary = self.stats.counter("primary_misses")
        self._secondary = self.stats.counter("secondary_merges")
        self._full_stalls = self.stats.counter("full_stalls")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, addr: int) -> Optional[MshrEntry]:
        return self._entries.get(addr)

    def allocate(self, addr: int, req: MemRequest,
                 now: int) -> Optional[MshrEntry]:
        """Register a miss.

        Returns the entry if this is the *primary* miss (caller must send
        the fill request to DRAM), or ``None`` if merged onto an existing
        entry.  Raises if the file is full — callers must check
        :attr:`full` first (and count a stall via :meth:`note_full`).
        """
        entry = self._entries.get(addr)
        if entry is not None:
            entry.waiters.append(req)
            self._secondary.inc()
            return None
        if self.full:
            raise RuntimeError("MSHR allocate on full file")
        entry = MshrEntry(addr, now)
        entry.waiters.append(req)
        self._entries[addr] = entry
        self._primary.inc()
        return entry

    def note_full(self) -> None:
        self._full_stalls.inc()

    def complete(self, addr: int) -> list[MemRequest]:
        """Fill arrived: release and return all waiters for ``addr``."""
        entry = self._entries.pop(addr, None)
        if entry is None:
            raise KeyError(f"MSHR complete for unknown line 0x{addr:x}")
        return entry.waiters

    def outstanding(self) -> list[int]:
        return list(self._entries.keys())

    def oldest(self, now: int) -> Optional[tuple[int, int]]:
        """``(line address, age in ticks)`` of the longest-outstanding
        entry, or ``None`` when the file is empty.  An entry whose age
        keeps growing is a fill that never returned — the invariant
        monitor's leak detector."""
        if not self._entries:
            return None
        addr, entry = min(self._entries.items(),
                          key=lambda kv: kv[1].issued_at)
        return addr, now - entry.issued_at
