"""Replacement policies: LRU, 2-bit SRRIP (Jaleel et al., ISCA'10), random.

A policy instance is attached to one cache and is consulted per set.
Lines carry a single integer ``repl`` field whose meaning is
policy-private (LRU timestamp, RRPV, ...).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.mem.cache import Line


class ReplacementPolicy(Protocol):
    """Per-cache replacement policy (stateless across sets except RNG)."""

    def on_hit(self, line: "Line") -> None: ...
    def on_fill(self, line: "Line") -> None: ...
    def victim(self, lines: Sequence["Line"]) -> "Line": ...


class LruPolicy:
    """Classic least-recently-used via a global access stamp."""

    def __init__(self) -> None:
        self._stamp = 0

    def _next(self) -> int:
        self._stamp += 1
        return self._stamp

    def on_hit(self, line: "Line") -> None:
        line.repl = self._next()

    def on_fill(self, line: "Line") -> None:
        line.repl = self._next()

    def victim(self, lines: Sequence["Line"]) -> "Line":
        best = lines[0]
        for ln in lines:
            if ln.repl < best.repl:
                best = ln
        return best


class SrripPolicy:
    """Static re-reference interval prediction with ``bits``-wide RRPVs.

    Fills insert at ``max-1`` (long re-reference), hits promote to 0,
    victims are lines at ``max`` (aging all lines until one appears).
    This is the LLC policy of Table I.
    """

    def __init__(self, bits: int = 2):
        if bits < 1:
            raise ValueError("srrip needs >= 1 bit")
        self.max_rrpv = (1 << bits) - 1

    def on_hit(self, line: "Line") -> None:
        line.repl = 0

    def on_fill(self, line: "Line") -> None:
        line.repl = self.max_rrpv - 1

    def victim(self, lines: Sequence["Line"]) -> "Line":
        while True:
            for ln in lines:
                if ln.repl >= self.max_rrpv:
                    return ln
            for ln in lines:
                ln.repl += 1


class RandomPolicy:
    """Seeded random replacement (used by ablation benches)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def on_hit(self, line: "Line") -> None:
        pass

    def on_fill(self, line: "Line") -> None:
        pass

    def victim(self, lines: Sequence["Line"]) -> "Line":
        return lines[self._rng.randrange(len(lines))]


def make_policy(name: str, *, srrip_bits: int = 2,
                seed: int = 0) -> ReplacementPolicy:
    """Policy registry used by :class:`repro.mem.cache.Cache`."""
    if name == "lru":
        return LruPolicy()
    if name == "srrip":
        return SrripPolicy(srrip_bits)
    if name == "random":
        return RandomPolicy(seed)
    raise KeyError(f"unknown replacement policy {name!r}")
