"""Memory hierarchy: caches, replacement policies, MSHRs, the shared LLC."""

from repro.mem.request import MemRequest, CPU_SOURCES, GPU_SOURCE
from repro.mem.cache import Cache, Line
from repro.mem.replacement import make_policy, ReplacementPolicy
from repro.mem.mshr import MshrFile
from repro.mem.llc import SharedLLC

__all__ = [
    "MemRequest", "CPU_SOURCES", "GPU_SOURCE",
    "Cache", "Line", "make_policy", "ReplacementPolicy",
    "MshrFile", "SharedLLC",
]
