"""Functional set-associative cache.

Caches are modelled *functionally*: a lookup mutates tag state and returns
hit/miss plus any eviction; timing (lookup latency, miss handling) is added
by the owning component.  This keeps the per-access cost to a couple of
dict operations — the key to simulating millions of accesses in Python.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.config import CacheConfig
from repro.mem.replacement import make_policy
from repro.sim.stats import StatSet


class Line:
    """One cache line's bookkeeping state."""

    __slots__ = ("tag", "dirty", "owner", "repl", "kind", "reused")

    def __init__(self, tag: int, owner: str, kind: str = "data"):
        self.tag = tag
        self.dirty = False
        # interned: owner/kind recur across millions of lines, and the
        # occupancy/eviction bookkeeping hashes and compares them — with
        # interned strings those dict operations hit the pointer-equality
        # fast path
        self.owner = sys.intern(owner)  # "cpu<i>" or "gpu" (LLC cares)
        self.kind = sys.intern(kind)    # GPU traffic class, for stats
        self.repl = 0               # replacement-policy private field
        self.reused = False         # hit at least once after the fill

    def __repr__(self) -> str:
        d = "D" if self.dirty else " "
        return f"Line(tag=0x{self.tag:x}{d} {self.owner})"


class Eviction:
    """What fell out of the cache on an allocation."""

    __slots__ = ("addr", "dirty", "owner", "kind", "reused")

    def __init__(self, addr: int, dirty: bool, owner: str, kind: str,
                 reused: bool = False):
        self.addr = addr
        self.dirty = dirty
        self.owner = owner
        self.kind = kind
        self.reused = reused


class Cache:
    """Set-associative, write-back, write-allocate functional cache."""

    def __init__(self, cfg: CacheConfig, *, seed: int = 0):
        self.cfg = cfg
        self.n_sets = cfg.sets
        self.ways = cfg.ways
        self.line_bytes = cfg.line_bytes
        self._line_shift = cfg.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != cfg.line_bytes:
            raise ValueError("line size must be a power of two")
        self._set_mask = self.n_sets - 1
        if self.n_sets & self._set_mask:
            raise ValueError("set count must be a power of two")
        self.policy = make_policy(cfg.policy, seed=seed)
        # one dict per set: tag -> Line
        self._sets: list[dict[int, Line]] = [dict() for _ in range(self.n_sets)]
        self.stats = StatSet(cfg.name)
        self._hits = self.stats.counter("hits")
        self._misses = self.stats.counter("misses")
        self._evict_dirty = self.stats.counter("evictions_dirty")
        self._evict_clean = self.stats.counter("evictions_clean")

    # -- address helpers ---------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr >> self._line_shift) & self._set_mask

    def tag_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def addr_of(self, tag: int) -> int:
        return tag << self._line_shift

    # -- operations --------------------------------------------------------

    def probe(self, addr: int) -> Optional[Line]:
        """Lookup with no state change (no replacement update)."""
        tag = addr >> self._line_shift
        return self._sets[tag & self._set_mask].get(tag)

    def lookup(self, addr: int, write: bool = False) -> Optional[Line]:
        """Lookup, updating replacement state and dirty bit on hit."""
        # the set index is the tag's low bits (tags keep the set bits),
        # so one shift feeds both — this is the hottest method in the
        # package (every L1/L2/LLC access), hence the inlined address
        # math instead of set_index()/tag_of() calls
        tag = addr >> self._line_shift
        line = self._sets[tag & self._set_mask].get(tag)
        if line is not None:
            self._hits.inc()
            self.policy.on_hit(line)
            line.reused = True
            if write:
                line.dirty = True
        else:
            self._misses.inc()
        return line

    def allocate(self, addr: int, *, write: bool = False,
                 owner: str = "cpu0", kind: str = "data",
                 repl_override: Optional[int] = None) -> Optional[Eviction]:
        """Insert ``addr``; return the eviction it caused, if any.

        ``repl_override`` sets the new line's replacement state directly
        (e.g. an SRRIP insertion RRPV chosen by an LLC management policy
        such as TAP or DRP) instead of the policy's default insertion.
        The caller is responsible for handling the writeback of a dirty
        eviction and any inclusion actions.
        """
        tag = addr >> self._line_shift
        s = self._sets[tag & self._set_mask]
        line = s.get(tag)
        if line is not None:         # already present: treat as touch
            self.policy.on_hit(line)
            if write:
                line.dirty = True
            return None
        evicted: Optional[Eviction] = None
        if len(s) >= self.ways:
            victim = self.policy.victim(list(s.values()))
            del s[victim.tag]
            if victim.dirty:
                self._evict_dirty.inc()
            else:
                self._evict_clean.inc()
            evicted = Eviction(self.addr_of(victim.tag), victim.dirty,
                               victim.owner, victim.kind, victim.reused)
        line = Line(tag, owner, kind)
        line.dirty = write
        s[tag] = line
        self.policy.on_fill(line)
        if repl_override is not None:
            line.repl = repl_override
        return evicted

    def invalidate(self, addr: int) -> Optional[Line]:
        """Drop the line if present; returns it (caller checks dirty)."""
        tag = addr >> self._line_shift
        return self._sets[tag & self._set_mask].pop(tag, None)

    def flush_owner(self, owner: str) -> int:
        """Invalidate every line belonging to ``owner`` (test helper)."""
        n = 0
        for s in self._sets:
            for tag in [t for t, ln in s.items() if ln.owner == owner]:
                del s[tag]
                n += 1
        return n

    # -- introspection -----------------------------------------------------

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def occupancy_by_owner(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self._sets:
            for ln in s.values():
                out[ln.owner] = out.get(ln.owner, 0) + 1
        return out

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    def miss_rate(self) -> float:
        total = self._hits.value + self._misses.value
        return self._misses.value / total if total else 0.0
