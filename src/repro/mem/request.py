"""The transaction that flows through LLC, interconnect, and DRAM."""

from __future__ import annotations

from typing import Callable, Optional

GPU_SOURCE = "gpu"
CPU_SOURCES = tuple(f"cpu{i}" for i in range(16))

#: GPU access kinds (used by HeLM and by the texture-share analysis)
GPU_KINDS = ("texture", "depth", "color", "vertex", "shader_i", "zhier")

#: CPU access kinds, as issued by :class:`repro.cpu.core.CpuCore`
#: ("data" is the generic default for ad-hoc requests).  Together with
#: :data:`GPU_KINDS` this is the full kind namespace — the trace codecs
#: in :mod:`repro.tracing` are derived from these tuples.
CPU_KINDS = ("data", "load", "store", "inst", "writeback", "prefetch")


class MemRequest:
    """One line-granularity memory transaction.

    ``source`` is ``"cpu<i>"`` or ``"gpu"``; ``kind`` further classifies
    GPU traffic (texture/depth/color/vertex/...) and CPU traffic
    (inst/load/store/writeback).  ``on_done`` fires when data is returned
    (reads) or accepted (writes); writes may carry no callback.

    ``span`` is ``None`` unless a :class:`repro.spans.SpanTracer`
    sampled this request; every stage stamp site guards on it, so the
    untraced hot path pays one attribute test.
    """

    __slots__ = ("addr", "is_write", "source", "kind", "on_done",
                 "created_at", "meta", "bypass", "span")

    def __init__(self, addr: int, is_write: bool, source: str,
                 kind: str = "data",
                 on_done: Optional[Callable[["MemRequest"], None]] = None,
                 created_at: int = 0):
        self.addr = addr
        self.is_write = is_write
        self.source = source
        self.kind = kind
        self.on_done = on_done
        self.created_at = created_at
        self.meta: Optional[dict] = None
        #: set by LLC policies: fill must not allocate in the LLC
        self.bypass = False
        #: set by the span tracer when this request is sampled
        self.span = None

    @property
    def is_gpu(self) -> bool:
        return self.source == GPU_SOURCE

    def complete(self) -> None:
        if self.on_done is not None:
            self.on_done(self)

    def __repr__(self) -> str:
        rw = "W" if self.is_write else "R"
        return f"MemRequest({rw} 0x{self.addr:x} {self.source}/{self.kind})"
