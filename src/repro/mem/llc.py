"""The shared last-level cache.

Table I: 16 MB, 16-way, 64 B lines, 10-cycle lookup, two-bit SRRIP,
*inclusive for CPU lines* (evicting a CPU line back-invalidates that
core's private caches) and *non-inclusive for GPU lines*.

Timing model: a request arrives (the interconnect delay is paid by the
sender), pays the lookup latency, and on a hit completes after the
response delay.  Misses allocate an MSHR entry and go to DRAM through the
``dram_send`` hook; when the MSHR file is full, requests wait in an input
queue (this is the backpressure that makes gated GPU traffic pile up in
GPU-internal buffers, exactly the effect Section III-B describes).

Policy hooks
------------
``bypass_fn(req)``   — return True to not allocate a GPU read fill (HeLM,
                       and the Fig. 3 "bypass all" motivation experiment).
``back_invalidate``  — called with (owner, line_addr) when an inclusive
                       CPU line is evicted.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.config import LlcConfig
from repro.mem.cache import Cache
from repro.mem.mshr import MshrFile
from repro.mem.request import MemRequest
from repro.sim.engine import Simulator
from repro.sim.stats import StatSet
from repro.spans.histogram import Histogram

#: scheduled closure-free as ``after_call(delay, _COMPLETE, req)`` —
#: equivalent to ``after(delay, req.complete)`` without allocating a
#: bound-method object per response
_COMPLETE = MemRequest.complete


class SharedLLC:
    def __init__(self, sim: Simulator, cfg: LlcConfig,
                 dram_send: Callable[[MemRequest], None],
                 response_delay: Callable[[MemRequest], int] = lambda r: 0):
        self.sim = sim
        self.cfg = cfg
        self.cache = Cache(cfg.cache_config())
        #: precomputed line mask — ``access`` aligns every address and
        #: runs once per LLC-bound request, so the mask math is inlined
        #: there instead of calling :meth:`line_addr`
        self._line_mask = ~(cfg.line_bytes - 1)
        self.mshr = MshrFile(cfg.mshr_entries, "llc_mshr")
        self.dram_send = dram_send
        self.response_delay = response_delay
        self.bypass_fn: Optional[Callable[[MemRequest], bool]] = None
        #: LLC-management hook: given the primary request of a fill,
        #: return an SRRIP insertion RRPV override (or None for the
        #: policy default).  Used by TAP-/DRP-style policies.
        self.fill_rrpv_fn: Optional[Callable[[MemRequest],
                                             Optional[int]]] = None
        #: hook observing every eviction (owner, kind, was_reused) —
        #: DRP-style policies learn reuse probabilities from this
        self.eviction_observer: Optional[Callable[[str, str], None]] = None
        self.back_invalidate: Optional[Callable[[str, int], None]] = None
        self._wait: deque[MemRequest] = deque()
        self._bypass_lines: set[int] = set()
        #: span tracer (None unless the system wires one); per-request
        #: stamp sites guard on ``req.span``, this reference is only
        #: touched for sampled requests (occupancy gauges)
        self.tracer = None
        #: always-on per-side read round-trip latency (created_at ->
        #: data return), the cheap aggregate RunResult.llc_latency
        #: reports; log2 buckets, two int ops per completed read
        self.rt_hist = {"cpu": Histogram(), "gpu": Histogram()}

        self.stats = StatSet("llc")
        s = self.stats
        self._acc = {"cpu": s.counter("cpu_accesses"),
                     "gpu": s.counter("gpu_accesses")}
        self._miss = {"cpu": s.counter("cpu_misses"),
                      "gpu": s.counter("gpu_misses")}
        self._hit = {"cpu": s.counter("cpu_hits"),
                     "gpu": s.counter("gpu_hits")}
        self._wb = s.counter("writebacks_to_dram")
        self._backinv = s.counter("back_invalidations")
        self._bypassed = s.counter("gpu_bypassed_fills")
        self._gpu_kind: dict[str, object] = {}
        #: req.source -> interned "cpu"/"gpu", so the per-access side
        #: split is one dict hit instead of a property + string compare
        self._sides: dict[str, str] = {}

    # -- helpers -------------------------------------------------------

    def _side(self, req: MemRequest) -> str:
        src = req.source
        side = self._sides.get(src)
        if side is None:
            side = self._sides[src] = "gpu" if src == "gpu" else "cpu"
        return side

    def line_addr(self, addr: int) -> int:
        return addr & ~(self.cfg.line_bytes - 1)

    def _count_kind(self, req: MemRequest) -> None:
        if req.is_gpu:
            c = self._gpu_kind.get(req.kind)
            if c is None:
                c = self._gpu_kind[req.kind] = self.stats.counter(
                    f"gpu_{req.kind}_accesses")
            c.inc()

    # -- entry point ----------------------------------------------------

    def access(self, req: MemRequest) -> None:
        """A request arrives at the LLC controller."""
        side = self._side(req)
        self._acc[side].inc()
        if req.is_gpu:
            self._count_kind(req)
        addr = req.addr & self._line_mask

        if req.is_write:
            self._write(req, addr)
            return

        sp = req.span
        if sp is not None:
            sp.stamp("llc_enter", self.sim.now)
        line = self.cache.lookup(addr)
        if line is not None:
            self._hit[side].inc()
            delay = self.cfg.latency + self.response_delay(req)
            if sp is not None:
                sp.stamp("llc_hit", self.sim.now)
            self.rt_hist[side].record(self.sim.now + delay
                                      - req.created_at)
            self.sim.after_call(delay, _COMPLETE, req)
            return
        self._miss[side].inc()
        self._read_miss(req, addr)

    # -- write path ------------------------------------------------------

    def _write(self, req: MemRequest, addr: int) -> None:
        """Writebacks from L2s / GPU ROP caches.

        CPU lines are inclusive so writebacks normally hit; a missing
        line (already evicted + back-invalidated, or GPU non-inclusive
        victim) is allocated dirty without a DRAM fetch — writebacks are
        full-line.
        """
        line = self.cache.lookup(addr, write=True)
        side = self._side(req)
        if line is not None:
            self._hit[side].inc()
        else:
            self._miss[side].inc()
            ev = self.cache.allocate(addr, write=True, owner=req.source,
                                     kind=req.kind)
            if ev is not None:
                self._handle_eviction(ev)
        # response_delay is charged unconditionally: the ring counts the
        # message (and, under the contention model, occupies a slot) even
        # when the writeback carries no completion callback
        delay = self.cfg.latency + self.response_delay(req)
        if req.on_done is not None:
            self.sim.after_call(delay, _COMPLETE, req)

    # -- read-miss path ----------------------------------------------------

    def _read_miss(self, req: MemRequest, addr: int) -> None:
        if req.is_gpu and self.bypass_fn is not None and self.bypass_fn(req):
            req.bypass = True
            self._bypassed.inc()
        sp = req.span
        if sp is not None:
            sp.stamp("llc_miss", self.sim.now)
            self.tracer.gauge_record("llc_mshr", self.sim.now,
                                     len(self.mshr))
        if self.mshr.full:
            self.mshr.note_full()
            if sp is not None:
                sp.stamp("llc_queue", self.sim.now)
            self._wait.append(req)
            return
        self._start_miss(req, addr)

    def _start_miss(self, req: MemRequest, addr: int) -> None:
        entry = self.mshr.allocate(addr, req, self.sim.now)
        sp = req.span
        if entry is None:
            # merged onto an in-flight fill; the primary's span (if
            # any) carries the DRAM stamps, a sampled secondary only
            # records the merge point
            if sp is not None:
                sp.stamp("mshr_merge", self.sim.now)
            return
        if req.bypass:
            self._bypass_lines.add(addr)
        fill = MemRequest(addr, False, req.source, req.kind,
                          on_done=self._fill_done,
                          created_at=self.sim.now)
        if sp is not None:
            sp.stamp("mshr_alloc", self.sim.now)
            # the fill shares the primary's span so the DRAM-side
            # stamps (queue, activate, data) land on the same record
            fill.span = sp
        self.sim.after_call(self.cfg.latency, self.dram_send, fill)

    def _fill_done(self, fill: MemRequest) -> None:
        addr = fill.addr              # fills are issued at line granularity
        if fill.span is not None:
            fill.span.stamp("fill_return", self.sim.now)
        waiters = self.mshr.complete(addr)
        bypass = addr in self._bypass_lines
        if bypass:
            self._bypass_lines.discard(addr)
        else:
            primary = waiters[0]
            override = (self.fill_rrpv_fn(primary)
                        if self.fill_rrpv_fn is not None else None)
            ev = self.cache.allocate(addr, owner=primary.source,
                                     kind=primary.kind,
                                     repl_override=override)
            if ev is not None:
                self._handle_eviction(ev)
        for req in waiters:
            delay = self.response_delay(req)
            self.rt_hist[self._side(req)].record(self.sim.now + delay
                                                 - req.created_at)
            if delay:
                self.sim.after_call(delay, _COMPLETE, req)
            else:
                req.complete()
        # MSHR slots freed: admit queued requests (already counted as
        # misses on arrival; don't re-count)
        while self._wait and not self.mshr.full:
            queued = self._wait.popleft()
            qaddr = self.line_addr(queued.addr)
            if self.cache.probe(qaddr) is not None:
                # another fill satisfied it while it queued
                delay = self.cfg.latency + self.response_delay(queued)
                self.rt_hist[self._side(queued)].record(
                    self.sim.now + delay - queued.created_at)
                self.sim.after_call(delay, _COMPLETE, queued)
            else:
                self._start_miss(queued, qaddr)

    # -- eviction handling ---------------------------------------------------

    def _handle_eviction(self, ev) -> None:
        if self.eviction_observer is not None:
            self.eviction_observer(ev.owner, ev.kind, ev.reused)
        core_dirty = False
        if ev.owner.startswith("cpu") and self.back_invalidate is not None:
            self._backinv.inc()
            core_dirty = bool(self.back_invalidate(ev.owner, ev.addr))
        if ev.dirty or core_dirty:
            self._wb.inc()
            wb = MemRequest(ev.addr, True, ev.owner, ev.kind,
                            created_at=self.sim.now)
            self.dram_send(wb)

    # -- introspection --------------------------------------------------------

    def rt_summary(self) -> dict[str, float]:
        """Per-side read round-trip latency aggregates.

        Flat mean/p95/n per side (``cpu_mean``, ``cpu_p95``, ...),
        cheap enough to always ship in :class:`RunResult`.  p95 is the
        log2-bucket upper bound (a guaranteed upper bound on the true
        order statistic, see :class:`repro.spans.Histogram`).
        """
        out: dict[str, float] = {}
        for side, h in self.rt_hist.items():
            out[f"{side}_mean"] = round(h.mean, 2)
            out[f"{side}_p95"] = float(h.percentile(95))
            out[f"{side}_n"] = float(h.n)
        return out

    def gpu_occupancy(self) -> int:
        return sum(n for o, n in self.cache.occupancy_by_owner().items()
                   if o == "gpu")

    def cpu_occupancy(self) -> int:
        return sum(n for o, n in self.cache.occupancy_by_owner().items()
                   if o.startswith("cpu"))

    def interval_state(self) -> dict[str, int]:
        """Occupancy split plus cumulative per-side access/miss counts.

        Consumed by the telemetry interval sampler
        (:class:`repro.telemetry.sampler.IntervalSampler`), which
        differences consecutive snapshots into per-interval shares.
        Read-only: sampling cannot perturb the run.
        """
        return {"cpu_lines": self.cpu_occupancy(),
                "gpu_lines": self.gpu_occupancy(),
                "cpu_accesses": self._acc["cpu"].value,
                "gpu_accesses": self._acc["gpu"].value,
                "cpu_misses": self._miss["cpu"].value,
                "gpu_misses": self._miss["gpu"].value}

    def guard_state(self) -> dict[str, int]:
        """Occupancy snapshot for the invariant monitor.  Read-only."""
        return {"mshr": len(self.mshr), "mshr_cap": self.mshr.capacity,
                "waiters": len(self._wait),
                "bypass_lines": len(self._bypass_lines)}
