"""repro — reproduction of Rai & Chaudhuri, "Improving CPU Performance
through Dynamic GPU Access Throttling in CPU-GPU Heterogeneous
Processors" (IPDPSW 2017).

Public API
----------
``default_config`` / ``SystemConfig`` — the Table I machine.
``mix`` / ``MIXES_M`` / ``MIXES_W`` — the Table III workload mixes.
``run_mix`` / ``run_system`` / ``standalone_cpu`` / ``standalone_gpu`` —
experiment runners returning :class:`RunResult`.
``make_policy`` — "baseline", "sms-0.9", "sms-0", "dynprio", "helm",
"cm-bal", "throttle", "throtcpuprio" (the proposal).
``QoSController`` / ``FrameRatePredictor`` / ``AccessThrottlingUnit`` —
the paper's mechanism, usable standalone.
``Predictor`` / ``make_predictor`` / ``PREDICTOR_NAMES`` — the
pluggable frame-time predictor seam behind the FRPU
(docs/predictors.md); ``compare_predictors`` runs the head-to-head
evaluation suite.
``SpanTracer`` / ``trace_mix`` / ``trace_standalone`` — request-path
span tracing with latency percentiles (docs/latency.md).
"""

from repro.config import (SystemConfig, Scale, SCALES, default_config,
                          CPU_CLOCK_HZ, GPU_CLOCK_HZ)
from repro.mixes import Mix, MIXES_M, MIXES_W, HIGH_FPS_MIXES, \
    LOW_FPS_MIXES, mix
from repro.core import (QoSController, FrameRatePredictor,
                        AccessThrottlingUnit, RtpInfoTable)
from repro.predict import (Predictor, make_predictor, PREDICTOR_NAMES,
                           RtpExtrapolator)
from repro.analysis.predictors import compare_predictors
from repro.policies import make_policy, POLICY_NAMES
from repro.sim.metrics import RunResult, weighted_speedup, geomean, \
    combined_performance
from repro.sim.runner import (run_mix, run_system, standalone_cpu,
                              standalone_gpu, alone_ipcs,
                              weighted_speedup_for)
from repro.sim.system import HeterogeneousSystem
from repro.analysis.diagnostics import Probe
from repro.analysis.energy import EnergyParams, EnergyReport, price_run
from repro.analysis.stats import Replicated, replicate, summarize
from repro.spans import SpanTracer, trace_mix, trace_standalone
from repro.telemetry import Telemetry, record_mix, record_standalone
from repro.tracing import LlcTrace, TraceRecorder, TraceReplayer

__version__ = "1.0.0"

__all__ = [
    "SystemConfig", "Scale", "SCALES", "default_config",
    "CPU_CLOCK_HZ", "GPU_CLOCK_HZ",
    "Mix", "MIXES_M", "MIXES_W", "HIGH_FPS_MIXES", "LOW_FPS_MIXES", "mix",
    "QoSController", "FrameRatePredictor", "AccessThrottlingUnit",
    "RtpInfoTable",
    "Predictor", "make_predictor", "PREDICTOR_NAMES", "RtpExtrapolator",
    "compare_predictors",
    "make_policy", "POLICY_NAMES",
    "RunResult", "weighted_speedup", "geomean", "combined_performance",
    "run_mix", "run_system", "standalone_cpu", "standalone_gpu",
    "alone_ipcs", "weighted_speedup_for", "HeterogeneousSystem",
    "Probe", "EnergyParams", "EnergyReport", "price_run",
    "Replicated", "replicate", "summarize",
    "SpanTracer", "trace_mix", "trace_standalone",
    "Telemetry", "record_mix", "record_standalone",
    "LlcTrace", "TraceRecorder", "TraceReplayer",
    "__version__",
]
