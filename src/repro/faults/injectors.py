"""Deterministic fault injectors and the plan that carries them.

Every injector is *counting-based*: it fires on the ``nth`` matching
request (optionally repeating), so a given ``(plan, config, seed)``
perturbs exactly the same requests on every run — a detected fault is
reproducible by construction.  ``seed`` deterministically offsets the
firing point so campaigns can vary *where* a fault lands without losing
reproducibility.

The request-path injectors sit between the monitor's conservation
wrapper (outside) and the real interconnect send (inside) — see
``HeterogeneousSystem.__init__`` — so an injected drop or duplicate is
visible to the :class:`~repro.guard.InvariantMonitor` exactly like a
real simulator bug would be.
"""

from __future__ import annotations

import os
import random
from typing import Callable, Optional


class RequestFault:
    """Drop, delay, or duplicate the nth matching memory request.

    * ``drop`` — the request is swallowed: its issuer waits forever for
      a completion that never comes (models a lost fill / leaked MSHR).
    * ``delay`` — the request is forwarded ``delay_ticks`` late (models
      a transient stall; conservation holds, timing degrades).
    * ``duplicate`` — the request is forwarded twice; its completion
      callback fires twice (models a double-service bug).

    Only *retiring* reads participate (requests carrying a completion
    callback); fire-and-forget writebacks cannot leak in a way the
    conservation invariant defines.
    """

    ACTIONS = ("drop", "delay", "duplicate")

    def __init__(self, action: str, side: str = "any",
                 kind: Optional[str] = None, nth: int = 50,
                 count: int = 1, every: int = 1,
                 delay_ticks: int = 5000, seed: int = 0):
        if action not in self.ACTIONS:
            raise ValueError(f"unknown fault action {action!r}")
        if side not in ("any", "cpu", "gpu"):
            raise ValueError(f"unknown side {side!r}")
        if nth < 1 or count < 1 or every < 1 or delay_ticks < 0:
            raise ValueError("nth/count/every must be >= 1, "
                             "delay_ticks >= 0")
        self.action = action
        self.side = side
        self.kind = kind
        #: seed shifts the firing point deterministically (same seed ->
        #: same perturbed requests, different seed -> different ones)
        self.nth = nth + (seed % 17)
        self.count = count
        self.every = every
        self.delay_ticks = delay_ticks

    def applies_to(self, side: str) -> bool:
        return self.side in ("any", side)

    def describe(self) -> str:
        where = self.side if self.kind is None \
            else f"{self.side}/{self.kind}"
        extra = f" by {self.delay_ticks} ticks" \
            if self.action == "delay" else ""
        return (f"{self.action} {where} read #{self.nth}"
                f"{f' x{self.count}' if self.count > 1 else ''}{extra}")

    def wrap(self, send: Callable, sim, side: str,
             log: list) -> Callable:
        state = {"seen": 0, "fired": 0}

        def injected(req, _send=send, _sim=sim, _state=state):
            if req.on_done is None or req.is_write or \
                    (self.kind is not None and req.kind != self.kind):
                _send(req)
                return
            _state["seen"] += 1
            n = _state["seen"]
            if (_state["fired"] >= self.count or n < self.nth or
                    (n - self.nth) % self.every != 0):
                _send(req)
                return
            _state["fired"] += 1
            log.append({"injector": self.describe(), "action": self.action,
                        "side": side, "tick": _sim.now, "req": repr(req)})
            if self.action == "drop":
                return                  # swallowed: never completes
            if self.action == "delay":
                _sim.after_call(self.delay_ticks, _send, req)
                return
            _send(req)                  # duplicate: forwarded twice
            _send(req)

        return injected


class FrpuPerturbation:
    """Scale the FRPU's frame-cycle predictions by ``factor``.

    Models a mispredicting frame-rate predictor: the control plane makes
    *wrong but legal* decisions (over- or under-throttling), so the run
    must complete with degraded numbers rather than trip an invariant —
    the phase machine and token accounting stay lawful.
    """

    def __init__(self, factor: float = 0.5, seed: int = 0):
        if factor <= 0:
            raise ValueError("perturbation factor must be > 0")
        self.factor = factor
        # seed nudges the factor within ±5% so campaigns can diversify
        # deterministically
        if seed:
            self.factor *= 1.0 + (random.Random(seed).random() - 0.5) / 10

    def describe(self) -> str:
        return f"scale FRPU predictions x{self.factor:.3f}"

    def bind(self, system, log: list) -> None:
        qos = getattr(system.policy, "qos", None)
        if qos is None:
            return                      # no control plane to perturb
        frpu = qos.frpu
        orig = frpu.predict_frame_cycles
        factor = self.factor
        fired = {"logged": False}

        def perturbed(pipeline):
            c = orig(pipeline)
            if c is None:
                return None
            if not fired["logged"]:
                fired["logged"] = True
                log.append({"injector": self.describe(),
                            "action": "frpu", "side": "gpu",
                            "tick": system.sim.now, "req": None})
            return c * factor

        frpu.predict_frame_cycles = perturbed


class FaultPlan:
    """An ordered set of injectors applied to one system build.

    Pass it as ``HeterogeneousSystem(..., faults=plan)`` (or through
    ``run_system``).  ``plan.log`` records every injection that actually
    fired — a campaign cross-checks it against what the run reported, so
    a fault that silently did nothing is just as loud a failure as one
    that corrupted numbers.
    """

    def __init__(self, *injectors):
        self.injectors = list(injectors)
        self.log: list[dict] = []

    def wrap_send(self, send: Callable, sim, side: str) -> Callable:
        for inj in self.injectors:
            if isinstance(inj, RequestFault) and inj.applies_to(side):
                send = inj.wrap(send, sim, side, self.log)
        return send

    def bind(self, system) -> None:
        for inj in self.injectors:
            bind = getattr(inj, "bind", None)
            if bind is not None:
                bind(system, self.log)

    def fired(self) -> int:
        return len(self.log)

    def describe(self) -> str:
        return "; ".join(inj.describe() for inj in self.injectors) \
            or "<empty plan>"


def corrupt_file(path: str, seed: int = 0, nbytes: int = 8) -> list[int]:
    """Deterministically flip ``nbytes`` bytes of a file in place.

    Returns the corrupted offsets.  Used by the campaign (and tests) to
    simulate torn/bit-rotted result-cache pickles; the cache must
    detect the damage via its content checksum, quarantine the file,
    and recompute — never half-load it.
    """
    size = os.path.getsize(path)
    if size == 0:
        return []
    rng = random.Random(seed)
    offsets = sorted(rng.randrange(size)
                     for _ in range(min(nbytes, size)))
    with open(path, "r+b") as fh:
        for off in offsets:
            fh.seek(off)
            byte = fh.read(1)
            fh.seek(off)
            fh.write(bytes([byte[0] ^ 0xFF]))
    return offsets
