"""The fault-injection campaign behind ``python -m repro faults``.

Each scenario injects one seeded fault into a small heterogeneous run
(or into the harness around it) and classifies the outcome:

* ``detected``  — the guardrails fired loudly: an
  :class:`~repro.guard.InvariantViolation` with a diagnostic dump, a
  :class:`~repro.exec.CacheIntegrityWarning` with quarantine, or a
  failed :class:`~repro.exec.RunOutcome` naming the worker's fate.
* ``tolerated`` — the run completed lawfully and the degradation is
  *recorded* (result deltas vs. the clean control run, retry counts).
* ``silent``    — the fault fired but nothing noticed and nothing
  changed.  Any silent scenario fails the whole campaign: silence is
  the one outcome a reproduction harness must never produce.

Scenarios are deterministic: the same ``(scale, seed, mix, policy)``
injects the same faults at the same points every time.
"""

from __future__ import annotations

import multiprocessing as mp
import shutil
import tempfile
import warnings
from dataclasses import dataclass, field
from typing import Callable, Optional

DETECTED = "detected"
TOLERATED = "tolerated"
SILENT = "silent"

#: monitor settings for fault runs: tight enough that a dropped request
#: trips ``inflight_age`` well inside even a smoke-scale run
CHECK_INTERVAL = 2048
MAX_AGE = 40_000


@dataclass
class ScenarioOutcome:
    name: str
    injected: str                 # what the scenario did
    classification: str           # detected | tolerated | silent
    detail: str                   # how it was caught / what degraded
    fired: int = 0                # injections that actually landed


@dataclass
class CampaignReport:
    scale: str
    seed: int
    mix: str
    policy: str
    outcomes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.outcomes) and \
            all(o.classification != SILENT for o in self.outcomes)

    def counts(self) -> dict:
        out = {DETECTED: 0, TOLERATED: 0, SILENT: 0}
        for o in self.outcomes:
            out[o.classification] += 1
        return out

    def format(self) -> str:
        lines = [f"fault campaign: mix={self.mix} policy={self.policy} "
                 f"scale={self.scale} seed={self.seed}",
                 f"{'scenario':18s} {'class':10s} detail"]
        for o in self.outcomes:
            lines.append(f"{o.name:18s} {o.classification:10s} {o.detail}")
        c = self.counts()
        lines.append(f"{len(self.outcomes)} scenario(s): "
                     f"{c[DETECTED]} detected, {c[TOLERATED]} tolerated, "
                     f"{c[SILENT]} silent -> "
                     + ("OK" if self.ok else "CAMPAIGN FAILED"))
        return "\n".join(lines)


# -- helpers -----------------------------------------------------------------

def _monitor():
    from repro.guard import InvariantMonitor
    return InvariantMonitor(interval_ticks=CHECK_INTERVAL,
                            max_inflight_age=MAX_AGE)


def _run(cfg_mix_policy, faults=None, monitor=None):
    from repro.sim.runner import run_system
    cfg, m, policy = cfg_mix_policy
    from repro.policies import make_policy
    return run_system(cfg, m, make_policy(policy), monitor=monitor,
                      faults=faults)


def _degradation(clean, result) -> list:
    """Human-readable deltas between a faulted run and the control."""
    deltas = []
    if result.ticks != clean.ticks:
        deltas.append(f"ticks {clean.ticks:,}->{result.ticks:,}")
    if abs(result.fps - clean.fps) > 1e-9:
        deltas.append(f"fps {clean.fps:.2f}->{result.fps:.2f}")
    for i in sorted(clean.cpu_ipcs):
        a, b = clean.cpu_ipcs[i], result.cpu_ipcs.get(i)
        if b is not None and abs(a - b) > 1e-9:
            deltas.append(f"ipc[{i}] {a:.3f}->{b:.3f}")
    if result.llc != clean.llc:
        deltas.append("llc counters moved")
    return deltas


def _classify_run(name, plan, run_fn, clean) -> ScenarioOutcome:
    """Run a faulted simulation; violation => detected, completed +
    recorded degradation => tolerated, anything else => silent."""
    from repro.guard import InvariantViolation
    injected = plan.describe()
    try:
        result = run_fn(plan)
    except InvariantViolation as exc:
        return ScenarioOutcome(name, injected, DETECTED,
                               f"InvariantViolation[{exc.check}]",
                               fired=plan.fired())
    if plan.fired() == 0:
        return ScenarioOutcome(name, injected, SILENT,
                               "injector never fired (run too short?)")
    deltas = _degradation(clean, result)
    if not deltas:
        return ScenarioOutcome(name, injected, SILENT,
                               "fault fired but left no trace",
                               fired=plan.fired())
    return ScenarioOutcome(name, injected, TOLERATED,
                           "degradation recorded: " + ", ".join(deltas),
                           fired=plan.fired())


# -- scenarios ---------------------------------------------------------------

def _scn_drop_cpu(ctx):
    from repro.faults.injectors import FaultPlan, RequestFault
    plan = FaultPlan(RequestFault("drop", side="cpu", nth=20,
                                  seed=ctx["seed"]))
    return _classify_run("drop-cpu-read", plan,
                         lambda p: _run(ctx["build"], faults=p,
                                        monitor=_monitor()),
                         ctx["clean"])


def _scn_drop_gpu(ctx):
    from repro.faults.injectors import FaultPlan, RequestFault
    plan = FaultPlan(RequestFault("drop", side="gpu", nth=20,
                                  seed=ctx["seed"]))
    return _classify_run("drop-gpu-read", plan,
                         lambda p: _run(ctx["build"], faults=p,
                                        monitor=_monitor()),
                         ctx["clean"])


def _scn_duplicate(ctx):
    from repro.faults.injectors import FaultPlan, RequestFault
    plan = FaultPlan(RequestFault("duplicate", side="cpu", nth=20,
                                  seed=ctx["seed"]))
    return _classify_run("duplicate-read", plan,
                         lambda p: _run(ctx["build"], faults=p,
                                        monitor=_monitor()),
                         ctx["clean"])


def _scn_delay(ctx):
    from repro.faults.injectors import FaultPlan, RequestFault
    plan = FaultPlan(RequestFault("delay", side="cpu", nth=20,
                                  delay_ticks=6000, seed=ctx["seed"]))
    return _classify_run("delay-cpu-read", plan,
                         lambda p: _run(ctx["build"], faults=p,
                                        monitor=_monitor()),
                         ctx["clean"])


def _scn_frpu(ctx):
    from repro.faults.injectors import FaultPlan, FrpuPerturbation
    plan = FaultPlan(FrpuPerturbation(factor=0.4, seed=ctx["seed"]))
    return _classify_run("frpu-mispredict", plan,
                         lambda p: _run(ctx["build"], faults=p,
                                        monitor=_monitor()),
                         ctx["clean"])


def _scn_cache_corrupt(ctx):
    """Bit-rot a persisted result; the cache must quarantine + recompute."""
    from repro.exec import CacheIntegrityWarning, ResultCache, mix_spec
    from repro.faults.injectors import corrupt_file
    spec = mix_spec(ctx["mix"], ctx["policy"], ctx["scale"], ctx["seed"])
    cache = ResultCache(root=ctx["workdir"], salt="faults-campaign")
    cache.put(spec, ctx["clean"])
    path = cache.path_for(cache.key_for(spec))
    offsets = corrupt_file(path, seed=ctx["seed"])
    fresh = ResultCache(root=ctx["workdir"], salt="faults-campaign")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        got, source = fresh.get(spec)
    loud = [w for w in caught
            if issubclass(w.category, CacheIntegrityWarning)]
    injected = f"flip {len(offsets)} byte(s) of a cached result"
    if got is not None or source != "miss" or not loud:
        return ScenarioOutcome("cache-corrupt", injected, SILENT,
                               f"corrupt file served as {source!r} "
                               "without a warning", fired=len(offsets))
    # recompute path: a re-store round-trips cleanly again
    fresh.put(spec, ctx["clean"])
    got2, source2 = ResultCache(root=ctx["workdir"],
                                salt="faults-campaign").get(spec)
    recovered = source2 == "disk" and got2 == ctx["clean"]
    return ScenarioOutcome(
        "cache-corrupt", injected, DETECTED,
        "CacheIntegrityWarning + quarantine, recompute "
        + ("verified" if recovered else "FAILED"),
        fired=len(offsets))


def _scn_worker_crash(ctx):
    from repro.exec import ResultCache, run_many
    from repro.faults.workers import CrashSpec, SleepSpec
    cache = ResultCache(root=ctx["workdir"], salt="faults-exec")
    outs = run_many([CrashSpec(token=ctx["seed"]),
                     SleepSpec(seconds=0.01, token=ctx["seed"])],
                    jobs=2, cache=cache, timeout=60.0, retries=0)
    crash, sleep = outs
    injected = "SIGKILL one worker mid-batch"
    if crash.ok or "worker died" not in (crash.error or ""):
        return ScenarioOutcome("worker-crash", injected, SILENT,
                               f"crash outcome: ok={crash.ok} "
                               f"error={crash.error!r}")
    detail = f"outcome error={crash.error!r}; healthy sibling " + \
        ("unaffected" if sleep.ok else "ALSO FAILED")
    cls = DETECTED if sleep.ok else SILENT
    return ScenarioOutcome("worker-crash", injected, cls, detail, fired=1)


def _scn_worker_hang(ctx):
    from repro.exec import ResultCache, run_many
    from repro.faults.workers import HangSpec, SleepSpec
    cache = ResultCache(root=ctx["workdir"], salt="faults-exec")
    outs = run_many([HangSpec(seconds=120.0, token=ctx["seed"]),
                     SleepSpec(seconds=0.01, token=ctx["seed"] + 1)],
                    jobs=2, cache=cache, timeout=1.0, retries=0)
    hang, sleep = outs
    injected = "wedge one worker past its 1s timeout"
    if hang.ok or "timed out" not in (hang.error or ""):
        return ScenarioOutcome("worker-hang", injected, SILENT,
                               f"hang outcome: ok={hang.ok} "
                               f"error={hang.error!r}")
    detail = f"outcome error={hang.error!r}; healthy sibling " + \
        ("unaffected" if sleep.ok else "ALSO FAILED")
    cls = DETECTED if sleep.ok else SILENT
    return ScenarioOutcome("worker-hang", injected, cls, detail, fired=1)


def _scn_worker_flaky(ctx):
    from repro.exec import ResultCache, run_many
    from repro.faults.workers import FlakySpec
    cache = ResultCache(root=ctx["workdir"], salt="faults-exec")
    spec = FlakySpec(marker_dir=ctx["workdir"], fail_times=1,
                     token=ctx["seed"])
    outs = run_many([spec], jobs=1, cache=cache, timeout=60.0,
                    retries=2, backoff=0.05)
    out = outs[0]
    injected = "worker dies on first attempt, healthy on retry"
    if not out.ok:
        return ScenarioOutcome("worker-flaky", injected, SILENT,
                               f"retry did not recover: {out.error!r}",
                               fired=1)
    return ScenarioOutcome(
        "worker-flaky", injected, TOLERATED,
        f"degradation recorded: succeeded on attempt {out.attempts}",
        fired=1)


_SCENARIOS: dict = {
    "drop-cpu-read": _scn_drop_cpu,
    "drop-gpu-read": _scn_drop_gpu,
    "duplicate-read": _scn_duplicate,
    "delay-cpu-read": _scn_delay,
    "frpu-mispredict": _scn_frpu,
    "cache-corrupt": _scn_cache_corrupt,
    "worker-crash": _scn_worker_crash,
    "worker-hang": _scn_worker_hang,
    "worker-flaky": _scn_worker_flaky,
}

#: scenarios that need a POSIX fork/spawn process manager
_NEEDS_MP = ("worker-crash", "worker-hang", "worker-flaky")


def scenario_names() -> list:
    return list(_SCENARIOS)


def run_campaign(scale: str = "test", seed: int = 1, mix_name: str = "W8",
                 policy: str = "throtcpuprio",
                 only: Optional[list] = None,
                 progress: Optional[Callable] = None) -> CampaignReport:
    """Run the fault campaign and classify every scenario.

    The clean control run executes first under the same (tight) monitor
    settings as every faulted run — a violation there means the
    guardrails themselves are broken, and the campaign raises rather
    than classify anything.
    """
    from repro.config import default_config
    from repro.mixes import mix as mix_by_name

    names = list(_SCENARIOS) if only is None else list(only)
    for n in names:
        if n not in _SCENARIOS:
            raise KeyError(f"unknown scenario {n!r}; "
                           f"known: {', '.join(_SCENARIOS)}")

    m = mix_by_name(mix_name)
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    build = (cfg, m, policy)
    # control run: monitored, un-faulted; InvariantViolation propagates
    clean = _run(build, monitor=_monitor())

    workdir = tempfile.mkdtemp(prefix="repro-faults-")
    report = CampaignReport(scale=scale, seed=seed, mix=mix_name,
                            policy=policy)
    ctx = {"build": build, "clean": clean, "seed": seed, "mix": mix_name,
           "policy": policy, "scale": scale, "workdir": workdir}
    try:
        for name in names:
            if name in _NEEDS_MP and not mp.get_all_start_methods():
                continue               # pragma: no cover
            outcome = _SCENARIOS[name](ctx)
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report
