"""Deterministic fault injection for the simulator and its harness.

Three layers of controlled breakage, all seeded and reproducible:

* :mod:`repro.faults.injectors` — request-path faults (drop / delay /
  duplicate), FRPU misprediction, and cache-file corruption;
* :mod:`repro.faults.workers` — executor worker specs that crash, hang,
  or flake, for exercising :func:`repro.exec.run_many`'s hardening;
* :mod:`repro.faults.campaign` — the scenario runner behind
  ``python -m repro faults``: every injected fault must be *detected
  loudly* (an :class:`~repro.guard.InvariantViolation`, a
  :class:`~repro.exec.CacheIntegrityWarning`, a failed
  :class:`~repro.exec.RunOutcome`) or *tolerated with recorded
  degradation* — never silent.
* :mod:`repro.faults.service` — the serving-layer chaos campaign
  behind ``python -m repro faults --service``: daemon SIGKILL and
  journal recovery, torn/corrupt journals, protocol abuse, slowloris
  clients, and pool massacres, under the same never-silent contract.

See ``docs/robustness.md`` for the campaign guide.
"""

from repro.faults.campaign import (CampaignReport, ScenarioOutcome,
                                   run_campaign, scenario_names)
from repro.faults.injectors import (FaultPlan, FrpuPerturbation,
                                    RequestFault, corrupt_file)
from repro.faults.service import (run_service_campaign,
                                  service_scenario_names)
from repro.faults.workers import (CrashSpec, FailSpec, FlakySpec,
                                  HangSpec, SleepSpec)

__all__ = [
    "CampaignReport", "CrashSpec", "FailSpec", "FaultPlan", "FlakySpec",
    "FrpuPerturbation", "HangSpec", "RequestFault", "ScenarioOutcome",
    "SleepSpec", "corrupt_file", "run_campaign", "run_service_campaign",
    "scenario_names", "service_scenario_names",
]
