"""Service-layer chaos campaign: ``python -m repro faults --service``.

The executor campaign (:mod:`repro.faults.campaign`) proves the
simulator and worker guardrails; this module climbs one layer and
attacks the *serving* stack — daemon, journal, protocol, pool — with
the same classification contract:

* ``detected``  — the failure produced a loud, structured signal (a
  ``protocol_error`` refusal, a :class:`JournalIntegrityWarning`
  surfaced in recovery counters, a torn tail truncated and counted);
* ``tolerated`` — service continued or recovered with the degradation
  recorded (orphans re-enqueued after SIGKILL, workers respawned after
  a massacre, a sibling client unaffected by a slowloris);
* ``silent``    — work was lost, results diverged from local
  execution, or the daemon wedged without a trace.  Any silent
  scenario fails the campaign (and CI).

Scenario roster::

    daemon-sigkill          SIGKILL a real serve subprocess mid-batch,
                            restart on the same store, prove zero lost
                            jobs + bit-identical results + recovery
                            counters in /metrics
    journal-torn-tail       crash signature: partial trailing record
    journal-corrupt-record  bit-rot mid-journal, quarantined + replayed
    conn-reset-mid-frame    RST half-way through a request frame
    slowloris-client        stalled connections while others work
    malformed-frame         garbage line -> structured protocol_error
    oversized-frame         frame past --max-frame -> refusal + close
    pool-massacre           SIGKILL every pool worker mid-job

A clean control (daemon round-trip, bit-identical to local
``run_many``) runs first; if *that* fails the campaign raises instead
of classifying anything.
"""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
import warnings
from dataclasses import asdict
from typing import Callable, List, Optional

from repro.faults.campaign import (DETECTED, SILENT, TOLERATED,
                                   CampaignReport, ScenarioOutcome)

__all__ = ["run_service_campaign", "service_scenario_names"]

#: worker-pool salt for every campaign store — isolated from user caches
_SALT = "svc-chaos"


# -- plumbing -----------------------------------------------------------------

def _specs(scale: str, seed: int, benches=(403, 429, 433)) -> List:
    from repro.exec import standalone_cpu_spec
    return [standalone_cpu_spec(b, scale=scale, seed=seed)
            for b in benches]


def _local_outcomes(specs, workdir: str):
    """Reference results from plain in-process ``run_many``."""
    from repro.exec import ResultCache, run_many
    cache = ResultCache(root=os.path.join(workdir, "local-store"),
                        salt=_SALT)
    return run_many(specs, cache=cache)


def _bit_identical(a, b) -> bool:
    if a is None or b is None:
        return a is b
    return asdict(a) == asdict(b)


def _poll(fn: Callable[[], bool], timeout: float = 90.0,
          every: float = 0.05, what: str = "condition") -> None:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if fn():
            return
        time.sleep(every)
    raise TimeoutError(f"timed out waiting for {what}")


def _daemon_thread(ctx, store: str, **kwargs):
    """An in-process daemon on its own store under the campaign dir."""
    from repro.exec import ResultCache
    from repro.service import start_daemon_thread
    os.makedirs(store, exist_ok=True)
    sock = os.path.join(store, "svc.sock")
    cache = ResultCache(root=os.path.join(store, "store"), salt=_SALT)
    kwargs.setdefault("workers", 1)
    return start_daemon_thread(socket_path=sock, cache=cache, **kwargs)


def _raw_conn(sock_path: str, timeout: float = 10.0) -> socket.socket:
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(timeout)
    s.connect(sock_path)
    return s


def _metric_value(sock_path: str, name: str) -> float:
    """One counter's summed value scraped over GET /metrics."""
    from repro.metrics.top import fetch, parse_prometheus, sample_value
    _, body = fetch(sock_path, "/metrics")
    return sample_value(parse_prometheus(body.decode("utf-8")), name,
                        default=0.0)


# -- the real-subprocess scenario ---------------------------------------------

def _serve_cmd(sock: str, journal_sync: str = "always",
               workers: int = 1) -> List[str]:
    return [sys.executable, "-m", "repro", "serve",
            "--socket", sock, "--workers", str(workers),
            "--journal-sync", journal_sync]


def _serve_env(store: str) -> dict:
    import repro
    src = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    env["REPRO_CACHE_DIR"] = store
    return env


def _scn_daemon_sigkill(ctx) -> ScenarioOutcome:
    """The tentpole invariant: SIGKILL with jobs queued + running, then
    a restart on the same store recovers every submitted spec with
    results bit-identical to local execution."""
    from repro.service import ServiceClient, service_available

    name = "daemon-sigkill"
    injected = "SIGKILL `repro serve` mid-batch, restart on same store"
    workdir = os.path.join(ctx["workdir"], name)
    store = os.path.join(workdir, "store")
    os.makedirs(store, exist_ok=True)
    sock = os.path.join(workdir, "svc.sock")
    # fresh seeds: nothing cached, every job must really execute
    specs = _specs(ctx["scale"], ctx["seed"] + 101)
    env = _serve_env(store)
    log = open(os.path.join(workdir, "daemon.log"), "wb")

    proc = subprocess.Popen(_serve_cmd(sock), env=env, stdout=log,
                            stderr=subprocess.STDOUT)
    try:
        _poll(lambda: service_available(sock), what="first daemon up")
        client = ServiceClient(sock, client_id="chaos", retries=0)
        client.submit(specs, wait=False)       # queue the whole batch
        # wait until at least one job is on a worker, so the kill lands
        # with work both running *and* queued
        _poll(lambda: client.status()["jobs"]["executed"] >= 1,
              what="first job started")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:                # pragma: no cover
            proc.kill()
            proc.wait(timeout=30)

    # restart against the same store; the journal replay must re-own
    # every orphan
    proc = subprocess.Popen(_serve_cmd(sock), env=env, stdout=log,
                            stderr=subprocess.STDOUT)
    try:
        _poll(lambda: service_available(sock), what="second daemon up")
        client = ServiceClient(sock, client_id="chaos2")
        _poll(lambda: client.status()["queue_depth"] == 0,
              what="recovery to drain the queue")
        status = client.status()
        recovered = status["jobs"]["recovered"]
        counter = _metric_value(sock,
                                "repro_journal_recovered_jobs_total")
        outs = client.wait_for(specs)
        local = {o.spec.label: o for o in
                 _local_outcomes(specs, workdir)}
        lost = [o.spec.label for o in outs if not o.ok]
        diverged = [o.spec.label for o in outs
                    if o.ok and not _bit_identical(
                        o.result, local[o.spec.label].result)]
        client.shutdown()
        proc.wait(timeout=60)
    finally:
        if proc.poll() is None:                # pragma: no cover
            proc.kill()
            proc.wait(timeout=30)
        log.close()

    if lost or diverged:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"lost={lost} diverged={diverged} after recovery",
            fired=1)
    if recovered < 1 or counter < 1:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"no recovery recorded (status={recovered}, "
            f"metric={counter:g}) — did the kill land post-batch?",
            fired=1)
    return ScenarioOutcome(
        name, injected, TOLERATED,
        f"degradation recorded: {recovered} orphan(s) re-enqueued "
        f"(journal counter {counter:g}), all {len(specs)} results "
        "bit-identical to local run_many", fired=1)


# -- journal scenarios --------------------------------------------------------

def _seed_journal(path: str, cache, spec_done, spec_orphan) -> None:
    """A journal as a killed daemon would leave it: one completed key,
    one submitted-but-unfinished key."""
    from repro.service import JobJournal
    from repro.service.protocol import spec_to_wire
    j = JobJournal(path, sync="always")
    k_done = cache.key_for(spec_done)
    k_orph = cache.key_for(spec_orphan)
    j.append("submitted", k_done, spec=spec_to_wire(spec_done),
             client="chaos", trace="t-done")
    j.append("started", k_done)
    j.append("done", k_done, ok=True)
    j.append("submitted", k_orph, spec=spec_to_wire(spec_orphan),
             client="chaos", trace="t-orphan")
    j.close()


def _scn_journal_torn_tail(ctx) -> ScenarioOutcome:
    """Crash signature: a partial record at EOF must be truncated,
    counted, and everything before it recovered."""
    from repro.exec import ResultCache
    from repro.service import ServiceClient
    from repro.service.journal import _MAGIC

    name = "journal-torn-tail"
    injected = "append half a record to the journal (crash mid-write)"
    store = os.path.join(ctx["workdir"], name)
    cache_root = os.path.join(store, "store")
    cache = ResultCache(root=cache_root, salt=_SALT)
    spec_done, spec_orphan = _specs(ctx["scale"], ctx["seed"] + 201)[:2]
    path = os.path.join(cache_root, "service.journal")
    _seed_journal(path, cache, spec_done, spec_orphan)
    with open(path, "ab") as fh:       # a frame that promises 64 bytes
        fh.write(_MAGIC + (64).to_bytes(4, "big") + b"\x00" * 10)

    with _daemon_thread(ctx, store) as handle:
        client = ServiceClient(handle.socket_path, client_id="chaos")
        _poll(lambda: client.status()["queue_depth"] == 0,
              what="orphan replay to finish")
        status = client.status()
        outs = client.wait_for([spec_orphan])
    j = status["journal"]
    if j["torn"] != 1 or j["recovered"] != 1 or not outs[0].ok:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"journal={j} orphan ok={outs[0].ok} "
            f"error={outs[0].error!r}", fired=1)
    return ScenarioOutcome(
        name, injected, DETECTED,
        f"torn tail truncated and counted (torn={j['torn']}), orphan "
        "re-executed to completion", fired=1)


def _scn_journal_corrupt(ctx) -> ScenarioOutcome:
    """Bit-rot one journal record: it must be skipped with a warning,
    counted in recovery, and the intact orphan still recovered."""
    from repro.exec import ResultCache
    from repro.service import JobJournal, JournalIntegrityWarning, \
        ServiceClient

    name = "journal-corrupt-record"
    injected = "flip one byte inside a mid-journal record payload"
    store = os.path.join(ctx["workdir"], name)
    cache_root = os.path.join(store, "store")
    cache = ResultCache(root=cache_root, salt=_SALT)
    spec_done, spec_orphan = _specs(ctx["scale"], ctx["seed"] + 301)[:2]
    path = os.path.join(cache_root, "service.journal")
    _seed_journal(path, cache, spec_done, spec_orphan)
    # corrupt the *started* record of the completed key: its payload is
    # tiny and sits between two intact records
    with open(path, "rb") as fh:
        blob = bytearray(fh.read())
    needle = blob.find(b'"started"')
    blob[needle + 2] ^= 0xFF
    with open(path, "wb") as fh:
        fh.write(bytes(blob))

    # the warning is part of the contract — prove it fires on replay
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        replay = JobJournal(path, sync="off").replay(truncate_torn=False)
    loud = [w for w in caught
            if issubclass(w.category, JournalIntegrityWarning)]

    with _daemon_thread(ctx, store) as handle:
        client = ServiceClient(handle.socket_path, client_id="chaos")
        _poll(lambda: client.status()["queue_depth"] == 0,
              what="orphan replay to finish")
        status = client.status()
        outs = client.wait_for([spec_orphan])
    j = status["journal"]
    if (replay.corrupt != 1 or not loud or j["corrupt"] != 1
            or j["recovered"] != 1 or not outs[0].ok):
        return ScenarioOutcome(
            name, injected, SILENT,
            f"replay.corrupt={replay.corrupt} warnings={len(loud)} "
            f"journal={j} orphan ok={outs[0].ok}", fired=1)
    return ScenarioOutcome(
        name, injected, DETECTED,
        "JournalIntegrityWarning raised, corrupt record quarantined "
        f"(corrupt={j['corrupt']}), intact orphan recovered", fired=1)


# -- protocol / connection scenarios ------------------------------------------

def _scn_conn_reset(ctx) -> ScenarioOutcome:
    """RST a connection half-way through a frame; the daemon must shrug
    and keep serving everyone else."""
    from repro.service import ServiceClient

    name = "conn-reset-mid-frame"
    injected = "SO_LINGER-0 close after sending half a request frame"
    store = os.path.join(ctx["workdir"], name)
    with _daemon_thread(ctx, store) as handle:
        s = _raw_conn(handle.socket_path)
        s.sendall(b'{"op": "submit", "client": "half')   # no newline
        import struct
        s.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                     struct.pack("ii", 1, 0))
        s.close()
        client = ServiceClient(handle.socket_path, client_id="chaos")
        pong = client.ping()
        status = client.status()
    healthy = pong["ok"] and status["jobs"]["submitted"] == 0
    if not healthy:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"daemon degraded after reset: {status['jobs']}", fired=1)
    return ScenarioOutcome(
        name, injected, TOLERATED,
        "daemon answered ping after the reset; no phantom submission "
        "recorded", fired=1)


def _scn_slowloris(ctx) -> ScenarioOutcome:
    """Stalled clients holding connections open must not block real
    work — the executor thread and event loop stay responsive."""
    from repro.service import ServiceClient

    name = "slowloris-client"
    injected = "3 connections held open mid-frame while a real client "\
               "submits"
    store = os.path.join(ctx["workdir"], name)
    spec = _specs(ctx["scale"], ctx["seed"] + 401, benches=(450,))[0]
    with _daemon_thread(ctx, store) as handle:
        stalled = [_raw_conn(handle.socket_path) for _ in range(3)]
        for s in stalled:
            s.sendall(b"{")            # a frame that never completes
        try:
            client = ServiceClient(handle.socket_path,
                                   client_id="chaos")
            t0 = time.time()
            outs = client.submit([spec])
            elapsed = time.time() - t0
        finally:
            for s in stalled:
                s.close()
    if not outs[0].ok:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"real client failed behind stalled peers: "
            f"{outs[0].error!r}", fired=3)
    return ScenarioOutcome(
        name, injected, TOLERATED,
        f"real submission completed in {elapsed:.1f}s with 3 stalled "
        "connections open", fired=3)


def _scn_malformed_frame(ctx) -> ScenarioOutcome:
    """Garbage must get a *structured* refusal, not a hang or a stack
    trace on the wire."""
    from repro.service import ServiceClient
    from repro.service.protocol import CODE_PROTOCOL_ERROR

    name = "malformed-frame"
    injected = "send a non-JSON line as a request"
    store = os.path.join(ctx["workdir"], name)
    with _daemon_thread(ctx, store) as handle:
        s = _raw_conn(handle.socket_path)
        s.sendall(b"this is not a protocol frame\n")
        reply = s.makefile("rb").readline()
        s.close()
        client = ServiceClient(handle.socket_path, client_id="chaos")
        alive = client.ping()["ok"]
    try:
        obj = json.loads(reply.decode("utf-8"))
    except ValueError:
        obj = {}
    if obj.get("ok") is not False \
            or obj.get("code") != CODE_PROTOCOL_ERROR or not alive:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"reply={reply!r} daemon alive={alive}", fired=1)
    return ScenarioOutcome(
        name, injected, DETECTED,
        f"structured refusal code={obj['code']!r}, daemon healthy",
        fired=1)


def _scn_oversized_frame(ctx) -> ScenarioOutcome:
    """A frame past ``--max-frame`` must be refused and the connection
    closed — never buffered without bound."""
    name = "oversized-frame"
    injected = "send a 256 KiB line to a daemon with --max-frame 64 KiB"
    store = os.path.join(ctx["workdir"], name)
    with _daemon_thread(ctx, store, max_frame=64 * 1024) as handle:
        s = _raw_conn(handle.socket_path)
        refused_on_send = False
        try:
            s.sendall(b"x" * (256 * 1024) + b"\n")
        except OSError:
            refused_on_send = True     # daemon already closed on us
        reply = b""
        try:
            reply = s.makefile("rb").readline()
        except OSError:
            pass
        s.close()
        refusals = _metric_value(handle.socket_path,
                                 "repro_frames_refused_total")
        from repro.service import ServiceClient
        alive = ServiceClient(handle.socket_path,
                              client_id="chaos").ping()["ok"]
    structured = b'"protocol_error"' in reply
    if refusals < 1 or not alive:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"refusals={refusals:g} alive={alive} reply={reply[:80]!r}",
            fired=1)
    detail = ("structured protocol_error reply received"
              if structured else
              "connection dropped at the bound"
              if refused_on_send or not reply else
              f"refused (reply={reply[:60]!r})")
    return ScenarioOutcome(
        name, injected, DETECTED,
        f"{detail}; refusal counter={refusals:g}, daemon healthy",
        fired=1)


def _scn_pool_massacre(ctx) -> ScenarioOutcome:
    """SIGKILL every pool worker mid-job: the pool must respawn and the
    daemon's retry budget must finish the batch."""
    from repro.service import ServiceClient

    name = "pool-massacre"
    injected = "SIGKILL all pool workers while jobs are running"
    store = os.path.join(ctx["workdir"], name)
    specs = _specs(ctx["scale"], ctx["seed"] + 501)
    with _daemon_thread(ctx, store, workers=2, retries=2) as handle:
        client = ServiceClient(handle.socket_path, client_id="chaos")
        client.submit(specs, wait=False)
        _poll(lambda: client.status()["running"] >= 1,
              what="a job to be running")
        for pid in client.status()["worker_pids"]:
            if pid:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:   # pragma: no cover
                    pass
        outs = client.wait_for(specs)
        status = client.status()
    lost = [o.spec.label for o in outs if not o.ok]
    retried = max(o.attempts for o in outs)
    recycled = status["workers_recycled"]
    if lost:
        return ScenarioOutcome(
            name, injected, SILENT,
            f"jobs lost to the massacre: {lost}", fired=1)
    if retried <= 1 and recycled == 0:
        return ScenarioOutcome(
            name, injected, SILENT,
            "massacre left no trace (landed after the batch?)",
            fired=1)
    return ScenarioOutcome(
        name, injected, TOLERATED,
        f"degradation recorded: workers recycled={recycled}, max "
        f"attempts={retried}, all {len(specs)} jobs completed",
        fired=1)


# -- the campaign -------------------------------------------------------------

_SERVICE_SCENARIOS: dict = {
    "daemon-sigkill": _scn_daemon_sigkill,
    "journal-torn-tail": _scn_journal_torn_tail,
    "journal-corrupt-record": _scn_journal_corrupt,
    "conn-reset-mid-frame": _scn_conn_reset,
    "slowloris-client": _scn_slowloris,
    "malformed-frame": _scn_malformed_frame,
    "oversized-frame": _scn_oversized_frame,
    "pool-massacre": _scn_pool_massacre,
}


def service_scenario_names() -> list:
    return list(_SERVICE_SCENARIOS)


def run_service_campaign(scale: str = "test", seed: int = 1,
                         only: Optional[list] = None,
                         progress: Optional[Callable] = None
                         ) -> CampaignReport:
    """Run the service chaos campaign and classify every scenario.

    The clean control — a daemon round-trip whose outcomes must be
    bit-identical to local ``run_many`` — runs first; a control failure
    raises rather than classifies.
    """
    import multiprocessing as mp

    from repro.service import ServiceClient

    if "fork" not in mp.get_all_start_methods():  # pragma: no cover
        raise RuntimeError("service campaign needs a POSIX fork "
                           "process manager")
    names = (list(_SERVICE_SCENARIOS) if only is None else list(only))
    for n in names:
        if n not in _SERVICE_SCENARIOS:
            raise KeyError(
                f"unknown service scenario {n!r}; known: "
                f"{', '.join(_SERVICE_SCENARIOS)}")

    workdir = tempfile.mkdtemp(prefix="repro-svc-chaos-")
    report = CampaignReport(scale=scale, seed=seed, mix="(service)",
                            policy="(service)")
    ctx = {"scale": scale, "seed": seed, "workdir": workdir}
    try:
        # clean control: daemon results must equal local execution
        specs = _specs(scale, seed)
        local = _local_outcomes(specs,
                                os.path.join(workdir, "control"))
        with _daemon_thread(ctx, os.path.join(workdir, "control")) \
                as handle:
            outs = ServiceClient(handle.socket_path,
                                 client_id="control").submit(specs)
        for o, ref in zip(outs, local):
            if not o.ok or not _bit_identical(o.result, ref.result):
                raise RuntimeError(
                    f"clean control failed: {o.spec.label} ok={o.ok} "
                    f"error={o.error!r} identical="
                    f"{_bit_identical(o.result, ref.result)}")

        for name in names:
            outcome = _SERVICE_SCENARIOS[name](ctx)
            report.outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return report
