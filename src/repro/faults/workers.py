"""Executor-level fault specs: workers that crash, hang, or dawdle.

These are picklable stand-ins for a :class:`~repro.exec.specs.RunSpec`
(duck-typed: ``key``/``label``/``run``) whose ``run()`` misbehaves in a
controlled way.  The fault campaign and the executor failure-path tests
use them to prove :func:`~repro.exec.executor.run_many` survives worker
death, enforces timeouts, and salvages completed work on interrupt.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass


def _key(*parts) -> str:
    canon = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CrashSpec:
    """``run()`` kills its own process with SIGKILL (worker death)."""

    token: int = 0

    @property
    def label(self) -> str:
        return f"crash#{self.token}"

    def key(self, salt: str) -> str:
        return _key(salt, "crash", self.token)

    def run(self):
        os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError("unreachable")  # pragma: no cover


@dataclass(frozen=True)
class HangSpec:
    """``run()`` sleeps far past any sane timeout (wedged worker)."""

    seconds: float = 3600.0
    token: int = 0

    @property
    def label(self) -> str:
        return f"hang#{self.token}"

    def key(self, salt: str) -> str:
        return _key(salt, "hang", self.seconds, self.token)

    def run(self):
        time.sleep(self.seconds)
        return {"hung": False}


@dataclass(frozen=True)
class SleepSpec:
    """``run()`` sleeps briefly, then succeeds (slow-but-healthy)."""

    seconds: float = 0.05
    token: int = 0

    @property
    def label(self) -> str:
        return f"sleep#{self.token}"

    def key(self, salt: str) -> str:
        return _key(salt, "sleep", self.seconds, self.token)

    def run(self):
        time.sleep(self.seconds)
        return {"token": self.token, "slept": self.seconds}


@dataclass(frozen=True)
class FailSpec:
    """``run()`` raises (ordinary in-process failure, not a crash)."""

    token: int = 0

    @property
    def label(self) -> str:
        return f"fail#{self.token}"

    def key(self, salt: str) -> str:
        return _key(salt, "fail", self.token)

    def run(self):
        raise RuntimeError(f"injected failure #{self.token}")


@dataclass(frozen=True)
class FlakySpec:
    """Fails until a marker file accumulates ``fail_times`` attempts.

    Exercises the retry-with-backoff path: the spec crashes its worker
    on the first ``fail_times`` attempts and succeeds afterwards.  The
    marker directory provides cross-process attempt memory.
    """

    marker_dir: str = "."
    fail_times: int = 1
    token: int = 0

    @property
    def label(self) -> str:
        return f"flaky#{self.token}"

    def key(self, salt: str) -> str:
        return _key(salt, "flaky", self.fail_times, self.token)

    def _marker(self) -> str:
        return os.path.join(self.marker_dir,
                            f"flaky-{self.token}.attempts")

    def run(self):
        path = self._marker()
        attempts = 0
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                attempts = int(fh.read().strip() or 0)
        attempts += 1
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(str(attempts))
        if attempts <= self.fail_times:
            os.kill(os.getpid(), signal.SIGKILL)
        return {"token": self.token, "attempts": attempts}
