"""Assembly of the heterogeneous CMP out of its parts.

Address map: CPU application ``i`` owns the region starting at
``(1 + i) << 34`` (16 GB apart, so applications never share lines, as in
the paper's multiprogrammed runs); the GPU owns the region at
``8 << 34``.  DRAM channels are line-interleaved, so every region
spreads over both channels and all banks.

Completion: the run stops when every CPU core has committed its
(warm-up + measured) instructions AND the GPU has rendered at least
``scale.min_frames`` frames; the GPU self-stops at ``scale.max_frames``
(early-finishing CPU applications keep running until then, per
Section V-B).
"""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.cpu.core import CpuCore
from repro.cpu.spec import profile_for
from repro.cpu.trace import TraceGenerator
from repro.dram.controller import DramSystem
from repro.gpu.framebuffer import FrameGenerator
from repro.gpu.pipeline import GpuPipeline
from repro.gpu.workloads import workload_for
from repro.interconnect.ring import RingInterconnect
from repro.mem.llc import SharedLLC
from repro.mem.request import MemRequest
from repro.mixes import Mix
from repro.sim.engine import Simulator

CPU_REGION_SHIFT = 34
GPU_BASE = 8 << CPU_REGION_SHIFT

#: absolute safety cap on simulated ticks (no experiment needs this much)
MAX_TICKS = 2_000_000_000


class HeterogeneousSystem:
    def __init__(self, cfg: SystemConfig, mix: Mix, policy=None, *,
                 sim: Optional[Simulator] = None, telemetry=None,
                 tracer=None, monitor=None, faults=None):
        if policy is None:
            from repro.policies.baseline import BaselinePolicy
            policy = BaselinePolicy()
        self.cfg = cfg
        self.mix = mix
        self.policy = policy
        # ``monitor`` is a repro.guard.InvariantMonitor (or None): it
        # wraps the CPU/GPU issue hooks below with conservation
        # accounting and schedules a read-only periodic check event.
        # ``faults`` is a repro.faults.FaultPlan (or None): its
        # injectors sit *inside* the monitor wrapper, so an injected
        # drop/duplicate is visible to the conservation checks.  Both
        # are wired at construction time; a system built without them
        # takes the exact same code paths it always did.
        self.monitor = monitor
        self.faults = faults
        # ``telemetry`` is a repro.telemetry.Telemetry (or None, the
        # default): every emitting site below guards with ``is not
        # None``, so a telemetry-less run schedules the exact same
        # events and produces bit-identical stats
        self.telemetry = telemetry
        # ``tracer`` is a repro.spans.SpanTracer (or None): sampled
        # requests carry stage-stamped spans; stamp sites guard on
        # ``req.span`` so the untraced path is one ``is None`` test,
        # and stamps never schedule events — traced runs stay
        # bit-identical (tests/sim/test_spans_golden.py)
        self.tracer = tracer
        # ``sim`` lets tests/benchmarks inject an alternative kernel
        # (e.g. engine.ReferenceSimulator for order-equivalence checks)
        self.sim = Simulator() if sim is None else sim
        n_cpus = mix.n_cpus
        self.ring = RingInterconnect(cfg.ring, max(n_cpus, 1),
                                     model=cfg.ring.model,
                                     slot_ticks=cfg.ring.slot_ticks)
        self.ring.wire_clock(lambda: self.sim.now)

        # DRAM
        self.dram = DramSystem(self.sim, cfg.dram,
                               scheduler_factory=policy.scheduler_factory(),
                               line_bytes=cfg.llc.line_bytes)

        # LLC (capacity scaled with the work preset, see Scale.llc_bytes)
        self.llc = SharedLLC(self.sim, cfg.effective_llc(),
                             dram_send=self._dram_send,
                             response_delay=self._response_delay)
        self.llc.back_invalidate = self._back_invalidate

        # issue hooks, optionally wrapped (fault injectors innermost so
        # the monitor sees and accounts for what they perturb)
        cpu_send = self._cpu_send
        gpu_send = self._gpu_send
        if faults is not None:
            cpu_send = faults.wrap_send(cpu_send, self.sim, side="cpu")
            gpu_send = faults.wrap_send(gpu_send, self.sim, side="gpu")
        if monitor is not None:
            cpu_send = monitor.wrap_issue(cpu_send, self.sim)
            gpu_send = monitor.wrap_issue(gpu_send, self.sim)

        # CPU cores
        self.cores: list[CpuCore] = []
        for i, spec_id in enumerate(mix.cpu_apps):
            profile = profile_for(spec_id)
            trace = TraceGenerator(
                profile, seed=cfg.seed * 100_003 + spec_id,
                base_addr=(1 + i) << CPU_REGION_SHIFT,
                mem_scale=cfg.scale.mem_scale)
            core = CpuCore(self.sim, cfg.effective_cpu(), i, trace,
                           llc_send=cpu_send,
                           target_instructions=cfg.scale.cpu_instructions,
                           on_target_reached=self._core_done,
                           warmup_instructions=
                           cfg.scale.warmup_instructions)
            self.cores.append(core)

        # GPU
        self.gpu: Optional[GpuPipeline] = None
        if mix.gpu_app is not None:
            workload = workload_for(mix.gpu_app)
            if cfg.gpu_frontend == "geometry":
                from repro.gpu.geometry import GeometryFrameGenerator
                frame_cls = GeometryFrameGenerator
            elif cfg.gpu_frontend == "procedural":
                frame_cls = FrameGenerator
            else:
                raise ValueError(
                    f"unknown gpu_frontend {cfg.gpu_frontend!r}")
            frames = frame_cls(
                workload, cfg.scale.gpu_frame_cycles, base_addr=GPU_BASE,
                seed=cfg.seed * 7919 + 1,
                mem_scale=cfg.scale.mem_scale)
            # standalone GPU runs render max_frames; heterogeneous runs
            # also stop the GPU at max_frames (CPU may finish earlier)
            self.gpu = GpuPipeline(self.sim, cfg.gpu, workload, frames,
                                   llc_send=gpu_send,
                                   on_frame_done=self._frame_done,
                                   max_frames=cfg.scale.max_frames,
                                   mem_scale=cfg.scale.mem_scale)

        self._cores_remaining = len(self.cores)
        self._stopped = False
        policy.attach(self)
        if telemetry is not None:
            telemetry.bind(self)
        if tracer is not None:
            tracer.bind(self)
            self.llc.tracer = tracer
            for mc in self.dram.controllers:
                mc.tracer = tracer
            for core in self.cores:
                core.tracer = tracer
            if self.gpu is not None:
                self.gpu.tracer = tracer
        if monitor is not None:
            monitor.bind(self)
        if faults is not None:
            faults.bind(self)

    # -- interconnect plumbing ------------------------------------------------

    def _cpu_send(self, req: MemRequest) -> None:
        d = self.ring.delay(req.source, "llc")
        if req.span is not None:
            self.tracer.gauge_record("ring_queued", self.sim.now,
                                     self.ring.last_queued)
        self.sim.after_call(d, self.llc.access, req)

    def _gpu_send(self, req: MemRequest) -> None:
        d = self.ring.delay("gpu", "llc")
        if req.span is not None:
            self.tracer.gauge_record("ring_queued", self.sim.now,
                                     self.ring.last_queued)
        self.sim.after_call(d, self.llc.access, req)

    def _response_delay(self, req: MemRequest) -> int:
        return self.ring.delay("llc", req.source)

    def _dram_send(self, req: MemRequest) -> None:
        ch = self.dram.channel_of(req.addr)
        d = self.ring.delay("llc", f"mc{ch}")
        if req.on_done is not None:
            orig = req.on_done
            back = self.ring.delay(f"mc{ch}", "llc")

            def delayed(r, _orig=orig, _back=back):
                self.sim.after_call(_back, _orig, r)
            req.on_done = delayed
        self.sim.after_call(d, self.dram.send, req)

    def _back_invalidate(self, owner: str, addr: int) -> bool:
        idx = int(owner[3:])
        if idx < len(self.cores):
            return self.cores[idx].back_invalidate(addr)
        return False

    # -- completion tracking ------------------------------------------------------

    def _core_done(self, core_id: int) -> None:
        self._cores_remaining -= 1
        self._check_done()

    def _frame_done(self, rec) -> None:
        if self.telemetry is not None:
            self.telemetry.emit(
                "frame", tick=rec.end_time, frame=rec.index,
                cycles=rec.cycles, llc_accesses=rec.llc_accesses,
                throttle_cycles=rec.throttle_ticks, n_rtps=len(rec.rtps))
        self._check_done()

    def _check_done(self) -> None:
        if self._stopped:
            return
        cores_ok = self._cores_remaining <= 0
        if self.gpu is None:
            gpu_ok = True
        elif self.cores:
            gpu_ok = (self.gpu.frames_completed >= self.cfg.scale.min_frames
                      or self.gpu.stopped)
        else:
            # standalone GPU: render them all.  The pipeline flags
            # ``stopped`` only after the last frame's callback returns,
            # so also count completed frames — otherwise the run ends by
            # queue drain and the clock (RunResult.ticks) advances to
            # the safety cap instead of the last frame's end time.
            gpu_ok = (self.gpu.stopped or
                      self.gpu.frames_completed >= self.cfg.scale.max_frames)
        if cores_ok and gpu_ok:
            self._stopped = True
            if self.gpu is not None:
                self.gpu.stopped = True
            self.sim.stop()

    # -- running -----------------------------------------------------------------

    def run(self, max_ticks: int = MAX_TICKS) -> "HeterogeneousSystem":
        for core in self.cores:
            core.start()
        if self.gpu is not None:
            self.gpu.start()
        self.sim.run(until=max_ticks)
        if self.monitor is not None:
            self.monitor.verify_final()
        if not self._stopped and self.sim.pending():
            raise RuntimeError(
                f"simulation hit the {max_ticks}-tick safety cap "
                f"(mix={self.mix.name}, policy={self.policy.name})")
        return self

    # -- convenience metrics ---------------------------------------------------------

    def gpu_fps(self) -> float:
        if self.gpu is None:
            return 0.0
        return self.gpu.fps_measured(self.cfg.scale.gpu_frame_cycles)

    def cpu_ipcs(self) -> dict[int, float]:
        return {c.core_id: c.ipc_achieved() for c in self.cores}
