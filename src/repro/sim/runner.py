"""Experiment orchestration: standalone and heterogeneous runs.

Standalone results (per-app IPC, per-game FPS) are cached per
``(scale, seed)`` through :mod:`repro.exec` — an in-process memory layer
plus the persistent on-disk cache under ``.repro_cache/`` — because
every figure normalises against them: Fig. 1 alone needs 28 standalone
runs plus 14 heterogeneous ones.  Cached results come back as defensive
copies, so one figure's post-processing can never corrupt another
figure's normalisation baseline.
"""

from __future__ import annotations

from repro.config import SystemConfig, default_config
from repro.exec import (run_cached, standalone_cpu_spec,
                        standalone_gpu_spec)
from repro.exec import clear_caches as _clear_exec_caches
from repro.mixes import Mix, mix as mix_by_name
from repro.policies import make_policy
from repro.policies.base import Policy
from repro.sim.metrics import RunResult, collect, weighted_speedup
from repro.sim.system import HeterogeneousSystem


def run_system(cfg: SystemConfig, mix: Mix,
               policy: Policy | str | None = None,
               telemetry=None, tracer=None, monitor=None,
               faults=None) -> RunResult:
    """Build, run, and harvest one simulation.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) records the
    control loop's structured events; ``tracer`` (a
    :class:`repro.spans.SpanTracer`) samples request-path spans;
    ``monitor`` (a :class:`repro.guard.InvariantMonitor`) checks
    conservation/liveness invariants and raises
    :class:`~repro.guard.InvariantViolation` on a broken run;
    ``faults`` (a :class:`repro.faults.FaultPlan`) injects seeded
    faults.  Runs with any of them attached are never cached — the
    caller owns the recording/checking objects.
    """
    if isinstance(policy, str):
        policy = make_policy(policy)
    system = HeterogeneousSystem(cfg, mix, policy, telemetry=telemetry,
                                 tracer=tracer, monitor=monitor,
                                 faults=faults)
    system.run()
    return collect(system)


def run_mix(mix_name: str, policy: str = "baseline", scale: str = "test",
            seed: int = 1, predictor: str = None) -> RunResult:
    """Run one Table III mix under one policy.

    ``predictor`` overrides the frame-time predictor behind the FRPU
    seam (``SystemConfig.qos.predictor``; see docs/predictors.md) —
    only meaningful for policies with a QoS controller.
    """
    m = mix_by_name(mix_name)
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    if predictor is not None:
        cfg = cfg.with_qos(predictor=predictor)
    return run_system(cfg, m, policy)


# -- standalone runs (cached via repro.exec) --------------------------------

def standalone_cpu(spec_id: int, scale: str = "test",
                   seed: int = 1) -> RunResult:
    """One CPU application alone on the machine (no GPU)."""
    return run_cached(standalone_cpu_spec(spec_id, scale, seed))


def standalone_gpu(game: str, scale: str = "test",
                   seed: int = 1) -> RunResult:
    """One GPU application alone on the machine (no CPU work)."""
    return run_cached(standalone_gpu_spec(game, scale, seed))


def alone_ipcs(spec_ids, scale: str = "test",
               seed: int = 1) -> dict[int, float]:
    out: dict[int, float] = {}
    for sid in spec_ids:
        r = standalone_cpu(sid, scale, seed)
        out[sid] = r.cpu_ipcs[0]
    return out


def weighted_speedup_for(result: RunResult, scale: str = "test",
                         seed: int = 1) -> float:
    """Weighted speedup of a run's CPU mix against standalone IPCs."""
    alone = alone_ipcs(result.cpu_apps, scale, seed)
    return weighted_speedup(result, alone)


def clear_caches() -> None:
    """Drop the in-process result cache (the disk layer persists)."""
    _clear_exec_caches()
