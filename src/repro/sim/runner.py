"""Experiment orchestration: standalone and heterogeneous runs.

Standalone results (per-app IPC, per-game FPS) are memoised per
``(scale, seed)`` in-process, because every figure normalises against
them — Fig. 1 alone needs 28 standalone runs plus 14 heterogeneous ones.
"""

from __future__ import annotations

from functools import lru_cache

from repro.config import SystemConfig, default_config
from repro.mixes import Mix, mix as mix_by_name
from repro.policies import make_policy
from repro.policies.base import Policy
from repro.sim.metrics import RunResult, collect, weighted_speedup
from repro.sim.system import HeterogeneousSystem


def run_system(cfg: SystemConfig, mix: Mix,
               policy: Policy | str | None = None) -> RunResult:
    """Build, run, and harvest one simulation."""
    if isinstance(policy, str):
        policy = make_policy(policy)
    system = HeterogeneousSystem(cfg, mix, policy)
    system.run()
    return collect(system)


def run_mix(mix_name: str, policy: str = "baseline", scale: str = "test",
            seed: int = 1) -> RunResult:
    """Run one Table III mix under one policy."""
    m = mix_by_name(mix_name)
    cfg = default_config(scale=scale, n_cpus=m.n_cpus, seed=seed)
    return run_system(cfg, m, policy)


# -- standalone runs (memoised) ---------------------------------------------

@lru_cache(maxsize=None)
def standalone_cpu(spec_id: int, scale: str = "test",
                   seed: int = 1) -> RunResult:
    """One CPU application alone on the machine (no GPU)."""
    m = Mix(f"alone-{spec_id}", None, (spec_id,))
    cfg = default_config(scale=scale, n_cpus=1, seed=seed)
    return run_system(cfg, m, "baseline")


@lru_cache(maxsize=None)
def standalone_gpu(game: str, scale: str = "test",
                   seed: int = 1) -> RunResult:
    """One GPU application alone on the machine (no CPU work)."""
    m = Mix(f"alone-{game}", game, ())
    cfg = default_config(scale=scale, n_cpus=0, seed=seed)
    return run_system(cfg, m, "baseline")


def alone_ipcs(spec_ids, scale: str = "test",
               seed: int = 1) -> dict[int, float]:
    out: dict[int, float] = {}
    for sid in spec_ids:
        r = standalone_cpu(sid, scale, seed)
        out[sid] = r.cpu_ipcs[0]
    return out


def weighted_speedup_for(result: RunResult, scale: str = "test",
                         seed: int = 1) -> float:
    """Weighted speedup of a run's CPU mix against standalone IPCs."""
    alone = alone_ipcs(result.cpu_apps, scale, seed)
    return weighted_speedup(result, alone)


def clear_caches() -> None:
    standalone_cpu.cache_clear()
    standalone_gpu.cache_clear()
