"""Simulation kernel, system assembly, and experiment orchestration."""

from repro.sim.engine import Simulator, Event
from repro.sim.stats import Counter, StatSet

__all__ = ["Simulator", "Event", "Counter", "StatSet"]
