"""Deterministic discrete-event simulation kernel.

The whole reproduction runs on one :class:`Simulator`: components schedule
callbacks at integer tick times and the kernel executes them in
``(time, sequence)`` order, so ties are broken by scheduling order and every
run is bit-reproducible.

The kernel is deliberately tiny and allocation-light — it is the hottest
loop in the package (the guides' advice: optimise the measured bottleneck,
keep the inner loop simple).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """A scheduled callback.  ``cancel()`` is O(1) (lazy deletion)."""

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """Event queue with integer time in ticks (1 tick = 1 CPU cycle)."""

    def __init__(self) -> None:
        self.now: int = 0
        self._queue: list[Event] = []
        self._seq: int = 0
        self._stop = False

    def at(self, time: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute ``time`` (must be >= now)."""
        if time < self.now:
            raise ValueError(f"schedule in the past: {time} < {self.now}")
        self._seq += 1
        ev = Event(int(time), self._seq, fn)
        heapq.heappush(self._queue, ev)
        return ev

    def after(self, delay: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn)

    def pending(self) -> int:
        return sum(1 for ev in self._queue if not ev.cancelled)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stop = True

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ticks, or ``max_events``.

        When ``until`` is given the clock always reaches it unless the
        run was cut short by ``stop()`` or ``max_events`` — even if the
        queue drains earlier — so consecutive ``run(until=...)`` calls
        observe a consistent clock.  Returns the number of events
        executed.
        """
        queue = self._queue
        executed = 0
        self._stop = False
        while queue:
            ev = heapq.heappop(queue)
            if ev.cancelled:
                continue
            if until is not None and ev.time > until:
                heapq.heappush(queue, ev)  # put it back for a later run()
                self.now = until
                break
            self.now = ev.time
            ev.fn()
            executed += 1
            if self._stop:
                break
            if max_events is not None and executed >= max_events:
                break
        if (until is not None and not queue and not self._stop
                and self.now < until):
            # queue drained before the horizon: advance the clock to it
            self.now = int(until)
        return executed
